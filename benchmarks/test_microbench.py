"""Micro-benchmarks: raw throughput of the library's hot paths.

These time the *implementation* (cells mapped per second, runs serviced
per second), unlike the figure benches which report simulated I/O time.
"""

import numpy as np
import pytest

from repro.core import MultiMapMapper
from repro.disk import DiskDrive, atlas_10k3
from repro.lvm import LogicalVolume
from repro.mappings import HilbertMapper, NaiveMapper, ZOrderMapper
from repro.mappings.base import enumerate_box

DIMS = (128, 64, 64)
N = int(np.prod(DIMS))


@pytest.fixture(scope="module")
def coords():
    return enumerate_box((0, 0, 0), DIMS)


def _mapper(cls):
    vol = LogicalVolume([atlas_10k3()], depth=128)
    if cls is MultiMapMapper:
        return MultiMapMapper(DIMS, vol)
    return cls(DIMS, vol.allocate_blocks(0, N))


@pytest.mark.parametrize(
    "cls", [NaiveMapper, ZOrderMapper, HilbertMapper, MultiMapMapper]
)
def test_cell_mapping_throughput(benchmark, cls, coords):
    mapper = _mapper(cls)
    if hasattr(mapper, "code_table"):
        mapper.code_table()  # exclude the one-time table build
    out = benchmark(mapper.lbns, coords)
    assert out.shape == (N,)


def test_drive_sorted_batch_throughput(benchmark):
    drive = DiskDrive(atlas_10k3())
    rng = np.random.default_rng(0)
    starts = np.sort(rng.choice(10_000_000, size=100_000, replace=False))
    lengths = np.full(100_000, 4, dtype=np.int64)

    def run():
        drive.reset()
        return drive.service_runs(starts, lengths, policy="sorted")

    res = benchmark(run)
    assert res.n_requests == 100_000


def test_drive_sptf_batch_throughput(benchmark):
    drive = DiskDrive(atlas_10k3())
    rng = np.random.default_rng(0)
    starts = np.sort(rng.choice(1_000_000, size=3_000, replace=False))
    lengths = np.ones(3_000, dtype=np.int64)

    def run():
        drive.reset()
        return drive.service_runs(
            starts, lengths, policy="sptf", window=128
        )

    res = benchmark(run)
    assert res.n_requests == 3_000


def test_hilbert_encode_throughput(benchmark):
    from repro.mappings import curves

    coords = enumerate_box((0, 0, 0), (64, 64, 64))

    out = benchmark(curves.hilbert_encode, coords, 6)
    assert out.size == 64 ** 3


def test_range_plan_throughput(benchmark):
    mapper = _mapper(MultiMapMapper)
    plan = benchmark(mapper.range_plan, (10, 5, 5), (100, 50, 50))
    assert plan.n_blocks == 90 * 45 * 45
