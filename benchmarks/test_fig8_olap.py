"""Figure 8 regenerator: the 4-D OLAP dataset (paper §5.5).

Validated shape (paper's per-query findings):
* Q1 (beam, major order): Naive ~2 orders faster than the curves;
  MultiMap matches Naive;
* Q2 (beam, NationID): MultiMap best; curves beat Naive;
* Q3 (2-D range incl. major order): Naive good, MultiMap matches;
* Q4 (3-D range): MultiMap at least matches Naive, curves behind;
* Q5 (4-D range): curves beat Naive.
"""

from conftest import run_once

from repro.bench import fig8_olap
from repro.bench.reporting import render_fig8


def test_fig8_olap_queries(benchmark, scale, report):
    data = run_once(benchmark, fig8_olap, scale)
    report("\n" + render_fig8(data))
    for disk, per in data.items():
        naive, z, h, mm = (
            per["naive"], per["zorder"], per["hilbert"], per["multimap"]
        )
        # Q1: streaming vs curves
        assert naive["Q1"] * 10 < min(z["Q1"], h["Q1"])
        assert mm["Q1"] < naive["Q1"] * 2.0
        # Q2: multimap best (or statistically tied)
        assert mm["Q2"] <= min(naive["Q2"], z["Q2"], h["Q2"]) * 1.1
        # Q3: multimap matches naive's sequential advantage
        assert mm["Q3"] < min(z["Q3"], h["Q3"])
        assert mm["Q3"] < naive["Q3"] * 1.25
        # Q4: multimap at least matches naive
        assert mm["Q4"] <= naive["Q4"] * 1.1
        # Q5: curves beat naive on the 4-D range
        assert min(z["Q5"], h["Q5"]) < naive["Q5"]
