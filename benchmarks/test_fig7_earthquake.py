"""Figure 7 regenerators: the skewed earthquake dataset (paper §5.4).

Validated shape: MultiMap (applied per uniform region, §4.5) achieves the
best or near-best performance for beam queries along every axis while
matching X-major streaming, and stays ahead on small range queries.
"""

from conftest import run_once

from repro.bench import fig7a_beam, fig7b_range
from repro.bench.reporting import render_fig6a, render_table


def test_fig7a_beam_queries(benchmark, scale, report):
    data = run_once(benchmark, fig7a_beam, scale)
    disks = [k for k in data if isinstance(data[k], dict)
             and "naive" in data[k]]
    plain = {d: data[d] for d in disks}
    report(f"\nelements={data['n_elements']}  "
          f"top-2 region coverage={data['top2_region_coverage']}")
    report(render_fig6a(plain))
    # structural property the generator must reproduce (§5.4: two subareas
    # hold >60% of all elements)
    assert data["top2_region_coverage"] > 0.6
    for disk in disks:
        per = data[disk]
        # Z (the deepest stride for X-major Naive) shows the clean win;
        # Y ties within noise at reduced dataset scale (EXPERIMENTS.md).
        assert per["multimap"]["Z"] < per["naive"]["Z"]
        for axis in ("Y", "Z"):
            assert per["multimap"][axis] <= per["naive"][axis] * 1.1
            assert per["multimap"][axis] < per["zorder"][axis] * 1.1
            assert per["multimap"][axis] < per["hilbert"][axis] * 1.1


def test_fig7b_range_queries(benchmark, scale, report):
    data = run_once(benchmark, fig7b_range, scale)
    disks = [k for k in data if isinstance(data[k], dict)
             and "naive" in data[k]]
    for disk in disks:
        per = data[disk]
        sels = sorted(next(iter(per.values())))
        rows = [
            [name] + [per[name][s] for s in sels] for name in per
        ]
        report(f"\n[{disk}] earthquake ranges, total ms "
              f"(elements: {data.get('elements_fetched')})")
        report(render_table(["mapping"] + [f"{s}%" for s in sels], rows))
        for s in sels:
            # multimap stays within 1.8x of the best (Naive leads at
            # reduced dataset scale — see EXPERIMENTS.md) and clearly
            # beats both curve layouts
            best = min(per[name][s] for name in per)
            assert per["multimap"][s] <= best * 1.8
            assert per["multimap"][s] < per["zorder"][s]
            assert per["multimap"][s] < per["hilbert"][s]
