"""Figure 6 regenerators: the synthetic 3-D dataset (paper §5.3).

Validated shape (paper's findings):
* beams: Naive and MultiMap stream Dim0; curves are ~2 orders slower
  there; MultiMap wins every non-primary dimension;
* ranges: MultiMap >= Naive at low selectivity, dips around 10-40%
  (the paper observes up to -6% there on the Cheetah), all mappings
  converge at 100%.
"""

from conftest import run_once

from repro.bench import fig6a_beam, fig6b_range, headline_summary
from repro.bench.reporting import render_fig6a, render_fig6b, render_kv


def test_fig6a_beam_queries(benchmark, scale, results_store, report):
    data = run_once(benchmark, fig6a_beam, scale)
    results_store["fig6a"] = data
    report("\n" + render_fig6a(data))
    for disk, per_mapper in data.items():
        naive, mm = per_mapper["naive"], per_mapper["multimap"]
        z, h = per_mapper["zorder"], per_mapper["hilbert"]
        # Dim0: streaming for naive + multimap, orders slower for curves
        assert mm["dim0"] < naive["dim0"] * 2.0
        assert min(z["dim0"], h["dim0"]) > 10 * naive["dim0"]
        # MultiMap wins all non-primary dims
        for dim in ("dim1", "dim2"):
            assert mm[dim] < naive[dim]
            assert mm[dim] < z[dim]
            assert mm[dim] < h[dim]


def test_fig6b_range_queries(benchmark, scale, results_store, report):
    data = run_once(benchmark, fig6b_range, scale)
    results_store["fig6b"] = data
    report("\n" + render_fig6b(data))
    for disk, payload in data.items():
        sp = payload["speedup_vs_naive"]
        sels = sorted(sp["multimap"])
        low = sels[0]
        # MultiMap ahead at the lowest selectivity
        assert sp["multimap"][low] > 1.0
        # curves beat naive at low selectivity too (clustering)
        assert sp["zorder"][low] > 1.0
        assert sp["hilbert"][low] > 1.0
        # convergence at a full scan
        assert 0.99 < sp["zorder"][100.0] < 1.01
        assert 0.99 < sp["hilbert"][100.0] < 1.01
        assert 0.75 < sp["multimap"][100.0] < 1.1


def test_headline_claims(benchmark, results_store, scale, report):
    def compute():
        fig6a = results_store.get("fig6a") or fig6a_beam(scale)
        fig6b = results_store.get("fig6b") or fig6b_range(scale)
        return headline_summary(fig6a, fig6b)

    summary = run_once(benchmark, compute)
    for disk, payload in summary.items():
        report("\n" + render_kv(f"[{disk}] headline summary", payload))
        # abstract: ~2 orders of magnitude streaming advantage
        assert payload["dim0_streaming_advantage_vs_curves"] > 10
        # abstract: beams along other dimensions much faster than naive
        assert payload["beam_speedup_vs_naive_nonprimary"] > 1.3
        assert payload["max_range_speedup_multimap"] > 1.0
