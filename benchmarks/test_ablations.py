"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they probe the sensitivity of the
reproduction to its modelling knobs:

* drive queue depth (SPTF window) — how much of MultiMap's range-query
  advantage comes from the drive reordering semi-sequential batches;
* command overhead — the calibration knob behind the curve-mapping beam
  penalties (EXPERIMENTS.md discusses it);
* planner strategy — space-optimal ("compact") vs the paper's
  bigger-cubes-are-better ("volume") guidance;
* declustering across disks — §4.4's claim that MultiMap composes with
  striping: per-disk latency unchanged, throughput scaling with disks.
"""

import numpy as np
from conftest import run_once

from repro.bench.reporting import render_table
from repro.core import MultiMapMapper
from repro.disk import atlas_10k3, synthetic_disk
from repro.lvm import LogicalVolume, round_robin
from repro.mappings import ZOrderMapper
from repro.query import StorageManager, random_range_cube

DIMS = (216, 64, 64)
N_CELLS = int(np.prod(DIMS))


def test_sptf_window_sweep(benchmark, report):
    """MultiMap range time vs drive queue depth."""

    def run():
        out = {}
        for window in (1, 8, 32, 128, 512):
            vol = LogicalVolume([atlas_10k3()], depth=128)
            mm = MultiMapMapper(DIMS, vol)
            sm = StorageManager(vol, window=window)
            rng = np.random.default_rng(31)
            q = random_range_cube(DIMS, 1.0, rng)
            out[window] = sm.range(mm, q.lo, q.hi, rng=rng).total_ms
        return out

    data = run_once(benchmark, run)
    report("\nSPTF window sweep (MultiMap 1% range, total ms)")
    report(render_table(
        ["window", "total_ms"],
        [[w, round(t, 1)] for w, t in data.items()],
    ))
    # deeper queues must help monotonically-ish and saturate
    assert data[128] < data[1]
    assert abs(data[512] - data[128]) < 0.25 * data[128]


def test_command_overhead_sweep(benchmark, report):
    """Beam costs vs per-command overhead: Z-order collapses without it,
    MultiMap degrades only linearly (adjacency offsets absorb it)."""

    def run():
        rows = []
        for overhead in (0.0, 0.15, 0.5):
            model = synthetic_disk(
                "sweep",
                settle_ms=1.2,
                settle_cylinders=32,
                surfaces=4,
                zone_specs=[(4000, 686), (4000, 654)],
                command_overhead_ms=overhead,
            )
            res = {}
            for which in ("zorder", "multimap"):
                vol = LogicalVolume([model], depth=128)
                if which == "multimap":
                    mapper = MultiMapMapper(DIMS, vol)
                else:
                    mapper = ZOrderMapper(
                        DIMS, vol.allocate_blocks(0, N_CELLS)
                    )
                sm = StorageManager(vol)
                rng = np.random.default_rng(17)
                res[which] = sm.beam(
                    mapper, 1, (5, 0, 9), rng=rng
                ).ms_per_cell
            rows.append([overhead, round(res["zorder"], 3),
                         round(res["multimap"], 3)])
        return rows

    rows = run_once(benchmark, run)
    report("\ncommand-overhead sweep (Dim1 beam, ms/cell)")
    report(render_table(["overhead_ms", "zorder", "multimap"], rows))
    # multimap's hop grows by ~the overhead; zorder grows much faster
    z_growth = rows[-1][1] - rows[0][1]
    mm_growth = rows[-1][2] - rows[0][2]
    assert mm_growth < 1.0
    assert z_growth > mm_growth


def test_planner_strategy_tradeoff(benchmark, report):
    """Space vs locality: 'compact' must allocate fewer tracks; 'volume'
    must never split short later dimensions."""

    def run():
        out = {}
        for strategy in ("compact", "volume"):
            vol = LogicalVolume([atlas_10k3()], depth=128)
            mm = MultiMapMapper(
                (591, 75, 25, 25), vol, strategy=strategy
            )
            out[strategy] = {
                "K": mm.K,
                "tracks": mm.plan.total_tracks,
            }
        return out

    data = run_once(benchmark, run)
    report("\nplanner strategies on the OLAP chunk")
    report(render_table(
        ["strategy", "K", "tracks"],
        [[s, str(v["K"]), v["tracks"]] for s, v in data.items()],
    ))
    assert data["compact"]["tracks"] <= data["volume"]["tracks"]
    # volume maximises the cube (the paper's "bigger is better" guidance)
    vol_k = int(np.prod(data["volume"]["K"]))
    compact_k = int(np.prod(data["compact"]["K"]))
    assert vol_k >= compact_k
    # compact keeps short later dimensions whole (beam locality)
    assert data["compact"]["K"][2] == 25 and data["compact"]["K"][3] == 25


def test_declustering_scales_throughput(benchmark, report):
    """§4.4: chunks declustered across disks scale throughput while
    per-disk beam latency stays the same."""

    def run():
        chunk = (216, 32, 32)
        n_cells = int(np.prod(chunk))
        out = {}
        for n_disks in (1, 2, 4):
            vol = LogicalVolume(
                [atlas_10k3() for _ in range(n_disks)], depth=128
            )
            mappers = [
                MultiMapMapper(chunk, vol, disk)
                for disk in range(n_disks)
            ]
            sm = StorageManager(vol)
            rng = np.random.default_rng(3)
            # one beam per chunk; disks service their chunk in parallel,
            # so elapsed = max over disks, throughput = cells / elapsed
            times = [
                sm.beam(m, 2, (5, 9, 0), rng=rng).total_ms
                for m in mappers
            ]
            out[n_disks] = {
                "per_disk_ms": float(np.mean(times)),
                "cells_per_s": 1000.0
                * chunk[2]
                * n_disks
                / max(times),
            }
        return out

    data = run_once(benchmark, run)
    report("\ndeclustering: per-disk latency and aggregate throughput")
    report(render_table(
        ["disks", "per_disk_ms", "cells_per_s"],
        [[n, round(v["per_disk_ms"], 2), round(v["cells_per_s"])]
         for n, v in data.items()],
    ))
    # latency flat, throughput ~linear
    assert data[4]["per_disk_ms"] < data[1]["per_disk_ms"] * 1.3
    assert data[4]["cells_per_s"] > data[1]["cells_per_s"] * 2.5


def test_modern_cache_erodes_layout_differences(benchmark, report):
    """Why track-aware placement faded: with a firmware track cache of
    modern proportions, the non-primary-dimension penalties that MultiMap
    removes are largely absorbed by the cache instead, and the gap between
    the layouts collapses."""
    from repro.disk import DiskDrive
    from repro.mappings import NaiveMapper
    from repro.query import random_beam

    def run():
        rows = []
        for cache in (0, 16, 64):
            row = {"cache": cache}
            for which in ("naive", "zorder", "multimap"):
                vol = LogicalVolume([atlas_10k3()], depth=128)
                vol.drives[0] = DiskDrive(atlas_10k3(), cache_tracks=cache)
                if which == "multimap":
                    mapper = MultiMapMapper(DIMS, vol)
                elif which == "naive":
                    mapper = NaiveMapper(
                        DIMS, vol.allocate_blocks(0, N_CELLS)
                    )
                else:
                    mapper = ZOrderMapper(
                        DIMS, vol.allocate_blocks(0, N_CELLS)
                    )
                sm = StorageManager(vol)
                rng = np.random.default_rng(7)
                vals = [
                    sm.beam(mapper, 1, q.fixed, rng=rng).ms_per_cell
                    for q in (random_beam(DIMS, 1, rng) for _ in range(4))
                ]
                row[which] = round(float(np.mean(vals)), 3)
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    report("\nfirmware cache sweep (Dim1 beams, ms/cell; 4 beams/query mix)")
    report(render_table(
        ["cache_tracks", "naive", "zorder", "multimap"],
        [[r["cache"], r["naive"], r["zorder"], r["multimap"]]
         for r in rows],
    ))
    cold, mid, warm = rows
    # without cache MultiMap wins clearly...
    assert cold["multimap"] < cold["naive"] * 0.8
    assert cold["multimap"] < cold["zorder"] * 0.5
    # ...a modest cache absorbs the curve layout's penalty entirely
    # (its beam cells cluster in few tracks), making it competitive with
    # everything — the economics that made track-aware placement fade
    assert mid["zorder"] < cold["zorder"] / 3
    assert mid["zorder"] <= mid["multimap"]
    # MultiMap also gains at larger caches (cube columns concentrate
    # queries onto shared tracks), so nothing beats it outright...
    assert warm["multimap"] <= cold["multimap"]
    # ...but the cold-cache spread (3.1x between best and worst) shrinks
    # to under 3x warm
    spread_cold = max(cold[k] for k in ("naive", "zorder", "multimap"))
    spread_cold /= min(cold[k] for k in ("naive", "zorder", "multimap"))
    spread_warm = max(warm[k] for k in ("naive", "zorder", "multimap"))
    spread_warm /= min(warm[k] for k in ("naive", "zorder", "multimap"))
    assert spread_warm < spread_cold


def test_round_robin_balance():
    counts = np.bincount(round_robin(64, 4))
    assert counts.tolist() == [16, 16, 16, 16]


def test_gray_curve_baseline(benchmark, report):
    """The related-work Gray-coded curve (Faloutsos 1986): its clustering
    sits with the other curves — between Z-order and Hilbert on most
    workloads — and it shares their streaming penalty on Dim0."""
    from repro.datasets import build_chunk_mappers
    from repro.query import random_beam

    def run():
        mappers = build_chunk_mappers(
            DIMS, atlas_10k3, which=("naive", "zorder", "hilbert", "gray")
        )
        out = {}
        for name, (mapper, volume) in mappers.items():
            sm = StorageManager(volume)
            rng = np.random.default_rng(3)
            out[name] = {
                f"dim{axis}": round(
                    float(
                        np.mean(
                            [
                                sm.beam(
                                    mapper, axis, q.fixed, rng=rng
                                ).ms_per_cell
                                for q in (
                                    random_beam(DIMS, axis, rng)
                                    for _ in range(3)
                                )
                            ]
                        )
                    ),
                    3,
                )
                for axis in range(3)
            }
        return out

    data = run_once(benchmark, run)
    report("\nGray-coded curve vs the other layouts (beams, ms/cell)")
    report(render_table(
        ["mapping", "dim0", "dim1", "dim2"],
        [[n, v["dim0"], v["dim1"], v["dim2"]] for n, v in data.items()],
    ))
    # gray pays the same streaming penalty as the other curves on Dim0
    assert data["gray"]["dim0"] > 10 * data["naive"]["dim0"]
    # and lands in the curve family's band on the other dimensions
    band_lo = 0.5 * min(data["zorder"]["dim2"], data["hilbert"]["dim2"])
    band_hi = 2.0 * max(data["zorder"]["dim2"], data["hilbert"]["dim2"])
    assert band_lo < data["gray"]["dim2"] < band_hi
