"""Figure 1 regenerators: seek profile and semi-sequential access.

Paper claims validated here:
* Fig 1(a): seek time is flat (settle-dominated) out to C cylinders;
* §3.2: semi-sequential access beats nearby within-D access ~4x and is
  second only to pure sequential access.
"""

from conftest import run_once

from repro.bench import fig1a_seek_profile, fig1b_semi_sequential
from repro.bench.reporting import render_kv


def test_fig1a_seek_profile(benchmark, report):
    data = run_once(benchmark, fig1a_seek_profile)
    for disk, payload in data.items():
        report(f"\n[{disk}] seek profile (distance -> ms)")
        pairs = list(zip(payload["distance"], payload["seek_ms"]))
        report("  " + "  ".join(f"{d}:{t:.2f}" for d, t in pairs))
        c = payload["settle_cylinders"]
        flat = [t for d, t in pairs if d <= c]
        assert max(flat) - min(flat) < 0.01 * max(flat)


def test_fig1b_semi_sequential_access(benchmark, report):
    data = run_once(benchmark, fig1b_semi_sequential)
    for disk, payload in data.items():
        report("\n" + render_kv(f"[{disk}] access patterns (ms/block)", payload))
        assert (
            payload["sequential_ms"]
            < payload["semi_sequential_ms"]
            < payload["nearby_within_D_ms"]
            < payload["random_ms"]
        )
        # the paper's "factor of four"; our drives land around 3
        assert payload["nearby_over_semi"] > 2.5
