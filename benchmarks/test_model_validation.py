"""§5 analytic-model validation: predictions vs simulator."""

import json

from conftest import run_once

from repro.bench.figures import model_validation


def test_model_vs_simulator(benchmark, scale, report):
    data = run_once(benchmark, model_validation, scale)
    report("\n" + json.dumps(data, indent=2))
    for disk, rows in data.items():
        for name, row in rows.items():
            # the model captures beams within a 2x band everywhere and
            # much tighter for the streaming / semi-sequential cases
            assert 0.5 < row["ratio"] < 2.0, (disk, name, row)
