"""Benchmark configuration.

``REPRO_BENCH_SCALE`` selects the experiment sizing: ``small`` (default,
minutes) or ``paper`` (full §5 chunk sizes and sweeps).  Every benchmark
prints the paper-style table it regenerates, so piping the run to a file
reproduces the evaluation section:

    REPRO_BENCH_SCALE=paper pytest benchmarks/ --benchmark-only
"""

import os

import pytest

from repro.bench import figures


def pytest_configure(config):
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    config._repro_scale = figures.get_scale(scale)


@pytest.fixture(scope="session")
def scale(request):
    return request.config._repro_scale


@pytest.fixture(scope="session")
def results_store():
    """Shared dict so later benchmarks can reuse earlier figure data."""
    return {}


@pytest.fixture()
def report(capsys):
    """Print through pytest's capture so tables appear in piped output."""

    def _print(text):
        with capsys.disabled():
            print(text)

    return _print


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
