"""Regression attribution: localize *why* two runs diverged.

``repro-bench diff`` (PR 9) says *that* a run regressed;
:func:`attribute_runs` says *where*.  Given the same two exported
reports (``trace`` or ``dashboard`` JSON), it localizes the divergence
to specific phases, disks, queries, and monitor signals, scoring each
suspect by how far it moved relative to the shared tolerance band and
ranking worst-first.  Two same-seed runs are bit-identical, so a clean
run attributes to zero suspects — the CI smoke's exact-zero check.

Suspect kinds:

``phase``    a span category's total time grew (prepare / cache /
             service / flush / failover / reorg)
``disk``     one drive's mean utilisation rose — a hotspot or a
             failed-over neighbour absorbing reads
``query``    a named query got slower, with its plan-shape drift
             (cells) when the reports carry it
``alerts``   more SLO alerts fired
``health``   the health state machine ended somewhere worse
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.errors import ExplainError

__all__ = ["attribute_runs", "render_attribution"]

#: absolute floors under which a delta is noise, per metric family —
#: mirrors the diff layer's bands so same-seed runs attribute to zero
_FLOORS = {"ms": 1.0, "qps": 1.0, "count": 0.5, "util": 0.02}

#: health states ordered best to worst, for decline detection
_HEALTH_ORDER = ("healthy", "recovering", "degraded", "saturated")


def _score(base: float, cur: float, tolerance: float,
           floor: str) -> float:
    """How many tolerance-bands the bad-direction delta spans past the
    noise floor; <= 0 means within band."""
    delta = cur - base
    band = max(abs(base) * tolerance, _FLOORS[floor])
    return delta / band if band > 0 else 0.0


def _suspect(kind: str, name: str, base: float, cur: float,
             score: float, why: str) -> dict:
    return {
        "kind": kind,
        "name": name,
        "base": round(base, 3),
        "cur": round(cur, 3),
        "delta": round(cur - base, 3),
        "score": round(score, 3),
        "why": why,
    }


def _monitor_block(data: dict) -> dict | None:
    block = data.get("monitor")
    if block is None:
        block = (data.get("meta") or {}).get("monitor")
    return block if isinstance(block, dict) else None


def _mean_util(report: dict) -> dict[str, float]:
    busy = (report.get("utilization") or {}).get("busy") or {}
    return {
        disk: (sum(row) / len(row) if row else 0.0)
        for disk, row in busy.items()
    }


def attribute_runs(base: dict, cur: dict, *,
                   tolerance: float = 0.1) -> dict:
    """Rank the suspects behind a base→current regression.

    Both inputs are exported report dicts (the ``diff`` subcommand's
    inputs).  Returns a JSON-friendly payload with ``suspects`` sorted
    by descending score (worst offender first) and a one-line
    ``summary``; both empty/clean for identical runs.
    """
    if not isinstance(base, dict) or not isinstance(cur, dict):
        raise ExplainError(
            "attribution inputs must be exported report dicts"
        )
    tolerance = float(tolerance)
    if tolerance < 0:
        raise ExplainError(f"tolerance must be >= 0, got {tolerance}")
    suspects: list[dict] = []

    # 1. phase totals — which span category grew
    bp = base.get("phase_ms") or {}
    cp = cur.get("phase_ms") or {}
    for cat in sorted(set(bp) | set(cp)):
        b, c = float(bp.get(cat, 0.0)), float(cp.get(cat, 0.0))
        score = _score(b, c, tolerance, "ms")
        if score > 1.0:
            suspects.append(_suspect(
                "phase", cat, b, c, score,
                f"{cat} time grew {c - b:+.1f} ms",
            ))

    # 2. per-disk mean utilisation — which drive got hotter
    bu, cu = _mean_util(base), _mean_util(cur)
    for disk in sorted(set(bu) | set(cu), key=int):
        b, c = bu.get(disk, 0.0), cu.get(disk, 0.0)
        score = _score(b, c, tolerance, "util")
        if score > 1.0:
            suspects.append(_suspect(
                "disk", f"d{disk}", b, c, score,
                f"disk {disk} mean utilisation rose "
                f"{b:.0%} -> {c:.0%}",
            ))

    # 3. named slowest queries — which query slowed, and did its plan
    #    shape drift
    bq = {q["name"]: q for q in base.get("slowest") or ()}
    cq = {q["name"]: q for q in cur.get("slowest") or ()}
    for name in sorted(set(bq) & set(cq)):
        b, c = float(bq[name]["dur_ms"]), float(cq[name]["dur_ms"])
        score = _score(b, c, tolerance, "ms")
        if score > 1.0:
            why = f"query {name} slowed {c - b:+.2f} ms"
            b_cells = bq[name].get("cells")
            c_cells = cq[name].get("cells")
            if b_cells is not None and b_cells != c_cells:
                why += f" (plan shape drifted: {b_cells} -> {c_cells} cells)"
            suspects.append(_suspect("query", name, b, c, score, why))

    # 4. monitor signals — alert volume and health decline
    bmon, cmon = _monitor_block(base), _monitor_block(cur)
    if bmon is not None and cmon is not None:
        b_alerts = len(bmon.get("alerts") or ())
        c_alerts = len(cmon.get("alerts") or ())
        score = _score(b_alerts, c_alerts, tolerance, "count")
        if score > 1.0:
            new_rules = sorted(
                {a.get("rule") for a in cmon.get("alerts") or ()}
                - {a.get("rule") for a in bmon.get("alerts") or ()}
            )
            why = f"alert volume rose {b_alerts} -> {c_alerts}"
            if new_rules:
                why += f" (new rules: {', '.join(map(str, new_rules))})"
            suspects.append(_suspect(
                "alerts", "alerts", b_alerts, c_alerts, score, why,
            ))
        bh = (bmon.get("health") or {}).get("state")
        ch = (cmon.get("health") or {}).get("state")
        if (bh in _HEALTH_ORDER and ch in _HEALTH_ORDER
                and _HEALTH_ORDER.index(ch) > _HEALTH_ORDER.index(bh)):
            suspects.append(_suspect(
                "health", "health",
                _HEALTH_ORDER.index(bh), _HEALTH_ORDER.index(ch),
                float(_HEALTH_ORDER.index(ch) - _HEALTH_ORDER.index(bh)),
                f"health declined {bh} -> {ch}",
            ))

    suspects.sort(key=lambda s: (-s["score"], s["kind"], s["name"]))
    if suspects:
        top = suspects[0]
        summary = (
            f"{len(suspects)} suspect(s); top: {top['why']}"
        )
    else:
        summary = "no suspects — runs agree within tolerance"
    return {
        "tolerance": tolerance,
        "suspects": suspects,
        "summary": summary,
    }


def render_attribution(data: dict) -> str:
    """Human-readable suspect ranking (the CLI's non-JSON output)."""
    lines = [f"attribution: {data['summary']}"]
    if data["suspects"]:
        rows = [
            [s["kind"], s["name"], f"{s['base']:g}", f"{s['cur']:g}",
             f"{s['delta']:+g}", f"{s['score']:.1f}x", s["why"]]
            for s in data["suspects"]
        ]
        lines.append(render_table(
            ["kind", "name", "base", "current", "delta", "band", "why"],
            rows,
        ))
    return "\n".join(lines)
