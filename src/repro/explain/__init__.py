"""repro.explain — plan inspection and root-cause diagnosis.

The observe→explain layer: **EXPLAIN** inspects a query's prepared plan
with zero side effects (run structure, the paper's access-pattern
taxonomy, predicted mechanical cost from a ghost drive, expected cache
hits, shard fan-out, replica routing, and the §4 analytic model's
prediction); **ANALYZE** executes the same query under a private trace
and reconciles prediction against measurement into a model-error report
and a dominant-cost classification; and :func:`attribute_runs` ranks
the suspects behind a ``repro-bench diff`` regression.  Everything here
is read-only over the other layers and fully gated — attaching nothing
changes no default output.
"""

from repro.explain.analyze import analyze_query, measured_from_root, reconcile
from repro.explain.attribute import attribute_runs, render_attribution
from repro.explain.classify import (
    COST_CLASSES,
    CostClass,
    classify_cost,
    classify_runs,
    classify_strides,
    run_length_histogram,
)
from repro.explain.explain_cmd import model_block, render_explain, run_explain
from repro.explain.plan import (
    explain_query,
    predict_mechanics,
    prepare_readonly,
)

__all__ = [
    "COST_CLASSES",
    "CostClass",
    "analyze_query",
    "attribute_runs",
    "classify_cost",
    "classify_runs",
    "classify_strides",
    "explain_query",
    "measured_from_root",
    "model_block",
    "predict_mechanics",
    "prepare_readonly",
    "reconcile",
    "render_attribution",
    "render_explain",
    "run_explain",
    "run_length_histogram",
]
