"""The ``repro-bench explain`` subcommand's engine and renderer.

:func:`run_explain` builds one seeded Dataset per requested layout
(optionally sharded / replicated / cached), EXPLAINs one query on each
— and, with ``--analyze``, executes it once to reconcile prediction
against measurement.  ``--model`` adds the §4 analytic model's
predicted beam speedups per axis and range speedups at example
selectivities, surfacing ``predicted_beam_speedups`` /
``predicted_range_speedup`` which previously had no CLI caller.
"""

from __future__ import annotations

from repro.analytic.model import AnalyticModel, DriveParameters
from repro.errors import ExplainError
from repro.explain.plan import _multimap_k
from repro.query.workload import BeamQuery, RangeQuery, range_for_selectivity

__all__ = ["model_block", "render_explain", "run_explain"]


def _build_query(shape, *, axis: int | None, fixed, box):
    """A beam on ``axis`` (other coordinates centred unless ``fixed``
    pins them), or the range box ``lo,..:hi,..`` when given."""
    if box is not None:
        lo, hi = box
        if len(lo) != len(shape) or len(hi) != len(shape):
            raise ExplainError(
                f"box rank {len(lo)} does not match shape rank "
                f"{len(shape)}"
            )
        return RangeQuery(tuple(lo), tuple(hi))
    axis = 0 if axis is None else int(axis)
    if not 0 <= axis < len(shape):
        raise ExplainError(f"axis {axis} outside shape rank {len(shape)}")
    if fixed is None:
        full = [0 if i == axis else s // 2 for i, s in enumerate(shape)]
    else:
        fixed = [int(v) for v in fixed]
        if len(fixed) == len(shape) - 1:
            # the beam axis was omitted; its entry is ignored anyway
            fixed.insert(axis, 0)
        if len(fixed) != len(shape):
            raise ExplainError(
                f"--fixed needs {len(shape)} (or {len(shape) - 1}) "
                f"coordinates, got {len(fixed)}"
            )
        full = fixed
    return BeamQuery(axis, tuple(full))


def model_block(ds, shape) -> dict:
    """The analytic model's full prediction table for ``shape`` on the
    dataset's drive: beam speedup per axis plus range speedups at 1%
    and 10% selectivity."""
    params = DriveParameters.from_model(
        ds.volume.models[0], 0, depth=ds.volume.depth(0)
    )
    model = AnalyticModel(params)
    k = _multimap_k(ds)
    beams = model.predicted_beam_speedups(shape, k)
    ranges = {}
    for pct in (1.0, 10.0):
        box = range_for_selectivity(shape, pct)
        ranges[f"{pct:g}%"] = round(
            model.predicted_range_speedup(shape, box, k), 3
        )
    return {
        "drive": ds.drive_name,
        "depth": params.depth,
        "beam_speedups": {str(axis): round(s, 3)
                          for axis, s in beams.items()},
        "range_speedups": ranges,
    }


def run_explain(shape, *, layouts=("multimap",), drive: str = "minidrive",
                axis: int | None = None, fixed=None, box=None,
                shards: int | None = None, k: int | None = None,
                cache_blocks: int = 0, cache_policy: str = "lru",
                prefetch: str = "none", seed=42, analyze: bool = False,
                model: bool = False) -> dict:
    """EXPLAIN (and optionally ANALYZE) one query across layouts."""
    from repro.api.dataset import Dataset

    shape = tuple(int(s) for s in shape)
    query = _build_query(shape, axis=axis, fixed=fixed, box=box)
    data: dict = {
        "shape": list(shape),
        "drive": drive,
        "seed": seed,
        "analyze": bool(analyze),
        "layouts": {},
    }
    model_ds = None
    for layout in layouts:
        ds = Dataset.create(shape, layout=layout, drive=drive, seed=seed)
        if shards and int(shards) > 1:
            ds.with_shards(int(shards))
        if k and int(k) > 1:
            ds.with_replication(int(k))
        if cache_blocks:
            ds.with_cache(int(cache_blocks), policy=cache_policy,
                          prefetch=prefetch)
        data["layouts"][layout] = ds.explain(query, analyze=analyze)
        if model_ds is None or layout == "multimap":
            model_ds = ds
    if model:
        data["model"] = model_block(model_ds, shape)
    return data


def _fmt_split(row: dict) -> str:
    return (f"seek {row['seek_ms']:g}, rot {row['rotation_ms']:g}, "
            f"xfer {row['transfer_ms']:g}, switch {row['switch_ms']:g}")


def _render_one(layout: str, entry: dict) -> list[str]:
    """The plan tree + compact table for one layout's EXPLAIN."""
    from repro.bench.reporting import render_table

    plan = entry["plan"]
    pred = entry["predicted"]
    steps = plan["steps"]
    q = entry["query"]
    if q["kind"] == "beam":
        qdesc = f"beam(axis={q['axis']}, fixed={tuple(q['fixed'])})"
    else:
        qdesc = f"range({tuple(q['lo'])} -> {tuple(q['hi'])})"
    lines = [
        f"EXPLAIN {qdesc} on {layout} @ {entry['drive']}",
        f"└─ plan: {plan['n_cells']} cells -> {plan['runs']} runs / "
        f"{plan['blocks']} blocks "
        f"(raw {plan['raw_runs']}, policy {plan['policy']})",
        f"   ├─ pattern: {plan['pattern']} "
        f"({steps['sequential']} seq / {steps['semi_sequential']} semi / "
        f"{steps['random']} random steps)",
    ]
    hist = plan["run_length_histogram"]
    if hist:
        shown = ", ".join(f"{k}x{v}" for k, v in list(hist.items())[:6])
        if len(hist) > 6:
            shown += ", ..."
        lines.append(f"   ├─ run lengths: {shown}")
    for disk, row in pred["per_disk"].items():
        lines.append(
            f"   ├─ disk {disk}: predicted {row['busy_ms']:g} ms "
            f"({_fmt_split(row)})"
        )
    if "cache" in pred:
        cache = pred["cache"]
        lines.append(
            f"   ├─ cache: {cache['expected_hits']} expected hits "
            f"({cache['expected_hit_ratio']:.0%}), "
            f"{cache['expected_ms']:g} ms"
        )
    if "fanout" in entry:
        fan = entry["fanout"]
        lines.append(
            f"   ├─ fan-out: {fan['subplans']} sub-plans over disks "
            f"{fan['disks']} ({fan['shards']} shards)"
        )
    if "routing" in entry:
        route = entry["routing"]
        copies = ", ".join(
            f"c{s['chunk']}->copy{s['copy']}@d{s['disk']}"
            for s in route["sources"][:6]
        )
        if len(route["sources"]) > 6:
            copies += ", ..."
        lines.append(
            f"   ├─ routing ({route['read_policy']}, k={route['k']}): "
            f"{copies}"
        )
    analytic = entry["analytic"]
    lines.append(
        f"   ├─ analytic: naive {analytic['naive_ms']:g} ms vs multimap "
        f"{analytic['multimap_ms']:g} ms "
        f"(predicted speedup {analytic['predicted_speedup']:g}x)"
    )
    lines.append(
        f"   └─ predicted makespan {pred['makespan_ms']:g} ms — "
        f"{pred['dominant_cost']}"
    )
    if "measured" in entry:
        meas = entry["measured"]
        rec = entry["reconciliation"]
        lines.append(
            f"ANALYZE: measured {meas['total_ms']:g} ms — "
            f"{meas['dominant_cost']} "
            f"({'matches' if rec['cost_match'] else 'differs from'} "
            f"prediction)"
        )
        rows = [
            [phase, f"{row['predicted_ms']:g}", f"{row['measured_ms']:g}",
             f"{row['error_ms']:+g}", f"{row['rel_error']:.1%}"]
            for phase, row in rec["per_phase"].items()
        ]
        lines.append(render_table(
            ["phase", "predicted", "measured", "error", "rel"], rows))
        lines.append(
            f"model error: {rec['summed_abs_error_ms']:g} ms summed "
            f"({rec['summed_rel_error']:.1%} relative)"
        )
    return lines


def render_explain(data: dict) -> str:
    """Console rendering: one plan tree per layout, plus the analytic
    model table when requested."""
    from repro.bench.reporting import render_table

    parts: list[str] = []
    for layout, entry in data["layouts"].items():
        parts.extend(_render_one(layout, entry))
    model = data.get("model")
    if model:
        rows = [[f"beam axis {axis}", f"{s:g}x"]
                for axis, s in model["beam_speedups"].items()]
        rows += [[f"range {sel}", f"{s:g}x"]
                 for sel, s in model["range_speedups"].items()]
        parts.append(
            f"analytic model ({model['drive']}, D={model['depth']}): "
            f"predicted multimap speedup vs naive"
        )
        parts.append(render_table(["query", "speedup"], rows))
    return "\n".join(parts)
