"""ANALYZE: execute the explained query and reconcile the prediction.

:func:`analyze_query` runs the query once with a private trace-only
:class:`~repro.obs.telemetry.Telemetry` attached (the dataset's own
telemetry, if any, is saved and restored), distils the recorded span
tree into measured per-phase and per-disk splits, classifies the
measured dominant cost, and reconciles every phase and disk against
EXPLAIN's prediction into a model-error report.  The execution is real
— drives move and the cache warms, exactly as :meth:`QueryBatch.run`
would — but the diagnosis stays in plain dictionaries, so nothing
telemetry-shaped leaks into the payload.
"""

from __future__ import annotations

from repro.errors import ExplainError
from repro.explain.classify import classify_cost

__all__ = ["analyze_query", "measured_from_root", "reconcile"]

_MECH_KEYS = ("seek_ms", "rotation_ms", "transfer_ms", "switch_ms")


def measured_from_root(root) -> dict:
    """Distil one recorded query span tree into measured splits.

    Sums the service spans' mechanical attribution per disk (cache
    service joins that disk's busy time), totals each phase category,
    and derives the cache hit ratio when any cache span was recorded.
    """
    phase_ms: dict[str, float] = {}
    per_disk: dict[str, dict] = {}
    mech = dict.fromkeys(_MECH_KEYS, 0.0)
    cache_ms = 0.0
    hits = blocks = 0
    for span in root.walk():
        if span is root:
            continue
        phase_ms[span.cat] = phase_ms.get(span.cat, 0.0) + span.dur_ms
        disk = span.attrs.get("disk")
        if disk is None:
            continue
        row = per_disk.setdefault(
            str(int(disk)),
            {"busy_ms": 0.0, "blocks": 0, "runs": 0,
             **dict.fromkeys(_MECH_KEYS, 0.0)},
        )
        row["busy_ms"] += span.dur_ms
        if span.cat in ("service", "flush"):
            for key in _MECH_KEYS:
                value = float(span.attrs.get(key, 0.0))
                row[key] += value
                mech[key] += value
            row["blocks"] += int(span.attrs.get("blocks", 0))
            row["runs"] += int(span.attrs.get("runs", 0))
            blocks += int(span.attrs.get("blocks", 0))
        elif span.cat == "cache":
            cache_ms += span.dur_ms
            hits += int(span.attrs.get("hits", 0))
    cache_seen = cache_ms > 0 or hits > 0
    total_accesses = hits + blocks
    hit_ratio = (hits / total_accesses
                 if cache_seen and total_accesses else None)
    out = {
        "total_ms": round(root.dur_ms, 3),
        "phase_ms": {cat: round(ms, 3)
                     for cat, ms in sorted(phase_ms.items())},
        "per_disk": {
            disk: {k: (round(v, 3) if isinstance(v, float) else v)
                   for k, v in row.items()}
            for disk, row in sorted(per_disk.items())
        },
        **{k: round(v, 3) for k, v in mech.items()},
    }
    if cache_seen:
        out["cache"] = {
            "hits": hits,
            "cache_ms": round(cache_ms, 3),
            "hit_ratio": round(hit_ratio, 4) if hit_ratio is not None
            else 0.0,
        }
    out["dominant_cost"] = classify_cost(
        seek_ms=mech["seek_ms"],
        rotation_ms=mech["rotation_ms"],
        transfer_ms=mech["transfer_ms"],
        switch_ms=mech["switch_ms"],
        cache_ms=cache_ms,
        hit_ratio=hit_ratio,
    )
    return out


def _entry(predicted: float, measured: float) -> dict:
    error = measured - predicted
    base = max(abs(measured), abs(predicted))
    return {
        "predicted_ms": round(predicted, 3),
        "measured_ms": round(measured, 3),
        "error_ms": round(error, 3),
        "rel_error": round(abs(error) / base, 4) if base > 0 else 0.0,
    }


def reconcile(predicted: dict, measured: dict) -> dict:
    """Predicted-vs-measured model-error report, per phase and per disk.

    The service phase compares summed per-disk mechanical busy time (the
    scatter accounting EXPLAIN mirrors); the total compares predicted
    makespan plus expected cache service against the measured wall
    clock.  ``summed_abs_error_ms`` / ``summed_rel_error`` aggregate the
    per-phase rows — the bounded number the smoke test gates on.
    """
    pred_service = sum(
        row["busy_ms"] for row in predicted["per_disk"].values()
    )
    meas_service = measured["phase_ms"].get("service", 0.0) + \
        measured["phase_ms"].get("flush", 0.0)
    pred_cache = predicted.get("cache", {}).get("expected_ms", 0.0)
    meas_cache = measured["phase_ms"].get("cache", 0.0)
    per_phase = {
        "service": _entry(pred_service, meas_service),
        "total": _entry(
            predicted["makespan_ms"] + pred_cache, measured["total_ms"]
        ),
    }
    if pred_cache > 0 or meas_cache > 0:
        per_phase["cache"] = _entry(pred_cache, meas_cache)
    per_disk = {}
    disks = set(predicted["per_disk"]) | set(measured["per_disk"])
    for disk in sorted(disks, key=int):
        pred = predicted["per_disk"].get(disk, {}).get("busy_ms", 0.0)
        meas = measured["per_disk"].get(disk, {}).get("busy_ms", 0.0)
        per_disk[disk] = _entry(pred, meas)
    summed_abs = sum(abs(row["error_ms"]) for row in per_phase.values())
    summed_base = sum(
        max(abs(row["measured_ms"]), abs(row["predicted_ms"]))
        for row in per_phase.values()
    )
    return {
        "per_phase": per_phase,
        "per_disk": per_disk,
        "summed_abs_error_ms": round(summed_abs, 3),
        "summed_rel_error": round(summed_abs / summed_base, 4)
        if summed_base > 0 else 0.0,
        "cost_match": predicted["dominant_cost"]
        == measured["dominant_cost"],
    }


def analyze_query(ds, query, predicted: dict) -> tuple[dict, dict]:
    """Run ``query`` once under a private trace and reconcile.

    Returns ``(measured, reconciliation)``.  The dataset's attached
    telemetry (if any) is restored afterwards, so ANALYZE never pollutes
    the user's own trace stream.
    """
    from repro.obs import Telemetry

    storage = ds.storage
    saved_obs = storage.obs
    tele = Telemetry(trace=True, metrics=False)
    storage.obs = tele
    try:
        storage.run_query(ds.mapper, query, rng=ds.rng())
    finally:
        storage.obs = saved_obs
    roots = tele.tracer.roots
    if not roots:
        raise ExplainError("ANALYZE recorded no query span")
    measured = measured_from_root(roots[0])
    return measured, reconcile(predicted, measured)
