"""Access-pattern and dominant-cost classification for EXPLAIN/ANALYZE.

Two classifiers live here.  :func:`classify_strides` labels every
run-to-run transition of a request plan with the paper's access
taxonomy (§3): *sequential* (next LBN), *semi-sequential* (a settle-only
adjacency hop — the stride lands exactly where ``get_adjacent`` would
put an adjacent block ``j`` tracks away), or *random* (anything else).
:func:`classify_cost` folds a query's mechanical time split
(seek/rotation/transfer/head-switch plus queueing and cache service)
into one of five documented dominant-cost classes, registered in
:data:`COST_CLASSES` so ``repro-bench --list-costs`` can print them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExplainError
from repro.registry import Registry

__all__ = [
    "COST_CLASSES",
    "CostClass",
    "RANDOM",
    "SEMI_SEQUENTIAL",
    "SEQUENTIAL",
    "classify_cost",
    "classify_runs",
    "classify_strides",
    "run_length_histogram",
]

SEQUENTIAL = "sequential"
SEMI_SEQUENTIAL = "semi_sequential"
RANDOM = "random"

#: stride-class codes returned by :func:`classify_strides`
_CODES = (SEQUENTIAL, SEMI_SEQUENTIAL, RANDOM)


@dataclass(frozen=True)
class CostClass:
    """One entry of the dominant-cost taxonomy (`--list-costs`)."""

    name: str
    description: str


COST_CLASSES = Registry("cost class")
for _cc in (
    CostClass(
        "seek_bound",
        "per-request head repositioning (seek/settle plus the rotational "
        "latency each reposition incurs) dominates — scattered access",
    ),
    CostClass(
        "rotation_bound",
        "rotational waits with a near-stationary head dominate — "
        "same-track strides paying missed revolutions, not seeks",
    ),
    CostClass(
        "transfer_bound",
        "media transfer and head switches dominate positioning — the "
        "streaming regime multimap targets for the primary dimension",
    ),
    CostClass(
        "queue_bound",
        "time waiting in per-drive queues exceeds mechanical service — "
        "concurrency, not layout, is the bottleneck",
    ),
    CostClass(
        "cache_miss_bound",
        "a buffer pool is attached but absorbs under half the accesses "
        "while the drives still do most of the work",
    ),
):
    COST_CLASSES.add(_cc.name, _cc)


def classify_strides(volume, disk: int, prev_lbns, next_lbns) -> np.ndarray:
    """Label each transition ``prev_lbns[i] -> next_lbns[i]`` with a
    stride-class code (0 sequential, 1 semi-sequential, 2 random).

    A transition is *semi-sequential* when the forward stride equals the
    adjacency model's start-to-start distance for some hop depth
    ``j in [1, D]`` within the same zone — i.e. the next block sits
    exactly where :meth:`AdjacencyModel.get_adjacent` would place the
    ``j``-th adjacent block of the previous one.
    """
    prev_lbns = np.asarray(prev_lbns, dtype=np.int64)
    next_lbns = np.asarray(next_lbns, dtype=np.int64)
    if prev_lbns.shape != next_lbns.shape:
        raise ExplainError("stride endpoints must have matching shapes")
    n = prev_lbns.size
    codes = np.full(n, 2, dtype=np.int8)
    if n == 0:
        return codes
    geom = volume.models[disk].geometry
    adj = volume.adjacency[disk]
    d = next_lbns - prev_lbns
    codes[d == 1] = 0
    zi_p, _, sector, spt, _ = geom.decompose(prev_lbns)
    zi_n = geom.decompose(next_lbns)[0]
    offsets = np.asarray(
        [adj.adjacency_offset_sectors(i) for i in range(len(geom.zones))],
        dtype=np.int64,
    )
    skews = np.asarray(
        [z.skew_sectors for z in geom.zones], dtype=np.int64
    )
    a = offsets[zi_p]
    w = skews[zi_p]
    semi = np.zeros(n, dtype=bool)
    same_zone = zi_p == zi_n
    for j in (d // spt, d // spt + 1):
        valid = same_zone & (j >= 1) & (j <= adj.D)
        target = (sector + a - j * w) % spt
        expected = j * spt + (target - sector)
        semi |= valid & (d == expected)
    codes[semi & (codes != 0)] = 1
    return codes


def classify_runs(volume, disk: int, plan) -> dict:
    """Classify one prepared :class:`RequestPlan` on ``disk``.

    Every intra-run block step is sequential by construction; every
    run-to-run gap is classified by :func:`classify_strides`.  Returns
    the step counts per class plus the majority ``pattern`` (ties break
    toward the cheaper class; a plan with no steps is ``"single"``).
    """
    starts = np.asarray(plan.starts, dtype=np.int64)
    lengths = np.asarray(plan.lengths, dtype=np.int64)
    intra = int((lengths - 1).sum()) if lengths.size else 0
    counts = {SEQUENTIAL: intra, SEMI_SEQUENTIAL: 0, RANDOM: 0}
    if starts.size >= 2:
        codes = classify_strides(
            volume, disk, starts[:-1] + lengths[:-1] - 1, starts[1:]
        )
        for code, name in enumerate(_CODES):
            counts[name] += int((codes == code).sum())
    total = sum(counts.values())
    if total == 0:
        pattern = "single"
    else:
        pattern = max(_CODES, key=lambda name: (counts[name], -_CODES.index(name)))
    return {
        "runs": int(plan.n_runs),
        "blocks": int(plan.n_blocks),
        "steps": counts,
        "pattern": pattern,
    }


def run_length_histogram(plan) -> dict:
    """Run lengths (in blocks) -> run count, keys as strings for JSON."""
    lengths = np.asarray(plan.lengths, dtype=np.int64)
    if lengths.size == 0:
        return {}
    values, counts = np.unique(lengths, return_counts=True)
    return {str(int(v)): int(c) for v, c in zip(values, counts)}


def classify_cost(
    *,
    seek_ms: float,
    rotation_ms: float,
    transfer_ms: float,
    switch_ms: float = 0.0,
    queue_ms: float = 0.0,
    cache_ms: float = 0.0,
    hit_ratio: float | None = None,
) -> str:
    """Name the dominant cost of a query's time split.

    Precedence: queueing beats mechanics beats cache.  Within the
    mechanical split, transfer+switch vs positioning decides streaming
    vs positioning-bound; a positioning-bound query is *seek-bound*
    whenever seeks contribute materially (each reposition drags its
    rotational latency along, so the latency is attendant on the seek),
    and *rotation-bound* only when the head barely moves and the waits
    are purely rotational.
    """
    seek_ms = max(float(seek_ms), 0.0)
    rotation_ms = max(float(rotation_ms), 0.0)
    transfer_ms = max(float(transfer_ms), 0.0)
    switch_ms = max(float(switch_ms), 0.0)
    mechanical = seek_ms + rotation_ms + transfer_ms + switch_ms
    if queue_ms > mechanical + cache_ms:
        return "queue_bound"
    if hit_ratio is not None and hit_ratio < 0.5 and mechanical > cache_ms:
        return "cache_miss_bound"
    positioning = seek_ms + rotation_ms
    if transfer_ms + switch_ms >= positioning:
        return "transfer_bound"
    if seek_ms >= 0.05 * positioning:
        return "seek_bound"
    return "rotation_bound"
