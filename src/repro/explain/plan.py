"""EXPLAIN: static, no-execution plan inspection for a Dataset query.

:func:`explain_query` prepares a query exactly the way execution would
— §5.2 run coalescing, SPTF clamping, shard splitting, replica routing
— but against *ghost* state, so nothing observable changes: the live
drives never move, the buffer pool is consulted through the
non-mutating :meth:`BufferPool.peek_plan` probe, replica read-routing
counters are snapshotted and restored, and perf probes are muted for
the duration.  Predicted per-run mechanical cost comes from servicing
the prepared runs on a fresh drive instance built from the same
:class:`DiskModel` (deterministic: track 0, time 0), mirroring the
scatter-gather accounting (per-disk sub-plans back to back, makespan =
slowest disk).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.analytic.model import AnalyticModel, DriveParameters
from repro.disk.drive import DiskDrive
from repro.errors import ExplainError
from repro.explain.classify import (
    classify_cost,
    classify_runs,
    run_length_histogram,
)
from repro.perf.profile import PROBES
from repro.query.scatter import subplans
from repro.query.workload import BeamQuery, RangeQuery

__all__ = [
    "analytic_block",
    "explain_query",
    "predict_mechanics",
    "prepare_readonly",
    "query_spec",
]

#: sentinel attached as ``storage.obs`` during read-only preparation so
#: prepared sub-plans carry their raw (pre-coalescing) run counts; the
#: prepare path only checks ``obs is not None``, never calls into it
_RAW_PROBE = object()


def query_spec(query) -> dict:
    """A JSON-friendly description of a beam or range query."""
    if isinstance(query, BeamQuery):
        return {
            "kind": "beam",
            "axis": int(query.axis),
            "fixed": [int(v) for v in query.fixed],
            "lo": int(query.lo),
            "hi": None if query.hi is None else int(query.hi),
        }
    if isinstance(query, RangeQuery):
        return {
            "kind": "range",
            "lo": [int(v) for v in query.lo],
            "hi": [int(v) for v in query.hi],
        }
    raise ExplainError(f"cannot explain query of type {type(query).__name__}")


def prepare_readonly(ds, query):
    """Prepare ``query`` on ``ds`` without mutating any live state.

    The cache is detached for the duration (so plans cover every block
    and cache stats stay untouched), replica read-routing state is
    snapshotted and restored (prepare records sub-reads and advances
    round-robin counters), and perf probes are muted.
    """
    storage = ds.storage
    saved_cache = storage.cache
    saved_obs = storage.obs
    probes_on = PROBES.enabled
    replicated = hasattr(storage, "replica_stats")
    if replicated:
        saved_stats = copy.deepcopy(storage.replica_stats)
        saved_rr = copy.deepcopy(storage._rr_counts)
    storage.cache = None
    storage.obs = _RAW_PROBE
    PROBES.disable()
    try:
        return storage.prepare(ds.mapper, query)
    finally:
        storage.cache = saved_cache
        storage.obs = saved_obs
        if probes_on:
            PROBES.enable()
        if replicated:
            # restore in place so references to the stats object and
            # the round-robin counter dict stay valid
            storage.replica_stats.__dict__.update(vars(saved_stats))
            storage._rr_counts.clear()
            storage._rr_counts.update(saved_rr)


def predict_mechanics(volume, prepared, *, window: int = 128) -> dict:
    """Predicted mechanical cost of a prepared query, per disk.

    Each involved disk gets a fresh ghost :class:`DiskDrive` built from
    its model (cold: track 0, time 0) that services the disk's sub-plans
    back to back — the scatter-gather accounting — collecting per-run
    service times.  Returns per-disk splits, the aggregate split, the
    predicted makespan, and a per-run summary.
    """
    by_disk: dict[int, list] = {}
    for sub in subplans(prepared):
        by_disk.setdefault(int(sub.disk_index), []).append(sub)
    per_disk = {}
    agg = {"seek_ms": 0.0, "rotation_ms": 0.0, "transfer_ms": 0.0,
           "switch_ms": 0.0}
    makespan = 0.0
    run_ms: list[np.ndarray] = []
    for disk, subs in by_disk.items():
        ghost = DiskDrive(volume.models[disk])
        busy = 0.0
        split = {"seek_ms": 0.0, "rotation_ms": 0.0, "transfer_ms": 0.0,
                 "switch_ms": 0.0}
        blocks = runs = 0
        for sub in subs:
            res = ghost.service_runs(
                sub.plan.starts, sub.plan.lengths,
                policy=sub.policy, window=window, collect=True,
            )
            busy += res.total_ms
            split["seek_ms"] += res.seek_ms
            split["rotation_ms"] += res.rotation_ms
            split["transfer_ms"] += res.transfer_ms
            split["switch_ms"] += res.switch_ms
            blocks += res.n_blocks
            runs += res.n_requests
            if res.per_request_ms is not None and res.per_request_ms.size:
                run_ms.append(res.per_request_ms)
        for key, value in split.items():
            agg[key] += value
        makespan = max(makespan, busy)
        per_disk[str(disk)] = {
            "busy_ms": round(busy, 3),
            "blocks": blocks,
            "runs": runs,
            **{k: round(v, 3) for k, v in split.items()},
        }
    out = {
        "per_disk": per_disk,
        "makespan_ms": round(makespan, 3),
        **{k: round(v, 3) for k, v in agg.items()},
    }
    if run_ms:
        all_runs = np.concatenate(run_ms)
        out["per_run_ms"] = {
            "min": round(float(all_runs.min()), 4),
            "mean": round(float(all_runs.mean()), 4),
            "max": round(float(all_runs.max()), 4),
        }
    return out


def analytic_block(ds, query) -> dict:
    """The §4 expected-cost model's prediction for this query's shape:
    naive vs multimap cost and the implied speedup (layout-agnostic —
    the model compares the two canonical layouts)."""
    model_obj = ds.volume.models[0]
    params = DriveParameters.from_model(
        model_obj, 0, depth=ds.volume.depth(0)
    )
    model = AnalyticModel(params)
    k = _multimap_k(ds)
    if isinstance(query, BeamQuery):
        naive = model.naive_beam_ms(ds.shape, query.axis)
        multi = model.multimap_beam_ms(ds.shape, query.axis, k)
        out = {"kind": "beam", "axis": int(query.axis)}
    else:
        shape = query.shape
        naive = model.naive_range_ms(ds.shape, shape)
        multi = model.multimap_range_ms(ds.shape, shape, k)
        out = {"kind": "range", "box": [int(s) for s in shape]}
    out.update(
        naive_ms=round(naive, 3),
        multimap_ms=round(multi, 3),
        predicted_speedup=round(naive / multi, 3) if multi > 0 else None,
    )
    return out


def _multimap_k(ds):
    """The dataset's basic-cube dimensions when its mapper exposes them
    (multimap layouts), else ``None`` (the model picks its own)."""
    mapper = ds.mapper
    k = getattr(mapper, "K", None)
    if k is None:
        for chunk_mapper in getattr(mapper, "chunk_mappers", ()) or ():
            k = getattr(chunk_mapper, "K", None)
            if k is not None:
                break
    return k


def _peek_cache(storage, prepared) -> dict | None:
    """Expected buffer-pool hits for the prepared (cache-less) plans,
    probed without mutating pool policy or stats."""
    pool = storage.cache
    if pool is None or not pool.active:
        return None
    hits = hit_runs = blocks = 0
    for sub in subplans(prepared):
        h, r = pool.peek_plan(sub.disk_index, sub.plan)
        hits += h
        hit_runs += r
        blocks += sub.n_blocks
    return {
        "expected_hits": hits,
        "expected_hit_runs": hit_runs,
        "expected_hit_ratio": round(hits / blocks, 4) if blocks else 0.0,
        "expected_ms": round(hits * pool.service_ms_per_block, 4),
    }


def explain_query(ds, query) -> dict:
    """EXPLAIN ``query`` on ``ds``: plan structure, access-pattern
    classification, predicted mechanical cost, expected cache hits,
    shard fan-out, and replica routing — with zero side effects."""
    storage = ds.storage
    spec = query_spec(query)  # rejects unknown query types up front
    prepared = prepare_readonly(ds, query)
    subs = subplans(prepared)
    volume = ds.volume

    sub_rows = []
    steps = {"sequential": 0, "semi_sequential": 0, "random": 0}
    histogram: dict[str, int] = {}
    raw_runs = 0
    for sub in subs:
        cls = classify_runs(volume, sub.disk_index, sub.plan)
        for name, count in cls["steps"].items():
            steps[name] += count
        for length, count in run_length_histogram(sub.plan).items():
            histogram[length] = histogram.get(length, 0) + count
        raw = (sub.obs or {}).get("raw_runs", sub.plan.n_runs)
        raw_runs += int(raw)
        sub_rows.append({
            "disk": int(sub.disk_index),
            "policy": sub.policy,
            "runs": cls["runs"],
            "blocks": cls["blocks"],
            "raw_runs": int(raw),
            "pattern": cls["pattern"],
        })
    total_steps = sum(steps.values())
    if total_steps == 0:
        pattern = "single"
    else:
        order = ("sequential", "semi_sequential", "random")
        pattern = max(order, key=lambda n: (steps[n], -order.index(n)))

    predicted = predict_mechanics(volume, prepared, window=storage.window)
    cache = _peek_cache(storage, prepared)
    if cache is not None:
        predicted["cache"] = cache
    predicted["dominant_cost"] = classify_cost(
        seek_ms=predicted["seek_ms"],
        rotation_ms=predicted["rotation_ms"],
        transfer_ms=predicted["transfer_ms"],
        switch_ms=predicted["switch_ms"],
    )

    data = {
        "layout": ds.layout,
        "drive": ds.drive_name,
        "shape": [int(s) for s in ds.shape],
        "query": spec,
        "plan": {
            "policy": prepared.policy,
            "n_cells": int(prepared.n_cells),
            "runs": int(prepared.n_runs),
            "blocks": int(prepared.n_blocks),
            "raw_runs": raw_runs,
            "run_length_histogram": dict(
                sorted(histogram.items(), key=lambda kv: int(kv[0]))
            ),
            "pattern": pattern,
            "steps": steps,
            "subs": sub_rows,
        },
        "predicted": predicted,
        "analytic": analytic_block(ds, query),
    }
    if ds.n_shards > 1:
        data["fanout"] = {
            "shards": int(ds.n_shards),
            "subplans": len(subs),
            "disks": [int(d) for d in prepared.disks],
        }
    sources = getattr(prepared, "sources", None)
    if sources is not None and ds.replication_k > 1:
        data["routing"] = {
            "read_policy": storage.read_policy.name,
            "k": int(ds.replication_k),
            "failed_disks": sorted(int(d) for d in storage.failed),
            "sources": [
                {
                    "chunk": int(src.chunk),
                    "copy": int(src.copy),
                    "disk": int(sub.disk_index),
                }
                for src, sub in zip(sources, subs)
            ],
        }
    return data
