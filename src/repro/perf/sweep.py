"""The ``repro-bench perf`` sweep: plan-preparation throughput per layout.

For each layout the sweep builds a dataset, replays a pinned seeded
workload (full-length beams cycling every axis, random range cubes, and
one full-box scan) through :meth:`StorageManager.prepare`, and records:

* ``plans_per_s`` / ``cells_per_s`` — fast-path preparation throughput
  (best of ``repeats`` passes);
* ``prep_share`` — preparation wall time as a fraction of prepare +
  simulated service, the prep-vs-service split;
* ``speedup_vs_reference`` — the same storage manager against
  :func:`repro.perf.reference.reference_prepare` on a capped subset of
  the workload.  Every subset plan is asserted bit-identical between
  the two pipelines before timing is trusted, so the number can never
  describe diverging plans.

``speedup_vs_reference`` compares two measurements taken on the same
machine in the same process, so it is stable across hardware —
:func:`check_perf` gates primarily on it, with a very wide band on the
absolute throughputs, which is what keeps the CI gate meaningful on
shared runners.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.errors import BenchmarkError
from repro.perf.memo import MEMO
from repro.perf.reference import reference_prepare
from repro.query.workload import BeamQuery, RangeQuery, random_beam, \
    random_range_cube

__all__ = ["run_perf_sweep", "render_perf_sweep", "check_perf"]


def _query_cells(query, shape) -> int:
    if isinstance(query, BeamQuery):
        return query.n_cells(shape)
    return query.n_cells()


def _build_workload(shape, n_beams, n_ranges, selectivity_pct,
                    full_ranges, seed) -> list:
    rng = np.random.default_rng(seed)
    queries = []
    n_dims = len(shape)
    for i in range(n_beams):
        queries.append(random_beam(shape, i % n_dims, rng))
    for _ in range(n_ranges):
        queries.append(random_range_cube(shape, selectivity_pct, rng))
    for _ in range(full_ranges):
        queries.append(RangeQuery((0,) * n_dims, tuple(shape)))
    return queries


def _assert_prepared_equal(fast, ref, layout, query) -> None:
    same = (
        fast.mapper_name == ref.mapper_name
        and fast.disk_index == ref.disk_index
        and fast.policy == ref.policy
        and fast.n_cells == ref.n_cells
        and fast.plan.policy == ref.plan.policy
        and fast.plan.merge_gap == ref.plan.merge_gap
        and np.array_equal(fast.plan.starts, ref.plan.starts)
        and np.array_equal(fast.plan.lengths, ref.plan.lengths)
    )
    if not same:
        raise BenchmarkError(
            f"vectorized plan diverged from reference for layout "
            f"{layout!r} on {query!r}"
        )


def run_perf_sweep(
    shape,
    layouts=("naive", "zorder", "hilbert", "multimap"),
    *,
    drive: str = "atlas10k3",
    n_beams: int = 12,
    n_ranges: int = 4,
    selectivity_pct: float = 12.5,
    full_ranges: int = 1,
    repeats: int = 3,
    ref_plans: int = 8,
    ref_cell_cap: int = 4096,
    seed: int = 42,
) -> dict:
    """Measure plan-preparation throughput per layout.

    Returns ``{layout: metrics, "meta": {...}}``; the metrics dict is
    the JSON payload ``BENCH_perf.json`` pins.
    """
    from repro.api.dataset import Dataset

    shape = tuple(int(s) for s in shape)
    if repeats < 1:
        raise BenchmarkError("repeats must be >= 1")
    queries = _build_workload(shape, n_beams, n_ranges, selectivity_pct,
                              full_ranges, seed)
    total_cells = sum(_query_cells(q, shape) for q in queries)
    data: dict = {}
    for layout in layouts:
        t0 = perf_counter()
        ds = Dataset.create(shape, layout=layout, drive=drive, seed=seed)
        mapper = ds.mapper
        if hasattr(mapper, "code_table"):
            mapper.code_table()
        build_ms = (perf_counter() - t0) * 1e3
        storage = ds.storage

        best = float("inf")
        for _ in range(repeats):
            t0 = perf_counter()
            for q in queries:
                storage.prepare(mapper, q)
            best = min(best, perf_counter() - t0)
        prep_ms = best * 1e3

        # prep-vs-service split: one more prepare pass, then execute
        rng = np.random.default_rng(seed)
        t0 = perf_counter()
        prepared = [storage.prepare(mapper, q) for q in queries]
        prep_once_ms = (perf_counter() - t0) * 1e3
        t0 = perf_counter()
        for p in prepared:
            storage.execute_prepared(p, rng=rng)
        exec_ms = (perf_counter() - t0) * 1e3

        # reference subset: cap per-query cells so the per-cell Python
        # pipeline stays seconds-scale, and pin bit-identical plans
        subset = [
            q for q in queries if _query_cells(q, shape) <= ref_cell_cap
        ][:ref_plans]
        if not subset:
            raise BenchmarkError(
                "ref_cell_cap excluded every query from the reference "
                "subset; raise it or shrink the workload"
            )
        fast_best = float("inf")
        sub_fast = []
        for _ in range(repeats):
            t0 = perf_counter()
            sub_fast = [storage.prepare(mapper, q) for q in subset]
            fast_best = min(fast_best, perf_counter() - t0)
        fast_ms = fast_best * 1e3
        t0 = perf_counter()
        sub_ref = [reference_prepare(storage, mapper, q) for q in subset]
        ref_ms = (perf_counter() - t0) * 1e3
        for q, fast, ref in zip(subset, sub_fast, sub_ref):
            _assert_prepared_equal(fast, ref, layout, q)

        data[layout] = {
            "n_plans": len(queries),
            "n_cells": int(total_cells),
            "build_ms": round(build_ms, 3),
            "prep_ms": round(prep_ms, 3),
            "plans_per_s": round(len(queries) / (prep_ms / 1e3), 1),
            "cells_per_s": round(total_cells / (prep_ms / 1e3), 1),
            "exec_ms": round(exec_ms, 3),
            "prep_share": round(
                prep_once_ms / (prep_once_ms + exec_ms), 4
            ),
            "ref_plans": len(subset),
            "ref_ms": round(ref_ms, 3),
            "fast_ms": round(fast_ms, 3),
            "speedup_vs_reference": round(ref_ms / fast_ms, 1),
        }
    data["meta"] = {
        "shape": list(shape),
        "drive": drive,
        "n_beams": n_beams,
        "n_ranges": n_ranges,
        "selectivity_pct": selectivity_pct,
        "full_ranges": full_ranges,
        "repeats": repeats,
        "ref_plans": ref_plans,
        "ref_cell_cap": ref_cell_cap,
        "seed": seed,
        "memo": MEMO.stats(),
    }
    return data


def render_perf_sweep(data: dict) -> str:
    from repro.bench.reporting import render_table

    headers = ["layout", "plans/s", "cells/s", "prep ms", "exec ms",
               "prep share", "speedup vs ref"]
    rows = []
    for layout, row in data.items():
        if layout == "meta":
            continue
        rows.append([
            layout,
            f"{row['plans_per_s']:.0f}",
            f"{row['cells_per_s']:.0f}",
            f"{row['prep_ms']:.2f}",
            f"{row['exec_ms']:.2f}",
            f"{row['prep_share']:.3f}",
            f"{row['speedup_vs_reference']:.1f}x",
        ])
    return render_table(headers, rows)


def check_perf(
    data: dict,
    baseline: dict,
    *,
    tolerance: float = 0.5,
    throughput_tolerance: float = 0.9,
) -> list[str]:
    """Compare a sweep against a pinned baseline; returns violations.

    ``speedup_vs_reference`` is machine-relative (both pipelines timed
    on the same box), so it gets the tight band: each layout must keep
    at least ``(1 - tolerance)`` of the baseline speedup.  The absolute
    throughputs only guard against catastrophic collapse — shared CI
    runners are allowed to be up to ``1 / (1 - throughput_tolerance)``
    times slower than the machine that produced the baseline.
    """
    if not 0 <= tolerance < 1 or not 0 <= throughput_tolerance < 1:
        raise BenchmarkError("tolerances must be in [0, 1)")
    violations = []
    for layout, base in baseline.items():
        if layout == "meta":
            continue
        cur = data.get(layout)
        if cur is None:
            violations.append(f"{layout}: missing from this sweep")
            continue
        floor = base["speedup_vs_reference"] * (1 - tolerance)
        if cur["speedup_vs_reference"] < floor:
            violations.append(
                f"{layout}: speedup_vs_reference "
                f"{cur['speedup_vs_reference']:.1f}x fell below "
                f"{floor:.1f}x (baseline "
                f"{base['speedup_vs_reference']:.1f}x)"
            )
        for metric in ("plans_per_s", "cells_per_s"):
            floor = base[metric] * (1 - throughput_tolerance)
            if cur[metric] < floor:
                violations.append(
                    f"{layout}: {metric} {cur[metric]:.0f} fell below "
                    f"{floor:.0f} (baseline {base[metric]:.0f})"
                )
    return violations
