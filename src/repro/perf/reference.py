"""Pure-Python reference preparation the fast path is pinned against.

:func:`reference_prepare` rebuilds a :class:`PreparedQuery` the slow,
obviously-correct way: enumerate the query's cells one by one, translate
each through ``mapper.lbns`` individually, expand cell blocks in Python,
and coalesce with plain loops — then apply the §5.2 issue-order rules
(per-policy merge gap, SPTF clamp) by hand.  The hypothesis suite under
``tests/perf`` asserts the vectorized
:meth:`~repro.query.executor.StorageManager.prepare` output is
bit-identical to this for every registered layout, and the perf sweep
times the two against each other for its ``speedup_vs_reference``
metric.

Parity is pinned at the *prepared* level (after the storage manager's
run merging) rather than on raw mapper plans: MultiMap's axis-0 beam
plans may legitimately contain touching-but-unmerged runs per basic-cube
column, which any honest per-cell reference would have merged already;
after ``merge_gap=0`` coalescing the two descriptions coincide exactly.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.multimap import MultiMapMapper
from repro.errors import QueryError
from repro.mappings.base import RequestPlan
from repro.query.executor import PreparedQuery
from repro.query.workload import BeamQuery, RangeQuery

__all__ = ["reference_prepare", "reference_intersections"]


def _reference_cells(mapper, query) -> list[tuple[int, ...]]:
    """The query's cells in issue order: beams walk their axis
    ascending, ranges enumerate with dimension 0 varying fastest (the
    :func:`~repro.mappings.base.enumerate_box` convention)."""
    if isinstance(query, BeamQuery):
        hi = mapper.dims[query.axis] if query.hi is None else int(query.hi)
        cells = []
        for v in range(int(query.lo), hi):
            c = [int(x) for x in query.fixed]
            c[query.axis] = v
            cells.append(tuple(c))
        return cells
    spans = [
        range(int(a), int(b)) for a, b in zip(query.lo, query.hi)
    ]
    return [
        tuple(reversed(c)) for c in itertools.product(*reversed(spans))
    ]


def _reference_raw_policy(mapper, query) -> tuple[str, int | None]:
    """The (policy, merge_gap) the mapper's raw plan carries."""
    multimap = isinstance(mapper, MultiMapMapper)
    if isinstance(query, BeamQuery):
        if multimap and int(query.axis) != 0:
            return "fifo", 0  # semi-sequential path, coordinate order
        return "sorted", 0
    if multimap and mapper.n_dims > 1:
        return "sptf", None
    return "sorted", None


def reference_prepare(storage, mapper, query) -> PreparedQuery:
    """Prepare ``query`` per-cell in pure Python (uncached path only)."""
    cache = getattr(storage, "cache", None)
    if cache is not None and cache.active:
        raise QueryError("reference_prepare models the uncached path")
    cells = _reference_cells(mapper, query)
    policy, merge_gap = _reference_raw_policy(mapper, query)
    cb = int(mapper.cell_blocks)
    lbns = [
        int(mapper.lbns(np.asarray([c], dtype=np.int64))[0]) for c in cells
    ]
    if policy == "fifo":
        # one cell per request, given order, never merged or clamped
        plan = RequestPlan(
            np.asarray(lbns, dtype=np.int64),
            np.full(len(lbns), cb, dtype=np.int64),
            policy="fifo",
            merge_gap=0,
        )
    else:
        blocks = sorted({b + i for b in lbns for i in range(cb)})
        gap = (
            storage.coalesce_gap_blocks if merge_gap is None else merge_gap
        )
        runs: list[list[int]] = []
        for b in blocks:
            if runs and b <= runs[-1][1] + gap:
                runs[-1][1] = b + 1  # read through the hole
            else:
                runs.append([b, b + 1])
        plan = RequestPlan(
            np.asarray([r[0] for r in runs], dtype=np.int64),
            np.asarray([r[1] - r[0] for r in runs], dtype=np.int64),
            policy=policy,
            merge_gap=merge_gap,
        )
    effective = plan.policy
    if effective == "sptf" and plan.n_runs > storage.sptf_run_limit:
        effective = "sorted"
    n_cells = (
        query.n_cells(mapper.dims)
        if isinstance(query, BeamQuery)
        else query.n_cells()
    )
    return PreparedQuery(
        mapper_name=mapper.name,
        disk_index=mapper.disk_index,
        plan=plan,
        policy=effective,
        n_cells=int(n_cells),
    )


def reference_intersections(shard_map, lo, hi) -> list[tuple]:
    """The pre-vectorization per-chunk intersection loop, for pinning
    :meth:`~repro.shard.map.ShardMap.intersections`."""
    out = []
    ndim = len(shard_map.dims)
    for chunk in shard_map.chunks:
        llo, lhi = [], []
        for d in range(ndim):
            a = max(int(lo[d]), chunk.origin[d])
            b = min(int(hi[d]), chunk.origin[d] + chunk.shape[d])
            if a >= b:
                break
            llo.append(a - chunk.origin[d])
            lhi.append(b - chunk.origin[d])
        else:
            out.append((chunk, tuple(llo), tuple(lhi)))
    return out
