"""Process-wide memo for derived mapper state.

Building a mapper derives state that is a pure function of a small key:
a curve mapper's sorted code table depends only on (curve class, grid
dims), and a MultiMap basic-cube plan only on (dims, track length, zone
tracks, depth, strategy).  ``Dataset.with_layout`` / ``with_shards``
clones — and every per-chunk mapper of a sharded dataset with equal
chunk shapes — used to re-derive these per instance; the :data:`MEMO`
lets them share one immutable copy instead.

Only *immutable* values belong here: frozen dataclasses
(:class:`~repro.core.planner.CubePlan`) or arrays the caller marks
read-only before publishing.  Zone allocation is NOT memoized — it
mutates volume state and must run per mapper.

The memo is deliberately simple: a per-kind dict with hit/miss
counters, no eviction (entries are keyed per distinct grid shape, a
handful per process), ``clear()`` for benchmark hygiene, and
``enabled`` to bypass sharing entirely when measuring cold builds.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

__all__ = ["MapperMemo", "MEMO"]


class MapperMemo:
    """A keyed store of shared derived mapper state."""

    def __init__(self) -> None:
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._store: dict[str, dict[Hashable, Any]] = {}

    def get(self, kind: str, key: Hashable):
        """The cached value, or ``None`` (counts a hit or a miss)."""
        if not self.enabled:
            return None
        value = self._store.get(kind, {}).get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, kind: str, key: Hashable, value) -> None:
        """Publish a value (no-op while disabled)."""
        if self.enabled:
            self._store.setdefault(kind, {})[key] = value

    def get_or_build(self, kind: str, key: Hashable,
                     builder: Callable[[], Any]):
        """The cached value, building and publishing it on a miss."""
        value = self.get(kind, key)
        if value is None:
            value = builder()
            self.put(kind, key, value)
        return value

    def evict(self, kind: str, key: Hashable) -> None:
        """Drop one entry so the next lookup rebuilds it."""
        self._store.get(kind, {}).pop(key, None)

    def clear(self) -> None:
        """Drop every entry (keeps the hit/miss counters)."""
        self._store.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """JSON-friendly snapshot: hits, misses, entries per kind."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "entries": {
                kind: len(entries)
                for kind, entries in sorted(self._store.items())
                if entries
            },
        }


#: the process-wide memo every mapper consults
MEMO = MapperMemo()
