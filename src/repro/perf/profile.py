"""Lightweight counter/timer probes for the preparation hot path.

The hooks live in :meth:`StorageManager.prepare_plan` and the
:class:`TrafficSim` event loop, guarded by ``PROBES.enabled`` so the
disabled cost is one attribute read.  While enabled, report meta gains a
gated ``"perf"`` entry (a :meth:`PerfProbes.delta` of the run); while
disabled — the default — every report and traffic JSON stays
bit-identical to a build without probes.  Timers measure wall clock and
never feed back into simulated results, so determinism is untouched.

Since the :mod:`repro.obs` telemetry layer landed, :class:`PerfProbes`
is a **deprecation shim**: a
:class:`~repro.obs.metrics.MetricsRegistry` subclass adding only the
``enabled`` gate (and the legacy ``count`` spelling of ``inc``).  Its
snapshots keep the historical two-key ``{"counters", "timers_ms"}``
shape because the probe hooks never touch gauges or histograms and the
registry gates those keys on being non-empty.

Probe *names* are now declared in the :data:`PROBE_SPECS` registry —
one documented marker function per probe, its docstring first line the
description — and :data:`PROBE_DOCS` is a live
:class:`~repro.registry.DocsView` over it, so ``repro-bench
--list-probes`` derives its table from the registrations instead of a
hand-maintained dict.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.registry import DocsView, Registry, first_doc_line

__all__ = [
    "PerfProbes",
    "PROBES",
    "PROBE_DOCS",
    "PROBE_SPECS",
    "ProbeSpec",
    "profiled",
    "register_probe",
]


@dataclass(frozen=True)
class ProbeSpec:
    """One declared probe: the counter/timer name the hooks emit."""

    name: str
    fn: object
    description: str


PROBE_SPECS = Registry("perf probe")


def register_probe(name: str, *, description: str = ""):
    """Declare a probe name (decorator over a documented marker
    function; the docstring first line becomes the description)."""

    def decorator(fn):
        PROBE_SPECS.add(name, ProbeSpec(
            name=name, fn=fn,
            description=description or first_doc_line(fn),
        ))
        return fn

    return decorator


@register_probe("plans_prepared")
def _plans_prepared():
    """request plans pushed through prepare_plan"""


@register_probe("cells_planned")
def _cells_planned():
    """dataset cells covered by prepared plans"""


@register_probe("runs_prepared")
def _runs_prepared():
    """coalesced runs across prepared plans"""


@register_probe("prepare_plan_ms")
def _prepare_plan_ms():
    """wall time inside StorageManager.prepare_plan"""


@register_probe("traffic_events")
def _traffic_events():
    """events popped off the traffic simulator's heap"""


@register_probe("traffic_run_ms")
def _traffic_run_ms():
    """wall time inside TrafficSim.run"""


#: live name -> description view over the declared probes (surfaced by
#: ``repro-bench --list-probes``)
PROBE_DOCS = DocsView(PROBE_SPECS)


class PerfProbes(MetricsRegistry):
    """A named counter/timer registry (off by default).

    Deprecation shim over :class:`~repro.obs.metrics.MetricsRegistry`:
    adds the ``enabled`` gate the prepare/traffic hooks check, and keeps
    ``count`` as the legacy spelling of :meth:`MetricsRegistry.inc`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    #: legacy spelling of :meth:`MetricsRegistry.inc`
    count = MetricsRegistry.inc


#: the process-wide registry the hooks report to
PROBES = PerfProbes()


@contextmanager
def profiled(reset: bool = True):
    """Enable :data:`PROBES` for a ``with`` block, restoring the prior
    state on exit.  ``reset`` starts the block from zeroed totals."""
    prior = PROBES.enabled
    if reset:
        PROBES.reset()
    PROBES.enable()
    try:
        yield PROBES
    finally:
        PROBES.enabled = prior
