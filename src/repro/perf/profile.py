"""Lightweight counter/timer probes for the preparation hot path.

The hooks live in :meth:`StorageManager.prepare_plan` and the
:class:`TrafficSim` event loop, guarded by ``PROBES.enabled`` so the
disabled cost is one attribute read.  While enabled, report meta gains a
gated ``"perf"`` entry (a :meth:`PerfProbes.delta` of the run); while
disabled — the default — every report and traffic JSON stays
bit-identical to a build without probes.  Timers measure wall clock and
never feed back into simulated results, so determinism is untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

__all__ = ["PerfProbes", "PROBES", "PROBE_DOCS", "profiled"]

#: every probe name the hooks may emit, with a one-line description
#: (surfaced by ``repro-bench --list-probes``)
PROBE_DOCS = {
    "plans_prepared": "request plans pushed through prepare_plan",
    "cells_planned": "dataset cells covered by prepared plans",
    "runs_prepared": "coalesced runs across prepared plans",
    "prepare_plan_ms": "wall time inside StorageManager.prepare_plan",
    "traffic_events": "events popped off the traffic simulator's heap",
    "traffic_run_ms": "wall time inside TrafficSim.run",
}


class PerfProbes:
    """A named counter/timer registry (off by default)."""

    def __init__(self) -> None:
        self.enabled = False
        self.counters: dict[str, int] = {}
        self.timers_ms: dict[str, float] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.counters.clear()
        self.timers_ms.clear()

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def add_time(self, name: str, ms: float) -> None:
        self.timers_ms[name] = self.timers_ms.get(name, 0.0) + float(ms)

    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall time of a ``with`` block under ``name``."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.add_time(name, (perf_counter() - t0) * 1e3)

    def snapshot(self) -> dict:
        """A copy of the current totals (a :meth:`delta` baseline)."""
        return {
            "counters": dict(self.counters),
            "timers_ms": dict(self.timers_ms),
        }

    def delta(self, since: dict | None = None) -> dict:
        """Totals accumulated since ``since`` (JSON-friendly, rounded
        timers, zero-change names dropped)."""
        base_c = (since or {}).get("counters", {})
        base_t = (since or {}).get("timers_ms", {})
        counters = {
            name: total - base_c.get(name, 0)
            for name, total in sorted(self.counters.items())
            if total != base_c.get(name, 0)
        }
        timers = {
            name: round(total - base_t.get(name, 0.0), 3)
            for name, total in sorted(self.timers_ms.items())
            if total != base_t.get(name, 0.0)
        }
        return {"counters": counters, "timers_ms": timers}


#: the process-wide registry the hooks report to
PROBES = PerfProbes()


@contextmanager
def profiled(reset: bool = True):
    """Enable :data:`PROBES` for a ``with`` block, restoring the prior
    state on exit.  ``reset`` starts the block from zeroed totals."""
    prior = PROBES.enabled
    if reset:
        PROBES.reset()
    PROBES.enable()
    try:
        yield PROBES
    finally:
        PROBES.enabled = prior
