"""Plan-preparation fast path: memoized mapper tables, profiling
probes, a pure-Python reference pipeline, and the pinned perf sweep.

``repro.perf`` is the speed scoreboard of the repository:

``memo``       the process-wide :data:`MEMO` sharing curve code tables
               and basic-cube plans across ``with_layout``/``with_shards``
               clones instead of re-deriving them per mapper
``profile``    the :data:`PROBES` counter/timer registry hooked into
               :meth:`StorageManager.prepare_plan` and the traffic
               engine's event loop (off by default; zero overhead and
               bit-identical report JSON while disabled)
``reference``  the slow per-cell preparation pipeline vectorized plans
               are pinned bit-identical against
``sweep``      ``repro-bench perf``: plans/s, cells/s, prep-vs-service
               split per layout, and the ``--check`` regression gate
               against the checked-in ``BENCH_perf.json``

``memo`` and ``profile`` import nothing from the rest of the package so
mappers can use them without cycles; the sweep (which builds Datasets)
loads lazily.
"""

from __future__ import annotations

from repro.perf.memo import MEMO, MapperMemo
from repro.perf.profile import (
    PROBE_DOCS,
    PROBE_SPECS,
    PROBES,
    PerfProbes,
    ProbeSpec,
    profiled,
    register_probe,
)

#: lazily loaded names -> defining module (sweep/reference pull in the
#: Dataset façade, which imports the mappers that import repro.perf.memo)
_LAZY_EXPORTS = {
    "reference_prepare": "repro.perf.reference",
    "reference_intersections": "repro.perf.reference",
    "run_perf_sweep": "repro.perf.sweep",
    "render_perf_sweep": "repro.perf.sweep",
    "check_perf": "repro.perf.sweep",
}

__all__ = [
    "MEMO",
    "MapperMemo",
    "PROBES",
    "PROBE_DOCS",
    "PROBE_SPECS",
    "PerfProbes",
    "ProbeSpec",
    "profiled",
    "register_probe",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
