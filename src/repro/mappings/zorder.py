"""Z-order (Morton) mapping — the first space-filling-curve baseline."""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_layout
from repro.mappings import curves
from repro.mappings.linear import CurveMapper

__all__ = ["ZOrderMapper"]


@register_layout("zorder")
class ZOrderMapper(CurveMapper):
    """Cells ordered by Morton code, rank-compacted to consecutive LBNs."""

    name = "zorder"

    def encode(self, coords: np.ndarray) -> np.ndarray:
        return curves.morton_encode(coords, self.bits)
