"""Naive mapping: row-major linearisation along Dim0 (the paper's baseline).

The N-D space is linearised with dimension 0 varying fastest, so Dim0
enjoys sequential access and every other dimension strides.  Beam and
range plans are computed arithmetically — no per-cell enumeration — since
rows along Dim0 are contiguous by construction.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_layout
from repro.mappings.base import RequestPlan, enumerate_box
from repro.mappings.linear import LinearMapper

__all__ = ["NaiveMapper"]


@register_layout("naive")
class NaiveMapper(LinearMapper):
    """Row-major (Dim0-fastest) linearisation."""

    name = "naive"

    def __init__(self, dims, extent, cell_blocks: int = 1):
        super().__init__(dims, extent, cell_blocks)
        strides = [1]
        for s in self.dims[:-1]:
            strides.append(strides[-1] * s)
        self._strides = np.asarray(strides, dtype=np.int64)

    def rank(self, coords: np.ndarray) -> np.ndarray:
        return coords @ self._strides

    def range_plan(self, lo, hi) -> RequestPlan:
        lo, hi = self._check_box(lo, hi)
        # One run per row: the Dim0 extent is contiguous; enumerate only
        # the non-Dim0 coordinates.
        row_len = (hi[0] - lo[0]) * self.cell_blocks
        if self.n_dims == 1:
            rows = np.zeros((1, 1), dtype=np.int64)
        else:
            rows = enumerate_box(lo[1:], hi[1:])
        anchors = np.empty((rows.shape[0], self.n_dims), dtype=np.int64)
        anchors[:, 0] = lo[0]
        if self.n_dims > 1:
            anchors[:, 1:] = rows
        starts = self.extent.start + self.rank(anchors) * self.cell_blocks
        # Merge rows that happen to be contiguous (full-width spans).
        starts.sort()
        lengths = np.full(starts.shape, row_len, dtype=np.int64)
        merged = np.flatnonzero(starts[1:] != starts[:-1] + row_len)
        run_start_idx = np.concatenate(([0], merged + 1))
        run_end_idx = np.concatenate((merged, [starts.size - 1]))
        return RequestPlan.from_arrays(
            starts[run_start_idx],
            starts[run_end_idx] + row_len - starts[run_start_idx],
            "sorted",
        )
