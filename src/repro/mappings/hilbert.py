"""Hilbert-curve mapping — the second space-filling-curve baseline.

The paper cites Moon et al.'s result that Hilbert clusters better than
Z-order, which its measurements confirm; ours reproduce the same ordering.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_layout
from repro.mappings import curves
from repro.mappings.linear import CurveMapper

__all__ = ["HilbertMapper"]


@register_layout("hilbert")
class HilbertMapper(CurveMapper):
    """Cells ordered by Hilbert index, rank-compacted to consecutive LBNs."""

    name = "hilbert"

    def encode(self, coords: np.ndarray) -> np.ndarray:
        return curves.hilbert_encode(coords, self.bits)
