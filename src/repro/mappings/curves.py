"""Vectorised space-filling-curve codes: Morton (Z-order), Hilbert, Gray.

All functions operate on ``(n_cells, n_dims)`` int64 coordinate arrays and
return int64 codes; everything is numpy-vectorised because the benchmark
harness pushes tens of millions of cells through these.

Conventions
-----------
* ``bits`` is the per-dimension bit width; ``n_dims * bits`` must fit in 62
  bits (int64 with headroom).
* For Morton and Gray, dimension 0 occupies the *least-significant* bit of
  each interleaved group, so walking the curve toggles Dim0 first — the
  same "Dim0 fastest" convention as the Naive row-major layout.
* The Hilbert code uses Skilling's transpose algorithm (J. Skilling,
  "Programming the Hilbert curve", 2004), with axis 0 as the most
  significant transposed word.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError

__all__ = [
    "bits_for",
    "morton_encode",
    "morton_decode",
    "gray_rank",
    "gray_unrank",
    "hilbert_encode",
    "hilbert_decode",
]


def bits_for(dims) -> int:
    """Smallest per-dimension bit width that covers every extent."""
    need = max(int(s - 1).bit_length() for s in dims)
    return max(need, 1)


def _check_width(n_dims: int, bits: int) -> None:
    if n_dims * bits > 62:
        raise MappingError(
            f"{n_dims} dims x {bits} bits exceeds the 62-bit code budget"
        )
    if bits < 1:
        raise MappingError("bits must be >= 1")


def _as_coords(coords) -> np.ndarray:
    arr = np.asarray(coords, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2:
        raise MappingError("coords must be an (n_cells, n_dims) array")
    if arr.size and arr.min() < 0:
        raise MappingError("coordinates must be non-negative")
    return arr


def _as_codes(codes) -> np.ndarray:
    """Normalise decoder input the way :func:`_as_coords` does for
    encoders: scalars and 0-d arrays become length-1 vectors."""
    arr = np.asarray(codes, dtype=np.int64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise MappingError("codes must be a scalar or 1-D array")
    if arr.size and arr.min() < 0:
        raise MappingError("codes must be non-negative")
    return arr


# ---------------------------------------------------------------------
# Morton (Z-order)
# ---------------------------------------------------------------------

def morton_encode(coords, bits: int) -> np.ndarray:
    """Interleave coordinate bits into Z-order codes."""
    arr = _as_coords(coords)
    n_dims = arr.shape[1]
    _check_width(n_dims, bits)
    if arr.size and arr.max() >= (1 << bits):
        raise MappingError("coordinate exceeds bit width")
    out = np.zeros(arr.shape[0], dtype=np.int64)
    for j in range(bits):
        for i in range(n_dims):
            out |= ((arr[:, i] >> j) & 1) << (j * n_dims + i)
    return out


def morton_decode(codes, n_dims: int, bits: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`."""
    _check_width(n_dims, bits)
    codes = _as_codes(codes)
    out = np.zeros((codes.shape[0], n_dims), dtype=np.int64)
    for j in range(bits):
        for i in range(n_dims):
            out[:, i] |= ((codes >> (j * n_dims + i)) & 1) << j
    return out


# ---------------------------------------------------------------------
# Gray-coded curve (Faloutsos 1986)
# ---------------------------------------------------------------------

def _inverse_gray(codes: np.ndarray) -> np.ndarray:
    """Inverse binary-reflected Gray code (prefix-XOR fold)."""
    out = codes.copy()
    shift = 1
    while shift < 64:
        out ^= out >> shift
        shift <<= 1
    return out


def _gray(codes: np.ndarray) -> np.ndarray:
    return codes ^ (codes >> 1)


def gray_rank(coords, bits: int) -> np.ndarray:
    """Position of a cell along the Gray-coded curve.

    The cell whose interleaved coordinate bits equal ``gray(r)`` is the
    r-th cell of the curve, so the rank is the inverse Gray code of the
    Morton interleave.
    """
    return _inverse_gray(morton_encode(coords, bits))


def gray_unrank(ranks, n_dims: int, bits: int) -> np.ndarray:
    """Inverse of :func:`gray_rank`."""
    ranks = _as_codes(ranks)
    return morton_decode(_gray(ranks), n_dims, bits)


# ---------------------------------------------------------------------
# Hilbert (Skilling's transpose algorithm)
# ---------------------------------------------------------------------

def _axes_to_transpose(x: list[np.ndarray], bits: int) -> list[np.ndarray]:
    """In-place Skilling forward transform (axes -> transposed Hilbert)."""
    n = len(x)
    m = 1 << (bits - 1)
    # Inverse undo
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            cond = (x[i] & q) != 0
            if i == 0:
                x[0] = np.where(cond, x[0] ^ p, x[0])
            else:
                t = np.where(cond, 0, (x[0] ^ x[i]) & p)
                x[0] = np.where(cond, x[0] ^ p, x[0] ^ t)
                x[i] = x[i] ^ t
        q >>= 1
    # Gray encode
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = np.zeros_like(x[0])
    q = m
    while q > 1:
        t = np.where((x[n - 1] & q) != 0, t ^ (q - 1), t)
        q >>= 1
    for i in range(n):
        x[i] ^= t
    return x


def _transpose_to_axes(x: list[np.ndarray], bits: int) -> list[np.ndarray]:
    """In-place Skilling inverse transform (transposed Hilbert -> axes)."""
    n = len(x)
    m = 2 << (bits - 1)
    # Gray decode
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work
    q = 2
    while q != m:
        p = q - 1
        for i in range(n - 1, -1, -1):
            cond = (x[i] & q) != 0
            if i == 0:
                x[0] = np.where(cond, x[0] ^ p, x[0])
            else:
                t = np.where(cond, 0, (x[0] ^ x[i]) & p)
                x[0] = np.where(cond, x[0] ^ p, x[0] ^ t)
                x[i] = x[i] ^ t
        q <<= 1
    return x


def _interleave_transposed(x: list[np.ndarray], bits: int) -> np.ndarray:
    """Pack transposed words into a single Hilbert integer (x[0] MSB)."""
    n = len(x)
    out = np.zeros_like(x[0])
    for bit in range(bits - 1, -1, -1):
        for i in range(n):
            out = (out << 1) | ((x[i] >> bit) & 1)
    return out


def _deinterleave_transposed(
    codes: np.ndarray, n_dims: int, bits: int
) -> list[np.ndarray]:
    x = [np.zeros_like(codes) for _ in range(n_dims)]
    pos = n_dims * bits
    for bit in range(bits - 1, -1, -1):
        for i in range(n_dims):
            pos -= 1
            x[i] |= ((codes >> pos) & 1) << bit
    return x


def hilbert_encode(coords, bits: int) -> np.ndarray:
    """Hilbert-curve index of each coordinate row."""
    arr = _as_coords(coords)
    n_dims = arr.shape[1]
    _check_width(n_dims, bits)
    if arr.size and arr.max() >= (1 << bits):
        raise MappingError("coordinate exceeds bit width")
    if n_dims == 1:
        return arr[:, 0].copy()
    x = [arr[:, i].copy() for i in range(n_dims)]
    x = _axes_to_transpose(x, bits)
    return _interleave_transposed(x, bits)


def hilbert_decode(codes, n_dims: int, bits: int) -> np.ndarray:
    """Inverse of :func:`hilbert_encode`."""
    _check_width(n_dims, bits)
    codes = _as_codes(codes)
    if n_dims == 1:
        return codes[:, np.newaxis].copy()
    x = _deinterleave_transposed(codes, n_dims, bits)
    x = _transpose_to_axes(x, bits)
    return np.stack(x, axis=1)
