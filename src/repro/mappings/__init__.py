"""Baseline data-placement algorithms the paper compares MultiMap against."""

from repro.mappings.base import Mapper, RequestPlan, coalesce_ranks, enumerate_box
from repro.mappings.gray import GrayMapper
from repro.mappings.hilbert import HilbertMapper
from repro.mappings.linear import CurveMapper, LinearMapper
from repro.mappings.naive import NaiveMapper
from repro.mappings.zorder import ZOrderMapper

__all__ = [
    "CurveMapper",
    "GrayMapper",
    "HilbertMapper",
    "LinearMapper",
    "Mapper",
    "NaiveMapper",
    "RequestPlan",
    "ZOrderMapper",
    "coalesce_ranks",
    "enumerate_box",
]
