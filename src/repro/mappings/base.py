"""Mapper API: how a multidimensional dataset turns into disk requests.

A :class:`Mapper` owns a dataset's grid ``dims`` and an :class:`Extent` on
one disk of a logical volume, and translates cells and queries into LBNs.
Its product is a :class:`RequestPlan` — runs of consecutive LBNs plus a
scheduling-policy hint — which the storage manager hands to the drive.

Cells occupy ``cell_blocks`` consecutive LBNs each (1 by default: the
paper's evaluation maps each cell to a single 512-byte block, §5.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError, QueryError
from repro.lvm.volume import Extent

__all__ = ["RequestPlan", "Mapper", "coalesce_ranks", "enumerate_box"]


@dataclass
class RequestPlan:
    """Runs of consecutive LBNs plus an issue-order hint.

    ``policy`` is the order the storage manager issues the runs in:
    ``"sorted"`` (ascending LBN — what the paper's storage manager does for
    the linearised mappings), ``"fifo"`` (preserve the given order, e.g. a
    semi-sequential path), or ``"sptf"`` (let the drive's queue scheduler
    reorder within its window).

    ``merge_gap`` caps how large a hole (in blocks) the storage manager may
    read through when coalescing this plan: None defers to the manager's
    default (dense range scans), 0 restricts to exactly-touching runs
    (beams fetch sparse single blocks, per the paper's §5.2).
    """

    starts: np.ndarray
    lengths: np.ndarray
    policy: str = "sorted"
    merge_gap: int | None = None

    @property
    def n_runs(self) -> int:
        return int(self.starts.size)

    @property
    def n_blocks(self) -> int:
        return int(self.lengths.sum()) if self.lengths.size else 0

    def __post_init__(self) -> None:
        self.starts = np.asarray(self.starts, dtype=np.int64)
        self.lengths = np.asarray(self.lengths, dtype=np.int64)
        if self.starts.ndim != 1 or self.lengths.ndim != 1:
            raise MappingError("starts/lengths must be 1-D arrays")
        if self.starts.shape != self.lengths.shape:
            raise MappingError("starts/lengths shape mismatch")
        # empty plans are legal (a fully cache-resident query's miss
        # plan), but every present run must cover at least one block
        if self.lengths.size and int(self.lengths.min()) < 1:
            raise MappingError("run lengths must be >= 1")

    @classmethod
    def from_arrays(
        cls,
        starts: np.ndarray,
        lengths: np.ndarray,
        policy: str = "sorted",
        merge_gap: int | None = None,
    ) -> "RequestPlan":
        """Wrap already-valid int64 run arrays without re-validating.

        The trusted constructor of the preparation hot path (mappers,
        run merging, slice splitting): callers guarantee 1-D int64
        arrays of equal shape with all lengths >= 1.
        """
        plan = cls.__new__(cls)
        plan.starts = starts
        plan.lengths = lengths
        plan.policy = policy
        plan.merge_gap = merge_gap
        return plan


def coalesce_ranks(ranks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Collapse a sorted array of distinct ranks into (starts, lengths) of
    maximal consecutive runs."""
    ranks = np.asarray(ranks, dtype=np.int64)
    if ranks.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    breaks = np.flatnonzero(np.diff(ranks) != 1)
    starts_idx = np.concatenate(([0], breaks + 1))
    ends_idx = np.concatenate((breaks, [ranks.size - 1]))
    starts = ranks[starts_idx]
    lengths = ranks[ends_idx] - starts + 1
    return starts, lengths


def enumerate_box(lo, hi) -> np.ndarray:
    """All integer coordinates of the half-open box [lo, hi) as an
    (n_cells, n_dims) array with dimension 0 varying fastest."""
    axes = [np.arange(int(a), int(b), dtype=np.int64) for a, b in zip(lo, hi)]
    grids = np.meshgrid(*axes, indexing="ij")
    # 'ij' indexing makes the *last* axis vary fastest when raveled; we
    # want dim 0 fastest, so transpose the stack order.
    stacked = np.stack([g.T.ravel() for g in grids], axis=1)
    return stacked


class Mapper(ABC):
    """Base class of every data-placement algorithm in this package."""

    #: short identifier used by benchmarks and reports
    name: str = "abstract"

    def __init__(
        self,
        dims,
        extent: Extent | None,
        cell_blocks: int = 1,
        disk: int | None = None,
    ):
        dims = tuple(int(s) for s in dims)
        if not dims or any(s < 1 for s in dims):
            raise MappingError(f"invalid dims {dims}")
        if cell_blocks < 1:
            raise MappingError("cell_blocks must be >= 1")
        self.dims = dims
        self.extent = extent
        self.cell_blocks = int(cell_blocks)
        if disk is None:
            disk = extent.disk if extent is not None else 0
        self.disk_index = int(disk)

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.dims))

    # ------------------------------------------------------------------
    # to be provided by subclasses
    # ------------------------------------------------------------------

    @abstractmethod
    def lbns(self, coords) -> np.ndarray:
        """First LBN of each cell; ``coords`` is (n_cells, n_dims)."""

    @abstractmethod
    def range_plan(self, lo, hi) -> RequestPlan:
        """Plan fetching every cell of the half-open box [lo, hi)."""

    def beam_plan(self, axis: int, fixed, lo: int = 0, hi: int | None = None
                  ) -> RequestPlan:
        """Plan a beam query: all cells along ``axis`` with the other
        coordinates pinned to ``fixed`` (whose ``axis`` entry is ignored).

        The default implementation maps each cell and issues the (sorted,
        coalesced) result; subclasses override to exploit their layout.
        """
        coords = self._beam_coords(axis, fixed, lo, hi)
        ranks_lbns = np.sort(self.lbns(coords))
        starts, lengths = coalesce_ranks(
            self._expand_cells(ranks_lbns)
        )
        return RequestPlan.from_arrays(starts, lengths, "sorted", 0)

    def lbns_batch(self, coords_groups) -> list[np.ndarray]:
        """Translate many coordinate groups in one vectorised pass.

        Returns one LBN array per group, identical to calling
        :meth:`lbns` per group; concatenating first amortises the
        encode/table-lookup cost across the whole batch (the per-chunk
        loop of a scatter-gather query, a reorg's per-copy translation).
        """
        groups = [self._check_coords(g) for g in coords_groups]
        if not groups:
            return []
        if len(groups) == 1:
            return [self.lbns(groups[0])]
        lbns = self.lbns(np.concatenate(groups, axis=0))
        splits = np.cumsum([g.shape[0] for g in groups[:-1]])
        return np.split(lbns, splits)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _beam_coords(self, axis, fixed, lo, hi) -> np.ndarray:
        if not 0 <= axis < self.n_dims:
            raise QueryError(f"axis {axis} out of range")
        hi = self.dims[axis] if hi is None else int(hi)
        if not 0 <= lo < hi <= self.dims[axis]:
            raise QueryError(f"beam span [{lo}, {hi}) invalid")
        fixed = tuple(fixed)
        if len(fixed) != self.n_dims:
            raise QueryError("fixed must have one entry per dimension")
        for d, v in enumerate(fixed):
            if d != axis and not 0 <= int(v) < self.dims[d]:
                raise QueryError(f"fixed[{d}]={v} out of range")
        count = hi - lo
        coords = np.empty((count, self.n_dims), dtype=np.int64)
        for d, v in enumerate(fixed):
            coords[:, d] = 0 if d == axis else int(v)
        coords[:, axis] = np.arange(lo, hi)
        return coords

    def _check_box(self, lo, hi) -> tuple[tuple[int, ...], tuple[int, ...]]:
        lo = tuple(int(v) for v in lo)
        hi = tuple(int(v) for v in hi)
        if len(lo) != self.n_dims or len(hi) != self.n_dims:
            raise QueryError("box rank does not match dataset rank")
        for d in range(self.n_dims):
            if not 0 <= lo[d] < hi[d] <= self.dims[d]:
                raise QueryError(
                    f"box [{lo[d]}, {hi[d]}) invalid on axis {d}"
                )
        return lo, hi

    def _check_coords(self, coords) -> np.ndarray:
        arr = np.asarray(coords, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2 or arr.shape[1] != self.n_dims:
            raise QueryError("coords must be (n_cells, n_dims)")
        if arr.size:
            upper = np.asarray(self.dims, dtype=np.int64)
            if arr.min() < 0 or (arr >= upper).any():
                raise QueryError("coordinate out of dataset bounds")
        return arr

    def _expand_cells(self, first_lbns: np.ndarray) -> np.ndarray:
        """Turn per-cell first-LBNs into per-block LBNs (cell_blocks > 1)."""
        if self.cell_blocks == 1:
            return first_lbns
        offs = np.arange(self.cell_blocks, dtype=np.int64)
        return (first_lbns[:, np.newaxis] + offs).ravel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(dims={self.dims})"
