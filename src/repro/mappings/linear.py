"""Shared machinery for the linearised (1-D order) mappings.

Naive, Z-order, Hilbert and Gray all impose a *total order* on the cells
and store them at consecutive LBNs in that order (rank-compaction: the
paper packs curve-ordered points sequentially with fill factor 1, §5.2).
The only difference between them is the rank function.

For the curve mappings on non-power-of-two grids the rank of a cell is its
position among the *occupied* cells in curve order; that is computed by
building the sorted table of all cell codes once (cached) and using binary
search — fully vectorised, since benchmarks push millions of cells through
this path.  The table depends only on the curve class and the grid dims,
so it is published read-only through :data:`repro.perf.memo.MEMO` and
shared by every clone of the mapper (``with_layout`` re-runs, per-chunk
mappers of equal shape) instead of being rebuilt per instance.
"""

from __future__ import annotations

import numpy as np

from repro.mappings import curves
from repro.mappings.base import (
    Mapper,
    RequestPlan,
    coalesce_ranks,
    enumerate_box,
)
from repro.perf.memo import MEMO

__all__ = ["LinearMapper", "CurveMapper"]


class LinearMapper(Mapper):
    """A mapping defined by a total order (rank) over cells."""

    def rank(self, coords: np.ndarray) -> np.ndarray:
        """Position of each cell in the on-disk order.  Subclasses provide."""
        raise NotImplementedError

    def lbns(self, coords) -> np.ndarray:
        arr = self._check_coords(coords)
        return self.extent.start + self.rank(arr) * self.cell_blocks

    def plan_from_ranks(
        self,
        ranks: np.ndarray,
        policy: str = "sorted",
        merge_gap: int | None = None,
    ) -> RequestPlan:
        """Build a sorted plan straight from cell ranks.

        Ranks are coalesced *before* scaling to blocks: cells at
        consecutive ranks occupy consecutive block groups, so rank runs
        and block runs coincide — bit-identical to expanding every
        cell's blocks first, without materialising them.
        """
        ranks = np.sort(np.asarray(ranks, dtype=np.int64))
        starts, lengths = coalesce_ranks(ranks)
        cb = self.cell_blocks
        return RequestPlan.from_arrays(
            self.extent.start + starts * cb, lengths * cb, policy, merge_gap
        )

    def beam_plan(self, axis: int, fixed, lo: int = 0, hi: int | None = None
                  ) -> RequestPlan:
        coords = self._beam_coords(axis, fixed, lo, hi)
        return self.plan_from_ranks(self.rank(coords), "sorted", 0)

    def range_plan(self, lo, hi) -> RequestPlan:
        lo, hi = self._check_box(lo, hi)
        return self.plan_from_ranks(self.rank(enumerate_box(lo, hi)))


class CurveMapper(LinearMapper):
    """Rank = position along a space-filling curve, rank-compacted."""

    def __init__(self, dims, extent, cell_blocks: int = 1):
        super().__init__(dims, extent, cell_blocks)
        self.bits = curves.bits_for(self.dims)
        self._code_table: np.ndarray | None = None

    def encode(self, coords: np.ndarray) -> np.ndarray:
        """Curve code of each coordinate row.  Subclasses provide."""
        raise NotImplementedError

    def _memo_key(self) -> tuple:
        cls = type(self)
        return (cls.__module__, cls.__qualname__, self.dims)

    def _build_code_table(self) -> np.ndarray:
        dims = self.dims
        n = self.n_cells
        table = np.empty(n, dtype=np.int64)
        last = dims[-1]
        per_slab = n // last
        lo = [0] * len(dims)
        hi = list(dims)
        for s in range(last):
            lo[-1], hi[-1] = s, s + 1
            coords = enumerate_box(lo, hi)
            table[s * per_slab:(s + 1) * per_slab] = self.encode(coords)
        table.sort()
        # published through the memo and shared across mapper clones
        table.flags.writeable = False
        return table

    def code_table(self) -> np.ndarray:
        """Sorted codes of every cell in the grid (built lazily, shared
        across clones through the memo, read-only).

        Building enumerates the whole grid in slabs along the last axis to
        bound peak memory; the result is one int64 per cell.
        """
        if self._code_table is None:
            self._code_table = MEMO.get_or_build(
                "code_table", self._memo_key(), self._build_code_table
            )
        return self._code_table

    def rank(self, coords: np.ndarray) -> np.ndarray:
        codes = self.encode(coords)
        table = self.code_table()
        return np.searchsorted(table, codes)

    def drop_cache(self) -> None:
        """Free the cached code table (benchmark hygiene) — the shared
        memo entry is evicted too, so the next use rebuilds cold."""
        self._code_table = None
        MEMO.evict("code_table", self._memo_key())
