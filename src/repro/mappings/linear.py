"""Shared machinery for the linearised (1-D order) mappings.

Naive, Z-order, Hilbert and Gray all impose a *total order* on the cells
and store them at consecutive LBNs in that order (rank-compaction: the
paper packs curve-ordered points sequentially with fill factor 1, §5.2).
The only difference between them is the rank function.

For the curve mappings on non-power-of-two grids the rank of a cell is its
position among the *occupied* cells in curve order; that is computed by
building the sorted table of all cell codes once (cached) and using binary
search — fully vectorised, since benchmarks push millions of cells through
this path.
"""

from __future__ import annotations

import numpy as np

from repro.mappings import curves
from repro.mappings.base import (
    Mapper,
    RequestPlan,
    coalesce_ranks,
    enumerate_box,
)

__all__ = ["LinearMapper", "CurveMapper"]


class LinearMapper(Mapper):
    """A mapping defined by a total order (rank) over cells."""

    def rank(self, coords: np.ndarray) -> np.ndarray:
        """Position of each cell in the on-disk order.  Subclasses provide."""
        raise NotImplementedError

    def lbns(self, coords) -> np.ndarray:
        arr = self._check_coords(coords)
        return self.extent.start + self.rank(arr) * self.cell_blocks

    def range_plan(self, lo, hi) -> RequestPlan:
        lo, hi = self._check_box(lo, hi)
        coords = enumerate_box(lo, hi)
        ranks = np.sort(self.rank(coords))
        starts, lengths = coalesce_ranks(ranks)
        return RequestPlan(
            self.extent.start + starts * self.cell_blocks,
            lengths * self.cell_blocks,
            policy="sorted",
        )


class CurveMapper(LinearMapper):
    """Rank = position along a space-filling curve, rank-compacted."""

    def __init__(self, dims, extent, cell_blocks: int = 1):
        super().__init__(dims, extent, cell_blocks)
        self.bits = curves.bits_for(self.dims)
        self._code_table: np.ndarray | None = None

    def encode(self, coords: np.ndarray) -> np.ndarray:
        """Curve code of each coordinate row.  Subclasses provide."""
        raise NotImplementedError

    def code_table(self) -> np.ndarray:
        """Sorted codes of every cell in the grid (built lazily, cached).

        Building enumerates the whole grid in slabs along the last axis to
        bound peak memory; the result is one int64 per cell.
        """
        if self._code_table is None:
            dims = self.dims
            n = self.n_cells
            table = np.empty(n, dtype=np.int64)
            last = dims[-1]
            per_slab = n // last
            lo = [0] * len(dims)
            hi = list(dims)
            for s in range(last):
                lo[-1], hi[-1] = s, s + 1
                coords = enumerate_box(lo, hi)
                table[s * per_slab:(s + 1) * per_slab] = self.encode(coords)
            table.sort()
            self._code_table = table
        return self._code_table

    def rank(self, coords: np.ndarray) -> np.ndarray:
        codes = self.encode(coords)
        table = self.code_table()
        return np.searchsorted(table, codes)

    def drop_cache(self) -> None:
        """Free the cached code table (benchmark hygiene)."""
        self._code_table = None
