"""Gray-coded curve mapping (Faloutsos 1986).

The paper lists the Gray-coded curve with Z-order and Hilbert among the
linearising approaches of prior work; it is included here as an extra
baseline (its clustering sits between Z-order and Hilbert).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_layout
from repro.mappings import curves
from repro.mappings.linear import CurveMapper

__all__ = ["GrayMapper"]


@register_layout("gray")
class GrayMapper(CurveMapper):
    """Cells ordered along the binary-reflected Gray-code curve."""

    name = "gray"

    def encode(self, coords: np.ndarray) -> np.ndarray:
        return curves.gray_rank(coords, self.bits)
