"""Analytical expected-cost model (paper §5 / CMU-PDL-05-102)."""

from repro.analytic.model import AnalyticModel, DriveParameters

__all__ = ["AnalyticModel", "DriveParameters"]
