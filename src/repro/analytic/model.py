"""Expected-cost model for Naive and MultiMap queries (paper §5).

The paper references an analytical model (technical report CMU-PDL-05-102)
that "calculates the expected cost in terms of total I/O time for Naive
and MultiMap given disk parameters, the dimensions of the dataset, and the
size of the query".  This module provides that model for our simulated
drives; the validation benchmark checks it against the simulator.

The model works from a handful of drive parameters — rotation, settle,
command overhead, track length, adjacency offset, seek curve — and the
usual independence approximations (uniformly distributed rotational phase
at arrival for non-chained requests).  It intentionally ignores zone
transitions and cube-grid edge effects, so expect agreement within tens of
percent, not exactness; the tests pin the tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.disk.adjacency import AdjacencyModel
from repro.disk.models import DiskModel
from repro.errors import QueryError

__all__ = ["DriveParameters", "AnalyticModel"]


@dataclass(frozen=True)
class DriveParameters:
    """The inputs the cost model needs, per zone."""

    rotation_ms: float
    settle_ms: float
    overhead_ms: float
    track_length: int
    adjacency_offset: int  # A, in sectors
    avg_seek_ms: float
    depth: int

    @property
    def sector_ms(self) -> float:
        return self.rotation_ms / self.track_length

    @property
    def hop_ms(self) -> float:
        """Semi-sequential start-to-start cadence."""
        return self.adjacency_offset * self.sector_ms

    @classmethod
    def from_model(
        cls, model: DiskModel, zone_index: int = 0, depth: int | None = None
    ) -> "DriveParameters":
        adj = AdjacencyModel.for_model(model, depth=depth)
        zone = model.geometry.zone(zone_index)
        mech = model.mechanics
        return cls(
            rotation_ms=mech.rotation_ms,
            settle_ms=mech.settle_ms,
            overhead_ms=mech.command_overhead_ms,
            track_length=zone.sectors_per_track,
            adjacency_offset=adj.adjacency_offset_sectors(zone_index),
            avg_seek_ms=mech.seek.avg_seek_ms,
            depth=adj.D,
        )


class AnalyticModel:
    """Expected I/O times for beam and range queries."""

    def __init__(self, params: DriveParameters):
        self.p = params

    # ------------------------------------------------------------------
    # primitive access-pattern costs
    # ------------------------------------------------------------------

    def initial_positioning_ms(self) -> float:
        """Average seek plus half a rotation: cost of getting started."""
        return self.p.avg_seek_ms + self.p.rotation_ms / 2.0

    def streaming_ms(self, n_blocks: int) -> float:
        """Sequential transfer including skewed track switches."""
        p = self.p
        tracks_crossed = n_blocks // p.track_length
        # each boundary costs about one settle's worth of rotation
        return n_blocks * p.sector_ms + tracks_crossed * p.settle_ms

    def stride_step_ms(self, stride_blocks: int, transfer_blocks: int = 1
                       ) -> float:
        """Expected cost of the next request at a fixed forward stride.

        Strides below a track wait for the platter to carry the target
        around (the full stride's rotation if the command overhead fits in
        the gap, a whole extra revolution if it does not); larger strides
        pay settle/seek plus average rotational latency.
        """
        p = self.p
        rot = p.rotation_ms
        if stride_blocks <= 0:
            raise QueryError("stride must be positive")
        in_track = stride_blocks % p.track_length
        tracks = stride_blocks // p.track_length
        if tracks == 0:
            gap = (in_track - transfer_blocks) * p.sector_ms
            same_track_cost = (
                in_track * p.sector_ms
                if gap >= p.overhead_ms
                else p.overhead_ms + rot - (gap if gap > 0 else 0)
            )
            # crossing probability: the stride wraps past the track end for
            # a `in_track / track_length` fraction of starting positions
            p_cross = in_track / p.track_length
            cross_cost = (
                p.overhead_ms + p.settle_ms + rot / 2.0
                + transfer_blocks * p.sector_ms
            )
            return (1 - p_cross) * same_track_cost + p_cross * cross_cost
        cylinders = max(tracks // 4, 1)  # surfaces folded into the curve
        seek = p.settle_ms if cylinders <= 32 else p.avg_seek_ms
        return (
            p.overhead_ms + seek + rot / 2.0 + transfer_blocks * p.sector_ms
        )

    def semi_sequential_step_ms(self, transfer_blocks: int = 1) -> float:
        """One semi-sequential hop: an adjacency offset of rotation."""
        extra = max(transfer_blocks - 1, 0) * self.p.sector_ms
        return self.p.hop_ms + extra

    # ------------------------------------------------------------------
    # Naive costs
    # ------------------------------------------------------------------

    def naive_beam_ms(self, dims, axis: int) -> float:
        """Expected total time of a full beam along ``axis``."""
        dims = tuple(int(s) for s in dims)
        n = dims[axis]
        if axis == 0:
            return self.initial_positioning_ms() + self.streaming_ms(n)
        stride = int(np.prod(dims[:axis], dtype=np.int64))
        return self.initial_positioning_ms() + (n - 1) * self.stride_step_ms(
            stride
        ) + self.p.sector_ms

    def naive_range_ms(self, dims, shape) -> float:
        """Expected total time of a range query of the given box shape."""
        dims = tuple(int(s) for s in dims)
        shape = tuple(int(w) for w in shape)
        if len(shape) != len(dims):
            raise QueryError("shape rank mismatch")
        w0 = shape[0]
        rows = int(np.prod(shape[1:], dtype=np.int64))
        if rows == 0:
            return 0.0
        if w0 == dims[0] and len(dims) > 1 and shape[1] == dims[1]:
            # contiguous slab: streams
            return self.initial_positioning_ms() + self.streaming_ms(
                int(np.prod(shape, dtype=np.int64))
            )
        row_step = self.stride_step_ms(dims[0], transfer_blocks=w0)
        # jumps between planes (dims >= 2) cost a short seek + latency
        jumps = 0
        if len(shape) > 2:
            jumps = int(np.prod(shape[2:], dtype=np.int64))
        jump_extra = max(
            0.0,
            (self.p.overhead_ms + self.p.settle_ms + self.p.rotation_ms / 2)
            - row_step,
        )
        return (
            self.initial_positioning_ms()
            + rows * row_step
            + jumps * jump_extra
        )

    # ------------------------------------------------------------------
    # MultiMap costs
    # ------------------------------------------------------------------

    def multimap_beam_ms(self, dims, axis: int, K=None) -> float:
        """Expected total time of a MultiMap beam along ``axis``."""
        dims = tuple(int(s) for s in dims)
        n = dims[axis]
        if axis == 0:
            return self.initial_positioning_ms() + self.streaming_ms(n)
        hop = self.semi_sequential_step_ms()
        boundary_jumps = 0
        if K is not None:
            boundary_jumps = max(math.ceil(n / int(K[axis])) - 1, 0)
        jump_cost = (
            self.p.overhead_ms + self.p.settle_ms + self.p.rotation_ms / 2
        )
        return (
            self.initial_positioning_ms()
            + (n - 1 - boundary_jumps) * hop
            + boundary_jumps * jump_cost
            + self.p.sector_ms
        )

    def multimap_range_ms(self, dims, shape, K=None) -> float:
        """Expected total time of a MultiMap range query.

        Per row: command overhead + settle + residual alignment + row
        transfer, where the residual alignment reflects the scheduler
        weaving rows along the adjacency-offset lattice (a fraction of the
        offset on average).
        """
        dims = tuple(int(s) for s in dims)
        shape = tuple(int(w) for w in shape)
        w0 = shape[0]
        rows = int(np.prod(shape[1:], dtype=np.int64))
        if rows == 0:
            return 0.0
        p = self.p
        transfer = w0 * p.sector_ms
        align = 0.35 * p.hop_ms  # empirical weave residual
        row_cost = p.overhead_ms + p.settle_ms + align + transfer
        # a row can never beat the semi-sequential cadence
        row_cost = max(row_cost, self.semi_sequential_step_ms(w0))
        return self.initial_positioning_ms() + rows * row_cost

    # ------------------------------------------------------------------
    # headline comparisons
    # ------------------------------------------------------------------

    def predicted_beam_speedups(self, dims, K=None) -> dict[int, float]:
        """Naive/MultiMap beam time ratio for every axis."""
        return {
            axis: self.naive_beam_ms(dims, axis)
            / self.multimap_beam_ms(dims, axis, K)
            for axis in range(len(dims))
        }

    def predicted_range_speedup(self, dims, shape, K=None) -> float:
        return self.naive_range_ms(dims, shape) / self.multimap_range_ms(
            dims, shape, K
        )
