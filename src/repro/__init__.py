"""repro — reproduction of MultiMap (Shao et al., ICDE 2007).

MultiMap maps N-dimensional datasets onto disks so that one dimension gets
full streaming bandwidth and every other dimension gets *semi-sequential*
access (settle-time hops with zero rotational latency) via the adjacency
model of modern disks.

Public surface
--------------
The :class:`Dataset` façade (re-exported from :mod:`repro.api`) is the
entry point: it owns the drive/volume/mapper/storage-manager wiring,
resolves layouts and drives by name through string-keyed registries, and
runs fluent query batches into structured :class:`Report` objects::

    from repro import Dataset

    ds = Dataset.create((216, 64, 64), layout="multimap", drive="atlas10k3",
                        seed=42)
    print(ds.random_beams(axis=1, n=5).run().render_table())

The layers underneath remain importable for direct use:

``repro.api``       the façade, registries, query batches, reports
``repro.disk``      simulated drives, adjacency model, characterisation
``repro.lvm``       logical volumes and chunk declustering
``repro.mappings``  Naive / Z-order / Hilbert / Gray baselines
``repro.core``      MultiMap itself: basic cubes, planner, mapper
``repro.query``     beam and range queries, storage manager
``repro.cache``     buffer pool, eviction policies, locality prefetch
``repro.shard``     multi-disk scale-out: shard maps, scatter-gather
``repro.replica``   fault tolerance: replicated shards, failure injection
``repro.ingest``    streaming ingest, bulk loaders, write-path pipeline
``repro.traffic``   concurrent multi-client traffic simulation
``repro.perf``      plan-prep fast path: memoization, probes, perf sweep
``repro.obs``       telemetry: span tracing, metrics, trace exporters
``repro.monitor``   windowed SLO monitoring, health states, run diffing
``repro.explain``   EXPLAIN/ANALYZE plan diagnosis, regression attribution
``repro.datasets``  the paper's three evaluation datasets
``repro.analytic``  the expected-cost model
``repro.bench``     one regenerator per paper figure

All façade attributes load lazily (PEP 562): ``import repro`` stays cheap.
"""

from __future__ import annotations

__version__ = "1.9.0"

#: single source of truth for the lazy public surface: name -> module
_LAZY_EXPORTS = {
    "DRIVES": "repro.api.registry",
    "Dataset": "repro.api.dataset",
    "LAYOUTS": "repro.api.registry",
    "QueryBatch": "repro.api.dataset",
    "QueryRecord": "repro.api.report",
    "Report": "repro.api.report",
    "drive_names": "repro.api.registry",
    "get_drive": "repro.api.registry",
    "get_layout": "repro.api.registry",
    "layout_names": "repro.api.registry",
    "register_drive": "repro.api.registry",
    "register_layout": "repro.api.registry",
    "BeamQuery": "repro.query.workload",
    "RangeQuery": "repro.query.workload",
    "QueryResult": "repro.query.executor",
    "TrafficRun": "repro.api.traffic",
    "TrafficReport": "repro.traffic.stats",
    "BufferPool": "repro.cache",
    "CacheStats": "repro.cache",
    "policy_names": "repro.cache",
    "prefetcher_names": "repro.cache",
    "register_policy": "repro.cache",
    "register_prefetcher": "repro.cache",
    "ShardedBufferPool": "repro.cache",
    "ShardMap": "repro.shard",
    "ShardedStorageManager": "repro.shard",
    "ReplicaMap": "repro.replica",
    "ReplicatedStorageManager": "repro.replica",
    "FailureInjector": "repro.replica",
    "FailureSchedule": "repro.replica",
    "placement_names": "repro.replica",
    "read_policy_names": "repro.replica",
    "register_placement": "repro.replica",
    "register_read_policy": "repro.replica",
    "register_strategy": "repro.lvm.striping",
    "strategy_names": "repro.lvm.striping",
    "IngestRun": "repro.api.ingest",
    "IngestPipeline": "repro.ingest",
    "IngestReport": "repro.ingest",
    "WriteMix": "repro.ingest",
    "loader_names": "repro.ingest",
    "register_loader": "repro.ingest",
    "stream_names": "repro.ingest",
    "register_stream": "repro.ingest",
    "Telemetry": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "Tracer": "repro.obs",
    "EXPORTERS": "repro.obs",
    "exporter_names": "repro.obs",
    "register_exporter": "repro.obs",
    "COST_CLASSES": "repro.explain",
    "attribute_runs": "repro.explain",
    "explain_query": "repro.explain",
    "analyze_query": "repro.explain",
}

__all__ = sorted([*_LAZY_EXPORTS, "__version__"])


def __getattr__(name: str):
    try:
        module = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(module), name)


def __dir__():
    return sorted(__all__)
