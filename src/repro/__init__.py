"""repro — reproduction of MultiMap (Shao et al., ICDE 2007).

MultiMap maps N-dimensional datasets onto disks so that one dimension gets
full streaming bandwidth and every other dimension gets *semi-sequential*
access (settle-time hops with zero rotational latency) via the adjacency
model of modern disks.

Public surface
--------------
``repro.disk``      simulated drives, adjacency model, characterisation
``repro.lvm``       logical volumes and chunk declustering
``repro.mappings``  Naive / Z-order / Hilbert / Gray baselines
``repro.core``      MultiMap itself: basic cubes, planner, mapper
``repro.query``     beam and range queries, storage manager
``repro.datasets``  the paper's three evaluation datasets
``repro.analytic``  the expected-cost model
``repro.bench``     one regenerator per paper figure
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
