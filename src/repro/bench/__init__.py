"""Benchmark harness: one regenerator per paper figure."""

from repro.bench.figures import (
    PAPER_SCALE,
    SMALL_SCALE,
    Scale,
    fig1a_seek_profile,
    fig1b_semi_sequential,
    fig6a_beam,
    fig6b_range,
    fig7a_beam,
    fig7b_range,
    fig8_olap,
    headline_summary,
)
from repro.bench.harness import FIGURES, run_all, run_figure

__all__ = [
    "FIGURES",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "Scale",
    "fig1a_seek_profile",
    "fig1b_semi_sequential",
    "fig6a_beam",
    "fig6b_range",
    "fig7a_beam",
    "fig7b_range",
    "fig8_olap",
    "headline_summary",
    "run_all",
    "run_figure",
]
