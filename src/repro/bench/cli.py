"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``
(also installed as ``multimap-bench``).

Eleven modes: the default regenerates paper figures, the ``traffic``
subcommand runs the multi-client traffic storm
(:func:`repro.traffic.storm.run_storm`), the ``cache`` subcommand
sweeps buffer-pool capacities per layout
(:func:`repro.cache.sweep.run_cache_sweep`), the ``scale`` subcommand
sweeps shard counts per layout
(:func:`repro.shard.scale.run_scale_sweep`), the ``avail`` subcommand
sweeps replication factors under a seeded disk failure
(:func:`repro.replica.avail.run_avail_sweep`), the ``ingest``
subcommand sweeps ingest goodput per layout x bulk loader
(:func:`repro.ingest.sweep.run_ingest_sweep`), the ``perf``
subcommand measures plan-preparation throughput per layout
(:func:`repro.perf.sweep.run_perf_sweep`) — with ``--check`` it gates
the numbers against a pinned baseline such as the checked-in
``BENCH_perf.json`` and exits non-zero on regression — and the
``trace`` subcommand runs a telemetry-attached storm
(:func:`repro.obs.trace_cmd.run_trace`) and prints the slowest
queries, phase totals, and a per-disk utilisation timeline (with
``--export`` it writes the span trace through a registered exporter).
The ``dashboard`` subcommand runs a monitored storm
(:func:`repro.monitor.dashboard.run_dashboard`) and renders the
windowed time-series, SLO alerts, and health timeline, the
``explain`` subcommand inspects a query's prepared plan and predicted
mechanical cost per layout (:func:`repro.explain.run_explain`) — with
``--analyze`` it executes once and reconciles prediction against
measurement, with ``--model`` it prints the analytic model's predicted
speedups — and the ``diff`` subcommand compares two exported run
reports (:func:`repro.monitor.diff.diff_runs`), exiting 1 when a
metric moved beyond the tolerance band (``--attribute`` ranks the
suspects behind the regression).
The ``--list-*`` flags (one per registry, all driven by the
``_LISTINGS`` table below) print the registered names with
descriptions and exit, so users can discover what every registry holds
without reading source.

Examples::

    repro-bench --list-layouts --list-drives
    repro-bench --list-policies --list-prefetchers
    repro-bench --list-placements --list-read-policies
    repro-bench --scale small --figure fig6a
    repro-bench --scale paper --out results/
    repro-bench traffic --shape 64,64,32 --clients 1,2,4 --queries 10
    repro-bench traffic --arrival poisson --rate 50 --json storm.json
    repro-bench cache --shape 32,16,16 --capacities 0,1024,4096
    repro-bench cache --policy slru --prefetch track --json curve.json
    repro-bench scale --shape 64,64,32 --shards 1,2,4,8
    repro-bench scale --strategy cube_aligned --json scale.json
    repro-bench avail --shape 64,16,16 --disks 3 --ks 1,2,3
    repro-bench avail --placement locality_aligned --json avail.json
    repro-bench --list-loaders --list-streams
    repro-bench ingest --shape 64,16,16 --stream clustered --k 2
    repro-bench ingest --loaders fixed,adaptive --json ingest.json
    repro-bench --list-probes
    repro-bench perf --json BENCH_perf.json
    repro-bench perf --check BENCH_perf.json --json results/perf.json
    repro-bench --list-rules
    repro-bench dashboard --shape 32,12,12 --shards 2 --k 2 \\
        --kill-at 40 --revive-at 160 --json run_a.json
    repro-bench diff run_a.json run_b.json --tolerance 0.05
    repro-bench --list-costs
    repro-bench explain --shape 240,12,12 --layouts multimap,zorder
    repro-bench explain --axis 1 --analyze --model --json explain.json
    repro-bench diff run_a.json run_b.json --attribute
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.harness import FIGURES, run_all

__all__ = ["main"]


def _write_json_report(dest: str, data: dict, default_name: str,
                       quiet: bool) -> Path:
    """Shared ``--json`` writer for report subcommands.

    ``dest`` may be a ``.json`` file path or a directory (the payload
    then lands in ``dest/default_name``); parents are created either
    way and the resolved path is announced unless ``quiet``.
    """
    path = Path(dest)
    if path.suffix != ".json":
        path.mkdir(parents=True, exist_ok=True)
        path = path / default_name
    else:
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, default=str))
    if not quiet:
        print(f"\nsaved {path}")
    return path


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (a zero or negative
    value would silently render an empty table)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _csv_ints(text: str) -> tuple[int, ...]:
    return tuple(int(v) for v in text.split(",") if v)


def _csv_strs(text: str) -> tuple[str, ...]:
    return tuple(v.strip() for v in text.split(",") if v.strip())


def _parse_mix(text: str):
    """``beam:1,beam:2,range:1.0`` -> :class:`QueryMix`."""
    from repro.traffic import BeamDraw, QueryMix, RangeDraw

    parts = []
    for item in _csv_strs(text):
        kind, _, arg = item.partition(":")
        try:
            if kind == "beam":
                parts.append(BeamDraw(int(arg)))
            elif kind == "range":
                parts.append(RangeDraw(float(arg)))
            else:
                raise ValueError(kind)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"mix parts are beam:<axis> or range:<pct>; got {item!r}"
            ) from None
    if not parts:
        raise argparse.ArgumentTypeError(
            "mix needs at least one beam:<axis> or range:<pct> part"
        )
    return QueryMix(parts)


def _traffic_main(args) -> int:
    from repro.traffic import (
        BurstyArrivals,
        ClosedLoop,
        PoissonArrivals,
        render_storm,
        run_storm,
    )

    if args.arrival == "closed":
        arrival = ClosedLoop(think_ms=args.think_ms)
    elif args.arrival == "poisson":
        arrival = PoissonArrivals(rate_qps=args.rate)
    else:
        arrival = BurstyArrivals(burst_rate_per_s=args.rate)
    data = run_storm(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        client_counts=_csv_ints(args.clients),
        drive=args.drive,
        queries_per_client=args.queries,
        mix=args.mix,
        arrival=arrival,
        seed=args.seed,
        slice_runs=args.slice_runs if args.slice_runs > 0 else None,
        head=args.head,
    )
    if not args.quiet:
        print(render_storm(data))
    dest = args.json or args.out
    if dest:
        _write_json_report(dest, data, "traffic.json", args.quiet)
    return 0


def _cache_main(args) -> int:
    from repro.cache import render_cache_sweep, run_cache_sweep

    data = run_cache_sweep(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        capacities=_csv_ints(args.capacities),
        policy=args.policy,
        prefetch=args.prefetch,
        n_beams=args.beams,
        repeats=args.repeats,
        axes=_csv_ints(args.axes),
        region_frac=args.region,
        drive=args.drive,
        seed=args.seed,
    )
    if not args.quiet:
        print(render_cache_sweep(data))
    if args.json:
        _write_json_report(args.json, data, "cache.json", args.quiet)
    return 0


def _add_cache_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "cache",
        help="hit-ratio-vs-capacity sweep per layout",
        description="Replay a seeded overlapping-beam workload against "
        "each layout at rising buffer-pool capacities and report the "
        "cache hit ratio, prefetch accuracy, and query timings — the "
        "memory half of MultiMap's locality dividend.",
    )
    p.add_argument("--shape", default="120,16,16",
                   help="dataset dims, comma-separated; the default "
                   "fills whole minidrive tracks along dim 0")
    p.add_argument("--layouts", default="naive,zorder,hilbert,multimap",
                   help="comma-separated registered layouts")
    p.add_argument("--capacities", default="0,4096,12288,24576",
                   help="comma-separated pool capacities in blocks "
                   "(0 = uncached baseline)")
    p.add_argument("--policy", default="lru",
                   help="eviction policy (lru, slru, scan, or registered)")
    p.add_argument("--prefetch", default="track",
                   help="prefetcher (none, track, adjacent, or registered)")
    p.add_argument("--beams", type=int, default=16,
                   help="beams per round (default 16)")
    p.add_argument("--repeats", type=int, default=3,
                   help="rounds over the same beams (default 3)")
    p.add_argument("--axes", default="1",
                   help="beam axes, cycled (default 1)")
    p.add_argument("--region", type=float, default=0.4,
                   help="fraction of each dim beam anchors cluster in")
    p.add_argument("--drive", default="minidrive",
                   help="registered drive model (default minidrive)")
    p.add_argument("--seed", type=int, default=42,
                   help="workload + head-position seed")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_cache_main)


def _scale_main(args) -> int:
    from repro.shard import render_scale_sweep, run_scale_sweep

    data = run_scale_sweep(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        shard_counts=_csv_ints(args.shards),
        strategy=args.strategy,
        split_axis=args.split_axis,
        n_beams=args.beams,
        axes=_csv_ints(args.axes) if args.axes else None,
        drive=args.drive,
        seed=args.seed,
    )
    if not args.quiet:
        print(render_scale_sweep(data))
    if args.json:
        _write_json_report(args.json, data, "scale.json", args.quiet)
    return 0


def _add_scale_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "scale",
        help="speedup-vs-disks sweep per layout",
        description="Replay a seeded beam workload against each layout "
        "at rising shard counts (chunks declustered across member disks,"
        " queries serviced scatter-gather) and report throughput and "
        "speedup per mapping — the multi-disk half of MultiMap's "
        "locality dividend.",
    )
    p.add_argument("--shape", default="64,64,32",
                   help="dataset dims, comma-separated (default 64,64,32)")
    p.add_argument("--layouts", default="naive,zorder,hilbert,multimap",
                   help="comma-separated registered layouts")
    p.add_argument("--shards", default="1,2,4",
                   help="comma-separated shard counts to sweep")
    p.add_argument("--strategy", default="disk_modulo",
                   help="registered declustering strategy "
                   "(round_robin, disk_modulo, cube_aligned, ...)")
    p.add_argument("--split-axis", type=int, default=1,
                   help="axis the chunking slabs (default 1)")
    p.add_argument("--beams", type=int, default=12,
                   help="beams in the fixed workload (default 12)")
    p.add_argument("--axes", default=None,
                   help="beam axes, cycled (default: every non-streaming "
                   "axis)")
    p.add_argument("--drive", default="atlas10k3",
                   help="registered drive model (default atlas10k3)")
    p.add_argument("--seed", type=int, default=42,
                   help="workload + head-position seed")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_scale_main)


#: one row per registry the CLI can list: (argparse dest, printed
#: title, defining module, registry attribute, --help text).  Both the
#: flag definitions in :func:`main` and :func:`_list_registries` are
#: generated from this table, so adding a registry is one line here.
_LISTINGS = (
    ("list_layouts", "layouts", "repro.api.registry", "LAYOUTS",
     "print registered layout names and exit"),
    ("list_drives", "drives", "repro.api.registry", "DRIVES",
     "print registered drive-model names and exit"),
    ("list_strategies", "strategies", "repro.lvm.striping", "STRATEGIES",
     "print registered declustering strategies and exit"),
    ("list_policies", "cache policies", "repro.cache", "POLICIES",
     "print registered cache eviction policies and exit"),
    ("list_prefetchers", "prefetchers", "repro.cache", "PREFETCHERS",
     "print registered cache prefetchers and exit"),
    ("list_placements", "replica placements", "repro.replica",
     "PLACEMENTS", "print registered replica placements and exit"),
    ("list_read_policies", "read policies", "repro.replica",
     "READ_POLICIES", "print registered replica read policies and exit"),
    ("list_loaders", "bulk loaders", "repro.ingest", "LOADERS",
     "print registered bulk loaders and exit"),
    ("list_streams", "record streams", "repro.ingest", "STREAMS",
     "print registered record streams and exit"),
    ("list_probes", "perf probes", "repro.perf.profile", "PROBE_SPECS",
     "print the perf profiling counters/timers and exit"),
    ("list_exporters", "trace exporters", "repro.obs", "EXPORTERS",
     "print registered trace exporters and exit"),
    ("list_rules", "SLO rules", "repro.monitor", "RULES",
     "print registered SLO monitoring rules and exit"),
    ("list_costs", "dominant-cost classes", "repro.explain",
     "COST_CLASSES",
     "print the dominant-cost classifier's classes and exit"),
)


def _list_registries(args) -> bool:
    """Print the requested registry listings; True if any were asked.

    :class:`~repro.registry.DocsView` resolves each entry's description
    uniformly (``.description`` attribute, else the registrant's
    docstring first line), and ``Registry.items()`` sorts by name, so
    every section prints identically to its hand-written predecessor.
    """
    from importlib import import_module

    from repro.registry import DocsView

    sections = []
    for dest, kind, module, attr, _ in _LISTINGS:
        if not getattr(args, dest):
            continue
        registry = getattr(import_module(module), attr)
        docs = DocsView(registry)
        sections.append((kind, [(name, docs[name]) for name in registry]))
    for kind, rows in sections:
        print(f"registered {kind}:")
        width = max((len(name) for name, _ in rows), default=0)
        for name, desc in rows:
            print(f"  {name:<{width}}  {desc}")
    return bool(sections)


def _avail_main(args) -> int:
    from repro.replica import render_avail_sweep, run_avail_sweep

    data = run_avail_sweep(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        ks=_csv_ints(args.ks),
        n_disks=args.disks,
        placement=args.placement,
        read_policy=args.read_policy,
        n_beams=args.beams,
        axes=_csv_ints(args.axes) if args.axes else None,
        drive=args.drive,
        seed=args.seed,
        kill_disk=args.kill_disk,
    )
    if not args.quiet:
        print(render_avail_sweep(data))
    if args.json:
        _write_json_report(args.json, data, "avail.json", args.quiet)
    return 0


def _add_avail_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "avail",
        help="availability/overhead-vs-k sweep per layout",
        description="Replay a seeded beam workload against each layout "
        "at rising replication factors, healthy and with one seeded "
        "member-disk failure, and report throughput in both modes plus "
        "single-failure availability — the fault-tolerance half of "
        "MultiMap's locality dividend.",
    )
    p.add_argument("--shape", default="64,16,16",
                   help="dataset dims, comma-separated (default 64,16,16)")
    p.add_argument("--layouts", default="naive,zorder,hilbert,multimap",
                   help="comma-separated registered layouts")
    p.add_argument("--ks", default="1,2,3",
                   help="comma-separated replication factors to sweep")
    p.add_argument("--disks", type=int, default=3,
                   help="member disks (>= max k, default 3)")
    p.add_argument("--placement", default="rotated",
                   help="registered replica placement "
                   "(rotated, locality_aligned, ...)")
    p.add_argument("--read-policy", default="primary",
                   help="registered read policy "
                   "(primary, round_robin, least_loaded, ...)")
    p.add_argument("--beams", type=int, default=8,
                   help="beams in the fixed workload (default 8)")
    p.add_argument("--axes", default=None,
                   help="beam axes, cycled (default: every non-streaming "
                   "axis)")
    p.add_argument("--kill-disk", type=int, default=None,
                   help="member disk to kill (default: seeded draw)")
    p.add_argument("--drive", default="atlas10k3",
                   help="registered drive model (default atlas10k3)")
    p.add_argument("--seed", type=int, default=42,
                   help="workload + head-position + victim seed")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_avail_main)


def _ingest_main(args) -> int:
    from repro.ingest import render_ingest_sweep, run_ingest_sweep

    data = run_ingest_sweep(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        loaders=_csv_strs(args.loaders),
        stream=args.stream,
        n_points=args.points,
        batch_points=args.batch_points,
        flush_points=args.flush_points,
        n_shards=args.shards,
        k=args.k,
        strategy=args.strategy,
        drive=args.drive,
        seed=args.seed,
        reorganize=args.reorganize,
    )
    if not args.quiet:
        print(render_ingest_sweep(data))
    if args.json:
        _write_json_report(args.json, data, "ingest.json", args.quiet)
    return 0


def _add_ingest_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "ingest",
        help="ingest-MB/s sweep, layouts x loaders",
        description="Stream a seeded record stream into each layout "
        "under each registered bulk loader (buffered, flushed as whole "
        "basic cubes, replica-consistent) and report write goodput and "
        "overflow per mapping — the write-path half of MultiMap's "
        "locality dividend.",
    )
    p.add_argument("--shape", default="64,16,16",
                   help="dataset dims, comma-separated (default 64,16,16)")
    p.add_argument("--layouts", default="naive,zorder,hilbert,multimap",
                   help="comma-separated registered layouts")
    p.add_argument("--loaders", default="fixed,adaptive",
                   help="comma-separated registered loaders")
    p.add_argument("--stream", default="clustered",
                   help="registered record stream "
                   "(uniform, clustered, drifting)")
    p.add_argument("--points", type=int, default=4096,
                   help="points streamed per cell (default 4096)")
    p.add_argument("--batch-points", type=int, default=256,
                   help="points per arriving batch (default 256)")
    p.add_argument("--flush-points", type=int, default=1024,
                   help="per-disk backlog that triggers a flush")
    p.add_argument("--shards", type=int, default=2,
                   help="member disks (default 2)")
    p.add_argument("--k", type=int, default=1,
                   help="replication factor (default 1)")
    p.add_argument("--strategy", default="disk_modulo",
                   help="registered declustering strategy")
    p.add_argument("--reorganize", action="store_true",
                   help="fold overflow chains back after the stream "
                   "(modelled background I/O counted in total time)")
    p.add_argument("--drive", default="minidrive",
                   help="registered drive model (default minidrive)")
    p.add_argument("--seed", type=int, default=42,
                   help="stream + head-position seed")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_ingest_main)


def _perf_main(args) -> int:
    from repro.perf import check_perf, render_perf_sweep, run_perf_sweep

    data = run_perf_sweep(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        drive=args.drive,
        n_beams=args.beams,
        n_ranges=args.ranges,
        selectivity_pct=args.selectivity,
        full_ranges=args.full_ranges,
        repeats=args.repeats,
        ref_plans=args.ref_plans,
        ref_cell_cap=args.ref_cell_cap,
        seed=args.seed,
    )
    if not args.quiet:
        print(render_perf_sweep(data))
    if args.json:
        _write_json_report(args.json, data, "perf.json", args.quiet)
    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        violations = check_perf(
            data, baseline,
            tolerance=args.tolerance,
            throughput_tolerance=args.throughput_tolerance,
        )
        if violations:
            print(f"perf check FAILED against {args.check}:")
            for v in violations:
                print(f"  {v}")
            return 1
        if not args.quiet:
            print(f"perf check passed against {args.check}")
    return 0


def _add_perf_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "perf",
        help="plan-preparation throughput sweep per layout",
        description="Replay a seeded beam+range workload through each "
        "layout's vectorized plan-preparation fast path and report "
        "plans/s, cells/s, the prep-vs-service split, and the speedup "
        "over the pure-Python per-cell reference (asserted bit-identical"
        " before timing is trusted).  With --check, gate the numbers "
        "against a pinned baseline JSON and exit 1 on regression.",
    )
    p.add_argument("--shape", default="64,64,32",
                   help="dataset dims, comma-separated (default 64,64,32)")
    p.add_argument("--layouts", default="naive,zorder,hilbert,multimap",
                   help="comma-separated registered layouts")
    p.add_argument("--drive", default="atlas10k3",
                   help="registered drive model (default atlas10k3)")
    p.add_argument("--beams", type=int, default=12,
                   help="beams in the workload, axes cycled (default 12)")
    p.add_argument("--ranges", type=int, default=4,
                   help="random range cubes in the workload (default 4)")
    p.add_argument("--selectivity", type=float, default=12.5,
                   help="range-cube selectivity in percent (default 12.5)")
    p.add_argument("--full-ranges", type=int, default=1,
                   help="full-box scans in the workload (default 1)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing passes, best-of (default 3)")
    p.add_argument("--ref-plans", type=int, default=8,
                   help="workload prefix prepared through the reference "
                   "path for the speedup metric (default 8)")
    p.add_argument("--ref-cell-cap", type=int, default=4096,
                   help="skip queries above this many cells in the "
                   "reference subset (default 4096)")
    p.add_argument("--seed", type=int, default=42,
                   help="workload seed (default 42)")
    p.add_argument("--check", default=None, metavar="BASELINE",
                   help="baseline JSON (e.g. BENCH_perf.json) to gate "
                   "against; exit 1 on regression")
    p.add_argument("--tolerance", type=float, default=0.5,
                   help="allowed fractional drop in speedup_vs_reference "
                   "(default 0.5)")
    p.add_argument("--throughput-tolerance", type=float, default=0.9,
                   help="allowed fractional drop in absolute plans/s and "
                   "cells/s — wide by design, shared runners vary "
                   "(default 0.9)")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_perf_main)


def _add_traffic_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "traffic",
        help="multi-client traffic storm across layouts",
        description="Sweep layouts x client counts under a seeded "
        "concurrent workload and report throughput and latency "
        "percentiles per mapping.",
    )
    p.add_argument("--shape", default="64,64,32",
                   help="dataset dims, comma-separated (default 64,64,32)")
    p.add_argument("--layouts", default="naive,zorder,hilbert,multimap",
                   help="comma-separated registered layouts")
    p.add_argument("--clients", default="1,2,4,8",
                   help="comma-separated client counts to sweep")
    p.add_argument("--queries", type=int, default=20,
                   help="queries per client (default 20)")
    p.add_argument("--mix", default=None, type=_parse_mix,
                   help="query mix, e.g. 'beam:1,beam:2,range:1.0' "
                   "(default: beams over axes 1..n-1)")
    p.add_argument("--arrival", choices=("closed", "poisson", "bursty"),
                   default="closed", help="arrival model (default closed)")
    p.add_argument("--think-ms", type=float, default=0.0,
                   help="closed-loop think time in ms")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-client rate for poisson (q/s) or bursty "
                   "(bursts/s)")
    p.add_argument("--drive", default="atlas10k3",
                   help="registered drive model (default atlas10k3)")
    p.add_argument("--seed", type=int, default=42,
                   help="base seed; every client stream derives from it")
    p.add_argument("--slice-runs", type=int, default=64,
                   help="runs per service slice; 0 = whole query per "
                   "batch (default 64)")
    p.add_argument("--head", choices=("random", "carry"), default="random",
                   help="per-query random head position or carry-over")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--out", default=None,
                   help="deprecated alias of --json")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_traffic_main)


def _trace_main(args) -> int:
    from repro.obs.trace_cmd import render_trace, run_trace

    data, tele = run_trace(
        _csv_ints(args.shape),
        layout=args.layout,
        drive=args.drive,
        clients=args.clients,
        queries=args.queries,
        mix=args.mix,
        arrival=args.arrival,
        rate=args.rate,
        think_ms=args.think_ms,
        seed=args.seed,
        slice_runs=args.slice_runs if args.slice_runs else None,
        head=args.head,
        top=args.top,
        bins=args.bins,
        exporter=args.export,
    )
    if not args.quiet:
        print(render_trace(data))
    if args.export:
        text = tele.export(args.export, path=args.trace_out)
        if args.trace_out:
            if not args.quiet:
                print(f"wrote {args.export} trace to {args.trace_out}")
        else:
            print(text, end="" if text.endswith("\n") else "\n")
    if args.json:
        _write_json_report(args.json, data, "trace.json", args.quiet)
    return 0


def _add_trace_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "trace",
        help="telemetry-attached storm: slowest queries, phase totals, "
        "per-disk utilisation",
        description="Run one traffic storm with tracing and metrics "
        "attached, then print the top-N slowest queries with per-phase "
        "breakdowns, aggregate phase totals, and a per-disk utilisation "
        "timeline.  --export renders the span trace through a "
        "registered exporter (see --list-exporters).",
    )
    p.add_argument("--shape", default="64,64,32",
                   help="dataset dims, comma-separated (default 64,64,32)")
    p.add_argument("--layout", default="multimap",
                   help="registered layout (default multimap)")
    p.add_argument("--drive", default="atlas10k3",
                   help="registered drive model (default atlas10k3)")
    p.add_argument("--clients", type=int, default=2,
                   help="concurrent clients (default 2)")
    p.add_argument("--queries", type=int, default=8,
                   help="queries per client (default 8)")
    p.add_argument("--mix", default=None, type=_parse_mix,
                   help="query mix, e.g. 'beam:1,beam:2,range:1.0' "
                   "(default: beams over axes 1..n-1)")
    p.add_argument("--arrival", choices=("closed", "poisson", "bursty"),
                   default="closed", help="arrival model (default closed)")
    p.add_argument("--think-ms", type=float, default=0.0,
                   help="closed-loop think time in ms")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-client rate for poisson (q/s) or bursty "
                   "(bursts/s)")
    p.add_argument("--seed", type=int, default=42,
                   help="base seed; every client stream derives from it")
    p.add_argument("--slice-runs", type=int, default=64,
                   help="runs per service slice; 0 = whole query per "
                   "batch (default 64)")
    p.add_argument("--head", choices=("random", "carry"), default="random",
                   help="per-query random head position or carry-over")
    p.add_argument("--top", type=_positive_int, default=5,
                   help="slowest queries to show (default 5, must be "
                   "positive)")
    p.add_argument("--bins", type=int, default=24,
                   help="time bins in the utilisation timeline "
                   "(default 24)")
    p.add_argument("--export", default=None,
                   help="render the span trace through this exporter "
                   "(jsonl, chrome, prometheus)")
    p.add_argument("--trace-out", default=None,
                   help="file for the exported trace (default: stdout)")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_trace_main)


def _dashboard_main(args) -> int:
    from repro.monitor.dashboard import render_dashboard, run_dashboard

    data, tele = run_dashboard(
        _csv_ints(args.shape),
        layout=args.layout,
        drive=args.drive,
        clients=args.clients,
        queries=args.queries,
        mix=args.mix,
        arrival=args.arrival,
        rate=args.rate,
        think_ms=args.think_ms,
        seed=args.seed,
        slice_runs=args.slice_runs if args.slice_runs else None,
        head=args.head,
        window_ms=args.window_ms,
        shards=args.shards,
        k=args.k,
        kill_at=args.kill_at,
        kill_disk=args.kill_disk,
        revive_at=args.revive_at,
    )
    if not args.quiet:
        print(render_dashboard(data))
    if args.json:
        _write_json_report(args.json, data, "dashboard.json", args.quiet)
    return 0


def _add_dashboard_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "dashboard",
        help="monitored storm: windowed series, SLO alerts, health",
        description="Run one traffic storm with continuous monitoring "
        "attached — optionally killing (and reviving) a member disk "
        "mid-storm — then render the windowed time-series as sparkline "
        "rows and a per-drive utilisation heatmap, plus every SLO "
        "alert and the health-state timeline.  The --json export feeds "
        "repro-bench diff.  Rules are listed by --list-rules.",
    )
    p.add_argument("--shape", default="64,64,32",
                   help="dataset dims, comma-separated (default 64,64,32)")
    p.add_argument("--layout", default="multimap",
                   help="registered layout (default multimap)")
    p.add_argument("--drive", default="atlas10k3",
                   help="registered drive model (default atlas10k3)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent clients (default 4)")
    p.add_argument("--queries", type=int, default=16,
                   help="queries per client (default 16)")
    p.add_argument("--mix", default=None, type=_parse_mix,
                   help="query mix, e.g. 'beam:1,beam:2,range:1.0' "
                   "(default: beams over axes 1..n-1)")
    p.add_argument("--arrival", choices=("closed", "poisson", "bursty"),
                   default="closed", help="arrival model (default closed)")
    p.add_argument("--think-ms", type=float, default=0.0,
                   help="closed-loop think time in ms")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-client rate for poisson (q/s) or bursty "
                   "(bursts/s)")
    p.add_argument("--seed", type=int, default=42,
                   help="base seed; every client stream derives from it")
    p.add_argument("--slice-runs", type=int, default=64,
                   help="runs per service slice; 0 = whole query per "
                   "batch (default 64)")
    p.add_argument("--head", choices=("random", "carry"), default="random",
                   help="per-query random head position or carry-over")
    p.add_argument("--window-ms", type=float, default=50.0,
                   help="tumbling-window size in simulated ms "
                   "(default 50)")
    p.add_argument("--shards", type=int, default=None,
                   help="decluster across this many member disks first")
    p.add_argument("--k", type=int, default=None,
                   help="replication factor (k >= 2 keeps a killed "
                   "disk's data answerable)")
    p.add_argument("--kill-at", type=float, default=None,
                   help="kill a member disk at this simulated ms")
    p.add_argument("--kill-disk", type=int, default=0,
                   help="member disk to kill (default 0)")
    p.add_argument("--revive-at", type=float, default=None,
                   help="revive the killed disk at this simulated ms")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress dashboard output")
    p.set_defaults(func=_dashboard_main)


def _parse_box(spec: str):
    """``lo,lo,..:hi,hi,..`` -> (lo tuple, hi tuple)."""
    try:
        lo_s, hi_s = spec.split(":")
        lo = tuple(int(v) for v in lo_s.split(","))
        hi = tuple(int(v) for v in hi_s.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"box must look like lo,lo:hi,hi — got {spec!r}"
        ) from None
    return lo, hi


def _explain_main(args) -> int:
    from repro.explain import render_explain, run_explain

    data = run_explain(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        drive=args.drive,
        axis=args.axis,
        fixed=_csv_ints(args.fixed) if args.fixed else None,
        box=args.box,
        shards=args.shards,
        k=args.k,
        cache_blocks=args.cache_blocks,
        cache_policy=args.cache_policy,
        prefetch=args.prefetch,
        seed=args.seed,
        analyze=args.analyze,
        model=args.model,
    )
    if not args.quiet:
        print(render_explain(data))
    if args.json:
        _write_json_report(args.json, data, "explain.json", args.quiet)
    return 0


def _add_explain_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "explain",
        help="inspect a query's plan and predicted cost (EXPLAIN), "
        "optionally execute and reconcile (ANALYZE)",
        description="EXPLAIN one beam or range query per layout: the "
        "prepared plan's run structure and access-pattern "
        "classification, the predicted mechanical cost from the drive "
        "model, expected cache hits, shard fan-out, and replica "
        "routing — with zero side effects on the dataset.  With "
        "--analyze the query is then executed once under a private "
        "trace and the prediction is reconciled against measurement "
        "per phase and per disk.  --model prints the analytic model's "
        "predicted beam/range speedups.",
    )
    p.add_argument("--shape", default="240,12,12",
                   help="dataset dimensions, comma separated")
    p.add_argument("--layouts", default="multimap",
                   help="comma-separated layouts to explain")
    p.add_argument("--drive", default="minidrive",
                   help="drive model (see --list-drives)")
    p.add_argument("--axis", type=int, default=None,
                   help="beam axis (default 0)")
    p.add_argument("--fixed", default=None,
                   help="beam's pinned coordinates, comma separated "
                   "(default: centre of each other dimension)")
    p.add_argument("--box", type=_parse_box, default=None,
                   help="range query instead of a beam: lo,lo,..:hi,hi,..")
    p.add_argument("--shards", type=_positive_int, default=None,
                   help="shard the dataset over this many disks")
    p.add_argument("--k", type=_positive_int, default=None,
                   help="replication factor (needs --shards)")
    p.add_argument("--cache-blocks", type=int, default=0,
                   help="attach a buffer pool of this many blocks")
    p.add_argument("--cache-policy", default="lru",
                   help="pool eviction policy (see --list-policies)")
    p.add_argument("--prefetch", default="none",
                   help="pool prefetcher (see --list-prefetchers)")
    p.add_argument("--seed", type=int, default=42, help="base seed")
    p.add_argument("--analyze", action="store_true",
                   help="execute the query once and reconcile "
                   "predicted vs measured cost")
    p.add_argument("--model", action="store_true",
                   help="print the analytic model's predicted "
                   "beam/range speedups")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress plan-tree output")
    p.set_defaults(func=_explain_main)


def _diff_main(args) -> int:
    from repro.monitor.diff import diff_runs, render_diff

    base = json.loads(Path(args.base).read_text())
    cur = json.loads(Path(args.current).read_text())
    data = diff_runs(base, cur, tolerance=args.tolerance)
    if getattr(args, "attribute", False):
        from repro.explain import attribute_runs

        data["attribution"] = attribute_runs(
            base, cur, tolerance=args.tolerance
        )
    if not args.quiet:
        print(render_diff(data))
        if "attribution" in data:
            from repro.explain import render_attribution

            print(render_attribution(data["attribution"]))
    if args.json:
        _write_json_report(args.json, data, "diff.json", args.quiet)
    return 1 if data["regressions"] else 0


def _add_diff_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "diff",
        help="compare two exported run reports; exit 1 on regression",
        description="Load two --json exports (trace or dashboard runs) "
        "and compare phase totals, latency quantiles, and the "
        "window-by-window series, flagging every metric that moved "
        "beyond the tolerance band in the bad direction.  Two same-seed "
        "runs are bit-identical, so a clean diff is an exact-zero "
        "check; exits 1 when regressions are flagged.",
    )
    p.add_argument("base", help="baseline report JSON")
    p.add_argument("current", help="current report JSON")
    p.add_argument("--tolerance", type=float, default=0.1,
                   help="relative band a metric may move before it "
                   "flags (default 0.1)")
    p.add_argument("--attribute", action="store_true",
                   help="rank the suspects behind the regression "
                   "(phases, disks, queries, monitor signals)")
    p.add_argument("--json", default=None,
                   help="JSON output file (or directory) for the diff")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_diff_main)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="multimap-bench",
        description="Regenerate the MultiMap paper's figures on the "
        "simulated disks, or run the traffic simulator.",
    )
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default="paper",
        help="experiment sizing (paper = full chunks and sweeps)",
    )
    parser.add_argument(
        "--figure",
        action="append",
        choices=FIGURES,
        help="run only the given figure(s); repeatable",
    )
    parser.add_argument(
        "--out", default=None, help="directory for JSON results"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress table output"
    )
    for dest, _, _, _, help_text in _LISTINGS:
        parser.add_argument(
            "--" + dest.replace("_", "-"), action="store_true",
            help=help_text,
        )
    subparsers = parser.add_subparsers(dest="command")
    _add_traffic_parser(subparsers)
    _add_cache_parser(subparsers)
    _add_scale_parser(subparsers)
    _add_avail_parser(subparsers)
    _add_ingest_parser(subparsers)
    _add_perf_parser(subparsers)
    _add_trace_parser(subparsers)
    _add_dashboard_parser(subparsers)
    _add_explain_parser(subparsers)
    _add_diff_parser(subparsers)
    args = parser.parse_args(argv)
    listed = _list_registries(args)
    if args.command is not None:
        # a listing combined with a subcommand prints both: the listing
        # must never silently swallow the requested run
        return args.func(args)
    if listed:
        return 0
    run_all(
        scale_name=args.scale,
        out_dir=args.out,
        only=tuple(args.figure) if args.figure else None,
        quiet=args.quiet,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
