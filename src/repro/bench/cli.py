"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``
(also installed as ``multimap-bench``).

Examples::

    repro-bench --scale small --figure fig6a
    repro-bench --scale paper --out results/
"""

from __future__ import annotations

import argparse

from repro.bench.harness import FIGURES, run_all

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="multimap-bench",
        description="Regenerate the MultiMap paper's figures on the "
        "simulated disks.",
    )
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default="paper",
        help="experiment sizing (paper = full chunks and sweeps)",
    )
    parser.add_argument(
        "--figure",
        action="append",
        choices=FIGURES,
        help="run only the given figure(s); repeatable",
    )
    parser.add_argument(
        "--out", default=None, help="directory for JSON results"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress table output"
    )
    args = parser.parse_args(argv)
    run_all(
        scale_name=args.scale,
        out_dir=args.out,
        only=tuple(args.figure) if args.figure else None,
        quiet=args.quiet,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
