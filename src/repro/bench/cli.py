"""Command-line entry point: ``python -m repro.bench`` / ``repro-bench``
(also installed as ``multimap-bench``).

Two modes: the default regenerates paper figures, and the ``traffic``
subcommand runs the multi-client traffic storm
(:func:`repro.traffic.storm.run_storm`).

Examples::

    repro-bench --scale small --figure fig6a
    repro-bench --scale paper --out results/
    repro-bench traffic --shape 64,64,32 --clients 1,2,4 --queries 10
    repro-bench traffic --arrival poisson --rate 50 --out results/storm.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.harness import FIGURES, run_all

__all__ = ["main"]


def _csv_ints(text: str) -> tuple[int, ...]:
    return tuple(int(v) for v in text.split(",") if v)


def _csv_strs(text: str) -> tuple[str, ...]:
    return tuple(v.strip() for v in text.split(",") if v.strip())


def _parse_mix(text: str):
    """``beam:1,beam:2,range:1.0`` -> :class:`QueryMix`."""
    from repro.traffic import BeamDraw, QueryMix, RangeDraw

    parts = []
    for item in _csv_strs(text):
        kind, _, arg = item.partition(":")
        try:
            if kind == "beam":
                parts.append(BeamDraw(int(arg)))
            elif kind == "range":
                parts.append(RangeDraw(float(arg)))
            else:
                raise ValueError(kind)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"mix parts are beam:<axis> or range:<pct>; got {item!r}"
            ) from None
    if not parts:
        raise argparse.ArgumentTypeError(
            "mix needs at least one beam:<axis> or range:<pct> part"
        )
    return QueryMix(parts)


def _traffic_main(args) -> int:
    from repro.traffic import (
        BurstyArrivals,
        ClosedLoop,
        PoissonArrivals,
        render_storm,
        run_storm,
    )

    if args.arrival == "closed":
        arrival = ClosedLoop(think_ms=args.think_ms)
    elif args.arrival == "poisson":
        arrival = PoissonArrivals(rate_qps=args.rate)
    else:
        arrival = BurstyArrivals(burst_rate_per_s=args.rate)
    data = run_storm(
        _csv_ints(args.shape),
        layouts=_csv_strs(args.layouts),
        client_counts=_csv_ints(args.clients),
        drive=args.drive,
        queries_per_client=args.queries,
        mix=args.mix,
        arrival=arrival,
        seed=args.seed,
        slice_runs=args.slice_runs if args.slice_runs > 0 else None,
        head=args.head,
    )
    if not args.quiet:
        print(render_storm(data))
    if args.out:
        path = Path(args.out)
        if path.suffix != ".json":
            path.mkdir(parents=True, exist_ok=True)
            path = path / "traffic.json"
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2, default=str))
        if not args.quiet:
            print(f"\nsaved {path}")
    return 0


def _add_traffic_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "traffic",
        help="multi-client traffic storm across layouts",
        description="Sweep layouts x client counts under a seeded "
        "concurrent workload and report throughput and latency "
        "percentiles per mapping.",
    )
    p.add_argument("--shape", default="64,64,32",
                   help="dataset dims, comma-separated (default 64,64,32)")
    p.add_argument("--layouts", default="naive,zorder,hilbert,multimap",
                   help="comma-separated registered layouts")
    p.add_argument("--clients", default="1,2,4,8",
                   help="comma-separated client counts to sweep")
    p.add_argument("--queries", type=int, default=20,
                   help="queries per client (default 20)")
    p.add_argument("--mix", default=None, type=_parse_mix,
                   help="query mix, e.g. 'beam:1,beam:2,range:1.0' "
                   "(default: beams over axes 1..n-1)")
    p.add_argument("--arrival", choices=("closed", "poisson", "bursty"),
                   default="closed", help="arrival model (default closed)")
    p.add_argument("--think-ms", type=float, default=0.0,
                   help="closed-loop think time in ms")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-client rate for poisson (q/s) or bursty "
                   "(bursts/s)")
    p.add_argument("--drive", default="atlas10k3",
                   help="registered drive model (default atlas10k3)")
    p.add_argument("--seed", type=int, default=42,
                   help="base seed; every client stream derives from it")
    p.add_argument("--slice-runs", type=int, default=64,
                   help="runs per service slice; 0 = whole query per "
                   "batch (default 64)")
    p.add_argument("--head", choices=("random", "carry"), default="random",
                   help="per-query random head position or carry-over")
    p.add_argument("--out", default=None,
                   help="JSON output file (or directory)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress table output")
    p.set_defaults(func=_traffic_main)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="multimap-bench",
        description="Regenerate the MultiMap paper's figures on the "
        "simulated disks, or run the traffic simulator.",
    )
    parser.add_argument(
        "--scale",
        choices=("paper", "small"),
        default="paper",
        help="experiment sizing (paper = full chunks and sweeps)",
    )
    parser.add_argument(
        "--figure",
        action="append",
        choices=FIGURES,
        help="run only the given figure(s); repeatable",
    )
    parser.add_argument(
        "--out", default=None, help="directory for JSON results"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress table output"
    )
    subparsers = parser.add_subparsers(dest="command")
    _add_traffic_parser(subparsers)
    args = parser.parse_args(argv)
    if args.command is not None:
        return args.func(args)
    run_all(
        scale_name=args.scale,
        out_dir=args.out,
        only=tuple(args.figure) if args.figure else None,
        quiet=args.quiet,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
