"""One regenerator per figure of the paper's evaluation (§5).

Every function returns plain dict/list data (JSON-friendly) with the same
rows/series as the corresponding paper artefact, so the harness can print
paper-style tables and EXPERIMENTS.md can diff against the published
values.  Scale is controlled by a :class:`Scale` preset: ``paper`` runs
the full chunk sizes and sweeps, ``small`` shrinks them for CI runs while
preserving each experiment's structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytic.model import AnalyticModel, DriveParameters
from repro.datasets.earthquake import EarthquakeDataset, build_leaf_layouts
from repro.datasets.grid import MAPPER_ORDER, build_chunk_mappers
from repro.datasets.olap import OLAP_CHUNK_DIMS, paper_olap_queries
from repro.disk import AdjacencyModel, DiskDrive, paper_disks
from repro.disk.characterize import measure_seek_profile
from repro.query import StorageManager, random_beam, random_range_cube

__all__ = [
    "Scale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "fig1a_seek_profile",
    "fig1b_semi_sequential",
    "fig6a_beam",
    "fig6b_range",
    "fig7a_beam",
    "fig7b_range",
    "fig8_olap",
    "headline_summary",
]


@dataclass(frozen=True)
class Scale:
    """Experiment sizing preset."""

    name: str
    chunk_dims: tuple[int, int, int]
    selectivities: tuple[float, ...]
    beam_runs: int
    range_runs: int
    quake_depth: int
    quake_selectivities: tuple[float, ...]
    olap_chunk: tuple[int, int, int, int]
    olap_runs: int


PAPER_SCALE = Scale(
    name="paper",
    chunk_dims=(259, 259, 259),
    selectivities=(0.01, 0.1, 1.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0),
    beam_runs=15,
    range_runs=3,
    quake_depth=7,
    quake_selectivities=(0.05, 0.2, 0.6),
    olap_chunk=OLAP_CHUNK_DIMS,
    olap_runs=5,
)

# The small preset shrinks cell counts but keeps the Dim0 extent large
# enough that Naive's stride waits stay above one settle time — below
# that, the qualitative ordering of the paper inverts (a 96-sector stride
# rotates past in less time than a head settle, which 259-cell chunks
# never exhibit).
SMALL_SCALE = Scale(
    name="small",
    chunk_dims=(216, 64, 64),
    selectivities=(0.1, 1.0, 10.0, 100.0),
    beam_runs=3,
    range_runs=2,
    quake_depth=5,
    quake_selectivities=(0.2, 0.6),
    olap_chunk=(296, 38, 25, 25),
    olap_runs=2,
)


def get_scale(name: str) -> Scale:
    if name == "paper":
        return PAPER_SCALE
    if name == "small":
        return SMALL_SCALE
    raise ValueError(f"unknown scale {name!r}")


def _models():
    return {m.name: m for m in paper_disks()}


# ---------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------

def fig1a_seek_profile(samples: int = 3) -> dict:
    """Figure 1(a): seek time vs cylinder distance for both disks."""
    out = {}
    for name, model in _models().items():
        curve = measure_seek_profile(DiskDrive(model), samples=samples)
        out[name] = {
            "distance": [m.distance_cylinders for m in curve],
            "seek_ms": [round(m.seek_ms, 4) for m in curve],
            "settle_ms": model.mechanics.settle_ms,
            "settle_cylinders": model.mechanics.settle_cylinders,
        }
    return out


def fig1b_semi_sequential(n: int = 300, seed: int = 7) -> dict:
    """Figure 1(b) & §3.2: semi-sequential vs nearby vs random access.

    The paper's claim: semi-sequential access (successive adjacent blocks)
    outperforms nearby access within D tracks "by a factor of four" and is
    the second-best pattern after sequential.
    """
    out = {}
    for name, model in _models().items():
        adj = AdjacencyModel.for_model(model)
        geom = model.geometry
        rng = np.random.default_rng(seed)

        drive = DiskDrive(model)
        path = adj.semi_sequential_path(0, n, 1)
        semi = drive.service_lbns(path, policy="fifo").total_ms / n

        drive = DiskDrive(model)
        start_track = geom.track_of(0)
        tracks = start_track + rng.integers(1, adj.D, size=n)
        sectors = rng.integers(0, geom.track_length(0), size=n)
        nearby = (
            drive.service_lbns(
                geom.lbns_from(tracks, sectors), policy="fifo"
            ).total_ms
            / n
        )

        drive = DiskDrive(model)
        random_lbns = rng.integers(0, geom.n_lbns, size=n)
        rand = drive.service_lbns(random_lbns, policy="fifo").total_ms / n

        drive = DiskDrive(model)
        drive.service(0)
        seq = drive.service(1, nblocks=n).total_ms / n

        out[name] = {
            "sequential_ms": round(seq, 5),
            "semi_sequential_ms": round(semi, 4),
            "nearby_within_D_ms": round(nearby, 4),
            "random_ms": round(rand, 4),
            "nearby_over_semi": round(nearby / semi, 2),
        }
    return out


# ---------------------------------------------------------------------
# Figure 6: synthetic 3-D dataset
# ---------------------------------------------------------------------

def fig6a_beam(scale: Scale = PAPER_SCALE, seed: int = 42) -> dict:
    """Figure 6(a): beam queries per dimension, avg I/O time per cell."""
    out = {}
    for disk_name, model in _models().items():
        mappers = build_chunk_mappers(scale.chunk_dims, lambda m=model: m)
        per_mapper = {}
        for mname in MAPPER_ORDER:
            mapper, volume = mappers[mname]
            sm = StorageManager(volume)
            axes = {}
            for axis in range(len(scale.chunk_dims)):
                rng = np.random.default_rng(seed + axis)
                vals = []
                for _ in range(scale.beam_runs):
                    q = random_beam(scale.chunk_dims, axis, rng)
                    r = sm.beam(mapper, q.axis, q.fixed, rng=rng)
                    vals.append(r.ms_per_cell)
                axes[f"dim{axis}"] = round(float(np.mean(vals)), 4)
            per_mapper[mname] = axes
        out[disk_name] = per_mapper
    return out


def fig6b_range(scale: Scale = PAPER_SCALE, seed: int = 99) -> dict:
    """Figure 6(b): range-query speedup relative to Naive vs selectivity."""
    out = {}
    for disk_name, model in _models().items():
        mappers = build_chunk_mappers(scale.chunk_dims, lambda m=model: m)
        totals: dict[str, dict[float, float]] = {m: {} for m in MAPPER_ORDER}
        for sel in scale.selectivities:
            for mname in MAPPER_ORDER:
                mapper, volume = mappers[mname]
                sm = StorageManager(volume)
                rng = np.random.default_rng(seed)
                vals = []
                for _ in range(scale.range_runs):
                    q = random_range_cube(scale.chunk_dims, sel, rng)
                    r = sm.range(mapper, q.lo, q.hi, rng=rng)
                    vals.append(r.total_ms)
                totals[mname][sel] = float(np.mean(vals))
        speedups = {
            mname: {
                sel: round(totals["naive"][sel] / t, 3)
                for sel, t in series.items()
            }
            for mname, series in totals.items()
        }
        out[disk_name] = {
            "speedup_vs_naive": speedups,
            "naive_total_ms": {
                sel: round(t, 1) for sel, t in totals["naive"].items()
            },
        }
    return out


# ---------------------------------------------------------------------
# Figure 7: earthquake dataset
# ---------------------------------------------------------------------

def _quake_setup(scale: Scale):
    dataset = EarthquakeDataset(depth=scale.quake_depth)
    layouts = {}
    for disk_name, model in _models().items():
        layouts[disk_name] = build_leaf_layouts(
            dataset, lambda m=model: m
        )
    return dataset, layouts


def fig7a_beam(scale: Scale = PAPER_SCALE, seed: int = 11) -> dict:
    """Figure 7(a): earthquake beams along X/Y/Z, per-cell I/O time."""
    dataset, all_layouts = _quake_setup(scale)
    out = {"n_elements": dataset.n_elements,
           "top2_region_coverage": round(dataset.region_coverage(2), 3)}
    for disk_name, layouts in all_layouts.items():
        per_mapper = {}
        for mname, layout in layouts.items():
            sm = StorageManager(layout.volume)
            axes = {}
            for axis, label in enumerate("XYZ"):
                rng = np.random.default_rng(seed + axis)
                vals = []
                for _ in range(scale.beam_runs):
                    leaves = dataset.beam_leaves(axis, rng)
                    if leaves.size == 0:
                        continue
                    plan = layout.plan_for_leaves(leaves, for_beam=True)
                    # a LeafLayout is not a Mapper; execute via the drive
                    drive = layout.volume.drive(layout.disk)
                    drive.randomize_position(rng)
                    res = drive.service_runs(
                        plan.starts, plan.lengths, policy=plan.policy,
                        window=sm.window,
                    )
                    vals.append(res.total_ms / leaves.size)
                axes[label] = round(float(np.mean(vals)), 4)
            per_mapper[mname] = axes
        out[disk_name] = per_mapper
    return out


def fig7b_range(scale: Scale = PAPER_SCALE, seed: int = 13) -> dict:
    """Figure 7(b): earthquake range queries, total I/O time.

    The paper sweeps 0.0001-0.003% of its 114 M elements (hundreds to a
    few thousand elements); our synthetic stand-in has fewer elements, so
    the selectivities are scaled to touch comparable element counts — the
    `elements` field records how many each query actually fetched.
    """
    dataset, all_layouts = _quake_setup(scale)
    out = {"n_elements": dataset.n_elements}
    for disk_name, layouts in all_layouts.items():
        per_mapper: dict = {}
        counts = {}
        for mname, layout in layouts.items():
            sm = StorageManager(layout.volume)
            series = {}
            for sel in scale.quake_selectivities:
                rng = np.random.default_rng(seed)
                vals = []
                nleaves = []
                for _ in range(scale.range_runs):
                    leaves = dataset.range_leaves(sel, rng)
                    if leaves.size == 0:
                        continue
                    nleaves.append(leaves.size)
                    plan = layout.plan_for_leaves(leaves)
                    drive = layout.volume.drive(layout.disk)
                    drive.randomize_position(rng)
                    res = drive.service_runs(
                        plan.starts, plan.lengths, policy=plan.policy,
                        window=sm.window,
                    )
                    vals.append(res.total_ms)
                series[sel] = round(float(np.mean(vals)), 2)
                counts[sel] = int(np.mean(nleaves))
            per_mapper[mname] = series
        out[disk_name] = per_mapper
        out["elements_fetched"] = counts
    return out


# ---------------------------------------------------------------------
# Figure 8: OLAP dataset
# ---------------------------------------------------------------------

def fig8_olap(scale: Scale = PAPER_SCALE, seed: int = 23) -> dict:
    """Figure 8: the five OLAP queries, avg I/O time per cell."""
    out = {}
    for disk_name, model in _models().items():
        mappers = build_chunk_mappers(scale.olap_chunk, lambda m=model: m)
        per_mapper = {}
        for mname in MAPPER_ORDER:
            mapper, volume = mappers[mname]
            sm = StorageManager(volume)
            series = {}
            for run in range(scale.olap_runs):
                rng = np.random.default_rng(seed + run)
                queries = paper_olap_queries(scale.olap_chunk, rng)
                for qname, query in queries.items():
                    res = sm.run_query(mapper, query, rng=rng)
                    series.setdefault(qname, []).append(res.ms_per_cell)
            per_mapper[mname] = {
                q: round(float(np.mean(v)), 4) for q, v in series.items()
            }
        out[disk_name] = per_mapper
    return out


# ---------------------------------------------------------------------
# headline claims (abstract / §5 text)
# ---------------------------------------------------------------------

def headline_summary(fig6a: dict, fig6b: dict) -> dict:
    """Aggregate the abstract's claims from measured figure data."""
    out = {}
    for disk in fig6a:
        beams = fig6a[disk]
        speedups = fig6b[disk]["speedup_vs_naive"]
        non_primary = [
            beams["naive"][d] / beams["multimap"][d]
            for d in beams["naive"]
            if d != "dim0"
        ]
        curve_dim0 = min(
            beams["zorder"]["dim0"], beams["hilbert"]["dim0"]
        )
        out[disk] = {
            "beam_speedup_vs_naive_nonprimary": round(
                float(np.mean(non_primary)), 2
            ),
            "dim0_streaming_advantage_vs_curves": round(
                curve_dim0 / beams["multimap"]["dim0"], 1
            ),
            "max_range_speedup_multimap": max(
                speedups["multimap"].values()
            ),
            "max_range_speedup_zorder": max(speedups["zorder"].values()),
            "max_range_speedup_hilbert": max(speedups["hilbert"].values()),
            "min_range_speedup_multimap": min(
                speedups["multimap"].values()
            ),
        }
    return out


# ---------------------------------------------------------------------
# analytic-model validation (§5's cost model)
# ---------------------------------------------------------------------

def model_validation(scale: Scale = SMALL_SCALE, seed: int = 5) -> dict:
    """Compare the analytic model's predictions against the simulator."""
    out = {}
    dims = scale.chunk_dims
    for disk_name, model in _models().items():
        params = DriveParameters.from_model(model)
        analytic = AnalyticModel(params)
        mappers = build_chunk_mappers(
            dims, lambda m=model: m, which=("naive", "multimap")
        )
        rows = {}
        for mname in ("naive", "multimap"):
            mapper, volume = mappers[mname]
            sm = StorageManager(volume)
            for axis in range(3):
                rng = np.random.default_rng(seed)
                q = random_beam(dims, axis, rng)
                sim = sm.beam(mapper, q.axis, q.fixed, rng=rng).total_ms
                if mname == "naive":
                    pred = analytic.naive_beam_ms(dims, axis)
                else:
                    pred = analytic.multimap_beam_ms(dims, axis, mapper.K)
                rows[f"{mname}_beam_dim{axis}"] = {
                    "simulated_ms": round(sim, 2),
                    "predicted_ms": round(pred, 2),
                    "ratio": round(pred / sim, 3) if sim else None,
                }
        out[disk_name] = rows
    return out
