"""Rendering benchmark results as paper-style text tables."""

from __future__ import annotations

from typing import Iterable

__all__ = ["render_table", "render_fig6a", "render_fig6b", "render_fig8",
           "render_kv"]


def render_table(headers: list[str], rows: Iterable[list]) -> str:
    """Plain fixed-width table."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    body = [
        "  ".join(c.rjust(w) if i else c.ljust(w)
                  for i, (c, w) in enumerate(zip(row, widths)))
        for row in rows
    ]
    return "\n".join([line, sep] + body)


def render_kv(title: str, data: dict) -> str:
    lines = [title]
    for k, v in data.items():
        lines.append(f"  {k}: {v}")
    return "\n".join(lines)


def render_fig6a(data: dict) -> str:
    """Per-disk beam tables (rows = mapping, cols = dimension)."""
    parts = []
    for disk, per_mapper in data.items():
        axes = list(next(iter(per_mapper.values())).keys())
        rows = [
            [mname] + [per_mapper[mname][a] for a in axes]
            for mname in per_mapper
        ]
        parts.append(f"[{disk}] beam queries, avg I/O ms per cell")
        parts.append(render_table(["mapping"] + axes, rows))
    return "\n".join(parts)


def render_fig6b(data: dict) -> str:
    parts = []
    for disk, payload in data.items():
        speedups = payload["speedup_vs_naive"]
        sels = list(next(iter(speedups.values())).keys())
        rows = [
            [mname] + [speedups[mname][s] for s in sels]
            for mname in speedups
        ]
        parts.append(f"[{disk}] range-query speedup vs Naive")
        parts.append(
            render_table(
                ["mapping"] + [f"{s}%" for s in sels], rows
            )
        )
    return "\n".join(parts)


def render_fig8(data: dict) -> str:
    parts = []
    for disk, per_mapper in data.items():
        qnames = list(next(iter(per_mapper.values())).keys())
        rows = [
            [mname] + [per_mapper[mname][q] for q in qnames]
            for mname in per_mapper
        ]
        parts.append(f"[{disk}] OLAP queries, avg I/O ms per cell")
        parts.append(render_table(["mapping"] + qnames, rows))
    return "\n".join(parts)
