"""Run-everything driver: regenerates every paper figure and saves JSON.

``run_all`` executes each figure regenerator at the requested scale,
prints paper-style tables, and (optionally) writes ``results/<fig>.json``
for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench import figures, reporting

__all__ = ["run_all", "run_figure", "FIGURES"]

FIGURES = (
    "fig1a",
    "fig1b",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8",
    "model",
)


def run_figure(name: str, scale_name: str = "paper") -> dict:
    """Regenerate one figure's data."""
    scale = figures.get_scale(scale_name)
    if name == "fig1a":
        return figures.fig1a_seek_profile()
    if name == "fig1b":
        return figures.fig1b_semi_sequential()
    if name == "fig6a":
        return figures.fig6a_beam(scale)
    if name == "fig6b":
        return figures.fig6b_range(scale)
    if name == "fig7a":
        return figures.fig7a_beam(scale)
    if name == "fig7b":
        return figures.fig7b_range(scale)
    if name == "fig8":
        return figures.fig8_olap(scale)
    if name == "model":
        return figures.model_validation(scale)
    raise ValueError(f"unknown figure {name!r}")


def _render(name: str, data: dict) -> str:
    if name == "fig6a":
        return reporting.render_fig6a(data)
    if name == "fig6b":
        return reporting.render_fig6b(data)
    if name == "fig8":
        return reporting.render_fig8(data)
    if name == "fig7a":
        plain = {k: v for k, v in data.items()
                 if isinstance(v, dict) and "naive" in v}
        return reporting.render_fig6a(plain)
    return json.dumps(data, indent=2, default=str)


def run_all(
    scale_name: str = "paper",
    out_dir: str | Path | None = None,
    only: tuple[str, ...] | None = None,
    quiet: bool = False,
) -> dict:
    """Run every figure; returns {figure: data} and optionally saves JSON."""
    results = {}
    names = only if only else FIGURES
    for name in names:
        t0 = time.time()
        data = run_figure(name, scale_name)
        elapsed = time.time() - t0
        results[name] = data
        if not quiet:
            print(f"\n=== {name} (scale={scale_name}, {elapsed:.1f}s) ===")
            print(_render(name, data))
        if out_dir is not None:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            payload = {"scale": scale_name, "elapsed_s": round(elapsed, 1),
                       "data": data}
            (out / f"{name}.json").write_text(
                json.dumps(payload, indent=2, default=str)
            )
    return results
