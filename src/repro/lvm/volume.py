"""Logical volume manager.

Mirrors the prototype of the paper (§5.1): it owns a set of disks, exports
the two adjacency interface calls (``get_adjacent``/``get_track_boundaries``)
plus abstract zone descriptions, and hands out *extents* — contiguous LBN
ranges on a single disk — to the mapping layer.  Applications never see raw
geometry; everything they need arrives through this class, so a different
disk (or a characterised profile of one) can be swapped in underneath.

Allocation is track-aligned and zone-aware because MultiMap never maps a
basic cube across a zone boundary; linearised mappings just take the same
extents and fill them sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.adjacency import AdjacencyModel
from repro.disk.drive import DiskDrive
from repro.disk.models import DiskModel
from repro.errors import AllocationError

__all__ = ["Extent", "ZoneInfo", "LogicalVolume"]


@dataclass(frozen=True)
class Extent:
    """A contiguous LBN range on one disk of the volume."""

    disk: int
    start: int
    nblocks: int

    @property
    def end(self) -> int:
        """One past the last LBN."""
        return self.start + self.nblocks

    def __post_init__(self) -> None:
        if self.nblocks <= 0:
            raise AllocationError("extent must contain at least one block")
        if self.start < 0:
            raise AllocationError("extent start must be non-negative")


@dataclass(frozen=True)
class ZoneInfo:
    """Disk-generic zone description exposed to the mapping layer.

    ``track_length`` is the paper's *T* (via GETTRACKLENGTH), ``tracks`` the
    zone's track count (Equation 2 input), ``hop_ms`` the expected cost of
    one semi-sequential hop.
    """

    index: int
    track_length: int
    tracks: int
    first_track: int
    first_lbn: int
    hop_ms: float


class LogicalVolume:
    """A logical volume over one or more simulated disks.

    Parameters
    ----------
    models:
        One :class:`DiskModel` per member disk.
    depth:
        Optional override of the adjacency depth *D* (the paper's prototype
        pins D = 128 on both disks).
    """

    def __init__(self, models: list[DiskModel], depth: int | None = None):
        if not models:
            raise AllocationError("a volume needs at least one disk")
        self.models = list(models)
        self.drives = [DiskDrive(m) for m in models]
        self.adjacency = [
            AdjacencyModel.for_model(m, depth=depth) for m in models
        ]
        # Track-aligned allocation cursor per disk (global track index).
        self._next_track = [0 for _ in models]

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    @property
    def n_disks(self) -> int:
        return len(self.models)

    def drive(self, disk: int) -> DiskDrive:
        return self.drives[disk]

    def depth(self, disk: int = 0) -> int:
        """Adjacency depth D of a member disk."""
        return self.adjacency[disk].D

    def zone_info(self, disk: int, zone_index: int) -> ZoneInfo:
        geom = self.models[disk].geometry
        zone = geom.zone(zone_index)
        return ZoneInfo(
            index=zone_index,
            track_length=zone.sectors_per_track,
            tracks=geom.zone_tracks(zone_index),
            first_track=geom.zone_first_track(zone_index),
            first_lbn=geom.zone_first_lbn(zone_index),
            hop_ms=self.adjacency[disk].expected_hop_ms(zone_index),
        )

    def zones(self, disk: int) -> list[ZoneInfo]:
        geom = self.models[disk].geometry
        return [self.zone_info(disk, i) for i in range(len(geom.zones))]

    # ------------------------------------------------------------------
    # the paper's interface functions
    # ------------------------------------------------------------------

    def get_adjacent(self, disk: int, lbn: int, step: int = 1) -> int:
        return self.adjacency[disk].get_adjacent(lbn, step)

    def get_track_boundaries(self, disk: int, lbn: int) -> tuple[int, int]:
        return self.adjacency[disk].get_track_boundaries(lbn)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate_tracks(
        self, disk: int, n_tracks: int, zone_index: int | None = None
    ) -> Extent:
        """Allocate ``n_tracks`` whole contiguous tracks within one zone.

        If ``zone_index`` is None, allocation continues from the cursor,
        skipping to the next zone when the current one cannot hold the
        request (cubes never straddle zone boundaries).
        """
        geom = self.models[disk].geometry
        if n_tracks <= 0:
            raise AllocationError("n_tracks must be positive")
        cursor = self._next_track[disk]
        zone_count = len(geom.zones)

        if zone_index is not None:
            zi = zone_index
            first = geom.zone_first_track(zi)
            tracks = geom.zone_tracks(zi)
            start_track = max(cursor, first)
            if start_track + n_tracks > first + tracks:
                raise AllocationError(
                    f"zone {zi} cannot hold {n_tracks} tracks"
                )
        else:
            start_track = cursor
            while True:
                if start_track >= geom.n_tracks:
                    raise AllocationError("volume exhausted")
                zi = geom.zone_index_of_track(start_track)
                zone_end = geom.zone_first_track(zi) + geom.zone_tracks(zi)
                if start_track + n_tracks <= zone_end:
                    break
                start_track = zone_end  # skip zone remainder

        if n_tracks > geom.zone_tracks(zi):
            raise AllocationError(
                f"no zone can hold {n_tracks} contiguous tracks"
            )
        self._next_track[disk] = start_track + n_tracks
        start_lbn = geom.track_first_lbn(start_track)
        spt = geom.track_length(start_track)
        return Extent(disk, start_lbn, n_tracks * spt)

    def allocate_blocks(self, disk: int, n_blocks: int) -> Extent:
        """Allocate a plain LBN extent (track-aligned start) for the
        linearised mappings."""
        geom = self.models[disk].geometry
        if n_blocks <= 0:
            raise AllocationError("n_blocks must be positive")
        start_track = self._next_track[disk]
        if start_track >= geom.n_tracks:
            raise AllocationError("volume exhausted")
        start_lbn = geom.track_first_lbn(start_track)
        if start_lbn + n_blocks > geom.n_lbns:
            raise AllocationError("volume exhausted")
        end_track = geom.track_of(
            min(start_lbn + n_blocks, geom.n_lbns - 1)
        )
        self._next_track[disk] = end_track + 1
        return Extent(disk, start_lbn, n_blocks)

    def free_tracks_in_zone(self, disk: int, zone_index: int) -> int:
        """Tracks still unallocated in a zone, given the cursor position."""
        geom = self.models[disk].geometry
        first = geom.zone_first_track(zone_index)
        end = first + geom.zone_tracks(zone_index)
        cursor = self._next_track[disk]
        if cursor >= end:
            return 0
        return end - max(cursor, first)

    def allocation_cursor(self, disk: int) -> int:
        """Current track-allocation cursor (for snapshot/rollback)."""
        return self._next_track[disk]

    def restore_allocation(self, disk: int, cursor: int) -> None:
        """Roll the allocator back to a previously saved cursor."""
        if not 0 <= cursor <= self.models[disk].geometry.n_tracks:
            raise AllocationError(f"invalid cursor {cursor}")
        self._next_track[disk] = cursor

    def reset_allocation(self, disk: int | None = None) -> None:
        if disk is None:
            self._next_track = [0 for _ in self.models]
        else:
            self._next_track[disk] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(m.name for m in self.models)
        return f"LogicalVolume([{names}])"
