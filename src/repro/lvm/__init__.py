"""Logical volume manager: extents, adjacency passthrough, declustering."""

from repro.lvm.striping import assign_chunks, disk_modulo, round_robin
from repro.lvm.volume import Extent, LogicalVolume, ZoneInfo

__all__ = [
    "Extent",
    "LogicalVolume",
    "ZoneInfo",
    "assign_chunks",
    "disk_modulo",
    "round_robin",
]
