"""Logical volume manager: extents, adjacency passthrough, declustering."""

from repro.lvm.striping import (
    STRATEGIES,
    StrategyEntry,
    assign_chunks,
    disk_modulo,
    register_strategy,
    round_robin,
    strategy_names,
)
from repro.lvm.volume import Extent, LogicalVolume, ZoneInfo

__all__ = [
    "Extent",
    "LogicalVolume",
    "STRATEGIES",
    "StrategyEntry",
    "ZoneInfo",
    "assign_chunks",
    "disk_modulo",
    "register_strategy",
    "round_robin",
    "strategy_names",
]
