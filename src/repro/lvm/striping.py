"""Declustering strategies: how chunks/basic cubes spread across disks.

The paper (§4.4) notes that MultiMap composes with existing declustering
schemes — the novelty is within-disk layout, so the volume manager only
needs simple placement policies.  Provided here:

* round-robin (what the paper's evaluation uses for its 259³ chunks);
* a disk-modulo scheme for N-D chunk grids (Du & Sobolewski style), which
  spreads every row *and* column of the chunk grid across disks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AllocationError

__all__ = ["round_robin", "disk_modulo", "assign_chunks"]


def round_robin(n_items: int, n_disks: int) -> np.ndarray:
    """Disk index for each item, cycling through disks in order."""
    if n_disks < 1:
        raise AllocationError("need at least one disk")
    return np.arange(n_items, dtype=np.int64) % n_disks


def disk_modulo(grid_shape: tuple[int, ...], n_disks: int) -> np.ndarray:
    """Disk-modulo declustering for an N-D grid of chunks.

    Chunk at coordinate (c0, .., cN-1) goes to disk (c0 + .. + cN-1) mod
    n_disks, which guarantees that any beam of chunks along any axis
    touches disks evenly.

    Returns a flat array in row-major (c0 fastest) order.
    """
    if n_disks < 1:
        raise AllocationError("need at least one disk")
    grids = np.indices(tuple(reversed(grid_shape)))
    total = grids.sum(axis=0) % n_disks
    # np.indices is row-major on the reversed shape; flatten so that c0
    # varies fastest, matching the chunk enumeration used by datasets.
    return total.ravel().astype(np.int64)


def assign_chunks(
    n_chunks: int,
    n_disks: int,
    strategy: str = "round_robin",
    grid_shape: tuple[int, ...] | None = None,
) -> np.ndarray:
    """Dispatch to a declustering strategy by name."""
    if strategy == "round_robin":
        return round_robin(n_chunks, n_disks)
    if strategy == "disk_modulo":
        if grid_shape is None:
            raise AllocationError("disk_modulo requires grid_shape")
        out = disk_modulo(grid_shape, n_disks)
        if out.size != n_chunks:
            raise AllocationError(
                f"grid {grid_shape} has {out.size} chunks, expected {n_chunks}"
            )
        return out
    raise AllocationError(f"unknown declustering strategy {strategy!r}")
