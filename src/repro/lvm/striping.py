"""Declustering strategies: how chunks/basic cubes spread across disks.

The paper (§4.4) notes that MultiMap composes with existing declustering
schemes — the novelty is within-disk layout, so the volume manager only
needs simple placement policies.  Strategies resolve by name through the
:data:`STRATEGIES` registry (the same :class:`~repro.registry.Registry`
kind the layout/drive/cache registries use; extend with
:func:`register_strategy`).  Builtins:

* ``round_robin`` — cycle chunks through disks in enumeration order (what
  the paper's evaluation uses for its 259³ chunks);
* ``disk_modulo`` — Du & Sobolewski-style modulo of the chunk-grid
  coordinate sum, which spreads every axis-aligned beam of the chunk grid
  across disks evenly;
* ``cube_aligned`` — the locality-aware strategy of the shard layer:
  the same disk-modulo assignment, but flagged so that
  :meth:`repro.shard.ShardMap.build` rounds chunk boundaries up to
  multiples of the basic-cube sides the *unsharded* MultiMap placement
  would use — sharding then never cuts through what would have been a
  basic cube.  (Each chunk's mapper still plans its own cubes for the
  chunk's dimensions, which are disk-local by construction.)

A strategy function takes ``(grid_shape, n_disks)`` and returns one disk
index per chunk as a flat array whose *first* grid coordinate varies
fastest (``index = c0 + c1*g0 + c2*g0*g1 + ...`` — the enumeration order
of :meth:`repro.datasets.grid.GridDataset.chunks`, which is the reverse
of numpy's C/"row-major" ravel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import AllocationError, RegistryError
from repro.registry import Registry, first_doc_line

__all__ = [
    "STRATEGIES",
    "StrategyEntry",
    "assign_chunks",
    "disk_modulo",
    "register_strategy",
    "round_robin",
    "strategy_names",
]


def round_robin(n_items: int, n_disks: int) -> np.ndarray:
    """Disk index for each item, cycling through disks in order."""
    if n_disks < 1:
        raise AllocationError("need at least one disk")
    return np.arange(n_items, dtype=np.int64) % n_disks


def disk_modulo(grid_shape: tuple[int, ...], n_disks: int) -> np.ndarray:
    """Disk-modulo declustering for an N-D grid of chunks.

    Chunk at coordinate (c0, .., cN-1) goes to disk (c0 + .. + cN-1) mod
    n_disks, which guarantees that any beam of chunks along any axis
    touches disks evenly.

    Returns a flat array with c0 varying fastest (the chunk enumeration
    order of the datasets layer).
    """
    if n_disks < 1:
        raise AllocationError("need at least one disk")
    grids = np.indices(tuple(reversed(grid_shape)))
    total = grids.sum(axis=0) % n_disks
    # np.indices is row-major on the reversed shape; flatten so that c0
    # varies fastest, matching the chunk enumeration used by datasets.
    return total.ravel().astype(np.int64)


# ----------------------------------------------------------------------
# the strategy registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StrategyEntry:
    """A registered declustering strategy.

    ``needs_grid`` marks strategies whose assignment depends on the chunk
    grid's shape (not just the chunk count); ``align_cubes`` asks the
    shard layer to round chunk boundaries to basic-cube multiples before
    assigning (see :meth:`repro.shard.ShardMap.build`).
    """

    name: str
    fn: Callable[[tuple[int, ...], int], np.ndarray]
    needs_grid: bool = True
    align_cubes: bool = False
    description: str = ""


#: strategy-name -> :class:`StrategyEntry`; populated by this module's
#: own registrations (importing :mod:`repro.lvm.striping` is enough)
STRATEGIES = Registry("strategy")


def register_strategy(name: str, *, needs_grid: bool = True,
                      align_cubes: bool = False, description: str = ""):
    """Function decorator adding a declustering strategy to
    :data:`STRATEGIES`."""

    def deco(fn):
        desc = description or first_doc_line(fn)
        STRATEGIES.add(
            name, StrategyEntry(name, fn, needs_grid, align_cubes, desc)
        )
        return fn

    return deco


def strategy_names() -> tuple[str, ...]:
    return STRATEGIES.names()


@register_strategy("round_robin", needs_grid=False)
def _round_robin_grid(grid_shape: tuple[int, ...], n_disks: int) -> np.ndarray:
    """Cycle chunks through disks in enumeration order."""
    n_items = int(np.prod(grid_shape, dtype=np.int64))
    return round_robin(n_items, n_disks)


@register_strategy("disk_modulo")
def _disk_modulo_grid(grid_shape: tuple[int, ...], n_disks: int) -> np.ndarray:
    """Coordinate-sum modulo: every axis-aligned beam spreads evenly."""
    return disk_modulo(grid_shape, n_disks)


@register_strategy("cube_aligned", align_cubes=True)
def _cube_aligned_grid(grid_shape: tuple[int, ...], n_disks: int) -> np.ndarray:
    """Disk-modulo over chunks aligned to the unsharded layout's cubes."""
    return disk_modulo(grid_shape, n_disks)


def assign_chunks(
    n_chunks: int,
    n_disks: int,
    strategy: str = "round_robin",
    grid_shape: tuple[int, ...] | None = None,
) -> np.ndarray:
    """Dispatch to a registered declustering strategy by name."""
    try:
        entry = (strategy if isinstance(strategy, StrategyEntry)
                 else STRATEGIES.get(strategy))
    except RegistryError as exc:
        raise AllocationError(str(exc)) from None
    if grid_shape is None:
        if entry.needs_grid:
            raise AllocationError(f"{entry.name} requires grid_shape")
        grid_shape = (int(n_chunks),)
    out = entry.fn(tuple(int(g) for g in grid_shape), int(n_disks))
    if out.size != n_chunks:
        raise AllocationError(
            f"grid {tuple(grid_shape)} has {out.size} chunks, "
            f"expected {n_chunks}"
        )
    return out
