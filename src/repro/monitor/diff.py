"""Run-to-run diffing of exported benchmark JSON.

``repro-bench diff base.json current.json`` loads two reports written
by the ``--json`` writer (``trace`` or ``dashboard`` exports — anything
carrying ``makespan_ms``/``phase_ms`` and, when monitoring was on, a
``monitor`` block) and compares them: phase totals, overall latency
quantiles, and window-by-window throughput/p99 series, flagging every
metric that moved beyond a relative tolerance band (with small absolute
floors so sub-millisecond noise never flags).  Two same-seed runs are
bit-identical, so a clean diff is an exact-zero check — which is what
the CI monitor-smoke job relies on.
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.errors import MonitorError

__all__ = ["diff_runs", "render_diff"]

#: absolute floors under which a delta never flags, keyed per metric
#: family — tolerance bands are relative, these stop tiny denominators
_FLOORS = {"ms": 1.0, "qps": 1.0, "count": 0.5}


def _monitor_block(data: dict) -> dict | None:
    """The ``monitor`` payload wherever the report put it (top level
    for dashboard exports, under ``meta`` for batch reports)."""
    block = data.get("monitor")
    if block is None:
        block = (data.get("meta") or {}).get("monitor")
    return block if isinstance(block, dict) else None


def _flag(regressions, label, base, cur, tolerance, *,
          floor="ms", worse="up"):
    """Record a delta; append to ``regressions`` when it crossed the
    tolerance band in the bad direction (``worse='up'`` means larger is
    worse — latency; ``'down'`` means smaller is worse — throughput)."""
    base = float(base)
    cur = float(cur)
    delta = cur - base
    entry = {"base": round(base, 3), "cur": round(cur, 3),
             "delta": round(delta, 3)}
    bad = delta if worse == "up" else -delta
    if bad > max(abs(base) * tolerance, _FLOORS[floor]):
        entry["regressed"] = True
        regressions.append(
            f"{label}: {base:g} -> {cur:g} "
            f"({'+' if delta >= 0 else ''}{delta:g})"
        )
    return entry


def diff_runs(base: dict, cur: dict, *, tolerance: float = 0.1) -> dict:
    """Compare two exported run reports.

    Returns a JSON-friendly payload whose ``regressions`` list names
    every metric that moved beyond ``tolerance`` (relative) in the bad
    direction; empty for identical (same-seed) runs.
    """
    if not isinstance(base, dict) or not isinstance(cur, dict):
        raise MonitorError("diff inputs must be exported report dicts")
    tolerance = float(tolerance)
    if tolerance < 0:
        raise MonitorError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    regressions: list[str] = []
    out: dict = {
        "base_dataset": base.get("dataset"),
        "cur_dataset": cur.get("dataset"),
        "tolerance": tolerance,
    }

    # headline totals
    totals = {}
    if "makespan_ms" in base and "makespan_ms" in cur:
        totals["makespan_ms"] = _flag(
            regressions, "makespan_ms", base["makespan_ms"],
            cur["makespan_ms"], tolerance, worse="up")
    if "throughput_qps" in base and "throughput_qps" in cur:
        totals["throughput_qps"] = _flag(
            regressions, "throughput_qps", base["throughput_qps"],
            cur["throughput_qps"], tolerance, floor="qps", worse="down")
    out["totals"] = totals

    # per-phase time totals (trace exports carry them top-level)
    bp = base.get("phase_ms") or {}
    cp = cur.get("phase_ms") or {}
    out["phase_ms"] = {
        cat: _flag(regressions, f"phase_ms.{cat}",
                   bp.get(cat, 0.0), cp.get(cat, 0.0), tolerance,
                   worse="up")
        for cat in sorted(set(bp) | set(cp))
    }

    bmon = _monitor_block(base)
    cmon = _monitor_block(cur)
    if bmon is not None and cmon is not None:
        # overall latency quantiles
        bq = (bmon.get("summary") or {}).get("latency_ms", {})
        cq = (cmon.get("summary") or {}).get("latency_ms", {})
        out["quantiles"] = {
            q: _flag(regressions, f"latency.{q}", bq.get(q, 0.0),
                     cq.get(q, 0.0), tolerance, worse="up")
            for q in sorted(set(bq) | set(cq))
        }
        # window-by-window regressions (compared over the shared span)
        bw = bmon.get("windows") or []
        cw = cmon.get("windows") or []
        flagged = []
        for b, c in zip(bw, cw):
            row_regs: list[str] = []
            _flag(row_regs, "qps", b.get("qps", 0.0), c.get("qps", 0.0),
                  tolerance, floor="qps", worse="down")
            _flag(row_regs, "p99_ms", b.get("p99_ms", 0.0),
                  c.get("p99_ms", 0.0), tolerance, worse="up")
            if row_regs:
                w = b.get("w", len(flagged))
                flagged.append({"w": w, "why": row_regs})
                regressions.extend(f"window {w}: {r}" for r in row_regs)
        out["windows"] = {
            "base": len(bw),
            "cur": len(cw),
            "compared": min(len(bw), len(cw)),
            "flagged": flagged,
        }
        # alert volume (more alerts = worse)
        out["alerts"] = _flag(
            regressions, "alerts", len(bmon.get("alerts") or ()),
            len(cmon.get("alerts") or ()), tolerance, floor="count",
            worse="up")
        bh = (bmon.get("health") or {}).get("state")
        ch = (cmon.get("health") or {}).get("state")
        out["health"] = {"base": bh, "cur": ch}
        if bh == "healthy" and ch not in (None, "healthy"):
            regressions.append(f"health: {bh} -> {ch}")
    out["regressions"] = regressions
    return out


def render_diff(data: dict) -> str:
    """Human-readable diff table (the CLI's non-JSON output)."""
    rows = []

    def fam(name, metrics):
        for key in sorted(metrics):
            m = metrics[key]
            rows.append([
                f"{name}.{key}" if name else key,
                f"{m['base']:g}", f"{m['cur']:g}", f"{m['delta']:+g}",
                "REGRESSED" if m.get("regressed") else "ok",
            ])

    fam("", data.get("totals", {}))
    fam("phase_ms", data.get("phase_ms", {}))
    fam("latency", data.get("quantiles", {}))
    if "alerts" in data:
        fam("", {"alerts": data["alerts"]})
    lines = [render_table(
        ["metric", "base", "current", "delta", "status"], rows)]
    windows = data.get("windows")
    if windows:
        lines.append(
            f"windows: {windows['compared']} compared, "
            f"{len(windows['flagged'])} flagged"
        )
    health = data.get("health")
    if health and health.get("base") is not None:
        lines.append(f"health: {health['base']} -> {health['cur']}")
    regs = data.get("regressions", [])
    if regs:
        lines.append(f"{len(regs)} regression(s) beyond "
                     f"tolerance {data.get('tolerance'):g}:")
        lines.extend(f"  - {r}" for r in regs)
    else:
        lines.append("no regressions beyond tolerance "
                     f"{data.get('tolerance'):g}")
    return "\n".join(lines)
