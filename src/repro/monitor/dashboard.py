"""The ``repro-bench dashboard`` subcommand's engine and renderer.

:func:`run_dashboard` runs one seeded traffic storm with a
:class:`~repro.monitor.Monitor` attached — optionally killing (and
reviving) a member disk mid-storm — and returns the full monitoring
payload: windowed time-series, SLO alerts, and the health timeline.
:func:`render_dashboard` draws it as sparkline rows (throughput, p99,
in-flight, cache hit ratio, capacity, ingest goodput), a per-drive
utilisation heatmap, and the alert/health tables.  Everything derives
from the monitor, so the report is deterministic under a fixed seed —
which is why ``repro-bench diff`` over two same-seed dashboard exports
is an exact-zero check.
"""

from __future__ import annotations

from repro.errors import MonitorError

__all__ = ["render_dashboard", "run_dashboard"]


def run_dashboard(shape, *, layout: str = "multimap",
                  drive: str = "atlas10k3", clients: int = 4,
                  queries: int = 16, mix=None, arrival: str = "closed",
                  rate: float = 50.0, think_ms: float = 0.0, seed=42,
                  slice_runs: int | None = 64, head: str = "random",
                  window_ms: float = 50.0, rules=None,
                  shards: int | None = None, k: int | None = None,
                  kill_at: float | None = None, kill_disk: int = 0,
                  revive_at: float | None = None,
                  exporter: str | None = None):
    """Run one monitored traffic storm.

    ``shards``/``k`` optionally scale out / replicate the dataset
    first (a kill needs ``k >= 2`` to keep answering); ``kill_at`` /
    ``revive_at`` schedule the storm's disk failure.  Returns
    ``(data, telemetry)`` like :func:`~repro.obs.trace_cmd.run_trace`.
    """
    from repro.api.dataset import Dataset
    from repro.traffic import BurstyArrivals, ClosedLoop, PoissonArrivals

    ds = Dataset.create(tuple(shape), layout=layout, drive=drive,
                        seed=seed)
    if shards is not None and shards > 1:
        ds = ds.with_shards(int(shards))
    if k is not None and k > 1:
        ds = ds.with_replication(int(k))
    ds.with_telemetry(trace=True, metrics=True, exporter=exporter,
                      monitor={"window_ms": window_ms, "rules": rules})
    if arrival == "closed":
        arr = ClosedLoop(think_ms=think_ms)
    elif arrival == "poisson":
        arr = PoissonArrivals(rate_qps=rate)
    elif arrival == "bursty":
        arr = BurstyArrivals(burst_rate_per_s=rate)
    else:
        raise MonitorError(
            f"arrival must be closed, poisson, or bursty; got {arrival!r}"
        )
    run = (
        ds.traffic()
        .clients(int(clients), mix=mix, arrival=arr,
                 queries=int(queries))
        .slice_runs(slice_runs if slice_runs else None)
        .head(head)
    )
    if kill_at is not None:
        run.kill(float(kill_at), int(kill_disk),
                 revive_at_ms=(float(revive_at)
                               if revive_at is not None else None))
    report = run.run()
    tele = ds.telemetry
    tracer = tele.tracer
    data = {
        "dataset": ds.describe(),
        "makespan_ms": report.makespan_ms,
        "throughput_qps": report.throughput_qps(),
        "phase_ms": {cat: round(ms, 3)
                     for cat, ms in tracer.phase_ms().items()},
        "monitor": tele.monitor.describe(),
    }
    return data, tele


_GLYPHS = " .:-=+*#%@"


def _spark(values, peak=None) -> str:
    """One sparkline row: each glyph scales its value against the
    series peak (or an explicit ``peak`` for ratio series)."""
    top = peak if peak is not None else max(values, default=0.0)
    if top <= 0:
        return " " * len(values)
    return "".join(
        _GLYPHS[min(int(min(v / top, 1.0) * (len(_GLYPHS) - 1) + 0.5),
                    len(_GLYPHS) - 1)]
        for v in values
    )


def render_dashboard(data: dict) -> str:
    """Console dashboard: header, sparkline panel, per-drive heatmap,
    alerts, and the health timeline."""
    from repro.bench.reporting import render_table

    mon = data["monitor"]
    windows = mon["windows"]
    ds = data["dataset"]
    parts = [
        f"dashboard: {ds['layout']} {tuple(ds['shape'])} on "
        f"{ds['drive']} — makespan {data['makespan_ms']:.1f} ms, "
        f"{data['throughput_qps']:.1f} q/s, "
        f"{mon['n_windows']} x {mon['window_ms']:g} ms windows"
    ]
    if windows:
        lat = mon["summary"]["latency_ms"]
        parts.append(
            "latency (ms): " + ", ".join(
                f"{k}={v:g}" for k, v in lat.items())
        )
        series = {
            "qps": [w["qps"] for w in windows],
            "p99 ms": [w["p99_ms"] for w in windows],
            "inflight": [w["inflight"] for w in windows],
        }
        rows = [
            [name, _spark(vals), f"{max(vals, default=0.0):g}"]
            for name, vals in series.items()
        ]
        hits = [w["cache_hit_ratio"] for w in windows]
        rows.append(["cache hit", _spark(hits, peak=1.0),
                     f"{max(hits, default=0.0):g}"])
        caps = [w["capacity"] for w in windows]
        rows.append(["capacity", _spark(caps, peak=1.0),
                     f"{min(caps, default=1.0):g}"])
        ingest = [w["ingest_mb_s"] for w in windows]
        if any(ingest):
            rows.append(["ingest MB/s", _spark(ingest),
                         f"{max(ingest):g}"])
        parts.append(render_table(["series", "windows", "peak"], rows))
        # per-drive utilisation heatmap (one row per disk)
        disks = sorted({int(d) for w in windows for d in w["util"]})
        if disks:
            parts.append("drive utilization (1 glyph per window):")
            for d in disks:
                row = [w["util"].get(str(d), 0.0) for w in windows]
                parts.append(f"  d{d} |{_spark(row, peak=1.0)}|")
    alerts = mon["alerts"]
    if alerts:
        parts.append(f"{len(alerts)} alert(s):")
        parts.append(render_table(
            ["t ms", "rule", "sev", "w", "detail"],
            [[f"{a['t_ms']:g}", a["rule"], a["severity"],
              a["window"], a["detail"]] for a in alerts],
        ))
    else:
        parts.append("no alerts")
    health = mon["health"]
    line = f"health: {health['state']}"
    if health["transitions"]:
        line += " (" + " -> ".join(
            [health["transitions"][0]["from"]]
            + [t["to"] for t in health["transitions"]]
        ) + ")"
    parts.append(line)
    for t in health["transitions"]:
        parts.append(
            f"  {t['t_ms']:>9.1f} ms  {t['from']} -> {t['to']}: "
            f"{t['reason']}"
        )
    return "\n".join(parts)
