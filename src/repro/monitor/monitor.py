"""The continuous-monitoring handle attached via the dataset façade.

:class:`Monitor` is what ``Dataset.with_telemetry(monitor=...)`` (or
``with_monitor``) hangs off the dataset's
:class:`~repro.obs.Telemetry`: the telemetry forwards every completed
root span here, the traffic engine reports kill/revive capacity
events, and :meth:`describe` assembles the gated ``meta["monitor"]``
block — windowed time-series rows, SLO alerts, and the health-state
timeline.

Like the tracer's seeded batch clock, the monitor keeps its own
``clock_ms`` so batch recordings (which each start at the tracer's
clock, or at 0 when tracing is off) are translated onto one contiguous
axis; traffic recordings already carry simulated times and pass
through unshifted.  Everything downstream is a pure function of the
recorded spans, so same seed + workload ⇒ a byte-identical payload.
"""

from __future__ import annotations

from repro.monitor.health import HealthTracker
from repro.monitor.slo import resolve_rules
from repro.monitor.timeseries import TimeSeries
from repro.obs.metrics import DEFAULT_BUCKETS_MS

__all__ = ["Monitor"]


class Monitor:
    """Windowed time-series + SLO rules + health state for one dataset.

    ``window_ms`` sizes the tumbling windows; ``rules`` takes any form
    :func:`~repro.monitor.slo.resolve_rules` accepts (default: every
    registered rule at its defaults); ``recover_windows`` is the
    health machine's probation length.
    """

    def __init__(self, window_ms: float = 50.0, rules=None,
                 recover_windows: int = 2, buckets=DEFAULT_BUCKETS_MS):
        self.series = TimeSeries(window_ms, buckets=buckets)
        self.rules = resolve_rules(rules)
        self.health = HealthTracker(recover_windows)
        #: batch-clock translation: batch roots sit on the tracer's
        #: clock (or all at 0 with tracing off); the shift tiles them
        #: onto the monitor's own axis either way
        self.clock_ms = 0.0

    @property
    def window_ms(self) -> float:
        return self.series.window_ms

    # ------------------------------------------------------------------
    # ingestion (called by Telemetry / the traffic engine)
    # ------------------------------------------------------------------

    def ingest(self, root, *, advance: bool) -> None:
        """Fold one completed root span into the series.

        ``advance`` mirrors :meth:`Telemetry.observe_query`: batch
        recordings tile the clock, traffic recordings carry simulated
        times.
        """
        shift = self.clock_ms - root.t0_ms if advance else 0.0
        self.series.ingest(root, shift)
        if advance:
            self.clock_ms += root.dur_ms

    def record_disk_event(self, t_ms: float, action: str, disk: int,
                          live: int, total: int) -> None:
        """Forwarded by the traffic engine on kill/revive."""
        self.series.record_disk_event(t_ms, action, disk, live, total)

    def reset(self) -> None:
        self.series.reset()
        self.clock_ms = 0.0

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def alerts(self) -> list:
        """Every rule's alerts over the current series, in one
        deterministic simulated-time order."""
        out = []
        for rule in self.rules:
            out.extend(rule.evaluate(self.series))
        out.sort(key=lambda a: (a.t_ms, a.rule, a.detail))
        return out

    def describe(self) -> dict:
        """The gated ``meta["monitor"]`` payload (stable key set)."""
        alerts = self.alerts()
        merged = self.series.merged_latency()
        return {
            "window_ms": self.series.window_ms,
            "n_windows": self.series.n_windows,
            "windows": self.series.rows(),
            "summary": {
                "queries": merged.count,
                "latency_ms": {
                    k: round(v, 3)
                    for k, v in merged.percentiles().items()
                },
            },
            "rules": [rule.describe() for rule in self.rules],
            "alerts": [a.to_dict() for a in alerts],
            "health": self.health.evaluate(self.series, alerts),
            "events": [
                {"t_ms": round(t, 3), "action": action, "disk": disk,
                 "live": live, "total": total}
                for t, action, disk, live, total
                in self.series.capacity_events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Monitor(window_ms={self.series.window_ms}, "
            f"windows={self.series.n_windows}, "
            f"rules={len(self.rules)})"
        )
