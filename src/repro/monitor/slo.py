"""Declarative SLO rules over the windowed time-series.

:data:`RULES` is the registry the ``repro-bench --list-rules`` flag
prints; :func:`register_rule` adds a rule class (its docstring first
line is the listed description, the convention every other registry
follows).  A rule is constructed with keyword thresholds and exposes
``evaluate(series) -> list[AlertEvent]``; the four builtins cover the
operational surface the ROADMAP's "millions of users" story needs:

``latency_threshold``   a window's latency quantile over a limit
``burn_rate``           error-budget burn over a rolling window span
``queue_saturation``    a drive pegged near 100 % utilisation
``degraded_capacity``   live member disks below the full complement

Evaluation is a pure function of the series: rules walk the window
rows in order and stamp every alert with the *simulated* end of the
offending window, so same seed + workload ⇒ byte-identical alert
streams (the determinism pin in ``tests/monitor``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MonitorError
from repro.registry import Registry

__all__ = [
    "AlertEvent",
    "BurnRateRule",
    "DegradedCapacityRule",
    "LatencyThresholdRule",
    "QueueSaturationRule",
    "RULES",
    "register_rule",
    "resolve_rules",
    "rule_names",
]

#: name -> rule class; list with ``repro-bench --list-rules``
RULES = Registry("SLO rule")


def register_rule(name: str):
    """Class decorator: register an SLO rule under ``name`` (the class
    gains a ``name`` attribute so alerts can cite their origin)."""

    def wrap(cls):
        cls.name = name
        RULES.add(name, cls)
        return cls

    return wrap


def rule_names() -> tuple[str, ...]:
    return RULES.names()


@dataclass(frozen=True)
class AlertEvent:
    """One deterministic alert: rule ``rule`` fired on window
    ``window`` at simulated ``t_ms`` (the window's end) because
    ``value`` crossed ``threshold``."""

    t_ms: float
    rule: str
    severity: str
    window: int
    value: float
    threshold: float
    detail: str

    def to_dict(self) -> dict:
        return {
            "t_ms": round(self.t_ms, 3),
            "rule": self.rule,
            "severity": self.severity,
            "window": self.window,
            "value": round(self.value, 4),
            "threshold": self.threshold,
            "detail": self.detail,
        }


class _Rule:
    """Shared plumbing: parameter capture and the describe() payload."""

    name = "?"

    def __init__(self, **params):
        self.params = params

    def describe(self) -> dict:
        return {
            "rule": self.name,
            "params": {k: self.params[k] for k in sorted(self.params)},
        }

    def evaluate(self, series) -> list:  # pragma: no cover - interface
        raise NotImplementedError


@register_rule("latency_threshold")
class LatencyThresholdRule(_Rule):
    """Alert when a window's latency quantile exceeds a threshold."""

    def __init__(self, q: float = 0.99, threshold_ms: float = 500.0,
                 severity: str = "page"):
        super().__init__(q=float(q), threshold_ms=float(threshold_ms))
        self.q = float(q)
        self.threshold_ms = float(threshold_ms)
        self.severity = severity

    def evaluate(self, series) -> list:
        out = []
        for b in range(series.n_windows):
            w = series._windows.get(b)
            if w is None or w.latency.count == 0:
                continue
            value = w.latency.quantile(self.q)
            if value > self.threshold_ms:
                out.append(AlertEvent(
                    t_ms=(b + 1) * series.window_ms,
                    rule=self.name, severity=self.severity, window=b,
                    value=value, threshold=self.threshold_ms,
                    detail=f"p{self.q * 100:g} {value:.2f} ms > "
                           f"{self.threshold_ms:g} ms",
                ))
        return out


@register_rule("burn_rate")
class BurnRateRule(_Rule):
    """Alert when the error budget burns too fast over rolling windows.

    The "error" is a query slower than ``objective_ms``; ``budget`` is
    the tolerated slow fraction.  Over each rolling span of ``windows``
    windows the burn rate is (observed slow fraction) / budget — an
    alert fires when it reaches ``factor`` (2.0 means the budget would
    be exhausted in half the intended period), the standard multiwindow
    burn-rate construction.
    """

    def __init__(self, objective_ms: float = 250.0, budget: float = 0.1,
                 windows: int = 4, factor: float = 2.0,
                 severity: str = "page"):
        if not 0 < budget <= 1:
            raise MonitorError(
                f"burn-rate budget must be in (0, 1], got {budget}"
            )
        if windows < 1:
            raise MonitorError("burn_rate needs at least one window")
        super().__init__(objective_ms=float(objective_ms),
                         budget=float(budget), windows=int(windows),
                         factor=float(factor))
        self.objective_ms = float(objective_ms)
        self.budget = float(budget)
        self.windows = int(windows)
        self.factor = float(factor)
        self.severity = severity

    def evaluate(self, series) -> list:
        out = []
        for b in range(series.n_windows):
            total = 0
            slow = 0.0
            for i in range(max(b - self.windows + 1, 0), b + 1):
                w = series._windows.get(i)
                if w is None or w.latency.count == 0:
                    continue
                total += w.latency.count
                slow += w.latency.count * (
                    1.0 - w.latency.fraction_le(self.objective_ms)
                )
            if total == 0:
                continue
            burn = (slow / total) / self.budget
            if burn >= self.factor:
                out.append(AlertEvent(
                    t_ms=(b + 1) * series.window_ms,
                    rule=self.name, severity=self.severity, window=b,
                    value=burn, threshold=self.factor,
                    detail=f"burn {burn:.2f}x over last "
                           f"{self.windows} windows "
                           f"(objective {self.objective_ms:g} ms, "
                           f"budget {self.budget:g})",
                ))
        return out


@register_rule("queue_saturation")
class QueueSaturationRule(_Rule):
    """Alert when a drive is pegged near 100 % busy for a window."""

    def __init__(self, utilization: float = 0.98,
                 severity: str = "warn"):
        if not 0 < utilization <= 1:
            raise MonitorError(
                f"saturation utilization must be in (0, 1], "
                f"got {utilization}"
            )
        super().__init__(utilization=float(utilization))
        self.utilization = float(utilization)
        self.severity = severity

    def evaluate(self, series) -> list:
        out = []
        for b in range(series.n_windows):
            w = series._windows.get(b)
            if w is None:
                continue
            for disk in sorted(w.busy_ms):
                util = min(w.busy_ms[disk] / series.window_ms, 1.0)
                if util >= self.utilization:
                    out.append(AlertEvent(
                        t_ms=(b + 1) * series.window_ms,
                        rule=self.name, severity=self.severity,
                        window=b, value=util,
                        threshold=self.utilization,
                        detail=f"disk {disk} at {util * 100:.1f}% busy",
                    ))
        return out


@register_rule("degraded_capacity")
class DegradedCapacityRule(_Rule):
    """Alert while live member disks are below the full complement."""

    def __init__(self, min_fraction: float = 1.0,
                 severity: str = "warn"):
        super().__init__(min_fraction=float(min_fraction))
        self.min_fraction = float(min_fraction)
        self.severity = severity

    def evaluate(self, series) -> list:
        out = []
        for b, cap in enumerate(series.capacity_series()):
            if cap < self.min_fraction:
                out.append(AlertEvent(
                    t_ms=(b + 1) * series.window_ms,
                    rule=self.name, severity=self.severity, window=b,
                    value=cap, threshold=self.min_fraction,
                    detail=f"capacity at {cap * 100:g}% of member disks",
                ))
        return out


def resolve_rules(spec) -> list:
    """Turn a rule spec into constructed rule instances.

    Accepts ``None`` (every builtin at defaults), a name -> params
    mapping (params ``None`` for defaults), an iterable of names, or an
    iterable of pre-built rule instances — mirroring the forms the
    other façade specs take while staying JSON-describable.
    """
    if spec is None:
        return [RULES.get(name)() for name in RULES.names()]
    if isinstance(spec, dict):
        return [
            RULES.get(name)(**(params or {}))
            for name, params in sorted(spec.items())
        ]
    out = []
    for item in spec:
        if isinstance(item, str):
            out.append(RULES.get(item)())
        elif hasattr(item, "evaluate"):
            out.append(item)
        else:
            raise MonitorError(
                f"rules must be names, name->params mappings, or rule "
                f"instances; got {type(item).__name__}"
            )
    return out
