"""Continuous monitoring: windowed series, SLOs, health, diffing.

``repro.monitor`` layers operational monitoring on :mod:`repro.obs` —
opt-in (``Dataset.with_telemetry(monitor=...)`` or
``Dataset.with_monitor()``), deterministic (every window, alert, and
health transition is a pure function of the recorded spans and the
seed), and zero-impact when detached (the parity suite pins detached
output bit-identical):

``timeseries``  :class:`TimeSeries` — tumbling simulated-time windows
                of throughput, latency quantiles, per-drive queue depth
                and utilisation, cache hit ratio, ingest goodput, and
                degraded capacity
``slo``         the :data:`RULES` registry (:func:`register_rule`) of
                declarative SLO rules — latency threshold, error-budget
                burn rate, queue saturation, degraded capacity — each
                emitting :class:`AlertEvent` s stamped at simulated time
``health``      :class:`HealthTracker` — the healthy → degraded →
                saturated → recovering state machine driven by
                failover/revive events and firing alerts
``monitor``     :class:`Monitor` — the handle a Telemetry carries; its
                :meth:`~Monitor.describe` is the gated
                ``meta["monitor"]`` block
``diff``        ``repro-bench diff``: run-to-run comparison of exported
                reports with a tolerance band
``dashboard``   ``repro-bench dashboard``: sparkline/heatmap rendering
                of one monitored storm

Only ``diff``/``dashboard`` (which reach the bench/Dataset layers)
load lazily; the core imports nothing above :mod:`repro.obs`, so a
Telemetry can carry a Monitor without import cycles.
"""

from __future__ import annotations

from repro.monitor.health import HEALTH_STATES, HealthTracker
from repro.monitor.monitor import Monitor
from repro.monitor.slo import (
    RULES,
    AlertEvent,
    BurnRateRule,
    DegradedCapacityRule,
    LatencyThresholdRule,
    QueueSaturationRule,
    register_rule,
    resolve_rules,
    rule_names,
)
from repro.monitor.timeseries import TimeSeries

#: lazily loaded names -> defining module (these pull in the reporting
#: and Dataset layers, which must be importable before repro.monitor)
_LAZY_EXPORTS = {
    "diff_runs": "repro.monitor.diff",
    "render_diff": "repro.monitor.diff",
    "run_dashboard": "repro.monitor.dashboard",
    "render_dashboard": "repro.monitor.dashboard",
}

__all__ = [
    "HEALTH_STATES",
    "RULES",
    "AlertEvent",
    "BurnRateRule",
    "DegradedCapacityRule",
    "HealthTracker",
    "LatencyThresholdRule",
    "Monitor",
    "QueueSaturationRule",
    "TimeSeries",
    "register_rule",
    "resolve_rules",
    "rule_names",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.monitor' has no attribute {name!r}"
        )
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
