"""Tumbling-window time-series over the simulated clock.

:class:`TimeSeries` folds the span trees an attached
:class:`~repro.obs.Telemetry` forwards (see
:meth:`repro.monitor.Monitor.ingest`) into fixed windows of
``window_ms`` simulated milliseconds.  Window ``w`` covers
``[w * window_ms, (w + 1) * window_ms)``; a query is attributed to the
window its *completion* falls in (completions pop off the traffic
engine's event heap in non-decreasing time, so the series is a pure
function of the recorded spans), while interval quantities — drive
busy time, per-drive in-system queries, global in-flight queries —
spread over every window they overlap.

Per window the collector records:

* completions and the window's latency :class:`~repro.obs.Histogram`
  (root durations), rendered as throughput and quantiles;
* per-drive utilisation (service/flush span overlap / window length)
  and queue depth (time-averaged queries with work in that drive's
  system, arrival to the drive's last slice — a Little's-law count);
* global in-flight queries (root-span overlap / window length);
* cache hit ratio (cache-span hits vs. serviced disk blocks);
* ingest goodput (flush-span blocks, also as MB/s at 512 B/block);
* degraded capacity: the minimum live-disk fraction during the window,
  replayed from the kill/revive events the traffic engine reports.

Everything is consumed from values the engine already computed — no
RNG draws, no wall clock — so same seed + workload ⇒ byte-identical
window rows.
"""

from __future__ import annotations

from repro.errors import MonitorError
from repro.obs.metrics import DEFAULT_BUCKETS_MS, Histogram

__all__ = ["TimeSeries"]

#: bytes per block (§5.2 maps one cell to one 512-byte block) — the
#: conversion behind the ingest-goodput MB/s column
BLOCK_BYTES = 512


class _Window:
    """Accumulators for one tumbling window (created on first touch)."""

    __slots__ = ("queries", "latency", "busy_ms", "queue_ms",
                 "inflight_ms", "cache_hits", "disk_blocks",
                 "flush_blocks", "reorg_ms")

    def __init__(self, buckets) -> None:
        self.queries = 0
        self.latency = Histogram(buckets)
        self.busy_ms: dict[int, float] = {}
        self.queue_ms: dict[int, float] = {}
        self.inflight_ms = 0.0
        self.cache_hits = 0
        self.disk_blocks = 0
        self.flush_blocks = 0
        self.reorg_ms = 0.0


class TimeSeries:
    """The windowed collector behind :class:`repro.monitor.Monitor`."""

    def __init__(self, window_ms: float = 50.0,
                 buckets=DEFAULT_BUCKETS_MS):
        window_ms = float(window_ms)
        if not window_ms > 0:
            raise MonitorError(
                f"window_ms must be positive, got {window_ms}"
            )
        self.window_ms = window_ms
        self.buckets = tuple(float(b) for b in buckets)
        self._windows: dict[int, _Window] = {}
        #: (t_ms, action, disk, live, total) in simulated-time order —
        #: the capacity step function the degraded-capacity column and
        #: the health machine replay
        self.capacity_events: list[tuple] = []
        #: (t0_ms, t1_ms) background-reorganisation intervals
        self.reorgs: list[tuple] = []
        self._max_index = -1

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def _index(self, t_ms: float) -> int:
        return max(int(t_ms / self.window_ms), 0)

    def _window(self, index: int) -> _Window:
        w = self._windows.get(index)
        if w is None:
            w = self._windows[index] = _Window(self.buckets)
        if index > self._max_index:
            self._max_index = index
        return w

    def _spread(self, t0: float, t1: float, add) -> None:
        """Call ``add(window, overlap_ms)`` for every window the
        interval ``[t0, t1)`` overlaps (degenerate intervals touch
        their containing window with 0 ms, so it still materialises)."""
        if t1 < t0:
            t0, t1 = t1, t0
        first = self._index(t0)
        last = self._index(max(t1 - 1e-12, t0)) if t1 > t0 else first
        for b in range(first, last + 1):
            lo = b * self.window_ms
            overlap = min(t1, lo + self.window_ms) - max(t0, lo)
            add(self._window(b), max(overlap, 0.0))

    def ingest(self, root, shift: float = 0.0) -> None:
        """Fold one completed root span into the windows.

        ``shift`` translates batch-clock recordings onto the monitor's
        own clock (see :meth:`repro.monitor.Monitor.ingest`); traffic
        recordings already carry simulated times and pass 0.
        """
        t0 = root.t0_ms + shift
        t1 = root.t1_ms + shift
        if root.cat == "query":
            w = self._window(self._index(t1))
            w.queries += 1
            w.latency.observe(root.dur_ms)

            def add_inflight(win, ms):
                win.inflight_ms += ms

            self._spread(t0, t1, add_inflight)
        elif root.cat == "reorg":
            self.reorgs.append((t0, t1))

            def add_reorg(win, ms):
                win.reorg_ms += ms

            self._spread(t0, t1, add_reorg)
        # span-tree walk: drive busy + blocks, cache hits, and the
        # per-drive interval each disk's portion of the query occupies
        disk_last: dict[int, float] = {}
        for span in root.walk():
            if span.cat in ("service", "flush"):
                disk = int(span.attrs.get("disk", -1))
                s0 = span.t0_ms + shift
                s1 = span.t1_ms + shift

                def add_busy(win, ms, disk=disk):
                    win.busy_ms[disk] = win.busy_ms.get(disk, 0.0) + ms

                self._spread(s0, s1, add_busy)
                blocks = int(span.attrs.get("blocks", 0))
                w = self._window(self._index(s1))
                w.disk_blocks += blocks
                if span.cat == "flush":
                    w.flush_blocks += blocks
                disk_last[disk] = max(disk_last.get(disk, s1), s1)
            elif span.cat == "cache":
                w = self._window(self._index(span.t1_ms + shift))
                w.cache_hits += int(span.attrs.get("hits", 0))
        for disk, last in disk_last.items():

            def add_queue(win, ms, disk=disk):
                win.queue_ms[disk] = win.queue_ms.get(disk, 0.0) + ms

            self._spread(t0, last, add_queue)

    def record_disk_event(self, t_ms: float, action: str, disk: int,
                          live: int, total: int) -> None:
        """One kill/revive event from the traffic engine (simulated
        time; ``live``/``total`` are the storage's member-disk counts
        after the event applied)."""
        if action not in ("kill", "revive"):
            raise MonitorError(
                f"disk event action must be 'kill' or 'revive', "
                f"got {action!r}"
            )
        self.capacity_events.append(
            (float(t_ms), action, int(disk), int(live), int(total))
        )
        # materialise the window so an end-of-run kill still shows up
        self._window(self._index(float(t_ms)))

    def reset(self) -> None:
        self._windows.clear()
        self.capacity_events.clear()
        self.reorgs.clear()
        self._max_index = -1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    @property
    def n_windows(self) -> int:
        return self._max_index + 1

    def merged_latency(self) -> Histogram:
        """One histogram over every window's completions (the overall
        quantile summary the differ compares)."""
        out = Histogram(self.buckets)
        for index in sorted(self._windows):
            out = out.merge(self._windows[index].latency)
        return out

    def capacity_series(self) -> list[float]:
        """Per-window live-disk fraction: the minimum of the capacity
        step function over each window (1.0 with no failure events)."""
        n = self.n_windows
        caps = [1.0] * n
        if not self.capacity_events or n == 0:
            return caps
        events = sorted(self.capacity_events, key=lambda e: e[0])
        current = 1.0
        ei = 0
        for b in range(n):
            hi = (b + 1) * self.window_ms
            low = current
            while ei < len(events) and events[ei][0] < hi:
                _, _, _, live, total = events[ei]
                current = live / total if total else 1.0
                low = min(low, current)
                ei += 1
            caps[b] = round(low, 4)
        return caps

    def rows(self) -> list[dict]:
        """The JSON window table (one dict per window, empty windows
        included so the axis is contiguous from 0)."""
        caps = self.capacity_series()
        wms = self.window_ms
        out = []
        for b in range(self.n_windows):
            w = self._windows.get(b)
            row = {
                "w": b,
                "t0_ms": round(b * wms, 3),
                "queries": 0,
                "qps": 0.0,
                "p50_ms": 0.0,
                "p99_ms": 0.0,
                "util": {},
                "queue": {},
                "inflight": 0.0,
                "cache_hit_ratio": 0.0,
                "ingest_blocks": 0,
                "ingest_mb_s": 0.0,
                "capacity": caps[b],
            }
            if w is not None:
                row["queries"] = w.queries
                row["qps"] = round(w.queries / (wms / 1e3), 3)
                row["p50_ms"] = round(w.latency.quantile(0.50), 3)
                row["p99_ms"] = round(w.latency.quantile(0.99), 3)
                row["util"] = {
                    str(d): round(min(ms / wms, 1.0), 4)
                    for d, ms in sorted(w.busy_ms.items())
                }
                row["queue"] = {
                    str(d): round(ms / wms, 4)
                    for d, ms in sorted(w.queue_ms.items())
                }
                row["inflight"] = round(w.inflight_ms / wms, 4)
                served = w.cache_hits + w.disk_blocks
                row["cache_hit_ratio"] = (
                    round(w.cache_hits / served, 4) if served else 0.0
                )
                row["ingest_blocks"] = w.flush_blocks
                row["ingest_mb_s"] = round(
                    w.flush_blocks * BLOCK_BYTES / (wms / 1e3) / 1e6, 4
                )
                if w.reorg_ms > 0:
                    row["reorg_frac"] = round(
                        min(w.reorg_ms / wms, 1.0), 4
                    )
            out.append(row)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeries(window_ms={self.window_ms}, "
            f"n_windows={self.n_windows})"
        )
