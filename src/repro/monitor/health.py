"""Per-dataset health state machine.

Four states, driven by the same deterministic inputs the SLO rules
consume (capacity events, alerts, window boundaries):

``healthy``     full capacity, no firing alerts
``degraded``    a member disk is down (kill event, capacity < 1)
``saturated``   load-class alerts (queue saturation / budget burn)
                firing while degraded
``recovering``  capacity restored (revive) but the probation period —
                ``recover_windows`` consecutive alert-free windows at
                full capacity — has not elapsed yet

Transitions are emitted in simulated-time order with the triggering
reason, so a kill-one-disk storm walks ``healthy → degraded →
recovering`` (and ``→ healthy`` if the run outlives the probation)
byte-identically run over run.
"""

from __future__ import annotations

from repro.errors import MonitorError

__all__ = ["HEALTH_STATES", "HealthTracker"]

HEALTH_STATES = ("healthy", "degraded", "saturated", "recovering")

#: alert rules that indicate load pressure (escalate degraded →
#: saturated) rather than reduced capacity
_LOAD_RULES = ("queue_saturation", "burn_rate")


class HealthTracker:
    """Replays a run's events into a health-state timeline.

    Pure and deterministic: :meth:`evaluate` takes the
    :class:`~repro.monitor.timeseries.TimeSeries` plus the alert list
    the SLO engine produced and returns the final state with every
    transition, stamped at simulated time.
    """

    def __init__(self, recover_windows: int = 2):
        recover_windows = int(recover_windows)
        if recover_windows < 1:
            raise MonitorError(
                f"recover_windows must be >= 1, got {recover_windows}"
            )
        self.recover_windows = recover_windows

    def evaluate(self, series, alerts) -> dict:
        """The health payload: final ``state`` plus the ``transitions``
        list (``{"t_ms", "from", "to", "reason"}`` dicts)."""
        wms = series.window_ms
        n = series.n_windows
        # one merged timeline; kind ranks break ties at equal times so
        # a kill and a same-instant alert apply in cause→effect order
        timeline = []
        for t, action, disk, live, total in series.capacity_events:
            timeline.append((float(t), 0, "disk", (action, disk, live,
                                                   total)))
        for alert in alerts:
            timeline.append((alert.t_ms, 1, "alert", alert))
        for b in range(n):
            timeline.append(((b + 1) * wms, 2, "window", b))
        timeline.sort(key=lambda item: (item[0], item[1]))

        alert_windows = {a.window for a in alerts}
        caps = series.capacity_series()

        state = "healthy"
        transitions: list[dict] = []
        clean = 0  # consecutive clean full-capacity windows seen

        def move(t, to, reason):
            nonlocal state
            if to != state:
                transitions.append({
                    "t_ms": round(t, 3),
                    "from": state,
                    "to": to,
                    "reason": reason,
                })
                state = to

        for t, _, kind, payload in timeline:
            if kind == "disk":
                action, disk, live, total = payload
                if action == "kill":
                    clean = 0
                    move(t, "degraded", f"disk {disk} failed "
                                        f"({live}/{total} live)")
                elif live >= total and state in ("degraded", "saturated"):
                    clean = 0
                    move(t, "recovering",
                         f"disk {disk} revived ({live}/{total} live)")
            elif kind == "alert":
                if payload.rule in _LOAD_RULES and state == "degraded":
                    move(t, "saturated", f"{payload.rule} while degraded")
            elif kind == "window":
                b = payload
                if b in alert_windows or caps[b] < 1.0:
                    clean = 0
                else:
                    clean += 1
                    if (state == "recovering"
                            and clean >= self.recover_windows):
                        move(t, "healthy",
                             f"{self.recover_windows} clean windows")
        return {"state": state, "transitions": transitions}

    def describe(self) -> dict:
        return {"recover_windows": self.recover_windows}
