"""Rebuild model: streaming a dead disk's chunks onto a spare.

After a member disk fails, its chunk copies are reconstructed by
reading each lost chunk from a surviving replica and streaming it onto
a hot spare.  :func:`plan_rebuild` times that process on *fresh* drive
instances of the same models (the real drives keep their head state for
foreground traffic): every source disk reads its share of lost chunks
back to back, the spare writes everything sequentially, sources overlap
with each other, and the ideal rebuild time is the makespan over
sources and the spare.  A ``throttle`` fraction models rebuild I/O
being rate-limited in favour of foreground traffic: the rebuild
stretches by ``1/throttle`` while each source disk stays busy a
proportionally smaller fraction of the window —
:meth:`RebuildReport.interference` reports, per source disk, that busy
fraction and the resulting foreground service dilation
``1 / (1 - busy_frac)`` (an M/G/1-style utilisation-headroom
estimate).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.drive import DiskDrive
from repro.errors import ReplicaError

__all__ = ["RebuildReport", "interference_profile", "plan_rebuild"]


def interference_profile(busy_ms_by_disk: dict, window_ms: float) -> dict:
    """Per-disk busy fraction and foreground service dilation
    ``1 / (1 - busy_frac)`` over a background-I/O window (an M/G/1-style
    utilisation-headroom estimate, shared by the rebuild and ingest
    reorganisation models)."""
    out = {}
    for disk, busy_ms in sorted(busy_ms_by_disk.items()):
        busy = busy_ms / window_ms if window_ms > 0 else 0.0
        busy = min(busy, 0.999999)
        out[int(disk)] = {
            "busy_frac": busy,
            "foreground_dilation": 1.0 / (1.0 - busy),
        }
    return out


@dataclass(frozen=True)
class RebuildReport:
    """Timing of one modelled rebuild."""

    dead_disk: int
    n_copies: int
    n_blocks: int
    source_read_ms: dict
    source_blocks: dict
    spare_write_ms: float
    ideal_ms: float
    throttle: float
    rebuild_ms: float

    def interference(self) -> dict:
        """Per-source busy fraction and foreground dilation during the
        rebuild window."""
        return interference_profile(self.source_read_ms, self.rebuild_ms)

    def to_dict(self) -> dict:
        return {
            "dead_disk": int(self.dead_disk),
            "n_copies": int(self.n_copies),
            "n_blocks": int(self.n_blocks),
            # string keys so the payload round-trips through JSON
            "source_read_ms": {
                str(d): float(ms)
                for d, ms in sorted(self.source_read_ms.items())
            },
            "source_blocks": {
                str(d): int(b)
                for d, b in sorted(self.source_blocks.items())
            },
            "spare_write_ms": float(self.spare_write_ms),
            "ideal_ms": float(self.ideal_ms),
            "throttle": float(self.throttle),
            "rebuild_ms": float(self.rebuild_ms),
            "interference": {
                str(d): v for d, v in self.interference().items()
            },
        }


def plan_rebuild(storage, dead_disk: int, *,
                 throttle: float = 1.0) -> RebuildReport:
    """Model rebuilding every chunk copy lost with ``dead_disk``.

    ``storage`` must be a
    :class:`~repro.replica.executor.ReplicatedStorageManager`; the
    source for each lost copy is that chunk's lowest surviving copy on
    a healthy disk (disks in ``storage.failed`` are skipped too).  A
    chunk whose only copy lived on the dead disk is unrebuildable and
    raises :class:`ReplicaError`.
    """
    replica_map = getattr(storage, "replica_map", None)
    if replica_map is None:
        raise ReplicaError(
            "rebuild needs a replicated storage manager "
            "(Dataset.with_replication)"
        )
    dead = int(dead_disk)
    if not 0 <= dead < replica_map.n_disks:
        raise ReplicaError(
            f"disk {dead} out of range for {replica_map.n_disks} "
            f"member disks"
        )
    if not 0 < throttle <= 1:
        raise ReplicaError("throttle must be in (0, 1]")
    unavailable = set(storage.failed) | {dead}

    # fresh drives: the rebuild stream must not disturb the real drives'
    # head state (foreground queries keep their own positions)
    read_drives: dict[int, DiskDrive] = {}
    spare = DiskDrive(storage.volume.models[dead])
    source_read_ms: dict[int, float] = {}
    source_blocks: dict[int, int] = {}
    spare_write_ms = 0.0
    n_copies = 0
    n_blocks = 0
    for chunk_index, lost_copy in replica_map.copies_on_disk(dead):
        sources = [
            r for r in range(replica_map.k)
            if int(replica_map.disks[chunk_index, r]) not in unavailable
        ]
        if not sources:
            raise ReplicaError(
                f"chunk {chunk_index} cannot be rebuilt: no surviving "
                f"copy off disks {sorted(unavailable)}"
            )
        src = sources[0]
        src_disk = int(replica_map.disks[chunk_index, src])
        chunk = replica_map.shard_map.chunks[chunk_index]
        ndim = len(chunk.shape)
        read_plan = storage.copy_mappers[chunk_index][src].range_plan(
            (0,) * ndim, chunk.shape
        )
        write_plan = storage.copy_mappers[chunk_index][
            lost_copy
        ].range_plan((0,) * ndim, chunk.shape)
        drive = read_drives.get(src_disk)
        if drive is None:
            drive = DiskDrive(storage.volume.models[src_disk])
            read_drives[src_disk] = drive
        res = drive.service_runs(
            read_plan.starts, read_plan.lengths,
            policy=read_plan.policy, window=storage.window,
        )
        source_read_ms[src_disk] = (
            source_read_ms.get(src_disk, 0.0) + res.total_ms
        )
        source_blocks[src_disk] = (
            source_blocks.get(src_disk, 0) + res.n_blocks
        )
        wres = spare.service_runs(
            write_plan.starts, write_plan.lengths,
            policy=write_plan.policy, window=storage.window,
        )
        spare_write_ms += wres.total_ms
        n_copies += 1
        n_blocks += res.n_blocks
    ideal = max(
        max(source_read_ms.values(), default=0.0), spare_write_ms
    )
    return RebuildReport(
        dead_disk=dead,
        n_copies=n_copies,
        n_blocks=n_blocks,
        source_read_ms=source_read_ms,
        source_blocks=source_blocks,
        spare_write_ms=spare_write_ms,
        ideal_ms=ideal,
        throttle=float(throttle),
        rebuild_ms=ideal / float(throttle),
    )
