"""repro.replica — fault tolerance via k-way declustered replication.

The replica layer makes the sharded stack survive member-disk failures:
a :class:`ReplicaMap` places each chunk's primary plus k-1 replicas on
distinct member disks through the registered placements of
:data:`PLACEMENTS` (``rotated`` chained declustering, and
``locality_aligned``, which keeps replicas of grid-adjacent chunks
together so degraded-mode reads keep MultiMap's adjacency dividend), the
:class:`ReplicatedStorageManager` routes every per-chunk sub-plan to a
copy chosen by a registered read policy (:data:`READ_POLICIES`:
``primary`` / ``round_robin`` / ``least_loaded``), and a seeded
:class:`FailureInjector` kills and revives disks deterministically —
reads transparently fail over to surviving replicas, with degraded-mode
accounting and a rebuild model (:func:`plan_rebuild`) that streams a
dead disk's chunks from replicas onto a spare::

    from repro import Dataset
    from repro.replica import FailureInjector, plan_rebuild

    ds = Dataset.create((64, 16, 16), layout="multimap", seed=42)
    ds.with_shards(3).with_replication(2, placement="locality_aligned")
    dead = FailureInjector(3, seed=7).kill(ds.storage)
    report = ds.random_beams(axis=2, n=8).run()   # fails over, degraded
    print(report.meta["replicas"]["stats"]["degraded_queries"])
    print(plan_rebuild(ds.storage, dead).rebuild_ms)

``with_replication(1)`` is bit-identical to the PR 4 sharded stack
across the executor, batch reports, and traffic runs —
``tests/replica/test_parity.py`` pins the guarantee.
:func:`run_avail_sweep` produces the availability/overhead-vs-k curves
per layout (``repro-bench avail``).
"""

from repro.replica.avail import render_avail_sweep, run_avail_sweep
from repro.replica.executor import (
    READ_POLICIES,
    ReadPolicyEntry,
    ReplicaStats,
    ReplicatedPrepared,
    ReplicatedStorageManager,
    SubSource,
    read_policy_names,
    register_read_policy,
)
from repro.replica.failures import (
    FailureEvent,
    FailureInjector,
    FailureSchedule,
)
from repro.replica.map import (
    PLACEMENTS,
    PlacementEntry,
    ReplicaMap,
    placement_names,
    register_placement,
)
from repro.replica.rebuild import (
    RebuildReport,
    interference_profile,
    plan_rebuild,
)

__all__ = [
    "FailureEvent",
    "FailureInjector",
    "FailureSchedule",
    "PLACEMENTS",
    "PlacementEntry",
    "READ_POLICIES",
    "ReadPolicyEntry",
    "RebuildReport",
    "ReplicaMap",
    "ReplicaStats",
    "ReplicatedPrepared",
    "ReplicatedStorageManager",
    "SubSource",
    "interference_profile",
    "placement_names",
    "plan_rebuild",
    "read_policy_names",
    "register_placement",
    "register_read_policy",
    "render_avail_sweep",
    "run_avail_sweep",
]
