"""Deterministic failure injection: kill/revive schedules for runs.

A :class:`FailureInjector` is the seeded source of failure decisions —
it picks victim disks reproducibly, applies kills/revives to a
:class:`~repro.replica.executor.ReplicatedStorageManager` between batch
queries, and builds :class:`FailureSchedule` timelines for the traffic
engine (queries in flight on a killed disk re-dispatch onto surviving
replicas; see :mod:`repro.traffic.engine`).  Same seed, same schedule,
same victims — bit-reproducible chaos.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReplicaError

__all__ = ["FailureEvent", "FailureInjector", "FailureSchedule"]

_ACTIONS = ("kill", "revive")


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled state change of one member disk."""

    t_ms: float
    action: str
    disk: int

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ReplicaError(
                f"unknown failure action {self.action!r}; "
                f"expected one of {_ACTIONS}"
            )
        if self.t_ms < 0:
            raise ReplicaError("failure time must be >= 0 ms")
        if self.disk < 0:
            raise ReplicaError("disk index must be >= 0")

    def describe(self) -> dict:
        return {
            "t_ms": float(self.t_ms),
            "action": self.action,
            "disk": int(self.disk),
        }


@dataclass(frozen=True)
class FailureSchedule:
    """An immutable, time-ordered list of failure events."""

    events: tuple[FailureEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(
            ev if isinstance(ev, FailureEvent) else FailureEvent(*ev)
            for ev in self.events
        )
        # stable sort: simultaneous events keep their authored order
        events = tuple(sorted(events, key=lambda ev: ev.t_ms))
        object.__setattr__(self, "events", events)

    @classmethod
    def coerce(cls, schedule) -> "FailureSchedule":
        """Normalise a schedule spec (schedule, injector, or iterable of
        events / ``(t_ms, action, disk)`` tuples)."""
        if isinstance(schedule, FailureSchedule):
            return schedule
        if isinstance(schedule, FailureInjector):
            return schedule.schedule
        return cls(tuple(schedule))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> dict:
        return {"events": [ev.describe() for ev in self.events]}


class FailureInjector:
    """Seeded, deterministic kill/revive decisions for ``n_disks``.

    The injector owns a private generator: every ``pick_disk`` draw is a
    pure function of the seed and the call sequence, so experiments that
    kill "a random disk" are replayable bit-for-bit.
    """

    def __init__(self, n_disks: int, seed: int = 0):
        self.n_disks = int(n_disks)
        if self.n_disks < 1:
            raise ReplicaError("need at least one disk")
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._events: list[FailureEvent] = []

    # ------------------------------------------------------------------
    # victim selection
    # ------------------------------------------------------------------

    def pick_disk(self, exclude=()) -> int:
        """Draw a victim disk uniformly among the non-excluded ones."""
        exclude = set(int(d) for d in exclude)
        candidates = [d for d in range(self.n_disks) if d not in exclude]
        if not candidates:
            raise ReplicaError("no disk left to pick")
        return int(candidates[int(self.rng.integers(len(candidates)))])

    # ------------------------------------------------------------------
    # batch-mode injection (between queries)
    # ------------------------------------------------------------------

    def kill(self, storage, disk: int | None = None) -> int:
        """Kill ``disk`` (or a drawn victim) on ``storage``; returns the
        victim so callers can revive or rebuild it later."""
        if disk is None:
            disk = self.pick_disk(exclude=storage.failed)
        storage.fail_disk(int(disk))
        return int(disk)

    def revive(self, storage, disk: int) -> None:
        storage.revive_disk(int(disk))

    # ------------------------------------------------------------------
    # schedule building (for the traffic engine)
    # ------------------------------------------------------------------

    def schedule_kill(self, at_ms: float, disk: int | None = None,
                      revive_at_ms: float | None = None
                      ) -> "FailureInjector":
        """Append a kill (and optional revive) to the schedule
        (chainable).  ``disk=None`` draws the victim now, from the
        injector's stream, excluding disks already scheduled dead at
        ``at_ms``."""
        if disk is None:
            dead = {
                ev.disk for ev in self._events
                if ev.action == "kill" and not any(
                    e.action == "revive" and e.disk == ev.disk
                    and ev.t_ms < e.t_ms <= at_ms
                    for e in self._events
                )
            }
            disk = self.pick_disk(exclude=dead)
        disk = int(disk)
        if disk >= self.n_disks:
            raise ReplicaError(
                f"disk {disk} out of range for {self.n_disks} disks"
            )
        self._events.append(FailureEvent(float(at_ms), "kill", disk))
        if revive_at_ms is not None:
            if revive_at_ms <= at_ms:
                raise ReplicaError("revive must come after the kill")
            self._events.append(
                FailureEvent(float(revive_at_ms), "revive", disk)
            )
        return self

    @property
    def schedule(self) -> FailureSchedule:
        """The events appended so far, as an immutable schedule."""
        return FailureSchedule(tuple(self._events))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailureInjector(n_disks={self.n_disks}, seed={self.seed}, "
            f"events={len(self._events)})"
        )
