"""The replicated storage manager: k copies, read selection, failover.

:class:`ReplicatedStorageManager` extends the scatter-gather
:class:`~repro.shard.executor.ShardedStorageManager` with k-way
replication: a :class:`~repro.replica.map.ReplicaMap` places copies
1..k-1 of every chunk on distinct member disks (copy 0 stays exactly
where the shard map put it — primary mappers are built first, in chunk
order, so the healthy-mode placement is bit-identical to the sharded
stack), queries route each per-chunk sub-plan to a copy chosen by a
registered *read policy* (:data:`READ_POLICIES`), and killed disks
(:meth:`fail_disk`) divert reads to surviving replicas with degraded-mode
accounting in :class:`ReplicaStats`.

With ``k=1`` there is exactly one copy per chunk — the primary — and
every path below reduces to the sharded manager call for call, the
parity ``tests/replica/test_parity.py`` pins bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.api.registry import build_mapper
from repro.errors import ReplicaError
from repro.query.executor import PreparedQuery, StorageManager
from repro.query.scatter import ShardedPrepared
from repro.registry import Registry, first_doc_line
from repro.replica.map import ReplicaMap
from repro.shard.executor import ShardedStorageManager

__all__ = [
    "READ_POLICIES",
    "ReadPolicyEntry",
    "ReplicaStats",
    "ReplicatedPrepared",
    "ReplicatedStorageManager",
    "SubSource",
    "read_policy_names",
    "register_read_policy",
]


# ----------------------------------------------------------------------
# read-selection policies
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReadPolicyEntry:
    """A registered replica read-selection policy.

    ``fn(manager, chunk_index, live)`` picks one copy index out of
    ``live`` (non-empty, ascending copy order, every copy on a healthy
    disk).  Selection must be deterministic — same call sequence, same
    choices — so seeded runs stay bit-reproducible.
    """

    name: str
    fn: Callable
    description: str = ""


#: read-policy-name -> :class:`ReadPolicyEntry`; builtins live in this
#: module, so importing it is the whole population step
READ_POLICIES = Registry("read policy")


def register_read_policy(name: str, *, description: str = ""):
    """Function decorator adding a read policy to
    :data:`READ_POLICIES`."""

    def deco(fn):
        desc = description or first_doc_line(fn)
        READ_POLICIES.add(name, ReadPolicyEntry(name, fn, desc))
        return fn

    return deco


def read_policy_names() -> tuple[str, ...]:
    return READ_POLICIES.names()


@register_read_policy("primary")
def _primary(manager, chunk_index: int, live) -> int:
    """Lowest live copy: the primary while its disk is healthy."""
    return live[0]


@register_read_policy("round_robin")
def _round_robin(manager, chunk_index: int, live) -> int:
    """Cycle each chunk's reads over its live copies in turn."""
    i = manager._rr_counts.get(chunk_index, 0)
    manager._rr_counts[chunk_index] = i + 1
    return live[i % len(live)]


@register_read_policy("least_loaded")
def _least_loaded(manager, chunk_index: int, live) -> int:
    """Live copy on the disk with the fewest planned blocks so far."""
    disks = manager.replica_map.disks[chunk_index]
    blocks = manager.replica_stats.planned_blocks
    return min(live, key=lambda r: (blocks[int(disks[r])], r))


# ----------------------------------------------------------------------
# prepared form + stats
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SubSource:
    """Provenance of one sub-plan: which chunk piece, on which copy.

    Carries everything needed to re-plan the same piece on another copy
    (the failover path): the chunk, the chosen copy, the beam axis
    (``None`` for ranges) and the chunk-local half-open box."""

    chunk: int
    copy: int
    axis: int | None
    llo: tuple[int, ...]
    lhi: tuple[int, ...]
    n_cells: int


@dataclass(frozen=True)
class ReplicatedPrepared(ShardedPrepared):
    """A sharded prepared query that remembers each sub-plan's source.

    ``sources[i]`` describes ``subs[i]``; everything else — aggregate
    counters, the per-disk execution semantics — is inherited, so the
    traffic engine and the scatter executor treat it exactly like a
    :class:`ShardedPrepared` (the k=1 parity relies on this).
    """

    sources: tuple[SubSource, ...] = ()


@dataclass
class ReplicaStats:
    """Cumulative read-routing totals over a manager's lifetime."""

    n_disks: int
    reads: list = field(init=False)
    planned_blocks: list = field(init=False)
    primary_reads: int = 0
    replica_reads: int = 0
    failovers: int = 0
    degraded_queries: int = 0

    def __post_init__(self) -> None:
        self.reads = [0] * self.n_disks
        self.planned_blocks = [0] * self.n_disks

    def record_sub(self, disk: int, copy: int, n_blocks: int) -> None:
        self.reads[disk] += 1
        self.planned_blocks[disk] += int(n_blocks)
        if copy == 0:
            self.primary_reads += 1
        else:
            self.replica_reads += 1

    def to_dict(self) -> dict:
        return {
            "primary_reads": self.primary_reads,
            "replica_reads": self.replica_reads,
            "failovers": self.failovers,
            "degraded_queries": self.degraded_queries,
            "per_disk": [
                {
                    "disk": i,
                    "reads": self.reads[i],
                    "planned_blocks": self.planned_blocks[i],
                }
                for i in range(self.n_disks)
            ],
        }


# ----------------------------------------------------------------------
# the manager
# ----------------------------------------------------------------------


class ReplicatedStorageManager(ShardedStorageManager):
    """Scatter-gather execution over k-way replicated chunks.

    Parameters mirror :class:`ShardedStorageManager` plus the
    replication knobs.  Copy-0 mappers are the parent's chunk mappers
    (built first, chunk order — the sharded stack's exact placement);
    replica mappers are built afterwards (chunk order, then copy order),
    so adding replication never moves a primary.
    """

    def __init__(
        self,
        volume,
        shard_map,
        layout,
        *,
        k: int = 2,
        placement: str = "rotated",
        read_policy: str = "primary",
        cell_blocks: int = 1,
        window: int = 128,
        sptf_run_limit: int = 150_000,
        coalesce_gap_blocks: int = 24,
        cache=None,
        layout_opts: dict | None = None,
    ):
        super().__init__(
            volume,
            shard_map,
            layout,
            cell_blocks=cell_blocks,
            window=window,
            sptf_run_limit=sptf_run_limit,
            coalesce_gap_blocks=coalesce_gap_blocks,
            cache=cache,
            layout_opts=layout_opts,
        )
        self.replica_map = ReplicaMap.build(shard_map, k, placement)
        self.read_policy = (
            read_policy if isinstance(read_policy, ReadPolicyEntry)
            else READ_POLICIES.get(read_policy)
        )
        self.cell_blocks = int(cell_blocks)
        # copy 0 is the parent's chunk mapper; replicas allocate after
        # every primary so the primary placement never moves
        copy_mappers = [[m] for m in self.mapper.chunk_mappers]
        for i, chunk in enumerate(shard_map.chunks):
            for r in range(1, self.replica_map.k):
                copy_mappers[i].append(
                    build_mapper(
                        layout, chunk.shape, volume,
                        int(self.replica_map.disks[i, r]),
                        cell_blocks=self.cell_blocks,
                        **self.layout_opts,
                    )
                )
        self.copy_mappers = tuple(tuple(ms) for ms in copy_mappers)
        self.failed: set[int] = set()
        self.replica_stats = ReplicaStats(shard_map.n_disks)
        self._rr_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # failure state
    # ------------------------------------------------------------------

    def fail_disk(self, disk: int) -> None:
        """Mark a member disk dead: reads divert to surviving copies and
        any cached frames of the disk are dropped (a revived or rebuilt
        disk must not serve stale frames)."""
        d = int(disk)
        if not 0 <= d < self.shard_map.n_disks:
            raise ReplicaError(
                f"disk {d} out of range for {self.shard_map.n_disks} "
                f"member disks"
            )
        self.failed.add(d)
        cache = self.cache
        if cache is not None and cache.active:
            cache.drop_disk(d)

    def revive_disk(self, disk: int) -> None:
        """Bring a failed member disk back into rotation."""
        self.failed.discard(int(disk))

    # ------------------------------------------------------------------
    # copy selection + scatter
    # ------------------------------------------------------------------

    def _select_copy(self, chunk_index: int, exclude_copy=None) -> int:
        live = [
            r for r in self.replica_map.live_copies(
                chunk_index, self.failed
            )
            if r != exclude_copy
        ]
        if not live:
            raise ReplicaError(
                f"chunk {chunk_index} is unreadable: all "
                f"{self.replica_map.k} copies are on failed disks "
                f"{sorted(self.failed)}"
            )
        return int(self.read_policy.fn(self, chunk_index, live))

    def _prepare_source(self, source: SubSource) -> PreparedQuery:
        """Plan + prepare one chunk piece on its source's chosen copy."""
        mapper = self.copy_mappers[source.chunk][source.copy]
        plan = self._piece_plan(mapper, source.axis, source.llo,
                                source.lhi)
        sub = self.prepare_plan(mapper, plan, source.n_cells)
        self.replica_stats.record_sub(
            sub.disk_index, source.copy, sub.n_blocks + sub.cache_hits
        )
        return sub

    def prepare(self, mapper, query) -> ReplicatedPrepared:
        """Split the query per chunk and route every piece to a copy
        chosen by the read policy among live disks."""
        pieces, axis = self._query_pieces(query)
        subs, sources = [], []
        total_cells = 0
        degraded = False
        for chunk, llo, lhi, n_cells in pieces:
            copy = self._select_copy(chunk.index)
            if int(self.replica_map.disks[chunk.index, 0]) in self.failed:
                degraded = True
            source = SubSource(chunk.index, copy, axis, llo, lhi, n_cells)
            subs.append(self._prepare_source(source))
            sources.append(source)
            total_cells += n_cells
        if degraded:
            self.replica_stats.degraded_queries += 1
        return ReplicatedPrepared(
            mapper_name=self.mapper.name,
            subs=tuple(subs),
            n_cells=total_cells,
            sources=tuple(sources),
        )

    def write_copies(self, chunk_index: int):
        """Every live ``(copy, mapper)`` an ingest flush must write.

        Replica-consistent ingest applies a flush to the primary *and*
        all k-1 copies, skipping dead disks (their copies rebuild from a
        survivor later); a chunk whose copies are all dead cannot accept
        writes at all — raising keeps the data-loss loud."""
        i = int(chunk_index)
        live = self.replica_map.live_copies(i, self.failed)
        if not live:
            raise ReplicaError(
                f"chunk {i} is unwritable: all {self.replica_map.k} "
                f"copies are on failed disks {sorted(self.failed)}"
            )
        return tuple((int(r), self.copy_mappers[i][int(r)]) for r in live)

    def failover_sub(
        self, source: SubSource
    ) -> tuple[SubSource, PreparedQuery]:
        """Re-dispatch one sub-plan onto a surviving copy.

        Called when the disk servicing ``source`` fails mid-run: the
        whole piece restarts on another live copy (already-serviced
        slices are lost work — the blocks must be re-read).  Returns the
        updated source and the freshly prepared sub-plan.
        """
        copy = self._select_copy(source.chunk, exclude_copy=source.copy)
        moved = SubSource(source.chunk, copy, source.axis, source.llo,
                          source.lhi, source.n_cells)
        sub = self._prepare_source(moved)
        self.replica_stats.failovers += 1
        return moved, sub

    def admit_prepared(self, prepared) -> None:
        """Admit serviced sub-plans, skipping copies on failed disks
        (their frames were dropped at :meth:`fail_disk` and must not be
        repopulated for a disk that cannot serve them)."""
        if isinstance(prepared, ShardedPrepared):
            subs = prepared.subs
        else:
            subs = (prepared,)
        for sub in subs:
            if sub.disk_index not in self.failed:
                StorageManager.admit_prepared(self, sub)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def reset_replica_stats(self) -> None:
        self.replica_stats = ReplicaStats(self.shard_map.n_disks)

    def describe_replicas(self) -> dict:
        """Placement summary plus lifetime routing stats (cumulative,
        like the shard snapshot; ``reset_replica_stats`` scopes it)."""
        out = self.replica_map.describe()
        out["read_policy"] = self.read_policy.name
        out["failed"] = sorted(self.failed)
        out["stats"] = self.replica_stats.to_dict()
        return out
