"""Replica maps: where each chunk's k copies live.

A :class:`ReplicaMap` extends a :class:`~repro.shard.map.ShardMap` with
k-way declustered replication: copy 0 of every chunk stays on the shard
map's primary disk (so healthy-mode reads are exactly the sharded
stack), and copies 1..k-1 land on k-1 *other* member disks chosen by a
registered placement strategy (:data:`PLACEMENTS`):

* ``rotated`` — classic chained declustering: copy r of a chunk whose
  primary is disk d lives on disk ``(d + r) mod n``, so one disk's data
  spreads over its successors and any single failure splits the extra
  load across several survivors;
* ``locality_aligned`` — the locality-preserving strategy of this
  layer: contiguous runs of the chunk enumeration (grid-adjacent
  chunks) keep their copy-r replicas *together* on one disk, so after a
  failover the surviving replicas of neighbouring chunks are neighbours
  on their home disk too — degraded-mode reads keep MultiMap's
  basic-cube adjacency instead of scattering across the array.  (Each
  copy is placed by a full per-chunk mapper on its home disk, so
  *within* a chunk every copy preserves adjacency by construction; the
  strategies differ in how copies of *adjacent chunks* cluster.)

Placement functions take ``(shard_map, k)`` and return an
``(n_chunks, k)`` integer array of member-disk indices whose column 0
must equal the shard map's primary assignment.  Third parties extend
the table with :func:`register_placement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReplicaError
from repro.registry import Registry, first_doc_line
from repro.shard.map import ShardMap

__all__ = [
    "PLACEMENTS",
    "PlacementEntry",
    "ReplicaMap",
    "placement_names",
    "register_placement",
]


@dataclass(frozen=True)
class PlacementEntry:
    """A registered replica-placement strategy."""

    name: str
    fn: Callable[[ShardMap, int], np.ndarray]
    description: str = ""


#: placement-name -> :class:`PlacementEntry`; builtins live in this
#: module, so importing it is the whole population step
PLACEMENTS = Registry("placement")


def register_placement(name: str, *, description: str = ""):
    """Function decorator adding a replica placement to
    :data:`PLACEMENTS`."""

    def deco(fn):
        desc = description or first_doc_line(fn)
        PLACEMENTS.add(name, PlacementEntry(name, fn, desc))
        return fn

    return deco


def placement_names() -> tuple[str, ...]:
    return PLACEMENTS.names()


@register_placement("rotated")
def rotated(shard_map: ShardMap, k: int) -> np.ndarray:
    """Chained declustering: copy r on disk (primary + r) mod n."""
    n = shard_map.n_disks
    primaries = np.asarray([c.disk for c in shard_map.chunks],
                           dtype=np.int64)
    offsets = np.arange(int(k), dtype=np.int64)
    return (primaries[:, np.newaxis] + offsets[np.newaxis, :]) % n


@register_placement("locality_aligned")
def locality_aligned(shard_map: ShardMap, k: int) -> np.ndarray:
    """Replicas of grid-adjacent chunks co-locate, keeping adjacency."""
    n = shard_map.n_disks
    n_chunks = shard_map.n_chunks
    out = np.empty((n_chunks, int(k)), dtype=np.int64)
    for i, chunk in enumerate(shard_map.chunks):
        # contiguous block of the chunk enumeration: chunks i with the
        # same block id are grid neighbours (the enumeration's fastest
        # axis), so their copy-r replicas share a home disk
        block = (i * n) // n_chunks
        disks = [int(chunk.disk)]
        for r in range(1, int(k)):
            d = (block + r) % n
            while d in disks:
                d = (d + 1) % n
            disks.append(d)
        out[i] = disks
    return out


@dataclass(frozen=True)
class ReplicaMap:
    """An immutable k-way copy placement for one sharded dataset.

    ``disks[i, r]`` is the member disk of chunk ``i``'s copy ``r``;
    column 0 is the shard map's primary assignment, and every row holds
    k *distinct* disks, so any k-1 simultaneous disk failures leave
    every chunk readable.
    """

    shard_map: ShardMap
    k: int
    placement: str
    disks: np.ndarray

    def __post_init__(self) -> None:
        k = int(self.k)
        n = self.shard_map.n_disks
        if not 1 <= k <= n:
            raise ReplicaError(
                f"k={k} copies need 1 <= k <= {n} member disks"
            )
        disks = np.asarray(self.disks, dtype=np.int64)
        object.__setattr__(self, "disks", disks)
        if disks.shape != (self.shard_map.n_chunks, k):
            raise ReplicaError(
                f"placement shape {disks.shape} does not match "
                f"({self.shard_map.n_chunks}, {k})"
            )
        if disks.min(initial=0) < 0 or disks.max(initial=0) >= n:
            raise ReplicaError("replica disk index out of range")
        primaries = np.asarray(
            [c.disk for c in self.shard_map.chunks], dtype=np.int64
        )
        if not np.array_equal(disks[:, 0], primaries):
            raise ReplicaError(
                "copy 0 must stay on each chunk's primary disk"
            )
        for i in range(disks.shape[0]):
            if len(set(disks[i].tolist())) != k:
                raise ReplicaError(
                    f"chunk {i} places {k} copies on non-distinct disks "
                    f"{disks[i].tolist()}"
                )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, shard_map: ShardMap, k: int,
              placement: str = "rotated") -> "ReplicaMap":
        """Place ``k`` copies of every chunk via a registered placement."""
        k = int(k)
        if not 1 <= k <= shard_map.n_disks:
            raise ReplicaError(
                f"k={k} copies need 1 <= k <= {shard_map.n_disks} "
                f"member disks"
            )
        entry = (placement if isinstance(placement, PlacementEntry)
                 else PLACEMENTS.get(placement))
        disks = np.asarray(entry.fn(shard_map, k), dtype=np.int64)
        return cls(shard_map, k, entry.name, disks)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def n_disks(self) -> int:
        return self.shard_map.n_disks

    @property
    def n_chunks(self) -> int:
        return self.shard_map.n_chunks

    def copies_of(self, chunk_index: int) -> tuple[int, ...]:
        """Member disks of one chunk's copies (copy order)."""
        return tuple(int(d) for d in self.disks[int(chunk_index)])

    def copies_on_disk(self, disk: int) -> tuple[tuple[int, int], ...]:
        """Every ``(chunk_index, copy)`` resident on ``disk``."""
        rows, cols = np.nonzero(self.disks == int(disk))
        return tuple(zip(rows.tolist(), cols.tolist()))

    def copy_counts(self) -> list[int]:
        """Total copies per disk (primaries + replicas)."""
        return np.bincount(
            self.disks.ravel(), minlength=self.n_disks
        ).tolist()

    def live_copies(self, chunk_index: int, failed=()) -> tuple[int, ...]:
        """Copy indices of ``chunk_index`` not on a failed disk."""
        failed = set(int(d) for d in failed)
        return tuple(
            r for r, d in enumerate(self.copies_of(chunk_index))
            if d not in failed
        )

    def readable_fraction(self, failed=()) -> float:
        """Fraction of chunks with at least one live copy."""
        failed = set(int(d) for d in failed)
        live = sum(
            1 for i in range(self.n_chunks)
            if any(int(d) not in failed for d in self.disks[i])
        )
        return live / self.n_chunks if self.n_chunks else 1.0

    def describe(self) -> dict:
        """JSON-friendly placement summary."""
        return {
            "k": int(self.k),
            "placement": self.placement,
            "n_disks": self.n_disks,
            "n_chunks": self.n_chunks,
            "copy_counts": self.copy_counts(),
            "primary_counts": self.shard_map.chunk_counts(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaMap(k={self.k}, placement={self.placement!r}, "
            f"chunks={self.n_chunks}, disks={self.n_disks})"
        )
