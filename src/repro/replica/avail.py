"""Availability/overhead-vs-k sweeps: the fault-tolerance storm.

``run_avail_sweep`` replays one fixed, seeded beam workload against each
registered layout at rising replication factors k, twice per cell: once
healthy, once *degraded* with one member disk killed (the same seeded
victim for every cell, so layouts and k values face the identical
failure).  Each cell records healthy and degraded throughput, the
k-fold storage overhead, single-failure chunk availability, and how
many queries completed degraded (k=1 loses the dead disk's chunks — the
unreadable queries are skipped and counted).

The expected shape: k=1 cannot serve every query degraded; any k >= 2
serves them all, and MultiMap keeps its locality dividend in degraded
mode — failover reads land on replica chunks laid out by the very same
mapping, so its degraded MB/s stays ahead of every baseline
(``examples/failover.py`` asserts this end to end).
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.errors import ReplicaError
from repro.replica.failures import FailureInjector
from repro.shard.scale import scale_beams

__all__ = ["run_avail_sweep", "render_avail_sweep"]

DEFAULT_LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
DEFAULT_KS = (1, 2, 3)


def _mb_per_s(blocks: int, total_ms: float) -> float:
    if total_ms <= 0:
        return 0.0
    return blocks * 512 / 1e6 / (total_ms / 1000.0)


def run_avail_sweep(
    shape,
    layouts=DEFAULT_LAYOUTS,
    ks=DEFAULT_KS,
    *,
    n_disks: int = 3,
    placement: str = "rotated",
    read_policy: str = "primary",
    n_beams: int = 8,
    axes=None,
    drive: str = "atlas10k3",
    seed: int = 42,
    kill_disk: int | None = None,
    dataset_opts: dict | None = None,
) -> dict:
    """Sweep layouts × replication factors under one seeded failure.

    Returns ``layout -> {k: cell}`` plus a ``meta`` entry; each cell
    carries healthy/degraded totals, MB/s, availability, and completed
    query counts.  ``kill_disk=None`` draws the victim from a
    :class:`FailureInjector` seeded with ``seed`` (one draw, shared by
    every cell).
    """
    from repro.api.dataset import Dataset

    shape = tuple(int(s) for s in shape)
    ks = tuple(int(k) for k in ks)
    n_disks = int(n_disks)
    if any(k > n_disks for k in ks):
        raise ReplicaError(
            f"every k in {ks} must be <= n_disks={n_disks}"
        )
    victim = (
        FailureInjector(n_disks, seed=seed).pick_disk()
        if kill_disk is None else int(kill_disk)
    )
    if axes is None:
        axes = tuple(range(1, len(shape))) if len(shape) > 1 else (0,)
    queries = scale_beams(shape, n_beams=n_beams, axes=axes, seed=seed)

    def build(layout: str, k: int) -> Dataset:
        return Dataset.create(
            shape, layout=layout, drive=drive, seed=seed,
            **(dataset_opts or {}),
        ).with_shards(n_disks).with_replication(
            k, placement=placement, read_policy=read_policy,
        )

    data: dict = {}
    for layout in layouts:
        per_k: dict = {}
        for k in ks:
            healthy = build(layout, k)
            report = healthy.query().add(queries).run()
            h_blocks = sum(r.result.n_blocks for r in report.records)
            h_ms = report.total_ms

            degraded = build(layout, k)
            degraded.storage.fail_disk(victim)
            rng = degraded.rng()
            d_blocks = completed = skipped = 0
            d_ms = 0.0
            for q in queries:
                try:
                    res = degraded.storage.run_query(
                        degraded.mapper, q, rng=rng
                    )
                except ReplicaError:
                    skipped += 1
                    continue
                completed += 1
                d_blocks += res.n_blocks
                d_ms += res.total_ms
            per_k[k] = {
                "k": k,
                "healthy_ms": h_ms,
                "healthy_mb_per_s": _mb_per_s(h_blocks, h_ms),
                "degraded_ms": d_ms,
                "degraded_mb_per_s": _mb_per_s(d_blocks, d_ms),
                "availability": degraded.replica_map.readable_fraction(
                    {victim}
                ),
                "completed": completed,
                "skipped": skipped,
                "storage_overhead": k,
            }
        data[layout] = per_k
    data["meta"] = {
        "shape": list(shape),
        "drive": drive if isinstance(drive, str) else getattr(
            drive, "name", str(drive)
        ),
        "n_disks": n_disks,
        "placement": placement,
        "read_policy": read_policy,
        "killed_disk": victim,
        "n_beams": int(n_beams),
        "axes": [int(a) for a in axes],
        "seed": int(seed),
        "ks": list(ks),
        "layouts": [str(layout) for layout in layouts],
    }
    return data


def _layout_rows(data: dict, metric) -> tuple[list[int], list[list]]:
    ks = data["meta"]["ks"]
    rows = []
    for layout in data["meta"]["layouts"]:
        per_k = data[layout]
        rows.append([layout] + [metric(per_k[k]) for k in ks])
    return ks, rows


def render_avail_sweep(data: dict) -> str:
    """Healthy/degraded throughput and availability tables, k columns
    per layout."""
    meta = data["meta"]
    parts = [
        f"availability sweep: shape={tuple(meta['shape'])} on "
        f"{meta['drive']}, {meta['n_disks']} disks, "
        f"placement={meta['placement']}, read_policy={meta['read_policy']},"
        f" disk {meta['killed_disk']} killed, {meta['n_beams']} beams over"
        f" axes {meta['axes']}, seed={meta['seed']}"
    ]
    ks, rows = _layout_rows(
        data, lambda c: f"{c['healthy_mb_per_s']:.2f}"
    )
    headers = ["layout"] + [f"k={k}" for k in ks]
    parts.append("healthy throughput (MB/s) vs replication factor")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(
        data, lambda c: f"{c['degraded_mb_per_s']:.2f}"
    )
    parts.append("degraded throughput (MB/s), one disk down")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(
        data,
        lambda c: f"{c['availability']:.1%} "
        f"({c['completed']}/{c['completed'] + c['skipped']} q)",
    )
    parts.append("single-failure availability (chunks readable, "
                 "queries completed)")
    parts.append(render_table(headers, rows))
    return "\n\n".join(parts)
