"""The generic string-keyed registry every subsystem's tables build on.

:class:`Registry` is a name -> entry map with duplicate protection,
helpful unknown-name errors, and an optional lazy-population hook.  It
lives at the package root so registries can exist at any layer without
inverting the layering: the façade's layout/drive tables
(:mod:`repro.api.registry`), the cache's policy/prefetcher tables
(:mod:`repro.cache`), and the LVM's declustering strategies
(:mod:`repro.lvm.striping`) all instantiate it.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Callable, Iterator

from repro.errors import RegistryError

__all__ = ["DocsView", "Registry", "first_doc_line"]


def first_doc_line(obj) -> str:
    """An object's docstring first line — the registries' default entry
    description (used by every ``register_*`` decorator and the CLI's
    ``--list-*`` flags)."""
    lines = (getattr(obj, "__doc__", "") or "").strip().splitlines()
    return lines[0] if lines else ""


class Registry:
    """A string-keyed table with duplicate protection and helpful errors.

    ``populate`` is an optional zero-argument hook invoked before every
    lookup; it imports the modules whose decorators contribute the
    builtin entries (and must be idempotent).  The layout/drive
    registries of :mod:`repro.api.registry` use it for lazy population.
    Other packages reuse the class without a hook (e.g. the cache-policy
    and declustering-strategy registries, whose builtins live in the
    same module as the registry, so importing one populates the other).
    """

    def __init__(self, kind: str, populate: Callable[[], None] | None = None):
        self.kind = kind
        self._entries: dict[str, object] = {}
        self._populate = populate

    def _ensure(self) -> None:
        if self._populate is not None:
            self._populate()

    def add(self, name: str, entry) -> None:
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        if name in self._entries and not _same_registrant(
            self._entries[name], entry
        ):
            raise RegistryError(
                f"{self.kind} {name!r} is already registered"
            )
        # Same definition re-registering (its module re-executed, e.g. a
        # retried import after an interrupted first attempt) is a benign
        # overwrite, so registry population stays retryable.
        self._entries[name] = entry

    def get(self, name: str):
        self._ensure()
        try:
            return self._entries[name]
        except KeyError:
            valid = ", ".join(repr(n) for n in sorted(self._entries))
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: "
                f"{valid or '<none>'}"
            ) from None

    def names(self) -> tuple[str, ...]:
        self._ensure()
        return tuple(sorted(self._entries))

    def items(self):
        self._ensure()
        return tuple(sorted(self._entries.items()))

    def __contains__(self, name: str) -> bool:
        self._ensure()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"


class DocsView(Mapping):
    """A read-only ``name -> description`` mapping over a registry.

    Descriptions come from each entry's ``description`` attribute, or —
    for registries holding bare classes/functions — the registrant's
    docstring first line (:func:`first_doc_line`).  The perf probe table
    exposes :data:`repro.perf.profile.PROBE_DOCS` through this view, so
    probe docs stay in sync with the registered definitions instead of a
    hand-maintained dict.
    """

    def __init__(self, registry: Registry):
        self._registry = registry

    def __getitem__(self, name: str) -> str:
        entry = self._registry.get(name)
        if isinstance(entry, str):
            return entry
        desc = getattr(entry, "description", None)
        return desc if desc else first_doc_line(entry)

    def __contains__(self, name) -> bool:
        return name in self._registry

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocsView({self._registry!r})"


def _same_registrant(old, new) -> bool:
    """Whether two entries come from the same definition (same module and
    qualname of the registered class/factory) — i.e. the defining module
    re-executed rather than a second party claiming the name.

    Entries may be wrapper dataclasses carrying ``cls``/``factory``/``fn``
    (layouts, drives, declustering strategies) or the registered class
    itself (cache policies, prefetchers)."""

    def key(entry):
        obj = (getattr(entry, "cls", None) or getattr(entry, "factory", None)
               or getattr(entry, "fn", None))
        if obj is None and callable(entry):
            obj = entry
        if obj is None:
            return None
        return (getattr(obj, "__module__", None),
                getattr(obj, "__qualname__", None))

    a, b = key(old), key(new)
    return a is not None and a == b
