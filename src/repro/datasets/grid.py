"""Uniform N-D grid datasets and per-disk chunking (paper §5.3).

The synthetic evaluation dataset is a uniform 1024³ cell grid partitioned
into chunks of at most 259³ cells, each chunk mapped to one disk of the
volume.  This module provides the dataset descriptor, the chunker, and a
factory that builds all four mappings for one chunk on a fresh volume so
experiments compare layouts on identical storage.  Layout construction
routes through the :mod:`repro.api.registry` registries — the same path
the :class:`repro.api.Dataset` façade uses, which is the preferred entry
point for new code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import LAYOUTS, build_mapper
from repro.errors import DatasetError, RegistryError
from repro.lvm.striping import assign_chunks
from repro.lvm.volume import LogicalVolume

__all__ = [
    "Chunk",
    "GridDataset",
    "MAPPER_ORDER",
    "build_chunk_mappers",
    "paper_synthetic_3d",
]

#: canonical reporting order (the paper's legend order)
MAPPER_ORDER = ("naive", "zorder", "hilbert", "multimap")


@dataclass(frozen=True)
class Chunk:
    """A per-disk chunk of a larger dataset."""

    index: int
    origin: tuple[int, ...]
    shape: tuple[int, ...]
    disk: int

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))


@dataclass(frozen=True)
class GridDataset:
    """A dense N-D cell grid (one cell = one disk block by default)."""

    dims: tuple[int, ...]
    cell_blocks: int = 1

    def __post_init__(self) -> None:
        dims = tuple(int(s) for s in self.dims)
        object.__setattr__(self, "dims", dims)
        if not dims or any(s < 1 for s in dims):
            raise DatasetError(f"invalid dims {dims}")

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.dims, dtype=np.int64))

    def chunks(
        self,
        max_shape,
        n_disks: int = 1,
        strategy: str = "round_robin",
    ) -> list[Chunk]:
        """Split into chunks of at most ``max_shape`` cells per dimension
        and assign them to disks (§5.3: "partition the space into chunks
        ... and map each chunk to a different disk")."""
        max_shape = tuple(int(m) for m in max_shape)
        if len(max_shape) != len(self.dims):
            raise DatasetError("max_shape rank mismatch")
        if any(m < 1 for m in max_shape):
            raise DatasetError("max_shape entries must be >= 1")
        counts = [-(-s // m) for s, m in zip(self.dims, max_shape)]
        n_chunks = int(np.prod(counts, dtype=np.int64))
        disks = assign_chunks(
            n_chunks, n_disks, strategy, grid_shape=tuple(counts)
        )
        chunks = []
        for idx in range(n_chunks):
            rem = idx
            coord = []
            for c in counts:
                coord.append(rem % c)
                rem //= c
            origin = tuple(
                c * m for c, m in zip(coord, max_shape)
            )
            shape = tuple(
                min(m, s - o)
                for m, s, o in zip(max_shape, self.dims, origin)
            )
            chunks.append(
                Chunk(idx, origin, shape, int(disks[idx]))
            )
        return chunks

    def shard_map(
        self,
        max_shape,
        n_disks: int = 1,
        strategy: str = "round_robin",
    ):
        """The chunking above as a :class:`repro.shard.ShardMap` — the
        per-chunk disk assignment (historically computed here and then
        dropped) becomes the authoritative placement the sharded
        executor builds mappers from."""
        from repro.shard.map import ShardMap

        return ShardMap.from_chunks(
            self.dims,
            self.chunks(max_shape, n_disks, strategy),
            n_disks,
            strategy=strategy,
        )


def paper_synthetic_3d() -> GridDataset:
    """The 1024³ synthetic dataset of §5.3."""
    return GridDataset((1024, 1024, 1024))


def build_chunk_mappers(
    chunk_dims,
    model_factory,
    *,
    depth: int = 128,
    cell_blocks: int = 1,
    which=MAPPER_ORDER,
):
    """One (mapper, storage-volume) pair per layout for a chunk.

    Each mapping gets a *fresh* volume built from ``model_factory`` so all
    four layouts occupy the same LBN region of identical disks — the
    fairness condition of the paper's evaluation.  Layout names resolve
    through :data:`repro.api.registry.LAYOUTS`, the same path the
    :class:`repro.api.Dataset` façade wires through.

    Returns ``dict[name, (mapper, volume)]``.
    """
    out = {}
    for name in which:
        try:
            entry = LAYOUTS.get(name)
        except RegistryError as exc:
            raise DatasetError(str(exc)) from exc
        volume = LogicalVolume([model_factory()], depth=depth)
        mapper = build_mapper(
            entry, chunk_dims, volume, 0, cell_blocks=cell_blocks
        )
        out[name] = (mapper, volume)
    return out
