"""The paper's three evaluation datasets (§5.3-§5.5)."""

from repro.datasets.earthquake import (
    EarthquakeDataset,
    LeafLayout,
    build_leaf_layouts,
)
from repro.datasets.grid import (
    MAPPER_ORDER,
    Chunk,
    GridDataset,
    build_chunk_mappers,
    paper_synthetic_3d,
)
from repro.datasets.olap import (
    OLAP_CHUNK_DIMS,
    OLAP_RAW_DIMS,
    OLAP_ROLLED_DIMS,
    OLAPCube,
    paper_olap_queries,
)
from repro.datasets.tpch import (
    P_TYPES,
    TPCH_DOMAINS,
    FactTable,
    generate_fact_table,
)

__all__ = [
    "Chunk",
    "EarthquakeDataset",
    "FactTable",
    "GridDataset",
    "LeafLayout",
    "MAPPER_ORDER",
    "OLAPCube",
    "OLAP_CHUNK_DIMS",
    "OLAP_RAW_DIMS",
    "OLAP_ROLLED_DIMS",
    "P_TYPES",
    "TPCH_DOMAINS",
    "build_chunk_mappers",
    "build_leaf_layouts",
    "generate_fact_table",
    "paper_olap_queries",
    "paper_synthetic_3d",
]
