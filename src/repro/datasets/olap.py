"""The 4-D OLAP cube of §5.5 and its five queries.

From the TPC-H fact table the paper forms a cube over (OrderDate, Product
type, Nation, Quantity) of size (2361, 150, 25, 50).  Individual cells are
too sparse to fill a disk block, so OrderDate is **rolled up by 2**
("combine two cells into one cell along OrderDate"), giving
(1182, 150, 25, 50); chunking for one disk yields (591, 75, 25, 25) —
each cell then holds the sales of one product/quantity/nation combination
over two days.

Queries (paper wording, §5.5):

* **Q1** "profit of product P with quantity Q to country C over all
  dates" — beam along OrderDate (the major order);
* **Q2** "… on a specific date over all countries" — beam along Nation;
* **Q3** "product P, all quantities, country C, one year" — 2-D range
  (183 rolled days x 25 quantities);
* **Q4** "product P over all countries, quantities in one year" — 3-D
  range (183 x 25 x 25);
* **Q5** "10 products, 10 quantities, 10 countries, 20 days" — 4-D range
  (10 x 10 x 10 x 10 after roll-up).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.tpch import FactTable
from repro.errors import DatasetError, QueryError
from repro.query.workload import BeamQuery, RangeQuery

__all__ = [
    "OLAP_RAW_DIMS",
    "OLAP_ROLLED_DIMS",
    "OLAP_CHUNK_DIMS",
    "OLAPCube",
    "paper_olap_queries",
]

#: (OrderDate, ProductType, Nation, Quantity)
OLAP_RAW_DIMS = (2361, 150, 25, 50)
OLAP_ROLLED_DIMS = (1182, 150, 25, 50)
OLAP_CHUNK_DIMS = (591, 75, 25, 25)

AXIS_ORDERDATE, AXIS_PRODUCT, AXIS_NATION, AXIS_QUANTITY = range(4)


@dataclass
class OLAPCube:
    """A dense aggregate cube (counts + profit sums per cell)."""

    dims: tuple[int, ...]
    counts: np.ndarray
    profit: np.ndarray
    rollup: int = 1

    @classmethod
    def from_fact_table(cls, table: FactTable) -> "OLAPCube":
        """Aggregate the fact table on the four dimensions."""
        dims = OLAP_RAW_DIMS
        coords = table.coordinates()
        flat = np.ravel_multi_index(
            [coords[:, d] for d in range(4)], dims
        )
        counts = np.bincount(
            flat, minlength=int(np.prod(dims))
        ).reshape(dims)
        profit = np.bincount(
            flat, weights=table.profit, minlength=int(np.prod(dims))
        ).reshape(dims)
        return cls(dims, counts, profit)

    def roll_up_orderdate(self, factor: int = 2) -> "OLAPCube":
        """Combine ``factor`` consecutive OrderDate cells into one (§5.5:
        "roll up along OrderDate to increase the number of points per
        combination")."""
        if factor < 1:
            raise DatasetError("factor must be >= 1")
        n = self.dims[0]
        pad = (-n) % factor
        if pad:
            pad_shape = (pad,) + self.dims[1:]
            counts = np.concatenate(
                [self.counts, np.zeros(pad_shape, self.counts.dtype)]
            )
            profit = np.concatenate(
                [self.profit, np.zeros(pad_shape, self.profit.dtype)]
            )
        else:
            counts, profit = self.counts, self.profit
        new0 = (n + pad) // factor
        new_dims = (new0,) + self.dims[1:]
        counts = counts.reshape((new0, factor) + self.dims[1:]).sum(axis=1)
        profit = profit.reshape((new0, factor) + self.dims[1:]).sum(axis=1)
        return OLAPCube(new_dims, counts, profit, rollup=self.rollup * factor)

    @property
    def mean_points_per_cell(self) -> float:
        return float(self.counts.mean())

    def occupancy(self) -> float:
        """Fraction of cells holding at least one point."""
        return float((self.counts > 0).mean())


def paper_olap_queries(
    chunk_dims=OLAP_CHUNK_DIMS, rng: np.random.Generator | None = None
) -> dict[str, BeamQuery | RangeQuery]:
    """The five §5.5 queries against one per-disk chunk.

    Random coordinates (product P, quantity Q, country C, year) are drawn
    with ``rng``; pass a seeded generator for reproducibility.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    dims = tuple(int(s) for s in chunk_dims)
    if len(dims) != 4:
        raise QueryError("OLAP chunk must be 4-D")
    year_cells = min(183, dims[AXIS_ORDERDATE])  # 365 days / roll-up 2

    def pick(axis):
        return int(rng.integers(0, dims[axis]))

    def anchored(shape):
        lo = tuple(
            int(rng.integers(0, dims[d] - shape[d] + 1)) for d in range(4)
        )
        hi = tuple(a + w for a, w in zip(lo, shape))
        return RangeQuery(lo=lo, hi=hi)

    q1 = BeamQuery(
        axis=AXIS_ORDERDATE,
        fixed=(0, pick(AXIS_PRODUCT), pick(AXIS_NATION), pick(AXIS_QUANTITY)),
    )
    q2 = BeamQuery(
        axis=AXIS_NATION,
        fixed=(pick(AXIS_ORDERDATE), pick(AXIS_PRODUCT), 0,
               pick(AXIS_QUANTITY)),
    )
    q3 = anchored((year_cells, 1, 1, dims[AXIS_QUANTITY]))
    q4 = anchored((year_cells, 1, dims[AXIS_NATION], dims[AXIS_QUANTITY]))
    q5 = anchored(
        (
            min(10, dims[0]),
            min(10, dims[1]),
            min(10, dims[2]),
            min(10, dims[3]),
        )
    )
    return {"Q1": q1, "Q2": q2, "Q3": q3, "Q4": q4, "Q5": q5}
