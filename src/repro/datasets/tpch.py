"""Scaled TPC-H-like data generator (substrate for the §5.5 OLAP cube).

The paper derives its 4-D OLAP cube from a 100 GB TPC-H database:

    SELECT o_orderdate, p_type, c_nation, l_quantity, sum(profit)
    FROM   lineitem JOIN orders JOIN part JOIN customer ...
    GROUP BY o_orderdate, p_type, c_nation, l_quantity

yielding dimensions (2361 order dates, 150 part types, 25 nations,
50 quantities).  Regenerating 100 GB is pointless for an I/O-placement
study — only the cube's dimensions and cell density matter — so this
module generates the joined fact table directly at a configurable scale
with the correct TPC-H domains:

* order dates: 2 406 days in [1992-01-01, 1998-08-02], of which the last
  ~45 never receive orders (TPC-H ships orders up to 121 days before the
  end), leaving 2 361 populated dates — the number the paper reports;
* p_type: 150 distinct strings (6 x 5 x 5 word combinations);
* c_nation: 25 nations; l_quantity: integers 1..50.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["TPCH_DOMAINS", "FactTable", "generate_fact_table", "P_TYPES"]

#: dimension cardinalities in cube axis order
TPCH_DOMAINS = {
    "orderdate": 2361,
    "p_type": 150,
    "c_nation": 25,
    "l_quantity": 50,
}

_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

#: the 150 distinct TPC-H part types
P_TYPES = tuple(
    f"{a} {b} {c}"
    for a in _SYLLABLE_1
    for b in _SYLLABLE_2
    for c in _SYLLABLE_3
)

NATIONS = (
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
)


@dataclass(frozen=True)
class FactTable:
    """The joined (lineitem x orders x part x customer) projection."""

    orderdate: np.ndarray   # day index, 0 .. 2360
    p_type: np.ndarray      # 0 .. 149
    c_nation: np.ndarray    # 0 .. 24
    l_quantity: np.ndarray  # 1 .. 50
    profit: np.ndarray      # float64

    @property
    def n_rows(self) -> int:
        return int(self.orderdate.size)

    def coordinates(self) -> np.ndarray:
        """(n, 4) int64 cube coordinates (quantity shifted to 0-based)."""
        return np.stack(
            [
                self.orderdate,
                self.p_type,
                self.c_nation,
                self.l_quantity - 1,
            ],
            axis=1,
        ).astype(np.int64)


def generate_fact_table(
    n_lineitems: int, seed: int = 20070415
) -> FactTable:
    """Generate the fact table with TPC-H-like distributions.

    Lineitems per order follow TPC-H's uniform 1..7; dates, types, nations
    and quantities are uniform over their domains (as in TPC-H).  Profit
    is extendedprice-like: quantity x a lognormal unit price x (1 -
    discount) minus cost.
    """
    if n_lineitems < 1:
        raise DatasetError("need at least one lineitem")
    rng = np.random.default_rng(seed)

    # draw orders until lineitems are covered (TPC-H: 1-7 items per order)
    n_orders_estimate = max(n_lineitems // 4 + 8, 8)
    per_order = rng.integers(1, 8, size=n_orders_estimate)
    while per_order.sum() < n_lineitems:
        per_order = np.concatenate(
            [per_order, rng.integers(1, 8, size=n_orders_estimate)]
        )
    cum = np.cumsum(per_order)
    n_orders = int(np.searchsorted(cum, n_lineitems) + 1)
    per_order = per_order[:n_orders]
    per_order[-1] -= int(cum[n_orders - 1] - n_lineitems)

    order_dates = rng.integers(
        0, TPCH_DOMAINS["orderdate"], size=n_orders
    )
    order_nations = rng.integers(
        0, TPCH_DOMAINS["c_nation"], size=n_orders
    )
    orderdate = np.repeat(order_dates, per_order)
    c_nation = np.repeat(order_nations, per_order)
    p_type = rng.integers(0, TPCH_DOMAINS["p_type"], size=n_lineitems)
    l_quantity = rng.integers(1, 51, size=n_lineitems)

    unit_price = rng.lognormal(mean=3.0, sigma=0.4, size=n_lineitems)
    discount = rng.uniform(0.0, 0.1, size=n_lineitems)
    cost = unit_price * rng.uniform(0.55, 0.8, size=n_lineitems)
    profit = l_quantity * (unit_price * (1.0 - discount) - cost)

    return FactTable(
        orderdate=orderdate.astype(np.int64),
        p_type=p_type.astype(np.int64),
        c_nation=c_nation.astype(np.int64),
        l_quantity=l_quantity.astype(np.int64),
        profit=profit,
    )
