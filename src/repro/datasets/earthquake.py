"""Synthetic stand-in for the paper's 3-D earthquake dataset (§5.4).

The original is a 64 GB ground-motion model of a 38x38x14 km volume near
Los Angeles: ~114 M variable-resolution elements indexed by an octree,
denser where soil is softer (near the surface and around the fault).  It
is not redistributable, so this module generates a *structurally
equivalent* dataset: an octree whose refinement follows a depth-layered
velocity profile with a soft basin, tuned so that (like the original)
there are a handful of uniform subareas with two of them jointly covering
well over 60% of the elements.

The four layouts of the evaluation are provided: X-major Naive, Z-order
and Hilbert over leaf centroids, and MultiMap applied per uniform region
(§4.5) with a linear fallback for the skewed remainder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.regions import RegionMapping, merge_uniform_octants
from repro.errors import DatasetError
from repro.index.octree import Octree
from repro.lvm.volume import LogicalVolume
from repro.mappings import curves
from repro.mappings.base import RequestPlan, coalesce_ranks

__all__ = ["EarthquakeDataset", "LeafLayout", "build_leaf_layouts"]


def _layered_level_fn(depth: int, basin_center, basin_radius_frac=0.28):
    """Refinement demand: finer near the surface, finest inside a basin.

    ``z`` is depth below the surface (z = 0 is the surface).  Layers give
    large uniform slabs (the paper's dataset has "roughly four uniform
    subareas"); the basin adds a skewed, non-uniform area that exercises
    the fallback path.
    """
    side = 1 << depth
    bx, by = basin_center

    def level_fn(x, y, z, box_side):
        # max demanded level anywhere inside the box
        z_top = z  # shallowest point of the box
        if z_top < side // 4:
            base = depth  # soft shallow layer: finest
        elif z_top < side // 2:
            base = depth - 1
        else:
            base = depth - 2
        # basin: a column of extra refinement with skewed boundary
        cx = min(abs(x - bx), abs(x + box_side - 1 - bx))
        cy = min(abs(y - by), abs(y + box_side - 1 - by))
        if x <= bx < x + box_side:
            cx = 0
        if y <= by < y + box_side:
            cy = 0
        r = (cx * cx + cy * cy) ** 0.5
        if r < basin_radius_frac * side and z_top < side // 2:
            base = depth
        return base

    return level_fn


@dataclass
class LeafLayout:
    """A layout of octree leaves: leaf index -> LBN."""

    name: str
    volume: LogicalVolume
    disk: int
    _lbn_of_leaf: np.ndarray
    policy: str = "sorted"

    def plan_for_leaves(self, leaf_indices, *, for_beam: bool = False
                        ) -> RequestPlan:
        lbns = np.sort(self._lbn_of_leaf[np.asarray(leaf_indices, np.int64)])
        starts, lengths = coalesce_ranks(np.unique(lbns))
        return RequestPlan(
            starts,
            lengths,
            policy=self.policy,
            merge_gap=0 if for_beam else None,
        )


class EarthquakeDataset:
    """The synthetic skewed dataset plus its octree and uniform regions."""

    def __init__(
        self,
        depth: int = 6,
        *,
        basin_center=None,
        min_region_leaves: int = 64,
    ):
        if depth < 3:
            raise DatasetError("depth must be >= 3")
        self.depth = depth
        side = 1 << depth
        if basin_center is None:
            basin_center = (int(side * 0.68), int(side * 0.31))
        self.octree = Octree(depth, _layered_level_fn(depth, basin_center))
        self.regions = merge_uniform_octants(
            self.octree, min_leaves=min_region_leaves
        )

    @property
    def side(self) -> int:
        return 1 << self.depth

    @property
    def n_elements(self) -> int:
        return self.octree.n_leaves

    def region_coverage(self, top_k: int | None = None) -> float:
        """Fraction of elements inside the top-k uniform regions."""
        regions = self.regions if top_k is None else self.regions[:top_k]
        covered = sum(r.n_leaves for r in regions)
        return covered / self.n_elements

    # ------------------------------------------------------------------
    # queries (in finest-grid coordinates)
    # ------------------------------------------------------------------

    def beam_leaves(self, axis: int, rng: np.random.Generator) -> np.ndarray:
        """Leaves crossed by a random full-length line along ``axis``."""
        others = [d for d in range(3) if d != axis]
        fixed = tuple(int(rng.integers(0, self.side)) for _ in others)
        return self.octree.leaves_on_line(axis, fixed)

    def range_leaves(
        self, selectivity_pct: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Leaves intersecting a random cube of ~p% of the volume."""
        if not 0 < selectivity_pct <= 100:
            raise DatasetError("selectivity must be in (0, 100]")
        frac = (selectivity_pct / 100.0) ** (1.0 / 3.0)
        w = max(1, round(self.side * frac))
        lo = tuple(
            int(rng.integers(0, self.side - w + 1)) for _ in range(3)
        )
        hi = tuple(a + w for a in lo)
        return self.octree.leaves_in_box(lo, hi)


def build_leaf_layouts(
    dataset: EarthquakeDataset,
    model_factory,
    *,
    depth: int = 128,
    which=("naive", "zorder", "hilbert", "multimap"),
) -> dict[str, LeafLayout]:
    """Build the four §5.4 layouts, each on a fresh volume."""
    octree = dataset.octree
    origins = octree.leaf_origins()
    n = octree.n_leaves
    bits = curves.bits_for((dataset.side,) * 3)
    centers = origins[:, :3] + origins[:, 3:4] // 2

    out: dict[str, LeafLayout] = {}
    for name in which:
        volume = LogicalVolume([model_factory()], depth=depth)
        if name == "multimap":
            mapping = RegionMapping(octree, dataset.regions, volume, 0)
            lbns = mapping.leaf_lbns(np.arange(n))
            out[name] = LeafLayout(name, volume, 0, lbns, policy="sptf")
            continue
        if name == "naive":
            # X-major order of leaf origins (paper: "Naive uses X as the
            # major order"): X varies fastest so X-beams stream, like
            # Dim0 in the grid layouts.
            order = np.lexsort(
                (origins[:, 0], origins[:, 1], origins[:, 2])
            )
        elif name == "zorder":
            codes = curves.morton_encode(centers, bits)
            order = np.argsort(codes, kind="stable")
        elif name == "hilbert":
            codes = curves.hilbert_encode(centers, bits)
            order = np.argsort(codes, kind="stable")
        else:
            raise DatasetError(f"unknown layout {name!r}")
        extent = volume.allocate_blocks(0, n)
        lbns = np.empty(n, dtype=np.int64)
        lbns[order] = extent.start + np.arange(n)
        out[name] = LeafLayout(name, volume, 0, lbns)
    return out
