"""Public façade: ``Dataset``, fluent query batches, and registries.

Everything downstream code needs lives here::

    from repro.api import Dataset, layout_names, drive_names

    ds = Dataset.create((216, 64, 64), layout="multimap", drive="atlas10k3",
                        seed=42)
    print(ds.random_beams(axis=1, n=5).run().render_table())

Attributes are loaded lazily (PEP 562) so the registration decorators in
:mod:`repro.mappings`, :mod:`repro.core` and :mod:`repro.disk` can import
:mod:`repro.api.registry` without cycles.
"""

from __future__ import annotations

#: single source of truth for the lazy public surface: name -> module
_LAZY_EXPORTS = {
    "DRIVES": "repro.api.registry",
    "DriveEntry": "repro.api.registry",
    "LAYOUTS": "repro.api.registry",
    "LayoutEntry": "repro.api.registry",
    "Registry": "repro.api.registry",
    "build_mapper": "repro.api.registry",
    "drive_names": "repro.api.registry",
    "get_drive": "repro.api.registry",
    "get_layout": "repro.api.registry",
    "layout_names": "repro.api.registry",
    "register_drive": "repro.api.registry",
    "register_layout": "repro.api.registry",
    "Dataset": "repro.api.dataset",
    "QueryBatch": "repro.api.dataset",
    "QueryRecord": "repro.api.report",
    "Report": "repro.api.report",
    "TrafficRun": "repro.api.traffic",
    "TrafficReport": "repro.traffic.stats",
    "BufferPool": "repro.cache",
    "CacheStats": "repro.cache",
    "POLICIES": "repro.cache",
    "PREFETCHERS": "repro.cache",
    "policy_names": "repro.cache",
    "prefetcher_names": "repro.cache",
    "register_policy": "repro.cache",
    "register_prefetcher": "repro.cache",
    "ShardedBufferPool": "repro.cache",
    "PLACEMENTS": "repro.replica",
    "READ_POLICIES": "repro.replica",
    "FailureEvent": "repro.replica",
    "FailureInjector": "repro.replica",
    "FailureSchedule": "repro.replica",
    "ReplicaMap": "repro.replica",
    "ReplicaStats": "repro.replica",
    "ReplicatedStorageManager": "repro.replica",
    "placement_names": "repro.replica",
    "read_policy_names": "repro.replica",
    "register_placement": "repro.replica",
    "register_read_policy": "repro.replica",
    "ShardMap": "repro.shard",
    "ShardStats": "repro.shard",
    "ShardedMapper": "repro.shard",
    "ShardedStorageManager": "repro.shard",
    "STRATEGIES": "repro.lvm.striping",
    "register_strategy": "repro.lvm.striping",
    "strategy_names": "repro.lvm.striping",
}

__all__ = sorted(_LAZY_EXPORTS)


def __getattr__(name: str):
    try:
        module = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    return getattr(import_module(module), name)


def __dir__():
    return sorted(__all__)
