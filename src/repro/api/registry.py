"""String-keyed registries for layouts and drive models.

The façade (:mod:`repro.api.dataset`) and the chunk factory
(:func:`repro.datasets.grid.build_chunk_mappers`) both resolve layout and
drive names through the registries below, so every consumer constructs
identical stacks.  Entries are contributed by the defining modules via
decorators::

    @register_layout("multimap", wiring="volume")
    class MultiMapMapper(Mapper): ...

    @register_drive("atlas10k3")
    def atlas_10k3() -> DiskModel: ...

``repro.mappings``, ``repro.core.multimap`` and ``repro.disk.models`` own
their registrations; the registries import those modules lazily on first
lookup so ``from repro.api import get_layout`` works without the caller
importing anything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import RegistryError
from repro.registry import Registry, first_doc_line

__all__ = [
    "DRIVES",
    "LAYOUTS",
    "DriveEntry",
    "LayoutEntry",
    "Registry",
    "build_mapper",
    "drive_names",
    "get_drive",
    "get_layout",
    "layout_names",
    "register_drive",
    "register_layout",
]


@dataclass(frozen=True)
class LayoutEntry:
    """A registered data-placement algorithm.

    ``wiring`` names the construction convention: ``"extent"`` layouts take
    a pre-allocated LBN extent (the linearised mappings), ``"volume"``
    layouts allocate through the LVM interface themselves (MultiMap).
    """

    name: str
    cls: type
    wiring: str = "extent"
    description: str = ""


@dataclass(frozen=True)
class DriveEntry:
    """A registered disk-model factory."""

    name: str
    factory: Callable[[], object] = field(repr=False)
    description: str = ""


_populated = False


def _ensure_populated() -> None:
    """Import the modules that own registrations, exactly once.

    Reentrant calls (lookups issued while the imports below are still
    running) see the flag already set and fall through; at that point the
    decorators of the module being imported have already executed.  A
    failed attempt (broken environment, Ctrl-C mid-import) resets the
    flag so the next lookup retries and surfaces the real error instead
    of a misleading "registered <kind>s: <none>"; modules that did
    complete re-register idempotently (see :meth:`Registry.add`).
    """
    global _populated
    if _populated:
        return
    _populated = True
    try:
        import repro.core.multimap  # noqa: F401  (registers "multimap")
        import repro.disk.models  # noqa: F401  (registers drive factories)
        import repro.mappings  # noqa: F401  (linearised layouts)
    except BaseException:
        _populated = False
        raise


#: layout-name -> :class:`LayoutEntry`
LAYOUTS = Registry("layout", populate=_ensure_populated)

#: drive-name -> :class:`DriveEntry`
DRIVES = Registry("drive", populate=_ensure_populated)


def _ensure_builtins_before(obj) -> None:
    """Populate the builtin entries before a *third-party* registration.

    A user decorator whose name collides with a builtin then fails at its
    own definition site with a clear duplicate error, instead of blowing
    up the deferred builtin import inside an unrelated first lookup and
    poisoning the registries.  Registrations coming from ``repro.*``
    itself skip this — they *are* the population, and importing siblings
    mid-import would create cycles.
    """
    if not getattr(obj, "__module__", "").startswith("repro."):
        _ensure_populated()


def register_layout(name: str, *, wiring: str = "extent",
                    description: str = ""):
    """Class decorator adding a mapper class to :data:`LAYOUTS`."""
    if wiring not in ("extent", "volume"):
        raise RegistryError(f"unknown wiring {wiring!r}")

    def deco(cls: type) -> type:
        _ensure_builtins_before(cls)
        desc = description or first_doc_line(cls)
        LAYOUTS.add(name, LayoutEntry(name, cls, wiring, desc))
        return cls

    return deco


def register_drive(name: str, *, description: str = ""):
    """Function decorator adding a disk-model factory to :data:`DRIVES`."""

    def deco(factory):
        _ensure_builtins_before(factory)
        desc = description or first_doc_line(factory)
        DRIVES.add(name, DriveEntry(name, factory, desc))
        return factory

    return deco


def get_layout(name: str) -> LayoutEntry:
    """Resolve a layout name (raises :class:`RegistryError` with the list
    of valid names on a miss)."""
    return LAYOUTS.get(name)


def get_drive(name: str) -> DriveEntry:
    """Resolve a drive name."""
    return DRIVES.get(name)


def layout_names() -> tuple[str, ...]:
    return LAYOUTS.names()


def drive_names() -> tuple[str, ...]:
    return DRIVES.names()


def build_mapper(layout, dims, volume, disk: int = 0, *,
                 cell_blocks: int = 1, **layout_opts):
    """Construct a registered layout's mapper on ``volume``.

    This is the single wiring point shared by :class:`repro.api.Dataset`
    and :func:`repro.datasets.grid.build_chunk_mappers`, so both produce
    bit-identical placements: ``"extent"`` layouts get one
    ``allocate_blocks`` extent sized ``n_cells * cell_blocks``; ``"volume"``
    layouts drive the LVM interface themselves.
    """
    import numpy as np

    entry = layout if isinstance(layout, LayoutEntry) else LAYOUTS.get(layout)
    dims = tuple(int(s) for s in dims)
    if entry.wiring == "volume":
        return entry.cls(
            dims, volume, disk, cell_blocks=cell_blocks, **layout_opts
        )
    n_blocks = int(np.prod(dims, dtype=np.int64)) * cell_blocks
    extent = volume.allocate_blocks(disk, n_blocks)
    return entry.cls(dims, extent, cell_blocks, **layout_opts)
