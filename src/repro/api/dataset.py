"""The :class:`Dataset` façade — the package's single public entry point.

One object owns the whole stack the paper layers behind its two
interfaces (the LVM adjacency API of §3 and the database storage manager
of §5.1): a simulated drive, a :class:`~repro.lvm.volume.LogicalVolume`,
a registered layout's mapper, a
:class:`~repro.query.executor.StorageManager`, and (optionally, via
:meth:`Dataset.with_cache`) a shared :class:`~repro.cache.BufferPool`::

    from repro.api import Dataset

    ds = Dataset.create((216, 64, 64), layout="multimap", drive="atlas10k3")
    report = ds.random_beams(axis=1, n=5).run()
    print(report.render_table())

Layouts and drives resolve through :mod:`repro.api.registry`, and the
wiring goes through the same :func:`~repro.api.registry.build_mapper`
helper as :func:`repro.datasets.grid.build_chunk_mappers`, so a façade
stack is bit-identical to a hand-wired one.  ``with_layout`` clones the
dataset under another mapping on a fresh identical volume — the paper's
fairness condition for layout comparisons.  ``with_shards`` declusters
the dataset's chunks across several identical member disks
(:mod:`repro.shard`) and services queries scatter-gather;
``with_shards(1)`` is pinned bit-identical to the unsharded stack
(``tests/shard/test_parity.py``), the same guarantee the capacity-0
cache parity gives.  Online updates (§4.6) are exposed through a lazily
created :class:`~repro.core.store.CellStore` (``insert`` / ``delete`` /
``bulk_load`` / ``reorganize``) on unsharded datasets.

Determinism: ``Dataset.create(seed=...)`` owns a
:class:`numpy.random.SeedSequence`; every ``run()`` without an explicit
``rng`` draws the next spawned child generator, so repeated batches use
independent streams while a fresh ``Dataset`` with the same seed replays
the identical sequence (and a ``with_layout`` clone sees the same streams
as its parent, keeping cross-layout comparisons fair).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.api.registry import DRIVES, LAYOUTS, DriveEntry, build_mapper
from repro.api.report import Report, make_record
from repro.core.store import CellStore, StoreStats
from repro.disk.models import DiskModel
from repro.errors import DatasetError, QueryError
from repro.lvm.volume import LogicalVolume
from repro.perf.profile import PROBES
from repro.query.executor import QueryResult, StorageManager
from repro.query.workload import (
    BeamQuery,
    RangeQuery,
    random_beam,
    random_range_cube,
)

__all__ = ["Dataset", "QueryBatch"]


def _resolve_drive(drive) -> tuple[str, object]:
    """Turn a drive spec (registry name, DiskModel, or factory) into a
    ``(display_name, factory)`` pair."""
    if isinstance(drive, tuple) and len(drive) == 2 and callable(drive[1]):
        return str(drive[0]), drive[1]
    if isinstance(drive, str):
        entry: DriveEntry = DRIVES.get(drive)
        return entry.name, entry.factory
    if isinstance(drive, DiskModel):
        return drive.name, lambda: drive
    if callable(drive):
        name = getattr(drive, "__name__", type(drive).__name__)
        return name, drive
    raise DatasetError(
        f"drive must be a registered name, a DiskModel, or a factory; "
        f"got {type(drive).__name__}"
    )


class QueryBatch:
    """A fluent, appendable batch of queries bound to one dataset.

    Entries may be concrete (:class:`BeamQuery` / :class:`RangeQuery`) or
    *lazy* (random beams and random range cubes), in which case the query
    is drawn from the run's generator immediately before execution — the
    same interleaving as the paper's "averaged over runs at random
    locations" methodology, and stream-compatible with hand-wired loops.
    """

    def __init__(self, dataset: Dataset):
        self._dataset = dataset
        self._entries: list[tuple] = []
        self._repeats = 1

    # ------------------------------------------------------------------
    # builders (each returns self for chaining)
    # ------------------------------------------------------------------

    def beam(self, axis: int, fixed=None, lo: int = 0,
             hi: int | None = None) -> "QueryBatch":
        """Append a beam query; ``fixed=None`` draws a random position per
        run (``lo``/``hi`` still bound the span along ``axis``)."""
        if fixed is None:
            self._entries.append(("random_beam", int(axis), lo, hi))
        else:
            self._entries.append(
                ("query", BeamQuery(int(axis), tuple(fixed), lo, hi))
            )
        return self

    def random_beams(self, axis: int, n: int = 5) -> "QueryBatch":
        """Append ``n`` random full-length beams along ``axis``."""
        if n < 1:
            raise QueryError("n must be >= 1")
        for _ in range(int(n)):
            self._entries.append(("random_beam", int(axis), 0, None))
        return self

    def range(self, lo, hi) -> "QueryBatch":
        """Append the half-open box ``[lo, hi)``."""
        self._entries.append(
            ("query", RangeQuery(tuple(lo), tuple(hi)))
        )
        return self

    def range_selectivity(self, pct: float) -> "QueryBatch":
        """Append a ~``pct``-% cube at a random anchor per run (§5.1)."""
        if not 0 < pct <= 100:
            raise QueryError("selectivity must be in (0, 100]")
        self._entries.append(("random_range", float(pct)))
        return self

    def add(self, queries) -> "QueryBatch":
        """Append pre-built workload query objects."""
        if isinstance(queries, (BeamQuery, RangeQuery)):
            queries = [queries]
        for q in queries:
            if not isinstance(q, (BeamQuery, RangeQuery)):
                raise QueryError(
                    f"unknown query type {type(q).__name__}"
                )
            self._entries.append(("query", q))
        return self

    def repeats(self, n: int) -> "QueryBatch":
        """Execute the whole batch ``n`` times (lazy entries redraw)."""
        if n < 1:
            raise QueryError("repeats must be >= 1")
        self._repeats = int(n)
        return self

    def __len__(self) -> int:
        return len(self._entries)

    def bound_to(self, dataset: "Dataset") -> "QueryBatch":
        """A copy of this batch bound to another dataset (shapes must
        match so every stored query stays in bounds)."""
        if dataset.shape != self._dataset.shape:
            raise QueryError(
                f"batch built for shape {self._dataset.shape} cannot run "
                f"on shape {dataset.shape}"
            )
        clone = QueryBatch(dataset)
        clone._entries = list(self._entries)
        clone._repeats = self._repeats
        return clone

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, *, rng: np.random.Generator | None = None,
            repeats: int | None = None) -> Report:
        """Execute the batch and return a :class:`Report`.

        Without ``rng``, the dataset's seed sequence provides the next
        child generator.  One generator drives both lazy query positions
        and the randomised initial head position of every execution.
        """
        ds = self._dataset
        if rng is None:
            rng = ds.rng()
        n_rep = self._repeats if repeats is None else int(repeats)
        if n_rep < 1:
            raise QueryError("repeats must be >= 1")
        probe_mark = PROBES.snapshot() if PROBES.enabled else None
        records = []
        for rep in range(n_rep):
            for entry in self._entries:
                kind = entry[0]
                if kind == "query":
                    q = entry[1]
                elif kind == "random_beam":
                    _, axis, lo, hi = entry
                    q = random_beam(ds.shape, axis, rng)
                    if lo != 0 or hi is not None:
                        q = BeamQuery(q.axis, q.fixed, lo, hi)
                else:  # random_range
                    q = random_range_cube(ds.shape, entry[1], rng)
                res = ds.storage.run_query(ds.mapper, q, rng=rng)
                records.append(make_record(q, res, rep))
        meta = {"repeats": n_rep, "seed": ds.seed}
        if ds.cache is not None and ds.cache.active:
            # pool-LIFETIME cumulative snapshot taken after the batch —
            # earlier batches on the same dataset are included (call
            # ds.cache.reset_stats() first to scope stats to one batch);
            # absent on uncached runs so their report JSON stays
            # bit-identical to pre-cache
            meta["cache"] = ds.cache.describe()
        if ds.n_shards > 1:
            # per-shard gather totals, cumulative like the cache snapshot
            # (ds.storage.reset_shard_stats() scopes them); gated on > 1
            # so 1-shard reports stay bit-identical to unsharded ones
            meta["shards"] = ds.storage.describe_shards()
        if ds.replication_k > 1:
            # copy placement + routing totals (failed disks, failovers,
            # degraded queries); gated on k > 1 so single-copy reports
            # stay bit-identical to the sharded stack
            meta["replicas"] = ds.storage.describe_replicas()
        if probe_mark is not None:
            # preparation counters/timers for this batch; gated on the
            # probes being enabled so default report JSON is untouched
            meta["perf"] = PROBES.delta(probe_mark)
        tele = getattr(ds.storage, "obs", None)
        if tele is not None:
            # telemetry-LIFETIME totals (spans and metrics accumulate
            # across batches; ds.telemetry.reset() scopes them); gated
            # on attachment so detached report JSON is untouched — and
            # a monitor-only Telemetry describes to {}, whose payload
            # lives under "monitor" instead
            obs_meta = tele.describe()
            if obs_meta:
                meta["obs"] = obs_meta
            mon = getattr(tele, "monitor", None)
            if mon is not None:
                meta["monitor"] = mon.describe()
        return Report(
            records=tuple(records),
            layout=ds.layout,
            drive=ds.drive_name,
            shape=ds.shape,
            meta=meta,
        )


class Dataset:
    """A placed multidimensional dataset: drive + volume + mapper +
    storage manager behind one object.  Use :meth:`create`."""

    def __init__(self, *, shape, layout, drive, cell_blocks=1, depth=None,
                 seed=None, window=128, sptf_run_limit=150_000,
                 coalesce_gap_blocks=24, layout_opts=None):
        self.shape = tuple(int(s) for s in shape)
        self.layout = str(layout)
        self.cell_blocks = int(cell_blocks)
        self.depth = None if depth is None else int(depth)
        self.seed = seed
        self.layout_opts = dict(layout_opts or {})
        self._sm_opts = {
            "window": window,
            "sptf_run_limit": sptf_run_limit,
            "coalesce_gap_blocks": coalesce_gap_blocks,
        }
        self.drive_name, self._drive_factory = _resolve_drive(drive)
        self._layout_entry = LAYOUTS.get(self.layout)

        self.volume = LogicalVolume([self._drive_factory()],
                                    depth=self.depth)
        # the mapper is built lazily (see the property below): a dataset
        # that is immediately re-sharded or re-laid-out never pays for a
        # whole-grid placement it would throw away
        self._mapper = None
        self.storage = StorageManager(self.volume, **self._sm_opts)
        self._cache_spec: dict | None = None
        self._shard_spec: dict | None = None
        self._replica_spec: dict | None = None
        self._seedseq = (
            None if seed is None else np.random.SeedSequence(seed)
        )
        self._store: CellStore | None = None
        self._store_opts: dict = {}
        self._ingest_spec: dict | None = None
        self._obs_spec: dict | None = None

    @classmethod
    def create(cls, shape, layout: str = "multimap",
               drive="atlas10k3", *, cell_blocks: int = 1,
               depth: int | None = None, seed=None, window: int = 128,
               sptf_run_limit: int = 150_000,
               coalesce_gap_blocks: int = 24,
               **layout_opts) -> "Dataset":
        """Build the full stack for ``shape`` under a registered layout.

        Parameters mirror the hand-wired idiom: ``depth`` pins the
        adjacency depth D; the default ``None`` uses the drive's native
        settle region, which is 128 on both paper drives — exactly the
        value the paper's prototype pins — while small test/toy disks get
        their own maximum instead of an out-of-range error.
        ``cell_blocks`` is the LBNs per cell (§5.2 maps one cell to one
        512-byte block), and ``**layout_opts`` pass through to the mapper
        (e.g. MultiMap's ``strategy=`` / ``zones=``).
        """
        return cls(
            shape=shape, layout=layout, drive=drive,
            cell_blocks=cell_blocks, depth=depth, seed=seed,
            window=window, sptf_run_limit=sptf_run_limit,
            coalesce_gap_blocks=coalesce_gap_blocks,
            layout_opts=layout_opts,
        )

    @property
    def mapper(self):
        """The placed mapper (built on first use; the allocation lands
        on the fresh volume exactly as an eager build would, so lazy
        construction is placement-identical)."""
        if self._mapper is None:
            self._mapper = build_mapper(
                self._layout_entry, self.shape, self.volume, 0,
                cell_blocks=self.cell_blocks, **self.layout_opts,
            )
        return self._mapper

    @mapper.setter
    def mapper(self, value) -> None:
        self._mapper = value

    # ------------------------------------------------------------------
    # cloning
    # ------------------------------------------------------------------

    def with_layout(self, layout: str, **layout_opts) -> "Dataset":
        """The same dataset under another registered mapping.

        A fresh, identical volume is built from the same drive factory so
        both layouts occupy the same LBN region of identical disks — the
        fairness condition of the paper's evaluation.  The clone carries
        the parent's seed, so unseeded ``run()`` calls see the same
        generator sequence on both objects, and the parent's
        :meth:`configure_store` options, so update experiments stay
        comparable (the store's *contents* are not copied — each layout
        starts from the same empty placement).
        """
        clone = Dataset(
            shape=self.shape, layout=layout,
            drive=(self.drive_name, self._drive_factory),
            cell_blocks=self.cell_blocks,
            depth=self.depth, seed=self.seed, layout_opts=layout_opts,
            **self._sm_opts,
        )
        clone._store_opts = dict(self._store_opts)
        if self._ingest_spec is not None:
            # same ingest spec (stream/loader/knobs) on the clone, so
            # per-layout ingest comparisons share their write workload
            clone._ingest_spec = dict(self._ingest_spec)
        if self._shard_spec is not None:
            # same declustering on a fresh identical multi-disk volume;
            # seeding the replica spec first lets with_shards delegate
            # to with_replication and build the stack exactly once
            # (with_shards re-attaches the cache spec itself)
            if self._replica_spec is not None:
                clone._replica_spec = dict(self._replica_spec)
            clone.with_shards(**self._shard_spec)
        if self._cache_spec is not None:
            # same cache configuration, fresh private pool: layouts
            # compete on placement, not on each other's cache contents
            clone.with_cache(**self._cache_spec)
        if self._obs_spec is not None:
            # same telemetry configuration, fresh private tracer: each
            # layout's spans and metrics are its own recording
            clone.with_telemetry(**self._obs_spec)
        return clone

    # ------------------------------------------------------------------
    # sharding (scale-out across member disks)
    # ------------------------------------------------------------------

    def with_shards(self, n_shards: int, strategy: str = "disk_modulo",
                    *, chunk_shape=None) -> "Dataset":
        """Decluster the dataset across ``n_shards`` identical member
        disks (chainable).

        The volume is rebuilt with ``n_shards`` drives from the same
        factory, a :class:`~repro.shard.ShardMap` assigns each chunk a
        disk via the registered ``strategy``
        (:data:`repro.lvm.striping.STRATEGIES`: ``round_robin``,
        ``disk_modulo``, ``cube_aligned``), and queries execute
        scatter-gather (per-disk sub-plans in parallel, query time =
        makespan over drives).  ``chunk_shape`` overrides the default
        last-axis slab chunking.  ``with_shards(1)`` runs the full shard
        machinery but is **bit-identical** to the unsharded stack — the
        parity the shard regression tests pin.  An attached cache spec
        is re-instantiated on the new stack (fresh pool(s)).  Online
        updates are not available on sharded datasets.
        """
        from repro.shard import ShardMap, ShardedStorageManager

        if self._store is not None:
            raise DatasetError(
                "cannot shard after the cell store was created"
            )
        if self.storage.cache is not None and self._cache_spec is None:
            # a hand-wired pool (storage.cache = BufferPool(...)) cannot
            # be re-instantiated for the new volume; dropping it silently
            # would run the sharded experiment uncached
            raise DatasetError(
                "with_shards rebuilds the storage manager and cannot "
                "carry a hand-wired pool; shard first, then set "
                "storage.cache (or use with_cache)"
            )
        n = int(n_shards)
        if n < 1:
            raise DatasetError("n_shards must be >= 1")
        # build the whole new stack in locals and commit only once
        # everything validated: a failed call (unknown strategy, bad
        # chunk shape, exhausted volume) must leave the dataset intact
        entry = self._strategy_entry(strategy)
        align = None
        if chunk_shape is None and entry is not None \
                and entry.align_cubes \
                and self._layout_entry.wiring == "volume":
            # the basic-cube granule that keeps every cube intact on
            # one disk; ShardMap.build picks the aligned split axis.
            # A 1-disk probe volume suffices — the granule depends only
            # on the (identical) drives' zones and adjacency depth
            align = self._basic_cube_sides(
                LogicalVolume([self._drive_factory()], depth=self.depth)
            )
        shard_map = ShardMap.build(
            self.shape, n, strategy, chunk_shape=chunk_shape, align=align
        )
        # record the RESOLVED chunk shape (chunk 0 is always full-size),
        # so with_layout clones rebuild the identical chunk grid even
        # when this layout's alignment shaped the default — the fairness
        # condition for cross-layout comparisons
        new_spec = dict(
            n_shards=n, strategy=strategy,
            chunk_shape=shard_map.chunks[0].shape,
        )
        if self._replica_spec is not None:
            # re-replicate on the new disk count: validate k BEFORE
            # committing anything (a failed call must leave the dataset
            # intact), then delegate the whole build to with_replication
            # so primaries, pools, and replicas are constructed once
            spec = self._replica_spec
            self._validate_replica_k(int(spec["k"]), n)
            old_shard, self._shard_spec = self._shard_spec, new_spec
            self._replica_spec = None
            try:
                return self.with_replication(**spec)
            except BaseException:
                self._shard_spec = old_shard
                self._replica_spec = spec
                raise
        volume = LogicalVolume(
            [self._drive_factory() for _ in range(n)], depth=self.depth
        )
        storage = ShardedStorageManager(
            volume, shard_map, self._layout_entry,
            cell_blocks=self.cell_blocks, **self._sm_opts,
            layout_opts=self.layout_opts,
        )
        # the SAME Telemetry object rides onto the new manager, so
        # recordings span the reconfiguration
        storage.obs = self.storage.obs
        self.volume = volume
        self.storage = storage
        self.mapper = storage.mapper
        self._shard_spec = new_spec
        if self._cache_spec is not None:
            # fresh pool(s) sized by the same spec on the new stack
            self.with_cache(**self._cache_spec)
        return self

    # ------------------------------------------------------------------
    # replication (fault tolerance across member disks)
    # ------------------------------------------------------------------

    def with_replication(self, k: int, placement: str = "rotated",
                         read_policy: str = "primary") -> "Dataset":
        """Keep ``k`` copies of every chunk on distinct member disks
        (chainable; shard first).

        The stack is rebuilt with a
        :class:`~repro.replica.ReplicatedStorageManager`: copy 0 of
        every chunk stays exactly where :meth:`with_shards` placed it
        (replica mappers allocate after every primary), reads route to a
        copy picked by the registered ``read_policy``
        (:data:`repro.replica.READ_POLICIES`: ``primary``,
        ``round_robin``, ``least_loaded``), and replica homes come from
        the registered ``placement``
        (:data:`repro.replica.PLACEMENTS`: ``rotated`` chained
        declustering, or ``locality_aligned`` to keep replicas of
        adjacent chunks together).  Killing a member disk
        (``storage.fail_disk`` / :class:`repro.replica.FailureInjector`
        / a traffic failure schedule) transparently diverts reads to
        surviving copies.  ``with_replication(1)`` runs the full replica
        machinery but is **bit-identical** to the sharded stack — the
        parity ``tests/replica/test_parity.py`` pins.
        """
        from repro.replica import (
            PLACEMENTS,
            READ_POLICIES,
            ReplicatedStorageManager,
        )
        from repro.shard import ShardMap

        if self._store is not None:
            raise DatasetError(
                "cannot replicate after the cell store was created"
            )
        if self._shard_spec is None:
            raise DatasetError(
                "with_replication needs a sharded dataset; call "
                "with_shards(n) first (n >= k member disks)"
            )
        if self.storage.cache is not None and self._cache_spec is None:
            raise DatasetError(
                "with_replication rebuilds the storage manager and "
                "cannot carry a hand-wired pool; replicate first, then "
                "set storage.cache (or use with_cache)"
            )
        k = int(k)
        if k < 1:
            raise DatasetError("k must be >= 1")
        n = int(self._shard_spec["n_shards"])
        self._validate_replica_k(k, n)
        # validate names before rebuilding, so a typo leaves the
        # dataset untouched
        if isinstance(placement, str):
            PLACEMENTS.get(placement)
        if isinstance(read_policy, str):
            READ_POLICIES.get(read_policy)
        volume = LogicalVolume(
            [self._drive_factory() for _ in range(n)], depth=self.depth
        )
        shard_map = ShardMap.build(
            self.shape, n, self._shard_spec["strategy"],
            chunk_shape=self._shard_spec["chunk_shape"],
        )
        storage = ReplicatedStorageManager(
            volume, shard_map, self._layout_entry,
            k=k, placement=placement, read_policy=read_policy,
            cell_blocks=self.cell_blocks, **self._sm_opts,
            layout_opts=self.layout_opts,
        )
        # same Telemetry, new manager — recordings span the rebuild
        storage.obs = self.storage.obs
        self.volume = volume
        self.storage = storage
        self.mapper = storage.mapper
        self._replica_spec = dict(
            k=k, placement=placement, read_policy=read_policy,
        )
        if self._cache_spec is not None:
            # fresh pool(s) sized by the same spec on the new stack
            self.with_cache(**self._cache_spec)
        return self

    @staticmethod
    def _validate_replica_k(k: int, n: int) -> None:
        """Shared k-vs-disk-count check (with_replication and the
        re-shard delegation both gate on it *before* mutating)."""
        if k > n:
            raise DatasetError(
                f"k={k} copies need at least k member disks; the "
                f"dataset has {n} (with_shards({k}) or more first)"
            )

    @property
    def replication_k(self) -> int:
        """Copies per chunk (1 for the unreplicated stack)."""
        return 1 if self._replica_spec is None else int(
            self._replica_spec["k"]
        )

    @property
    def is_replicated(self) -> bool:
        return self._replica_spec is not None

    @property
    def replica_map(self):
        """The chunk-copy placement, or ``None`` when unreplicated."""
        return (
            None if self._replica_spec is None
            else self.storage.replica_map
        )

    @staticmethod
    def _strategy_entry(strategy):
        """Resolve a strategy spec to its registry entry (None for
        non-registered callables/entries passed through)."""
        from repro.lvm.striping import STRATEGIES, StrategyEntry

        if isinstance(strategy, StrategyEntry):
            return strategy
        if isinstance(strategy, str):
            return STRATEGIES.get(strategy)
        return None

    def _basic_cube_sides(self, volume=None) -> tuple[int, ...]:
        """The basic-cube sides K the unsharded MultiMap placement would
        plan (outer-zone candidate) — the ``cube_aligned`` granule:
        chunk boundaries land on this plan's cube boundaries, so
        sharding never cuts through what the single-disk layout would
        have kept as one cube.  (Each chunk's mapper then plans its own
        cubes for the chunk's dimensions.)"""
        from repro.core.planner import plan_basic_cube

        volume = self.volume if volume is None else volume
        zone_infos = volume.zones(0)
        t_outer = zone_infos[0].track_length // self.cell_blocks
        min_tracks = min(z.tracks for z in zone_infos)
        plan = plan_basic_cube(
            self.shape, t_outer, min_tracks, volume.depth(0),
            strategy=self.layout_opts.get("strategy", "compact"),
        )
        return plan.K

    @property
    def n_shards(self) -> int:
        """Member-disk count (1 for the unsharded stack)."""
        return 1 if self._shard_spec is None else int(
            self._shard_spec["n_shards"]
        )

    @property
    def is_sharded(self) -> bool:
        return self._shard_spec is not None

    @property
    def shard_map(self):
        """The chunk-to-disk placement, or ``None`` when unsharded."""
        return None if self._shard_spec is None else self.storage.shard_map

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------

    def with_cache(self, capacity_blocks: int, policy: str = "lru",
                   prefetch: str = "none", scope: str = "shared",
                   **cache_opts) -> "Dataset":
        """Attach a fresh :class:`~repro.cache.BufferPool` (chainable).

        ``capacity_blocks == 0`` (the default state) detaches any pool
        — queries then run bit-identical to a dataset that never had
        one.  ``policy`` / ``prefetch`` resolve through the
        :data:`~repro.cache.POLICIES` / :data:`~repro.cache.PREFETCHERS`
        registries; extra keywords pass to the pool (e.g.
        ``service_ms_per_block``, ``scan_threshold``,
        ``prefetch_opts={"steps": 8}``).  ``with_layout`` clones carry
        the same spec with a private pool, keeping layout comparisons
        fair.

        ``scope`` picks the composition on sharded datasets:
        ``"shared"`` (default) is one host-side pool spanning every
        member disk; ``"per_shard"`` gives each disk a private
        :class:`~repro.cache.ShardedBufferPool` member of
        ``capacity_blocks`` frames (the per-controller cache of a disk
        array), so one shard's scan cannot evict another's working set.
        ``with_shards`` re-instantiates the spec on the new disk count.
        """
        if capacity_blocks < 0:
            raise DatasetError("capacity_blocks must be >= 0")
        if scope not in ("shared", "per_shard"):
            raise DatasetError(
                f"cache scope must be 'shared' or 'per_shard', "
                f"got {scope!r}"
            )
        from repro.cache import (
            POLICIES,
            PREFETCHERS,
            BufferPool,
            EvictionPolicy,
            Prefetcher,
            ShardedBufferPool,
        )

        # with_layout clones re-instantiate this spec for their private
        # pools, so it must be re-instantiable: a pre-built (stateful)
        # policy/prefetcher object would be *shared* across clones and
        # leak one layout's residency into another's measurements —
        # wire such an object into storage.cache by hand instead
        if isinstance(policy, EvictionPolicy) \
                or isinstance(prefetch, Prefetcher):
            raise DatasetError(
                "with_cache takes registered names or classes, not "
                "instances; build a BufferPool directly for that"
            )
        # validate names even on the capacity-0 path, so a typo in a
        # sweep's baseline cell fails loudly instead of running uncached
        if isinstance(policy, str):
            POLICIES.get(policy)
        if isinstance(prefetch, str):
            PREFETCHERS.get(prefetch)
        if not capacity_blocks:
            self._cache_spec = None
            self.storage.cache = None
            return self

        # construct the pool before committing the spec, so a rejected
        # configuration leaves the dataset (and its describe()) unchanged
        if scope == "per_shard":
            pool = ShardedBufferPool(
                self.volume.n_disks, int(capacity_blocks),
                policy=policy, prefetch=prefetch, **cache_opts,
            )
        else:
            pool = BufferPool(
                int(capacity_blocks), policy=policy, prefetch=prefetch,
                **cache_opts,
            )
        self._cache_spec = dict(
            capacity_blocks=int(capacity_blocks), policy=policy,
            prefetch=prefetch, **cache_opts,
        )
        if scope != "shared":
            # recorded only when non-default, so shared-pool specs (and
            # their report meta) keep the pre-shard JSON layout
            self._cache_spec["scope"] = scope
        self.storage.cache = pool
        return self

    @property
    def cache(self):
        """The attached buffer pool, or ``None``."""
        return self.storage.cache

    # ------------------------------------------------------------------
    # telemetry (repro.obs) — per-query tracing and metrics
    # ------------------------------------------------------------------

    @staticmethod
    def _build_monitor(monitor):
        """Instantiate the monitor half of a telemetry spec.

        ``None``/``False`` -> no monitor; ``True`` -> a default
        :class:`~repro.monitor.Monitor`; a mapping -> constructor
        options.  Like cache specs, a pre-built instance is rejected so
        :meth:`with_layout` clones can re-instantiate private state.
        """
        if monitor is None or monitor is False:
            return None
        from repro.monitor import Monitor

        if monitor is True:
            return Monitor()
        if isinstance(monitor, dict):
            return Monitor(**monitor)
        raise DatasetError(
            f"monitor must be True, False, None, or an options dict "
            f"(got {type(monitor).__name__}); clones re-instantiate "
            f"the spec, so pass options rather than a Monitor instance"
        )

    def with_telemetry(self, trace: bool = True, metrics: bool = True,
                       exporter: str | None = None,
                       monitor=None) -> "Dataset":
        """Attach a fresh :class:`~repro.obs.Telemetry` (chainable).

        ``trace`` records one deterministic span tree per query (phases:
        prepare, cache, per-disk service with seek/rotate/transfer
        attribution, ingest flush, failover, reorganisation);
        ``metrics`` accumulates counters and latency histograms;
        ``exporter`` names a default :data:`~repro.obs.EXPORTERS` entry
        (``jsonl``, ``chrome``, ``prometheus``) for
        ``ds.telemetry.export()``; ``monitor`` attaches a
        :class:`~repro.monitor.Monitor` (``True`` for defaults, or an
        options dict like ``{"window_ms": 25.0}``) for windowed
        time-series, SLO alerts, and health tracking — see also
        :meth:`with_monitor`.  ``trace=False, metrics=False`` with no
        monitor detaches — the default state, in which every result and
        report is bit-identical to a build without telemetry (the same
        parity guarantee ``with_cache(0)`` gives).  The handle survives
        :meth:`with_shards`/:meth:`with_replication` rebuilds, and
        :meth:`with_layout` clones carry the spec with a private
        recording.
        """
        mon = self._build_monitor(monitor)
        if not trace and not metrics and mon is None:
            self._obs_spec = None
            self.storage.obs = None
            return self
        from repro.obs import Telemetry

        self.storage.obs = Telemetry(
            trace=trace, metrics=metrics, exporter=exporter,
            monitor=mon,
        )
        self._obs_spec = dict(
            trace=bool(trace), metrics=bool(metrics), exporter=exporter
        )
        if monitor is not None and monitor is not False:
            # gated so monitor-less specs (and their describe() JSON)
            # keep the pre-monitor layout
            self._obs_spec["monitor"] = (
                True if monitor is True else dict(monitor)
            )
        return self

    def with_monitor(self, monitor=True, **options) -> "Dataset":
        """Attach (or detach) continuous monitoring (chainable).

        Sugar over :meth:`with_telemetry`: merges a monitor into the
        current telemetry spec, attaching default trace + metrics when
        nothing was attached yet.  ``monitor=True`` uses defaults,
        keyword ``options`` (e.g. ``window_ms=25.0``, ``rules={...}``)
        configure the :class:`~repro.monitor.Monitor`, and
        ``monitor=False``/``None`` removes just the monitor (detaching
        telemetry entirely if nothing else was attached).
        """
        spec = dict(self._obs_spec or {"trace": True, "metrics": True,
                                       "exporter": None})
        spec.pop("monitor", None)
        if monitor is None or monitor is False:
            if options:
                raise DatasetError(
                    "with_monitor(False) removes the monitor; monitor "
                    "options make no sense alongside it"
                )
            if self._obs_spec is None:
                return self
            return self.with_telemetry(**spec)
        if monitor is not True and not isinstance(monitor, dict):
            raise DatasetError(
                f"monitor must be True, False, None, or an options "
                f"dict, got {type(monitor).__name__}"
            )
        opts = dict(monitor) if isinstance(monitor, dict) else {}
        opts.update(options)
        return self.with_telemetry(**spec, monitor=opts or True)

    @property
    def telemetry(self):
        """The attached :class:`~repro.obs.Telemetry`, or ``None``."""
        return getattr(self.storage, "obs", None)

    @property
    def monitor(self):
        """The attached :class:`~repro.monitor.Monitor`, or ``None``."""
        return getattr(self.telemetry, "monitor", None)

    # ------------------------------------------------------------------
    # fluent queries
    # ------------------------------------------------------------------

    def query(self) -> QueryBatch:
        """An empty fluent batch bound to this dataset."""
        return QueryBatch(self)

    def beam(self, axis: int, fixed=None, lo: int = 0,
             hi: int | None = None) -> QueryBatch:
        return self.query().beam(axis, fixed, lo, hi)

    def random_beams(self, axis: int, n: int = 5) -> QueryBatch:
        return self.query().random_beams(axis, n)

    def range(self, lo, hi) -> QueryBatch:
        return self.query().range(lo, hi)

    def range_selectivity(self, pct: float) -> QueryBatch:
        return self.query().range_selectivity(pct)

    def traffic(self) -> "TrafficRun":
        """An empty fluent traffic run bound to this dataset (the
        concurrent analogue of :meth:`query`); see
        :class:`repro.api.traffic.TrafficRun`."""
        from repro.api.traffic import TrafficRun

        return TrafficRun(self)

    # ------------------------------------------------------------------
    # streaming ingest (repro.ingest) — the write path at scale
    # ------------------------------------------------------------------

    def with_ingest(self, stream="uniform", loader: str = "fixed",
                    **opts) -> "Dataset":
        """Attach a streaming-ingest spec (chainable).

        ``stream``/``loader`` resolve through the
        :data:`repro.ingest.STREAMS` / :data:`repro.ingest.LOADERS`
        registries (validated now, so a typo'd sweep cell fails loudly);
        extra keywords (``n_points``, ``batch_points``,
        ``flush_points``, ``seed``, stream options like ``n_clusters``)
        become the defaults of :meth:`ingest` runs.  The spec is carried
        through :meth:`with_layout` clones — like the cache spec — so
        per-layout ingest comparisons share their write workload, and it
        survives :meth:`with_shards` / :meth:`with_replication` (which
        mutate in place).
        """
        from repro.ingest import LOADERS, STREAMS
        from repro.ingest.streams import RecordStream

        if isinstance(stream, str):
            STREAMS.get(stream)
        elif not (isinstance(stream, RecordStream)
                  or (isinstance(stream, type)
                      and issubclass(stream, RecordStream))):
            raise DatasetError(
                f"stream must be a registered name or RecordStream, "
                f"got {type(stream).__name__}"
            )
        if isinstance(loader, str):
            LOADERS.get(loader)
        self._ingest_spec = dict(stream=stream, loader=loader, **opts)
        return self

    def ingest(self, **overrides) -> "IngestRun":
        """A fluent streaming-ingest run bound to this dataset (the
        write-path analogue of :meth:`query`); see
        :class:`repro.api.ingest.IngestRun`.  Keyword overrides layer on
        top of any :meth:`with_ingest` spec."""
        from repro.api.ingest import IngestRun

        return IngestRun(self, overrides)

    def run(self, queries: Iterable | QueryBatch | None = None, *,
            repeats: int | None = None,
            rng: np.random.Generator | None = None) -> Report:
        """Execute a batch (or pre-built workload queries) → Report.

        ``repeats=None`` defers to the batch's own ``.repeats(n)`` setting
        (1 when unset); an explicit value overrides it.  A batch built on
        another dataset of the same shape is rebound to *this* dataset,
        so ``clone.run(batch)`` times the clone's layout.
        """
        if isinstance(queries, QueryBatch):
            if queries._dataset is not self:
                queries = queries.bound_to(self)
            return queries.run(rng=rng, repeats=repeats)
        batch = self.query()
        if queries is not None:
            batch.add(queries)
        return batch.run(rng=rng, repeats=repeats)

    def explain(self, query, *, analyze: bool = False) -> dict:
        """EXPLAIN (and optionally ANALYZE) one query on this dataset.

        EXPLAIN is static and side-effect-free: the plan is prepared
        against ghost state (live drives, cache policy/stats, replica
        routing counters, and perf probes are all left untouched) and
        its run structure, access-pattern classification, predicted
        mechanical cost, expected cache hits, shard fan-out, and
        replica routing are returned as a JSON-friendly dict.  With
        ``analyze=True`` the query is then executed once for real —
        drives move and the cache warms, as a normal ``run()`` would —
        under a private trace, adding ``measured`` and
        ``reconciliation`` (the predicted-vs-measured model-error
        report).  See :mod:`repro.explain`.
        """
        from repro.explain import analyze_query, explain_query

        data = explain_query(self, query)
        if analyze:
            measured, reconciliation = analyze_query(
                self, query, data["predicted"]
            )
            data["measured"] = measured
            data["reconciliation"] = reconciliation
        return data

    # ------------------------------------------------------------------
    # updates (§4.6) — CellStore behind the same object
    # ------------------------------------------------------------------

    def configure_store(self, **store_opts) -> "Dataset":
        """Set :class:`CellStore` options (``points_per_cell``,
        ``fill_factor``, ``reclaim_threshold``, ``max_overflow_pages``)
        before first use; returns ``self`` for chaining."""
        if self._store is not None:
            raise DatasetError("cell store already created")
        self._store_opts = dict(store_opts)
        return self

    def _store_mapper(self):
        """The cell-level mapper updates run against.

        Datasets declustered over several member disks — or chunked
        into several pieces even on one disk — have no single cell
        mapper, so updates are gated; a 1-shard dataset whose *lone*
        chunk spans the whole dataset has a chunk mapper that *is* the
        full-dataset mapper (the pinned parity guarantee), so
        un-sharding back to 1 restores update support.
        """
        mapper = self.mapper
        chunk_mappers = getattr(mapper, "chunk_mappers", None)
        if self.n_shards > 1 or (
            chunk_mappers is not None and len(chunk_mappers) > 1
        ):
            raise DatasetError(
                "online updates (CellStore) are not supported on "
                "sharded datasets; stream writes through "
                "Dataset.ingest() instead"
            )
        return mapper if chunk_mappers is None else chunk_mappers[0]

    @property
    def store(self) -> CellStore:
        """The lazily created cell store (default options unless
        :meth:`configure_store` ran first)."""
        if self._store is None:
            self._store = CellStore(
                self._store_mapper(), self.volume, **self._store_opts
            )
        return self._store

    def _invalidate_cell_blocks(self, cell_coord) -> None:
        """Write-invalidate the cache frames of one cell's home blocks."""
        if self.cache is None or not self.cache.active:
            return
        mapper = self._store.mapper
        first = int(mapper.lbns(np.asarray([cell_coord],
                                           dtype=np.int64))[0])
        self.cache.invalidate(
            mapper.disk_index,
            np.arange(first, first + self.cell_blocks, dtype=np.int64),
        )

    def bulk_load(self, coords, counts=None) -> int:
        store = self.store  # resolve (and gate sharded) before clearing
        # mass (re)placement: anything cached may now be stale
        if self.cache is not None:
            self.cache.clear()
        return store.bulk_load(coords, counts)

    def insert(self, cell_coord, n: int = 1) -> str:
        store = self.store  # resolve (and gate sharded) first
        self._invalidate_cell_blocks(cell_coord)
        return store.insert(cell_coord, n)

    def delete(self, cell_coord, n: int = 1) -> None:
        store = self.store
        self._invalidate_cell_blocks(cell_coord)
        store.delete(cell_coord, n)

    @property
    def needs_reorganization(self) -> bool:
        return self.store.needs_reorganization

    def reorganize(self) -> int:
        """§4.6 reorganisation; relocation frees and reuses LBNs, so an
        attached pool is cleared rather than served stale frames."""
        moved = self.store.reorganize()
        if self.cache is not None:
            self.cache.clear()
        return moved

    def store_stats(self) -> StoreStats:
        return self.store.stats()

    def read_cells(self, coords, *,
                   rng: np.random.Generator | None = None) -> QueryResult:
        """Fetch specific cells (including any overflow chains)."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords[np.newaxis, :]
        plan = self.store.read_plan(coords)
        if rng is None:
            rng = self.rng()
        return self.storage.execute_plan(
            self._store.mapper, plan, coords.shape[0], rng=rng
        )

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------

    def rng(self) -> np.random.Generator:
        """The next child generator of this dataset's seed sequence.

        Seeded datasets spawn children via ``SeedSequence.spawn`` — each
        call yields an independent, reproducible stream; unseeded datasets
        return fresh OS entropy.  Every ``run()`` without an explicit
        ``rng=`` draws from here.
        """
        if self._seedseq is None:
            return np.random.default_rng()
        return np.random.default_rng(self._seedseq.spawn(1)[0])

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        return self.mapper.n_cells

    def describe(self) -> dict:
        """JSON-friendly summary of the wiring."""
        out = {
            "shape": list(self.shape),
            "layout": self.layout,
            "layout_opts": dict(self.layout_opts),
            "drive": self.drive_name,
            "cell_blocks": self.cell_blocks,
            "depth": self.depth,
            "seed": self.seed,
            "n_cells": self.n_cells,
        }
        if self._cache_spec is not None:
            # gated so uncached datasets keep the pre-cache JSON layout
            out["cache"] = dict(self._cache_spec)
        if self.n_shards > 1:
            # gated on > 1: a 1-shard dataset reports as unsharded (it
            # is bit-identical to one, the pinned parity guarantee)
            out["shards"] = self.storage.shard_map.describe()
        if self.replication_k > 1:
            # gated on k > 1: a single-copy dataset reports as the
            # sharded stack it is bit-identical to
            out["replicas"] = dict(self._replica_spec)
        if self._obs_spec is not None:
            # gated so detached datasets keep the pre-obs JSON layout
            out["obs"] = dict(self._obs_spec)
        if self._ingest_spec is not None:
            # gated so read-only datasets keep the pre-ingest JSON layout
            out["ingest"] = {
                k: (v if isinstance(v, (str, int, float, bool, type(None)))
                    else str(v))
                for k, v in self._ingest_spec.items()
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(shape={self.shape}, layout={self.layout!r}, "
            f"drive={self.drive_name!r})"
        )
