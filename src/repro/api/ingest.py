"""Fluent streaming-ingest runs: ``Dataset.ingest(...).run()``.

An :class:`IngestRun` binds a seeded record stream and a bulk loader to
a dataset, drives the staged :class:`~repro.ingest.pipeline
.IngestPipeline` batch by batch (flushes execute scatter-gather, like
read queries), optionally folds overflow chains back with a modelled
background reorganisation, and returns an
:class:`~repro.ingest.report.IngestReport`.

When the resolved plan suggests a chunk shape (the adaptive loader on a
sharded dataset) the run re-chunks the dataset *before* building the
pipeline — the §4.6-style density sample picks the split axis, so a
clustered stream lands whole clusters on one member disk.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IngestError
from repro.ingest.loader import resolve_loader
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.reorg import plan_reorganize
from repro.ingest.streams import make_stream
from repro.query.scatter import scatter_execute

__all__ = ["IngestRun"]


class IngestRun:
    """Builder for one synchronous ingest run against a dataset.

    Options merge ``dataset.with_ingest(...)`` defaults with per-run
    overrides; anything not consumed here is passed to the stream
    factory (``n_clusters``, ``spread``, ``coords``, ...).
    """

    def __init__(self, dataset, overrides: dict | None = None):
        spec = dict(dataset._ingest_spec or {})
        spec.update(overrides or {})
        self.dataset = dataset
        self.stream_spec = spec.pop("stream", "uniform")
        self.loader_spec = spec.pop("loader", "fixed")
        self.n_points = int(spec.pop("n_points", 2048))
        self.batch_points = int(spec.pop("batch_points", 256))
        self.flush_points = int(spec.pop("flush_points", 1024))
        seed = spec.pop("seed", None)
        if seed is None:
            seed = dataset.seed if dataset.seed is not None else 0
        self.seed = int(seed)
        self.reorganize = bool(spec.pop("reorganize", False))
        self.throttle = float(spec.pop("throttle", 1.0))
        self.adapt_chunks = bool(spec.pop("adapt_chunks", True))
        self.loader_opts = dict(spec.pop("loader_opts", {}))
        self.stream_opts = spec

    # chainable knobs --------------------------------------------------

    def with_stream(self, stream, **opts) -> "IngestRun":
        self.stream_spec = stream
        self.stream_opts.update(opts)
        return self

    def with_loader(self, loader, **opts) -> "IngestRun":
        self.loader_spec = loader
        self.loader_opts.update(opts)
        return self

    def with_points(self, n_points: int,
                    batch_points: int | None = None) -> "IngestRun":
        self.n_points = int(n_points)
        if batch_points is not None:
            self.batch_points = int(batch_points)
        return self

    def with_flush(self, flush_points: int) -> "IngestRun":
        self.flush_points = int(flush_points)
        return self

    def with_reorganize(self, on: bool = True, *,
                        throttle: float = 1.0) -> "IngestRun":
        self.reorganize = bool(on)
        self.throttle = float(throttle)
        return self

    # execution --------------------------------------------------------

    def build_stream(self):
        return make_stream(
            self.stream_spec,
            tuple(self.dataset.shape),
            n_points=self.n_points,
            batch_points=self.batch_points,
            seed=self.seed,
            **self.stream_opts,
        )

    def run(self, rng: np.random.Generator | None = None):
        """Stream every batch through the pipeline and report."""
        ds = self.dataset
        stream = self.build_stream()
        entry = resolve_loader(self.loader_spec)
        plan = entry.fn(ds, stream, **self.loader_opts)

        if (
            plan.chunk_shape is not None
            and self.adapt_chunks
            and ds.is_sharded
            and ds._store is None
            and tuple(plan.chunk_shape)
            != tuple(ds.storage.shard_map.chunks[0].shape)
        ):
            # re-chunk on the sampled density before any byte lands;
            # with_shards mutates in place and re-replicates if needed
            spec = ds._shard_spec
            ds.with_shards(
                int(spec["n_shards"]), spec["strategy"],
                chunk_shape=tuple(plan.chunk_shape),
            )

        pipeline = IngestPipeline(
            ds, stream, entry,
            plan=plan, flush_points=self.flush_points,
        )
        if rng is None:
            rng = ds.rng()

        write_ms = 0.0
        flushes = 0
        blocks_written = 0
        per_disk: dict[int, float] = {}

        def execute(disks) -> None:
            nonlocal write_ms, flushes, blocks_written
            flush = pipeline.build_flush(disks)
            if flush is None:
                return
            result, disk_stats = scatter_execute(
                ds.storage, flush.prepared, rng=rng
            )
            write_ms += result.total_ms
            blocks_written += result.n_blocks
            flushes += 1
            for d, s in disk_stats.items():
                per_disk[d] = per_disk.get(d, 0.0) + s["busy_ms"]

        n_batches = 0
        for batch in stream.batches():
            n_batches += 1
            execute(pipeline.stage(batch))
        execute(pipeline.drain_disks())
        if pipeline.stats.buffered_points:
            raise IngestError(
                f"{pipeline.stats.buffered_points} points left buffered "
                "after the final drain"
            )

        reorg = None
        reorg_ms = 0.0
        if self.reorganize:
            report = plan_reorganize(pipeline, throttle=self.throttle)
            if report is not None:
                reorg = report.to_dict()
                reorg_ms = report.reorg_ms
                tele = getattr(ds.storage, "obs", None)
                if tele is not None:
                    from repro.obs.span import record_reorg

                    record_reorg(tele, report)

        stage_ms = (
            pipeline.stats.streamed_points * pipeline.stage_ms_per_point
        )
        from repro.ingest.report import IngestReport

        return IngestReport(
            layout=ds.layout,
            drive=ds.drive_name,
            shape=tuple(ds.shape),
            stream=stream.describe(),
            loader=entry.name,
            plan=plan.describe(),
            n_points=pipeline.stats.streamed_points,
            n_batches=n_batches,
            flushes=flushes,
            acked_batches=n_batches,
            stage_ms=stage_ms,
            write_ms=write_ms,
            reorg=reorg,
            total_ms=stage_ms + write_ms + reorg_ms,
            home_blocks=pipeline.stats.home_blocks,
            blocks_written=blocks_written,
            overflow_points=pipeline.stats.overflow_points,
            skipped_copy_writes=pipeline.stats.skipped_copy_writes,
            per_disk_busy_ms=per_disk,
            store=pipeline.store_summary(),
        )
