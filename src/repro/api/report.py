"""Structured results for façade query batches.

A :class:`Report` wraps the per-query :class:`~repro.query.QueryResult`
records of one :meth:`repro.api.Dataset.run` call together with summary
aggregates (mean / min / max / percentiles of total time and per-cell
time), and renders itself through :mod:`repro.bench.reporting` so façade
output matches the benchmark tables.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench.reporting import render_table
from repro.query.executor import QueryResult
from repro.query.workload import BeamQuery, RangeQuery

__all__ = ["QueryRecord", "Report"]

_PCTS = (50, 90, 95)


def _describe(query) -> str:
    if isinstance(query, BeamQuery):
        return f"beam[axis={query.axis}]"
    if isinstance(query, RangeQuery):
        return f"range{tuple(query.shape)}"
    return type(query).__name__


@dataclass(frozen=True)
class QueryRecord:
    """One executed query: the query, its timing, and its repeat index."""

    label: str
    query: BeamQuery | RangeQuery
    result: QueryResult
    repeat: int = 0


@dataclass(frozen=True)
class Report:
    """Results of one batch execution on one dataset."""

    records: tuple[QueryRecord, ...]
    layout: str = ""
    drive: str = ""
    shape: tuple[int, ...] = ()
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------

    @property
    def results(self) -> tuple[QueryResult, ...]:
        return tuple(r.result for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def _values(self, attr: str) -> np.ndarray:
        return np.asarray(
            [getattr(r.result, attr) for r in self.records], dtype=np.float64
        )

    def mean(self, attr: str = "ms_per_cell") -> float:
        """Mean of one :class:`QueryResult` attribute across the batch."""
        vals = self._values(attr)
        return float(vals.mean()) if vals.size else 0.0

    def percentile(self, p: float, attr: str = "total_ms") -> float:
        vals = self._values(attr)
        return float(np.percentile(vals, p)) if vals.size else 0.0

    @property
    def total_ms(self) -> float:
        return float(self._values("total_ms").sum())

    def aggregates(self) -> dict:
        """Summary statistics over the batch (the "batch report")."""
        out: dict = {"n_queries": len(self.records)}
        for attr in ("total_ms", "ms_per_cell"):
            vals = self._values(attr)
            if not vals.size:
                continue
            stats = {
                "mean": float(vals.mean()),
                "min": float(vals.min()),
                "max": float(vals.max()),
            }
            stats.update(
                {f"p{p}": float(np.percentile(vals, p)) for p in _PCTS}
            )
            out[attr] = stats
        return out

    # ------------------------------------------------------------------
    # serialisation / rendering
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "layout": self.layout,
            "drive": self.drive,
            "shape": list(self.shape),
            "meta": dict(self.meta),
            "aggregates": self.aggregates(),
            "queries": [
                {
                    "label": r.label,
                    "repeat": r.repeat,
                    "query": asdict(r.query),
                    "result": asdict(r.result),
                }
                for r in self.records
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render_table(self) -> str:
        """Paper-style fixed-width table of the per-query results."""
        headers = ["query", "cells", "blocks", "runs", "total ms",
                   "ms/cell", "policy"]
        rows = [
            [
                r.label,
                r.result.n_cells,
                r.result.n_blocks,
                r.result.n_runs,
                f"{r.result.total_ms:.3f}",
                f"{r.result.ms_per_cell:.4f}",
                r.result.policy,
            ]
            for r in self.records
        ]
        return render_table(headers, rows)

    def __str__(self) -> str:
        title = f"[{self.layout} on {self.drive}] {self.shape}"
        return f"{title}\n{self.render_table()}"


def make_record(query, result: QueryResult, repeat: int = 0,
                label: str | None = None) -> QueryRecord:
    """Build a :class:`QueryRecord` with an auto-generated label."""
    return QueryRecord(
        label=label or _describe(query),
        query=query,
        result=result,
        repeat=repeat,
    )
