"""Fluent traffic runs bound to a :class:`~repro.api.dataset.Dataset`.

:class:`TrafficRun` is to :class:`~repro.traffic.engine.TrafficSim` what
:class:`~repro.api.dataset.QueryBatch` is to the storage manager: a
chainable builder that owns seeding and wiring::

    report = (
        ds.traffic()
        .clients(4, mix=QueryMix.beams(1), queries=25)
        .poisson(2, rate_qps=40, queries=50)
        .slice_runs(64)
        .run()
    )

Seeding: each client receives the next child generator of the dataset's
seed sequence (:meth:`Dataset.rng`), in the order the clients were
added.  A fresh same-seed dataset therefore replays identical per-client
streams, and a *single* closed-loop client consumes the very stream a
:meth:`QueryBatch.run` on that fresh dataset would — the parity the
traffic regression tests pin.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.traffic.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoop,
    PoissonArrivals,
)
from repro.traffic.clients import QueryMix, Replay, TrafficClient
from repro.traffic.engine import TrafficConfig, TrafficSim
from repro.traffic.stats import TrafficReport

__all__ = ["TrafficRun"]


class TrafficRun:
    """A fluent, appendable set of traffic clients bound to one dataset."""

    def __init__(self, dataset):
        self._dataset = dataset
        self._specs: list[tuple] = []  # (name, mix, arrival, n_queries)
        self._ingest_specs: list[tuple] = []  # (name, arrival, overrides)
        self._slice_runs: int | None = 256
        self._head = "random"
        self._horizon_ms: float | None = None
        self._collect_traces = True
        self._failures = None
        self._failure_events: list = []

    # ------------------------------------------------------------------
    # client builders (each returns self for chaining)
    # ------------------------------------------------------------------

    def clients(self, n: int = 1, *, mix: QueryMix | Replay | None = None,
                arrival: ArrivalProcess | None = None,
                queries: int = 50, name: str | None = None) -> "TrafficRun":
        """Append ``n`` identical clients.

        Defaults: an equal-weight beam mix over every non-streaming axis
        (axes ``1..ndim-1``; dim 0 is the layouts' streaming direction)
        and a zero-think closed loop.  Clients are named ``c<i>`` in
        creation order unless ``name`` (used as a prefix for ``n > 1``)
        says otherwise.
        """
        if n < 1:
            raise QueryError("n must be >= 1")
        ndim = len(self._dataset.shape)
        mix = mix or QueryMix.beams(*range(1, ndim) if ndim > 1 else (0,))
        arrival = arrival or ClosedLoop()
        for i in range(int(n)):
            idx = len(self._specs)
            if name is None:
                cname = f"c{idx}"
            else:
                cname = name if n == 1 else f"{name}{i}"
            self._specs.append((cname, mix, arrival, int(queries)))
        return self

    def closed(self, n: int = 1, *, think_ms: float = 0.0,
               queries: int = 50, mix=None,
               name: str | None = None) -> "TrafficRun":
        """``n`` closed-loop clients with the given think time."""
        return self.clients(
            n, mix=mix, arrival=ClosedLoop(think_ms=think_ms),
            queries=queries, name=name,
        )

    def poisson(self, n: int = 1, *, rate_qps: float,
                queries: int = 50, mix=None,
                name: str | None = None) -> "TrafficRun":
        """``n`` open-loop Poisson clients at ``rate_qps`` each."""
        return self.clients(
            n, mix=mix, arrival=PoissonArrivals(rate_qps=rate_qps),
            queries=queries, name=name,
        )

    def bursty(self, n: int = 1, *, burst_rate_per_s: float,
               mean_burst: float = 4.0, intra_ms: float = 0.5,
               queries: int = 50, mix=None,
               name: str | None = None) -> "TrafficRun":
        """``n`` open-loop flash-crowd clients (batch-Poisson)."""
        return self.clients(
            n,
            mix=mix,
            arrival=BurstyArrivals(
                burst_rate_per_s=burst_rate_per_s,
                mean_burst=mean_burst,
                intra_ms=intra_ms,
            ),
            queries=queries,
            name=name,
        )

    def ingest(self, *, arrival: ArrivalProcess | None = None,
               name: str | None = None, **overrides) -> "TrafficRun":
        """Append an ingest client streaming writes into the dataset.

        Options layer on any :meth:`Dataset.with_ingest` spec exactly
        like :meth:`Dataset.ingest` runs (``stream``, ``loader``,
        ``n_points``, ``batch_points``, ``flush_points``, ``seed``,
        stream options).  The client submits one batch per arrival and
        flushes ride the event heap as write sub-plans, contending with
        read queries at the drives.  Ingest clients are wired **after**
        every read client regardless of call order, so a storm's read
        streams are seeded identically with the ingest client attached
        or not — the mixed-storm parity condition.
        """
        idx = len(self._ingest_specs)
        cname = name if name is not None else f"ingest{idx}"
        self._ingest_specs.append(
            (cname, arrival or ClosedLoop(), dict(overrides))
        )
        return self

    # ------------------------------------------------------------------
    # engine knobs
    # ------------------------------------------------------------------

    def slice_runs(self, n: int | None) -> "TrafficRun":
        """Max runs the drive services before other requests may cut in
        (``None`` = whole query in one batch, the one-shot behaviour)."""
        self._slice_runs = n
        return self

    def head(self, mode: str) -> "TrafficRun":
        """``"random"`` (per-query random start, paper methodology) or
        ``"carry"`` (position carries over; idle time spins the platter)."""
        self._head = mode
        return self

    def horizon(self, ms: float | None) -> "TrafficRun":
        """Stop open-loop submissions after ``ms`` simulated ms."""
        self._horizon_ms = ms
        return self

    def traces(self, collect: bool) -> "TrafficRun":
        """Toggle per-query trace collection (on by default).

        Latency statistics derive from traces, so with collection off
        the report keeps only drive-level totals (served blocks/slices,
        busy time) and renders latency columns as ``-``.
        """
        self._collect_traces = bool(collect)
        return self

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------

    def failures(self, schedule) -> "TrafficRun":
        """Attach a failure schedule (a
        :class:`~repro.replica.FailureSchedule`, a
        :class:`~repro.replica.FailureInjector`, or an iterable of
        ``(t_ms, action, disk)`` events).  Queries in flight on a killed
        disk re-dispatch onto surviving replicas; the dataset must be
        replicated (``with_replication(k >= 2)``) for every query to
        stay serviceable."""
        from repro.replica.failures import FailureSchedule

        self._failures = FailureSchedule.coerce(schedule)
        return self

    def kill(self, at_ms: float, disk: int,
             revive_at_ms: float | None = None) -> "TrafficRun":
        """Kill member ``disk`` at ``at_ms`` simulated ms (chainable);
        an optional ``revive_at_ms`` brings it back."""
        from repro.replica.failures import FailureEvent

        self._failure_events.append(
            FailureEvent(float(at_ms), "kill", int(disk))
        )
        if revive_at_ms is not None:
            self._failure_events.append(
                FailureEvent(float(revive_at_ms), "revive", int(disk))
            )
        return self

    def __len__(self) -> int:
        return len(self._specs)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, *, rng: np.random.Generator | None = None
            ) -> TrafficReport:
        """Simulate to completion and return a :class:`TrafficReport`.

        Without ``rng``, client *i* gets the dataset's next spawned child
        generator.  With an explicit ``rng``, a single client uses it
        directly (mirroring ``QueryBatch.run(rng=...)``); several clients
        get independent generators seeded from its draws.
        """
        if not self._specs and not self._ingest_specs:
            raise QueryError("add at least one client before run()")
        ds = self._dataset
        n_clients = len(self._specs) + len(self._ingest_specs)
        if rng is None:
            rngs = [ds.rng() for _ in range(n_clients)]
        elif n_clients == 1:
            rngs = [rng]
        else:
            seeds = rng.integers(2**63, size=n_clients)
            rngs = [np.random.default_rng(int(s)) for s in seeds]
        clients = [
            TrafficClient(
                name=name,
                storage=ds.storage,
                mapper=ds.mapper,
                mix=mix,
                arrival=arrival,
                n_queries=queries,
                rng=crng,
            )
            for (name, mix, arrival, queries), crng
            in zip(self._specs, rngs)
        ]
        for (name, arrival, overrides), crng in zip(
            self._ingest_specs, rngs[len(self._specs):]
        ):
            # reuse the IngestRun option resolution (with_ingest spec +
            # overrides), then wire a client whose query count is the
            # stream's batch count — the final batch drains every buffer
            from repro.api.ingest import IngestRun
            from repro.ingest.pipeline import IngestPipeline
            from repro.ingest.traffic import IngestClient, WriteMix

            opts = IngestRun(ds, overrides)
            stream = opts.build_stream()
            pipeline = IngestPipeline(
                ds, stream, opts.loader_spec,
                flush_points=opts.flush_points,
                loader_opts=opts.loader_opts,
            )
            clients.append(
                IngestClient(
                    name=name,
                    storage=ds.storage,
                    mapper=ds.mapper,
                    mix=WriteMix(stream),
                    arrival=arrival,
                    n_queries=stream.n_batches,
                    rng=crng,
                    pipeline=pipeline,
                )
            )
        config = TrafficConfig(
            slice_runs=self._slice_runs,
            head=self._head,
            horizon_ms=self._horizon_ms,
            collect_traces=self._collect_traces,
        )
        failures = self._failures
        if self._failure_events:
            from repro.replica.failures import FailureSchedule

            events = tuple(failures.events if failures else ()) + tuple(
                self._failure_events
            )
            failures = FailureSchedule(events)
        meta = {"dataset": ds.describe(), "seed": ds.seed}
        return TrafficSim(
            clients, config, meta=meta, failures=failures
        ).run()
