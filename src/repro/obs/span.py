"""Deterministic span trees: where one query spent its time.

A :class:`Span` is a half-open interval ``[t0_ms, t0_ms + dur_ms)`` on
the *simulated* clock with a category (phase) and free-form attributes;
a query's spans form a tree whose root covers the whole query and whose
children partition it into phases: plan preparation, cache filter
service, per-disk drive service (with the seek/rotate/transfer
attribution of :class:`~repro.disk.drive.BatchResult`), ingest flushes,
failover re-plans, and background reorganisation.

The :class:`Tracer` collects one root per query.  Batch executions have
no global clock, so the tracer keeps a **seeded batch clock** that
starts at zero and advances by each query's total service time — the
same accounting the one-shot executor reports — which makes batch trace
timestamps a pure function of the workload and seed.  Traffic
executions record at *simulated* event times, so their spans line up
with the storm's makespan axis.

Every builder below consumes only values the execution already
computed (no extra RNG draws, no wall clock), which is what makes an
attached tracer a zero-impact observer: results, reports, and traffic
JSON are bit-identical with or without it — the parity
``tests/obs/test_parity.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ObsError

__all__ = [
    "Span",
    "Tracer",
    "record_one_shot",
    "record_reorg",
    "record_scatter",
    "record_traffic_query",
]


@dataclass(frozen=True)
class Span:
    """One phase interval of one query (immutable).

    ``cat`` is the phase: ``"query"`` (roots), ``"prepare"``,
    ``"cache"``, ``"service"``, ``"flush"``, ``"failover"``,
    ``"reorg"``.  Instants (preparation, failover events) carry
    ``dur_ms == 0``.
    """

    name: str
    cat: str
    t0_ms: float
    dur_ms: float
    attrs: dict = field(default_factory=dict)
    children: tuple = ()

    def __post_init__(self) -> None:
        if self.dur_ms < 0:
            raise ObsError(
                f"span {self.name!r} has negative duration {self.dur_ms}"
            )

    @property
    def t1_ms(self) -> float:
        return self.t0_ms + self.dur_ms

    def walk(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "cat": self.cat,
            "t0_ms": self.t0_ms,
            "dur_ms": self.dur_ms,
        }
        if self.attrs:
            out["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class Tracer:
    """Collects one root :class:`Span` per traced query.

    ``clock_ms`` is the seeded batch clock: builders place a batch
    query's root at the current clock and :meth:`advance` it by the
    query's total, so consecutive batch queries tile the axis without
    overlap.  Traffic recordings use simulated event times directly and
    leave the clock alone.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.clock_ms = 0.0

    def record(self, root: Span) -> None:
        self.roots.append(root)

    def advance(self, ms: float) -> None:
        self.clock_ms += float(ms)

    def reset(self) -> None:
        self.roots.clear()
        self.clock_ms = 0.0

    @property
    def n_queries(self) -> int:
        return len(self.roots)

    @property
    def n_spans(self) -> int:
        return sum(1 for root in self.roots for _ in root.walk())

    def phase_ms(self) -> dict:
        """Total duration per category over every recorded span (roots
        under ``"query"``, phases under their own categories)."""
        totals: dict[str, float] = {}
        for root in self.roots:
            for span in root.walk():
                totals[span.cat] = totals.get(span.cat, 0.0) + span.dur_ms
        return {cat: totals[cat] for cat in sorted(totals)}


# ----------------------------------------------------------------------
# recording helpers (called from the executor / scatter / traffic hooks)
# ----------------------------------------------------------------------


def _prepare_span(t0: float, prepared, subs) -> Span:
    """The instant plan-preparation span, summarising the §5.2 work the
    storage manager already did (raw runs from each sub-plan's attached
    prepare record, when present)."""
    attrs = {
        "policy": prepared.policy,
        "cells": int(prepared.n_cells),
        "runs": int(prepared.n_runs),
        "blocks": int(prepared.n_blocks),
        "subs": len(subs),
    }
    raw = [getattr(sub, "obs", None) for sub in subs]
    if all(r is not None for r in raw):
        attrs["raw_runs"] = int(sum(r["raw_runs"] for r in raw))
    return Span("prepare", "prepare", t0, 0.0, attrs=attrs)


def _cache_span(t0: float, dur: float, disk: int, hits: int,
                runs: int) -> Span:
    return Span(
        f"cache d{disk}", "cache", t0, dur,
        attrs={"disk": int(disk), "hits": int(hits), "runs": int(runs)},
    )


def _service_span(t0: float, res, disk: int, cat: str = "service",
                  name: str | None = None) -> Span:
    """One drive service interval with its mechanical attribution."""
    return Span(
        name or f"disk {disk}", cat, t0, res.total_ms,
        attrs={
            "disk": int(disk),
            "seek_ms": res.seek_ms,
            "rotation_ms": res.rotation_ms,
            "transfer_ms": res.transfer_ms,
            "switch_ms": res.switch_ms,
            "blocks": int(res.n_blocks),
            "runs": int(res.n_requests),
        },
    )


def record_one_shot(telemetry, prepared, res) -> None:
    """Record one unsharded :meth:`StorageManager.execute_prepared`:
    cache service (if any) then one drive batch, on the batch clock."""
    tracer = telemetry.tracer
    t0 = tracer.clock_ms if tracer is not None else 0.0
    total = res.total_ms + prepared.cache_ms
    write = bool(getattr(prepared, "is_write", False))
    children = [_prepare_span(t0, prepared, (prepared,))]
    t = t0
    if prepared.cache_ms > 0:
        children.append(_cache_span(
            t, prepared.cache_ms, prepared.disk_index,
            prepared.cache_hits, prepared.cache_runs,
        ))
        t += prepared.cache_ms
    children.append(_service_span(
        t, res, prepared.disk_index,
        cat="flush" if write else "service",
    ))
    root = Span(
        f"q{tracer.n_queries if tracer is not None else 0}", "query",
        t0, total,
        attrs={
            "mapper": prepared.mapper_name,
            "policy": prepared.policy,
            "cells": int(prepared.n_cells),
            "write": write,
        },
        children=tuple(children),
    )
    telemetry.observe_query(root, advance=True)


def record_scatter(telemetry, prepared, parts, result) -> None:
    """Record one :func:`~repro.query.scatter.scatter_execute` call.

    ``parts`` holds ``(sub, BatchResult)`` in service order (grouped by
    disk, sub-plans back to back); per disk the cache filter's memory
    service leads and drive batches follow, reproducing the per-disk
    busy accounting whose max is the query's makespan ``result``.
    """
    tracer = telemetry.tracer
    t0 = tracer.clock_ms if tracer is not None else 0.0
    write = any(getattr(sub, "is_write", False) for sub, _ in parts)
    children = [_prepare_span(t0, prepared, tuple(s for s, _ in parts))]
    offsets: dict[int, float] = {}
    for sub, res in parts:
        disk = sub.disk_index
        t = offsets.get(disk, t0)
        if sub.cache_ms > 0:
            children.append(_cache_span(
                t, sub.cache_ms, disk, sub.cache_hits, sub.cache_runs,
            ))
            t += sub.cache_ms
        children.append(_service_span(
            t, res, disk,
            cat="flush" if getattr(sub, "is_write", False) else "service",
        ))
        offsets[disk] = t + res.total_ms
    root = Span(
        f"q{tracer.n_queries if tracer is not None else 0}", "query",
        t0, result.total_ms,
        attrs={
            "mapper": prepared.mapper_name,
            "policy": prepared.policy,
            "cells": int(prepared.n_cells),
            "disks": len(offsets),
            "write": write,
        },
        children=tuple(children),
    )
    telemetry.observe_query(root, advance=True)


def record_traffic_query(telemetry, *, client: str, label: str,
                         index: int, n_cells: int, policy: str,
                         arrival_ms: float, start_ms: float,
                         done_ms: float, prepared, cache: dict,
                         slices, events, hits: dict | None = None,
                         runs: dict | None = None) -> None:
    """Record one completed traffic query at simulated event times.

    ``cache`` maps each involved disk to its memory-service share (as
    captured at submission, before the engine's billing zeroes it), and
    ``hits``/``runs`` carry the matching per-disk hit/run counts when
    the engine captured them; ``slices`` holds ``(disk, t0,
    BatchResult, is_write)`` per serviced slice; ``events`` holds
    failover/drop instants from re-dispatch.  The root spans
    ``[arrival, completion)``, so queueing delay is the gap between the
    root start and its first service child.
    """
    from repro.query.scatter import subplans

    children = [_prepare_span(arrival_ms, prepared, subplans(prepared))]
    for disk in sorted(cache):
        share = cache[disk]
        if share > 0:
            attrs = {"disk": int(disk)}
            if hits is not None:
                attrs["hits"] = int(hits.get(disk, 0))
            if runs is not None:
                attrs["runs"] = int(runs.get(disk, 0))
            children.append(Span(
                f"cache d{disk}", "cache", arrival_ms, share,
                attrs=attrs,
            ))
    for disk, t0, res, is_write in slices:
        children.append(_service_span(
            t0, res, disk,
            cat="flush" if is_write else "service",
            name=f"slice d{disk}",
        ))
    for kind, t, old, new in events:
        attrs = {"from_disk": int(old)}
        if new is not None:
            attrs["to_disk"] = int(new)
        children.append(Span(kind, "failover", t, 0.0, attrs=attrs))
    root = Span(
        f"{client}#{index}", "query", arrival_ms,
        done_ms - arrival_ms,
        attrs={
            "client": client,
            "label": label,
            "index": int(index),
            "cells": int(n_cells),
            "policy": policy,
            "start_ms": start_ms,
        },
        children=tuple(children),
    )
    telemetry.observe_query(root, advance=False)


def record_reorg(telemetry, report) -> None:
    """Record one background reorganisation window
    (:class:`~repro.ingest.reorg.ReorgReport`) on the batch clock."""
    tracer = telemetry.tracer
    t0 = tracer.clock_ms if tracer is not None else 0.0
    root = Span(
        "reorganize", "reorg", t0, report.reorg_ms,
        attrs={
            "pages_freed": int(report.pages_freed),
            "blocks": int(report.n_blocks),
            "ideal_ms": report.ideal_ms,
            "throttle": report.throttle,
            "io_ms_by_disk": {
                str(d): report.io_ms_by_disk[d]
                for d in sorted(report.io_ms_by_disk)
            },
        },
    )
    telemetry.observe_query(root, advance=True)
