"""The telemetry handle carried by storage managers.

:class:`Telemetry` bundles an optional :class:`~repro.obs.span.Tracer`
and an optional :class:`~repro.obs.metrics.MetricsRegistry` behind one
``observe_query`` entry point, which is the only call the execution
paths make.  A detached dataset simply has no handle (``storage.obs is
None``), so the hot paths pay one attribute check and nothing else —
the bit-identity the parity tests pin.
"""

from __future__ import annotations

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Per-dataset telemetry state: tracer, metrics, default exporter.

    Constructed by :meth:`Dataset.with_telemetry` and attached to the
    storage manager as ``storage.obs``; the same object survives
    ``with_shards``/``with_replication`` rebuilds so recordings span
    reconfiguration.
    """

    def __init__(self, *, trace: bool = True, metrics: bool = True,
                 exporter: str | None = None, monitor=None):
        if not trace and not metrics and monitor is None:
            raise ObsError(
                "a Telemetry needs at least one of trace=True, "
                "metrics=True, or an attached monitor "
                "(Dataset.with_telemetry(trace=False, metrics=False) "
                "detaches instead)"
            )
        if exporter is not None:
            # fail fast on typos, before any query runs
            from repro.obs.exporters import EXPORTERS

            EXPORTERS.get(exporter)
        self.tracer = Tracer() if trace else None
        self.metrics = MetricsRegistry() if metrics else None
        self.exporter = exporter
        #: an attached :class:`repro.monitor.Monitor` (or None): every
        #: completed root span is forwarded to it, so the windowed
        #: time-series consumes exactly the values the tracer sees
        self.monitor = monitor

    @property
    def active(self) -> bool:
        """Whether anything is attached (always true for a constructed
        instance; the check reads naturally at call sites)."""
        return (self.tracer is not None or self.metrics is not None
                or self.monitor is not None)

    def observe_query(self, root: Span, *, advance: bool) -> None:
        """Record one completed query's span tree.

        ``advance`` moves the tracer's seeded batch clock past the root
        (batch/one-shot recordings tile the axis; traffic recordings
        already carry simulated times and pass ``advance=False``).
        """
        if self.tracer is not None:
            self.tracer.record(root)
            if advance:
                self.tracer.advance(root.dur_ms)
        if self.monitor is not None:
            self.monitor.ingest(root, advance=advance)
        if self.metrics is not None:
            if root.cat == "query":
                self.metrics.inc("queries")
                self.metrics.observe("query_ms", root.dur_ms)
            for span in root.walk():
                self.metrics.inc("spans")
                if span is not root:
                    self.metrics.add_time(f"{span.cat}_ms", span.dur_ms)

    def describe(self) -> dict:
        """The gated ``meta["obs"]`` payload: trace totals and the
        metrics snapshot, keys present only for attached halves."""
        out: dict = {}
        if self.tracer is not None:
            out["trace"] = {
                "n_queries": self.tracer.n_queries,
                "n_spans": self.tracer.n_spans,
                "phase_ms": {
                    cat: round(ms, 3)
                    for cat, ms in self.tracer.phase_ms().items()
                },
            }
        if self.metrics is not None:
            out["metrics"] = self.metrics.snapshot()
        if self.exporter is not None:
            out["exporter"] = self.exporter
        return out

    def export(self, name: str | None = None, path=None) -> str:
        """Render the collected telemetry through an exporter (the
        attached default when ``name`` is omitted)."""
        from repro.obs.exporters import export_trace

        return export_trace(self, name, path)

    def reset(self) -> None:
        """Drop all recordings (tracer roots, clock, metric totals,
        monitor windows)."""
        if self.tracer is not None:
            self.tracer.reset()
        if self.metrics is not None:
            self.metrics.reset()
        if self.monitor is not None:
            self.monitor.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        if self.tracer is not None:
            parts.append(f"trace({self.tracer.n_queries} queries)")
        if self.metrics is not None:
            parts.append("metrics")
        if self.monitor is not None:
            parts.append("monitor")
        if self.exporter:
            parts.append(f"exporter={self.exporter!r}")
        return f"Telemetry({', '.join(parts)})"
