"""Counters, gauges, and fixed-bucket streaming histograms.

:class:`MetricsRegistry` is the generalisation of PR 7's ``PerfProbes``
counter/timer table: the same named counters and wall-clock timers, plus
point-in-time gauges and :class:`Histogram` s with p50/p90/p99/p999
summaries.  ``repro.perf.profile.PerfProbes`` now *subclasses* it as a
deprecation shim, so every existing probe hook and the gated
``meta["perf"]`` payload keep working unchanged.

Snapshots are **gated**: ``gauges``/``histograms`` keys appear only when
non-empty, so a registry used the legacy way (counters + timers only)
serialises byte-identically to the PR 7 ``PerfProbes`` shape — the same
convention every other layer's meta follows.

Histogram values are simulated milliseconds, never wall clock, so every
quantile in an exported snapshot is deterministic under a fixed seed.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

from repro.errors import ObsError

__all__ = ["DEFAULT_BUCKETS_MS", "Histogram", "MetricsRegistry"]

#: default latency bucket upper bounds (ms) — roughly logarithmic from
#: sub-millisecond cache service to multi-second storm makespans
DEFAULT_BUCKETS_MS = (
    0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
    100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


def _q_label(q: float) -> str:
    """``0.5 -> "p50"``, ``0.999 -> "p999"``, ``0.95 -> "p95"`` — the
    dotless percentile keys the fixed summary always used."""
    return "p" + f"{q * 100:g}".replace(".", "")


class Histogram:
    """A fixed-bucket streaming histogram with interpolated quantiles.

    ``bounds`` are inclusive upper edges in ascending order; a value
    above the last edge lands in the overflow bucket.  Quantiles walk
    the cumulative counts and interpolate linearly inside the matched
    bucket (the overflow bucket interpolates up to the observed max),
    so they are monotone in ``q`` and exact at bucket edges.
    """

    __slots__ = ("bounds", "counts", "overflow", "count", "sum",
                 "min", "max")

    def __init__(self, bounds=DEFAULT_BUCKETS_MS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ObsError("a histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ObsError(
                f"histogram bounds must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0:
            self.min = self.max = value
        else:
            self.min = min(self.min, value)
            self.max = max(self.max, value)
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) of the observed values,
        interpolated within the matched bucket; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        lo = 0.0
        for bound, c in zip(self.bounds, self.counts):
            if c and cum + c >= target:
                return lo + (bound - lo) * max(target - cum, 0.0) / c
            cum += c
            lo = bound
        # overflow bucket: interpolate between the last edge and max
        hi = max(self.max, lo)
        c = self.overflow
        if c == 0:  # pragma: no cover - counts always sum to count
            return hi
        return lo + (hi - lo) * max(target - cum, 0.0) / c

    def fraction_le(self, value: float) -> float:
        """Fraction of observations ``<= value`` — the CDF counterpart
        of :meth:`quantile`, interpolated linearly within the matched
        bucket (the overflow bucket interpolates between the last edge
        and the observed max); 0.0 when empty.

        It is monotone in ``value``, exact at bucket edges, and the
        round trip ``fraction_le(quantile(q)) >= q`` holds — the
        properties the SLO burn-rate rule relies on to count the
        fraction of a window's queries over an objective.
        """
        value = float(value)
        if self.count == 0:
            return 0.0
        cum = 0.0
        lo = 0.0
        for bound, c in zip(self.bounds, self.counts):
            if value <= bound:
                frac = (value - lo) / (bound - lo)
                cum += c * min(max(frac, 0.0), 1.0)
                return min(cum / self.count, 1.0)
            cum += c
            lo = bound
        hi = max(self.max, lo)
        frac = (value - lo) / (hi - lo) if hi > lo else 1.0
        cum += self.overflow * min(max(frac, 0.0), 1.0)
        return min(cum / self.count, 1.0)

    def percentiles(self, qs=(0.50, 0.90, 0.99, 0.999)) -> dict:
        """A quantile summary at arbitrary points ``qs`` (each in
        [0, 1]), keyed ``p50``/``p95``/``p999``-style; the default is
        the standard latency summary."""
        return {_q_label(q): self.quantile(float(q)) for q in qs}

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram observing both inputs' populations (bucket
        layouts must match)."""
        if not isinstance(other, Histogram):
            raise ObsError(
                f"can only merge Histogram, got {type(other).__name__}"
            )
        if self.bounds != other.bounds:
            raise ObsError(
                "cannot merge histograms with different bucket bounds"
            )
        out = Histogram(self.bounds)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.overflow = self.overflow + other.overflow
        out.count = self.count + other.count
        out.sum = self.sum + other.sum
        if self.count and other.count:
            out.min = min(self.min, other.min)
            out.max = max(self.max, other.max)
        elif self.count:
            out.min, out.max = self.min, self.max
        else:
            out.min, out.max = other.min, other.max
        return out

    def to_dict(self) -> dict:
        """JSON-friendly summary: totals, percentiles, bucket counts."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            **self.percentiles(),
            "buckets": [
                [bound, c] for bound, c in zip(self.bounds, self.counts)
            ],
            "overflow": self.overflow,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, max={self.max})"


class MetricsRegistry:
    """Named counters, wall-clock timers, gauges, and histograms.

    The counter/timer half is API-compatible with the PR 7
    ``PerfProbes`` (``inc`` is the new name of ``count``; the shim keeps
    the alias), and :meth:`snapshot`/:meth:`delta` keep the legacy
    two-key shape whenever no gauges or histograms were touched — the
    gating that keeps ``meta["perf"]`` byte-identical.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers_ms: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- writes --------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def add_time(self, name: str, ms: float) -> None:
        self.timers_ms[name] = self.timers_ms.get(name, 0.0) + float(ms)

    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall time of a ``with`` block under ``name``."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.add_time(name, (perf_counter() - t0) * 1e3)

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float, *,
                buckets=DEFAULT_BUCKETS_MS) -> None:
        """Feed ``value`` into the named histogram (created on first
        use with ``buckets``; later calls keep the original layout)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(buckets)
        hist.observe(value)

    def reset(self) -> None:
        self.counters.clear()
        self.timers_ms.clear()
        self.gauges.clear()
        self.histograms.clear()

    # -- reads ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A copy of the current totals (a :meth:`delta` baseline).

        ``gauges``/``histograms`` appear only when non-empty, so a
        counter/timer-only registry keeps the legacy two-key shape.
        """
        out = {
            "counters": {k: self.counters[k]
                         for k in sorted(self.counters)},
            "timers_ms": {k: self.timers_ms[k]
                          for k in sorted(self.timers_ms)},
        }
        if self.gauges:
            out["gauges"] = {k: self.gauges[k]
                             for k in sorted(self.gauges)}
        if self.histograms:
            out["histograms"] = {k: self.histograms[k].to_dict()
                                 for k in sorted(self.histograms)}
        return out

    def delta(self, since: dict | None = None) -> dict:
        """Totals accumulated since ``since`` (JSON-friendly, rounded
        timers, zero-change names dropped).  Gauges and histograms are
        point-in-time, so they report their *current* state, gated on
        being non-empty."""
        base_c = (since or {}).get("counters", {})
        base_t = (since or {}).get("timers_ms", {})
        counters = {
            name: total - base_c.get(name, 0)
            for name, total in sorted(self.counters.items())
            if total != base_c.get(name, 0)
        }
        timers = {
            name: round(total - base_t.get(name, 0.0), 3)
            for name, total in sorted(self.timers_ms.items())
            if total != base_t.get(name, 0.0)
        }
        out = {"counters": counters, "timers_ms": timers}
        if self.gauges:
            out["gauges"] = {k: self.gauges[k]
                             for k in sorted(self.gauges)}
        if self.histograms:
            out["histograms"] = {k: self.histograms[k].to_dict()
                                 for k in sorted(self.histograms)}
        return out
