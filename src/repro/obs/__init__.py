"""End-to-end telemetry: per-query tracing, metrics, and exporters.

``repro.obs`` is the observability layer of the repository — opt-in
(``Dataset.with_telemetry``), deterministic (every recorded value comes
off the simulated clocks, never the wall clock), and zero-impact when
detached (results and report JSON stay bit-identical, the pinned parity
guarantee every other layer's neutral setting gives):

``metrics``    :class:`MetricsRegistry` — counters, gauges, and
               fixed-bucket streaming :class:`Histogram` s with
               p50/p90/p99/p999; the generalisation ``PerfProbes`` now
               shims onto
``span``       :class:`Span` trees and the :class:`Tracer` — one root
               per query, children per phase (prepare, cache, per-disk
               service with seek/rotate/transfer attribution, ingest
               flush, failover, reorganisation)
``telemetry``  :class:`Telemetry` — the handle storage managers carry
               (``storage.obs``) bundling tracer + metrics + exporter
``exporters``  the :data:`EXPORTERS` registry (``jsonl``, ``chrome``,
               ``prometheus``; extend with :func:`register_exporter`)
``trace_cmd``  the ``repro-bench trace`` subcommand: slowest queries,
               phase totals, per-disk utilisation timeline

Only ``trace_cmd`` (which builds Datasets) loads lazily; everything
else imports nothing above :mod:`repro.errors`/:mod:`repro.registry`,
so the executor and traffic engine can hook it without cycles.
"""

from __future__ import annotations

from repro.obs.exporters import (
    EXPORTERS,
    ExporterEntry,
    export_trace,
    exporter_names,
    register_exporter,
)
from repro.obs.metrics import DEFAULT_BUCKETS_MS, Histogram, MetricsRegistry
from repro.obs.span import Span, Tracer
from repro.obs.telemetry import Telemetry

#: lazily loaded names -> defining module (the trace subcommand pulls in
#: the Dataset façade, which must be importable before repro.obs is)
_LAZY_EXPORTS = {
    "run_trace": "repro.obs.trace_cmd",
    "render_trace": "repro.obs.trace_cmd",
    "slowest_queries": "repro.obs.trace_cmd",
    "disk_utilization": "repro.obs.trace_cmd",
}

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "EXPORTERS",
    "ExporterEntry",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Tracer",
    "export_trace",
    "exporter_names",
    "register_exporter",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
