"""The ``repro-bench trace`` subcommand's engine and renderer.

:func:`run_trace` runs a seeded traffic storm on one layout with
telemetry attached and distils the recorded span trees into the three
views the subcommand prints: the top-N slowest queries with their
per-phase breakdown, the per-phase totals across the run, and a binned
per-disk utilisation timeline.  Everything derives from the tracer, so
the report is deterministic under a fixed seed.
"""

from __future__ import annotations

from repro.errors import ObsError

__all__ = [
    "disk_utilization",
    "render_trace",
    "run_trace",
    "slowest_queries",
]


def slowest_queries(tracer, top: int = 5) -> list:
    """The ``top`` slowest recorded queries, each with its per-phase
    child-duration breakdown (ties broken by start time then name, so
    the ordering is deterministic)."""
    roots = sorted(
        tracer.roots,
        key=lambda r: (-r.dur_ms, r.t0_ms, r.name),
    )
    out = []
    for root in roots[: max(int(top), 0)]:
        phases: dict[str, float] = {}
        for span in root.walk():
            if span is root:
                continue
            phases[span.cat] = phases.get(span.cat, 0.0) + span.dur_ms
        entry = {
            "name": root.name,
            "t0_ms": round(root.t0_ms, 3),
            "dur_ms": round(root.dur_ms, 3),
            "phases": {cat: round(phases[cat], 3)
                       for cat in sorted(phases)},
        }
        for key in ("client", "label", "cells", "policy"):
            if key in root.attrs:
                entry[key] = root.attrs[key]
        out.append(entry)
    return out


def disk_utilization(tracer, horizon_ms: float, bins: int = 24) -> dict:
    """Binned busy fractions per disk over ``[0, horizon_ms)``.

    Every disk-bound span (``service``/``flush``) contributes its
    overlap with each bin; the result maps ``str(disk)`` to a list of
    ``bins`` fractions in [0, 1] — the utilisation timeline the
    subcommand renders as a sparkline-style row per drive.
    """
    bins = int(bins)
    if bins < 1:
        raise ObsError("utilization needs at least one bin")
    horizon_ms = float(horizon_ms)
    bin_ms = horizon_ms / bins if horizon_ms > 0 else 0.0
    busy: dict[int, list[float]] = {}
    for root in tracer.roots:
        for span in root.walk():
            if span.cat not in ("service", "flush"):
                continue
            disk = span.attrs.get("disk")
            if disk is None:
                continue
            row = busy.setdefault(int(disk), [0.0] * bins)
            if bin_ms <= 0 or span.dur_ms <= 0:
                continue
            first = max(int(span.t0_ms / bin_ms), 0)
            last = min(int(span.t1_ms / bin_ms), bins - 1)
            for b in range(first, last + 1):
                lo = b * bin_ms
                overlap = min(span.t1_ms, lo + bin_ms) - max(span.t0_ms,
                                                             lo)
                if overlap > 0:
                    row[b] += overlap
    return {
        "bin_ms": round(bin_ms, 3),
        "busy": {
            str(disk): [round(min(ms / bin_ms, 1.0), 4) if bin_ms > 0
                        else 0.0 for ms in row]
            for disk, row in sorted(busy.items())
        },
    }


def run_trace(shape, *, layout: str = "multimap",
              drive: str = "atlas10k3", clients: int = 2,
              queries: int = 8, mix=None, arrival: str = "closed",
              rate: float = 50.0, think_ms: float = 0.0, seed=42,
              slice_runs: int | None = 64, head: str = "random",
              top: int = 5, bins: int = 24,
              exporter: str | None = None):
    """Run one telemetry-attached traffic storm and distil its trace.

    Returns ``(data, telemetry)``: a JSON-friendly report plus the live
    :class:`~repro.obs.telemetry.Telemetry` (for exporting).
    """
    from repro.api.dataset import Dataset
    from repro.traffic import BurstyArrivals, ClosedLoop, PoissonArrivals

    ds = Dataset.create(tuple(shape), layout=layout, drive=drive,
                        seed=seed)
    ds.with_telemetry(trace=True, metrics=True, exporter=exporter)
    if arrival == "closed":
        arr = ClosedLoop(think_ms=think_ms)
    elif arrival == "poisson":
        arr = PoissonArrivals(rate_qps=rate)
    elif arrival == "bursty":
        arr = BurstyArrivals(burst_rate_per_s=rate)
    else:
        raise ObsError(
            f"arrival must be closed, poisson, or bursty; got {arrival!r}"
        )
    report = (
        ds.traffic()
        .clients(int(clients), mix=mix, arrival=arr,
                 queries=int(queries))
        .slice_runs(slice_runs if slice_runs else None)
        .head(head)
        .run()
    )
    tele = ds.telemetry
    tracer = tele.tracer
    data = {
        "dataset": ds.describe(),
        "makespan_ms": report.makespan_ms,
        "throughput_qps": report.throughput_qps(),
        "obs": tele.describe(),
        "slowest": slowest_queries(tracer, top),
        "phase_ms": {cat: round(ms, 3)
                     for cat, ms in tracer.phase_ms().items()},
        "utilization": disk_utilization(
            tracer, report.makespan_ms, bins
        ),
    }
    return data, tele


_UTIL_GLYPHS = " .:-=+*#%@"


def render_trace(data: dict) -> str:
    """Console rendering: slowest-query table, phase totals, and one
    utilisation row per drive (each glyph is one time bin)."""
    from repro.bench.reporting import render_table

    ds = data["dataset"]
    parts = [
        f"trace: {ds['layout']} {tuple(ds['shape'])} on {ds['drive']} — "
        f"makespan {data['makespan_ms']:.1f} ms, "
        f"{data['throughput_qps']:.1f} q/s"
    ]
    slowest = data["slowest"]
    if slowest:
        headers = ["query", "label", "t0 ms", "dur ms", "phases"]
        rows = [
            [
                q["name"],
                q.get("label", "-"),
                f"{q['t0_ms']:.1f}",
                f"{q['dur_ms']:.2f}",
                " ".join(f"{cat}={ms:.2f}"
                         for cat, ms in q["phases"].items()),
            ]
            for q in slowest
        ]
        parts.append(f"slowest {len(slowest)} queries:")
        parts.append(render_table(headers, rows))
    phase = data["phase_ms"]
    parts.append("phase totals (ms): " + ", ".join(
        f"{cat}={ms:.2f}" for cat, ms in phase.items()
    ))
    util = data["utilization"]
    if util["busy"]:
        parts.append(f"disk utilization ({util['bin_ms']:.1f} ms/bin):")
        for disk, row in util["busy"].items():
            glyphs = "".join(
                _UTIL_GLYPHS[min(int(f * (len(_UTIL_GLYPHS) - 1) + 0.5),
                                 len(_UTIL_GLYPHS) - 1)]
                for f in row
            )
            parts.append(f"  d{disk} |{glyphs}|")
    return "\n".join(parts)
