"""Trace/metrics exporters behind a string-keyed registry.

Every exporter is a function ``(telemetry) -> str`` registered with
:func:`register_exporter`; returning text (rather than writing a file)
is what lets the determinism tests pin same-seed exports byte-for-byte.
:func:`export_trace` resolves a name, renders, and optionally writes.

Builtins:

``jsonl``       one JSON object per span, depth-first, with stable ids
``chrome``      Chrome ``trace_event`` JSON — load in ``chrome://tracing``
                or https://ui.perfetto.dev (per-disk service rows as tids)
``prometheus``  Prometheus text exposition of the metrics snapshot

Third parties register their own the way every other registry in the
package works::

    from repro.obs import register_exporter

    @register_exporter("flamegraph")
    def export_flamegraph(telemetry):
        \"\"\"folded stacks for flamegraph.pl\"\"\"
        ...
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ObsError
from repro.registry import Registry, first_doc_line

__all__ = [
    "EXPORTERS",
    "ExporterEntry",
    "export_trace",
    "exporter_names",
    "register_exporter",
]


@dataclass(frozen=True)
class ExporterEntry:
    """One registered exporter: ``fn(telemetry) -> str``."""

    name: str
    fn: object
    description: str


EXPORTERS = Registry("exporter")


def register_exporter(name: str, *, description: str = ""):
    """Class-/function-decorator registering an exporter under ``name``
    (description defaults to the docstring first line, like every other
    registry)."""

    def decorator(fn):
        EXPORTERS.add(name, ExporterEntry(
            name=name, fn=fn,
            description=description or first_doc_line(fn),
        ))
        return fn

    return decorator


def exporter_names() -> tuple[str, ...]:
    """Registered exporter names, sorted."""
    return EXPORTERS.names()


def _require_tracer(telemetry):
    tracer = getattr(telemetry, "tracer", None)
    if tracer is None:
        raise ObsError(
            "this exporter needs span traces; attach with "
            "with_telemetry(trace=True)"
        )
    return tracer


@register_exporter("jsonl")
def export_jsonl(telemetry) -> str:
    """one JSON object per span (depth-first, stable ids), for jq/pandas"""
    tracer = _require_tracer(telemetry)
    lines: list[str] = []
    next_id = 0

    def emit(span, parent, query, depth):
        nonlocal next_id
        sid = next_id
        next_id += 1
        obj = {
            "id": sid,
            "parent": parent,
            "query": query,
            "depth": depth,
            "name": span.name,
            "cat": span.cat,
            "t0_ms": span.t0_ms,
            "dur_ms": span.dur_ms,
        }
        if span.attrs:
            obj["attrs"] = {k: span.attrs[k] for k in sorted(span.attrs)}
        lines.append(json.dumps(obj, sort_keys=True, default=str))
        for child in span.children:
            emit(child, sid, query, depth + 1)

    for qi, root in enumerate(tracer.roots):
        emit(root, None, qi, 0)
    return "\n".join(lines) + ("\n" if lines else "")


@register_exporter("chrome")
def export_chrome(telemetry) -> str:
    """Chrome trace_event JSON for chrome://tracing / Perfetto"""
    tracer = _require_tracer(telemetry)
    events = []
    for qi, root in enumerate(tracer.roots):
        for span in root.walk():
            disk = span.attrs.get("disk")
            args = {k: span.attrs[k] for k in sorted(span.attrs)}
            args["query"] = qi
            events.append({
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                # trace_event timestamps are microseconds
                "ts": round(span.t0_ms * 1000.0, 3),
                "dur": round(span.dur_ms * 1000.0, 3),
                "pid": 1,
                # row 0 carries query/prepare spans; disk-bound spans
                # get one row per drive so utilisation reads visually
                "tid": 0 if disk is None else int(disk) + 1,
                "args": args,
            })
    return json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": events},
        sort_keys=True, default=str,
    )


def _prom_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


@register_exporter("prometheus")
def export_prometheus(telemetry) -> str:
    """Prometheus text exposition snapshot of the metrics registry"""
    metrics = getattr(telemetry, "metrics", None)
    if metrics is None:
        raise ObsError(
            "the prometheus exporter needs metrics; attach with "
            "with_telemetry(metrics=True)"
        )
    snap = metrics.snapshot()
    lines: list[str] = []
    for name, value in snap.get("counters", {}).items():
        pname = _prom_name(name) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {value}")
    for name, value in snap.get("timers_ms", {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {value}")
    for name, value in snap.get("gauges", {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {value}")
    for name, hist in snap.get("histograms", {}).items():
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} histogram")
        cum = 0
        for bound, count in hist["buckets"]:
            cum += count
            lines.append(f'{pname}_bucket{{le="{bound}"}} {cum}')
        cum += hist["overflow"]
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{pname}_sum {hist['sum']}")
        lines.append(f"{pname}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def export_trace(telemetry, name: str | None = None,
                 path=None) -> str:
    """Render ``telemetry`` through the named exporter (default: the
    one attached at construction) and optionally write it to ``path``
    (parents created).  Returns the rendered text either way."""
    name = name or getattr(telemetry, "exporter", None)
    if not name:
        raise ObsError(
            "no exporter named: pass export_trace(tele, 'chrome') or "
            "attach one with with_telemetry(exporter=...)"
        )
    entry: ExporterEntry = EXPORTERS.get(name)
    text = entry.fn(telemetry)
    if path is not None:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
    return text
