"""Seeded record streams: the input side of the ingest pipeline.

A record stream produces batches of integer cell coordinates (one row
per point) for a dataset's grid.  Streams are **replayable**: every
call to :meth:`RecordStream.batches` restarts an identical seeded
sequence, so an ingest run can be reproduced exactly — and the adaptive
loader can :meth:`~RecordStream.sample` the stream from an independent
substream without disturbing the batches the pipeline will consume.

Builtin generators (registered in :data:`STREAMS`):

- ``uniform`` — points uniform over the whole grid,
- ``clustered`` — a fixed set of Gaussian hotspots,
- ``drifting`` — one hotspot sweeping corner to corner over the run,
- ``replay`` — a caller-supplied coordinate array, batched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import IngestError
from repro.registry import Registry, first_doc_line

__all__ = [
    "STREAMS",
    "ClusteredStream",
    "DriftingStream",
    "RecordStream",
    "ReplayStream",
    "StreamEntry",
    "UniformStream",
    "make_stream",
    "register_stream",
    "stream_names",
]


@dataclass(frozen=True)
class StreamEntry:
    """A registered record-stream generator.

    ``factory(dims, **opts)`` builds the stream; every factory accepts
    at least ``n_points``, ``batch_points`` and ``seed``.
    """

    name: str
    factory: Callable
    description: str = ""


#: stream-name -> :class:`StreamEntry`; builtins live in this module,
#: so importing it is the whole population step
STREAMS = Registry("stream")


def register_stream(name: str, *, description: str = ""):
    """Class decorator adding a stream generator to :data:`STREAMS`."""

    def deco(cls):
        desc = description or first_doc_line(cls)
        STREAMS.add(name, StreamEntry(name, cls, desc))
        return cls

    return deco


def stream_names() -> tuple[str, ...]:
    return STREAMS.names()


def make_stream(spec, dims, **opts) -> "RecordStream":
    """Resolve a stream spec — a registered name, a stream class, or an
    already-built instance — into a :class:`RecordStream`."""
    if isinstance(spec, RecordStream):
        return spec
    if isinstance(spec, str):
        factory = STREAMS.get(spec).factory
    elif isinstance(spec, type) and issubclass(spec, RecordStream):
        factory = spec
    else:
        raise IngestError(
            f"unknown stream spec {spec!r} (registered: "
            f"{', '.join(stream_names())})"
        )
    return factory(dims, **opts)


class RecordStream:
    """Base class: a seeded, replayable stream of cell coordinates.

    Subclasses implement :meth:`_draw`, mapping global point indices to
    an ``(n, ndim)`` int64 coordinate array with the given generator.
    ``batches()`` feeds the pipeline; ``sample()`` gives loaders an
    independent look at the distribution (separate seeded substream,
    indices spread over the whole run so drifting streams are sampled
    fairly).
    """

    kind = "stream"

    def __init__(self, dims, *, n_points: int = 2048,
                 batch_points: int = 256, seed: int = 0):
        dims = tuple(int(s) for s in dims)
        if not dims or any(s < 1 for s in dims):
            raise IngestError(f"invalid stream dims {dims}")
        if n_points < 1:
            raise IngestError("n_points must be >= 1")
        if batch_points < 1:
            raise IngestError("batch_points must be >= 1")
        self.dims = dims
        self.n_points = int(n_points)
        self.batch_points = int(batch_points)
        self.seed = int(seed)

    @property
    def n_batches(self) -> int:
        return -(-self.n_points // self.batch_points)

    def batches(self):
        """A fresh, replay-identical iterator of coordinate batches."""
        rng = np.random.default_rng(self.seed)
        done = 0
        while done < self.n_points:
            n = min(self.batch_points, self.n_points - done)
            idx = np.arange(done, done + n, dtype=np.int64)
            yield self._clip(self._draw(rng, idx))
            done += n

    def sample(self, n: int) -> np.ndarray:
        """``n`` points from an independent substream, indices spread
        over the whole run; never disturbs :meth:`batches`."""
        n = min(int(n), self.n_points)
        if n < 1:
            raise IngestError("sample size must be >= 1")
        rng = np.random.default_rng((self.seed, 0x5A))
        idx = np.linspace(0, self.n_points - 1, n).astype(np.int64)
        return self._clip(self._draw(rng, idx))

    def _clip(self, coords: np.ndarray) -> np.ndarray:
        hi = np.asarray(self.dims, dtype=np.int64) - 1
        return np.clip(coords.astype(np.int64, copy=False), 0, hi)

    def _draw(self, rng: np.random.Generator,
              idx: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "stream": self.kind,
            "dims": list(self.dims),
            "n_points": self.n_points,
            "batch_points": self.batch_points,
            "seed": self.seed,
        }


@register_stream("uniform")
class UniformStream(RecordStream):
    """Points uniform over every cell of the grid."""

    kind = "uniform"

    def _draw(self, rng, idx):
        n = len(idx)
        return np.stack(
            [rng.integers(0, s, size=n) for s in self.dims], axis=1
        )


@register_stream("clustered")
class ClusteredStream(RecordStream):
    """Gaussian hotspots at fixed seeded centers (skewed occupancy)."""

    kind = "clustered"

    def __init__(self, dims, *, n_clusters: int = 4, spread: float = 0.05,
                 **opts):
        super().__init__(dims, **opts)
        if n_clusters < 1:
            raise IngestError("n_clusters must be >= 1")
        if spread <= 0:
            raise IngestError("spread must be > 0")
        self.n_clusters = int(n_clusters)
        self.spread = float(spread)
        crng = np.random.default_rng((self.seed, 0xC))
        self.centers = np.stack(
            [crng.integers(0, s, size=self.n_clusters) for s in self.dims],
            axis=1,
        )

    def _draw(self, rng, idx):
        n = len(idx)
        pick = rng.integers(0, self.n_clusters, size=n)
        scale = self.spread * np.asarray(self.dims, dtype=np.float64)
        noise = rng.normal(0.0, scale, size=(n, len(self.dims)))
        return np.rint(self.centers[pick] + noise).astype(np.int64)

    def describe(self) -> dict:
        out = super().describe()
        out["n_clusters"] = self.n_clusters
        out["spread"] = self.spread
        return out


@register_stream("drifting")
class DriftingStream(RecordStream):
    """One hotspot sweeping corner to corner as the stream progresses."""

    kind = "drifting"

    def __init__(self, dims, *, spread: float = 0.08, **opts):
        super().__init__(dims, **opts)
        if spread <= 0:
            raise IngestError("spread must be > 0")
        self.spread = float(spread)

    def _draw(self, rng, idx):
        progress = idx / max(self.n_points - 1, 1)
        hi = np.asarray(self.dims, dtype=np.float64) - 1
        center = progress[:, None] * hi[None, :]
        scale = self.spread * np.asarray(self.dims, dtype=np.float64)
        noise = rng.normal(0.0, scale, size=(len(idx), len(self.dims)))
        return np.rint(center + noise).astype(np.int64)

    def describe(self) -> dict:
        out = super().describe()
        out["spread"] = self.spread
        return out


@register_stream("replay")
class ReplayStream(RecordStream):
    """A caller-supplied coordinate array, batched; no randomness."""

    kind = "replay"

    def __init__(self, dims, *, coords, batch_points: int = 256, seed=0,
                 n_points=None):
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[0] < 1:
            raise IngestError("replay coords must be a (n, ndim) array")
        if coords.shape[1] != len(tuple(dims)):
            raise IngestError("replay coords rank does not match dims")
        super().__init__(dims, n_points=coords.shape[0],
                         batch_points=batch_points, seed=seed)
        self.coords = coords

    def _draw(self, rng, idx):
        return self.coords[idx]
