"""Mixed read/write storms: the ingest side of the traffic engine.

A :class:`WriteMix` is a query mix whose "queries" are
:class:`IngestBatch` es drawn off a seeded record stream, and an
:class:`IngestClient` is a traffic client that prepares those batches
through an :class:`~repro.ingest.pipeline.IngestPipeline` instead of
the read planner — so ingest jobs ride the same event heap, drive
queues, and completion bookkeeping as every read query, and writes
contend with reads at the platter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.pipeline import IngestPipeline
from repro.ingest.streams import RecordStream
from repro.traffic.clients import TrafficClient

__all__ = ["IngestBatch", "IngestClient", "WriteMix"]


@dataclass(frozen=True)
class IngestBatch:
    """One drawn batch of points, submitted like a query."""

    coords: np.ndarray
    index: int
    final: bool

    @property
    def traffic_label(self) -> str:
        return f"ingest[{len(self.coords)}]"


class WriteMix:
    """Draws the stream's batches, in order, as traffic "queries".

    Restarting at index 0 replays the stream from the top (streams are
    seeded), so repeated runs stay bit-identical; the client's own rng
    is untouched — it still drives arrivals and head draws.
    """

    def __init__(self, stream: RecordStream):
        self.stream = stream
        self._iter = None

    def draw(self, dims, rng: np.random.Generator, index: int):
        if index == 0 or self._iter is None:
            self._iter = self.stream.batches()
        coords = next(self._iter)
        return IngestBatch(
            coords=coords,
            index=int(index),
            final=index >= self.stream.n_batches - 1,
        )

    def describe(self) -> str:
        return f"write:{self.stream.kind}[{self.stream.n_points}]"


@dataclass
class IngestClient(TrafficClient):
    """A traffic client whose submissions are ingest batches.

    ``mix`` must be a :class:`WriteMix` and ``pipeline`` the staged
    pipeline its batches flow through; ``n_queries`` should equal the
    stream's batch count so the final batch drains every buffer.
    """

    pipeline: IngestPipeline | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.pipeline is None:
            raise TypeError("IngestClient needs a pipeline")

    def prepare(self, query):
        return self.pipeline.prepare_batch(query.coords,
                                           final=query.final)

    def describe(self) -> dict:
        out = super().describe()
        out["role"] = "ingest"
        out["loader"] = self.pipeline.loader.name
        out["flush_points"] = self.pipeline.flush_points
        return out
