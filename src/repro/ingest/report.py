"""The ingest run report: throughput, breakdown, store occupancy."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["IngestReport"]


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one :meth:`repro.api.Dataset.ingest` run.

    ``mb_per_s`` is *goodput*: home-cube bytes acknowledged on the
    primary copies per second of total pipeline time (staging + write
    makespans + any reorganisation window).  Overflow-chain and replica
    traffic cost time but add no goodput, so an adaptive plan that
    avoids chains — or a layout that writes cubes sequentially — shows
    up directly.
    """

    layout: str
    drive: str
    shape: tuple[int, ...]
    stream: dict
    loader: str
    plan: dict
    n_points: int
    n_batches: int
    flushes: int
    acked_batches: int
    stage_ms: float
    write_ms: float
    reorg: dict | None
    total_ms: float
    home_blocks: int
    blocks_written: int
    overflow_points: int
    skipped_copy_writes: int
    per_disk_busy_ms: dict = field(default_factory=dict)
    store: dict = field(default_factory=dict)

    @property
    def mb_per_s(self) -> float:
        if self.total_ms <= 0:
            return 0.0
        return (self.home_blocks * 512 / 1e6) / (self.total_ms / 1000.0)

    @property
    def points_per_s(self) -> float:
        if self.total_ms <= 0:
            return 0.0
        return self.n_points / (self.total_ms / 1000.0)

    def to_dict(self) -> dict:
        return {
            "layout": self.layout,
            "drive": self.drive,
            "shape": list(self.shape),
            "stream": self.stream,
            "loader": self.loader,
            "plan": self.plan,
            "n_points": int(self.n_points),
            "n_batches": int(self.n_batches),
            "flushes": int(self.flushes),
            "acked_batches": int(self.acked_batches),
            "stage_ms": float(self.stage_ms),
            "write_ms": float(self.write_ms),
            "reorg": self.reorg,
            "total_ms": float(self.total_ms),
            "home_blocks": int(self.home_blocks),
            "blocks_written": int(self.blocks_written),
            "overflow_points": int(self.overflow_points),
            "skipped_copy_writes": int(self.skipped_copy_writes),
            "per_disk_busy_ms": {
                str(d): float(ms)
                for d, ms in sorted(self.per_disk_busy_ms.items())
            },
            "store": self.store,
            "mb_per_s": self.mb_per_s,
            "points_per_s": self.points_per_s,
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)

    def render(self) -> str:
        lines = [
            f"ingest: {self.n_points} points -> {self.layout} "
            f"({self.loader} loader) on {self.drive}",
            f"  batches            {self.n_batches:>10d}  "
            f"(acked {self.acked_batches}, {self.flushes} flushes)",
            f"  stage / write ms   {self.stage_ms:>10.3f}  "
            f"/ {self.write_ms:.3f}",
            f"  total ms           {self.total_ms:>10.3f}",
            f"  goodput MB/s       {self.mb_per_s:>10.3f}  "
            f"({self.points_per_s:,.0f} points/s)",
            f"  blocks written     {self.blocks_written:>10d}  "
            f"(home {self.home_blocks})",
            f"  overflow points    {self.overflow_points:>10d}",
        ]
        if self.reorg is not None:
            lines.append(
                f"  reorg ms           "
                f"{self.reorg['reorg_ms']:>10.3f}  "
                f"(freed {self.reorg['pages_freed']} pages)"
            )
        return "\n".join(lines)
