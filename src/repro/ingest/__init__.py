"""repro.ingest — streaming ingest & adaptive bulk loading.

The write path for the scaled-out stack: seeded record streams
(:data:`STREAMS`: ``uniform`` / ``clustered`` / ``drifting`` /
``replay``) feed a staged :class:`IngestPipeline` — per-shard write
buffers keyed by owning member disk, a locality-preserving flush that
packs buffered points into whole basic cubes before issuing sorted
sequential writes, and a modelled background reorganisation
(:func:`plan_reorganize`) that folds overflow chains back with the
rebuild layer's throttled-interference accounting.  A bulk loader
(:data:`LOADERS`: ``fixed`` / ``adaptive``) fixes the ingest plan;
``adaptive`` samples the stream to size cell capacity and pick the
chunk split axis from observed density.  On a replicated dataset every
flush writes the primary *and* all live copies block-for-block
identically, so an acknowledged batch survives ``fail_disk``::

    from repro import Dataset

    ds = Dataset.create((64, 16, 16), layout="multimap", seed=42)
    ds.with_shards(2).with_replication(2)
    report = ds.with_ingest(stream="clustered", loader="adaptive",
                            n_points=4096).ingest().run()
    print(report.mb_per_s)          # goodput: home-cube bytes / time

Mixed read/write storms ride the traffic engine via :class:`WriteMix`
and :class:`IngestClient` (``TrafficRun.ingest``); with ingest detached
the read path is bit-identical to the read-only stack — the parity
``tests/ingest/test_parity.py`` pins.  :func:`run_ingest_sweep`
produces the ingest-MB/s tables per layout × loader
(``repro-bench ingest``).
"""

from repro.ingest.loader import (
    LOADERS,
    IngestPlan,
    LoaderEntry,
    loader_names,
    register_loader,
    resolve_loader,
)
from repro.ingest.pipeline import (
    FlushPlan,
    IngestPipeline,
    IngestPrepared,
    IngestStats,
    WriteSource,
)
from repro.ingest.reorg import ReorgReport, plan_reorganize
from repro.ingest.report import IngestReport
from repro.ingest.streams import (
    STREAMS,
    ClusteredStream,
    DriftingStream,
    RecordStream,
    ReplayStream,
    StreamEntry,
    UniformStream,
    make_stream,
    register_stream,
    stream_names,
)
from repro.ingest.sweep import render_ingest_sweep, run_ingest_sweep
from repro.ingest.traffic import IngestBatch, IngestClient, WriteMix

__all__ = [
    "LOADERS",
    "STREAMS",
    "ClusteredStream",
    "DriftingStream",
    "FlushPlan",
    "IngestBatch",
    "IngestClient",
    "IngestPipeline",
    "IngestPlan",
    "IngestPrepared",
    "IngestReport",
    "IngestStats",
    "LoaderEntry",
    "RecordStream",
    "ReorgReport",
    "ReplayStream",
    "StreamEntry",
    "UniformStream",
    "WriteMix",
    "WriteSource",
    "loader_names",
    "make_stream",
    "plan_reorganize",
    "register_loader",
    "register_stream",
    "render_ingest_sweep",
    "resolve_loader",
    "run_ingest_sweep",
    "stream_names",
]
