"""Ingest throughput sweeps: write-path MB/s, layouts × loaders.

``run_ingest_sweep`` streams one fixed, seeded record stream into each
registered layout under each registered loader and records goodput —
the write-path analogue of the scale-out sweep.  Every (layout, loader)
cell builds a fresh same-seed dataset, shards it identically, and
replays the *identical* stream, so only the placement (where cells land
on the platter) and the ingest plan (cell capacity, chunk split) differ.

The expected shape: MultiMap's flushes write whole basic cubes as a few
long sequential runs, so its goodput beats the space-filling curves
(whose buffered cells scatter across the platter) and naive (bound by
its worst axis); the adaptive loader samples the stream's density and
sizes cells so clustered hot spots don't chain into overflow pages,
so on a skewed stream ``adaptive`` ≥ ``fixed`` for every layout.
"""

from __future__ import annotations

from repro.bench.reporting import render_table

__all__ = ["run_ingest_sweep", "render_ingest_sweep"]

DEFAULT_LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
DEFAULT_LOADERS = ("fixed", "adaptive")


def run_ingest_sweep(
    shape,
    layouts=DEFAULT_LAYOUTS,
    loaders=DEFAULT_LOADERS,
    *,
    stream: str = "clustered",
    stream_opts: dict | None = None,
    n_points: int = 4096,
    batch_points: int = 256,
    flush_points: int = 1024,
    n_shards: int = 2,
    k: int = 1,
    strategy: str = "disk_modulo",
    drive: str = "atlas10k3",
    seed: int = 42,
    reorganize: bool = False,
    dataset_opts: dict | None = None,
) -> dict:
    """Sweep layouts × loaders under one fixed record stream.

    Returns ``layout -> {loader: cell}`` where each cell carries the
    goodput, timing breakdown, and overflow counts of one
    :class:`~repro.ingest.report.IngestReport`, plus a ``meta`` entry
    recording the sweep parameters.  Streams are seeded and re-drawn
    identically per cell; the chunk grid is the shard default for every
    cell (the adaptive loader's chunk-shape suggestion depends only on
    the stream sample, so when it re-chunks, it re-chunks every layout
    the same way — the fairness condition of the sweep).
    """
    from repro.api.dataset import Dataset

    shape = tuple(int(s) for s in shape)
    data: dict = {}
    for layout in layouts:
        per_loader: dict = {}
        for loader in loaders:
            ds = Dataset.create(
                shape, layout=layout, drive=drive, seed=seed,
                **(dataset_opts or {}),
            )
            if int(n_shards) > 1:
                ds = ds.with_shards(int(n_shards), strategy=strategy)
            if int(k) > 1:
                ds = ds.with_replication(int(k))
            report = ds.with_ingest(
                stream=stream,
                loader=loader,
                n_points=int(n_points),
                batch_points=int(batch_points),
                flush_points=int(flush_points),
                seed=int(seed),
                reorganize=bool(reorganize),
                **(stream_opts or {}),
            ).ingest().run()
            per_loader[loader] = {
                "mb_per_s": report.mb_per_s,
                "points_per_s": report.points_per_s,
                "stage_ms": report.stage_ms,
                "write_ms": report.write_ms,
                "total_ms": report.total_ms,
                "flushes": report.flushes,
                "home_blocks": report.home_blocks,
                "blocks_written": report.blocks_written,
                "overflow_points": report.overflow_points,
                "plan": report.plan,
            }
        data[layout] = per_loader
    data["meta"] = {
        "shape": list(shape),
        "drive": drive if isinstance(drive, str) else getattr(
            drive, "name", str(drive)
        ),
        "stream": str(stream),
        "stream_opts": dict(stream_opts or {}),
        "n_points": int(n_points),
        "batch_points": int(batch_points),
        "flush_points": int(flush_points),
        "n_shards": int(n_shards),
        "k": int(k),
        "strategy": str(strategy),
        "seed": int(seed),
        "reorganize": bool(reorganize),
        "layouts": [str(layout) for layout in layouts],
        "loaders": [str(ld) for ld in loaders],
    }
    return data


def _layout_rows(data: dict, metric) -> tuple[list[str], list[list]]:
    loaders = data["meta"]["loaders"]
    rows = []
    for layout in data["meta"]["layouts"]:
        per_loader = data[layout]
        rows.append(
            [layout] + [metric(per_loader[ld]) for ld in loaders]
        )
    return loaders, rows


def render_ingest_sweep(data: dict) -> str:
    """Goodput and overflow tables, loader columns per layout."""
    meta = data["meta"]
    parts = [
        f"ingest sweep: shape={tuple(meta['shape'])} on {meta['drive']}, "
        f"{meta['n_points']} points of {meta['stream']} stream, "
        f"{meta['n_shards']} shard(s) x{meta['k']}, seed={meta['seed']}"
    ]
    loaders, rows = _layout_rows(data, lambda c: f"{c['mb_per_s']:.3f}")
    headers = ["layout"] + [f"{ld} MB/s" for ld in loaders]
    parts.append("ingest goodput (MB/s) per loader")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(data, lambda c: f"{c['overflow_points']}")
    headers = ["layout"] + [f"{ld} spills" for ld in loaders]
    parts.append("overflowed points per loader")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(data, lambda c: f"{c['write_ms']:.2f}")
    headers = ["layout"] + [f"{ld} write ms" for ld in loaders]
    parts.append("write makespan (ms) per loader")
    parts.append(render_table(headers, rows))
    return "\n\n".join(parts)
