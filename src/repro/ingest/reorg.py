"""Background reorganisation of overflowing/underflowing cells.

After enough skewed ingest, chains hang off hot cells and cold cells
sit underfull; §4.6 calls the fix "dataset reorganization, an expensive
operation for any mapping technique".  :func:`plan_reorganize` performs
the fold on the pipeline's stores (overflow chains drain back into
cells where they now fit) and *models* the background I/O on fresh
drive instances — reading each chained cell's home blocks plus its
chain pages, writing the folded cells back, on every live copy — so
foreground traffic's head state is untouched, exactly like the replica
rebuild model.  A ``throttle`` fraction stretches the window, and the
:meth:`ReorgReport.interference` profile reuses the rebuild layer's
``1 / (1 - busy_frac)`` dilation estimate
(:func:`repro.replica.rebuild.interference_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.drive import DiskDrive
from repro.errors import IngestError
from repro.mappings.base import RequestPlan, coalesce_ranks
from repro.replica.rebuild import interference_profile

__all__ = ["ReorgReport", "plan_reorganize"]


@dataclass(frozen=True)
class ReorgReport:
    """Timing of one modelled background reorganisation."""

    chunks: tuple[int, ...]
    pages_freed: int
    n_blocks: int
    io_ms_by_disk: dict
    ideal_ms: float
    throttle: float
    reorg_ms: float

    def interference(self) -> dict:
        """Per-disk busy fraction and foreground dilation during the
        reorganisation window."""
        return interference_profile(self.io_ms_by_disk, self.reorg_ms)

    def to_dict(self) -> dict:
        return {
            "chunks": [int(c) for c in self.chunks],
            "pages_freed": int(self.pages_freed),
            "n_blocks": int(self.n_blocks),
            # string keys so the payload round-trips through JSON
            "io_ms_by_disk": {
                str(d): float(ms)
                for d, ms in sorted(self.io_ms_by_disk.items())
            },
            "ideal_ms": float(self.ideal_ms),
            "throttle": float(self.throttle),
            "reorg_ms": float(self.reorg_ms),
            "interference": {
                str(d): v for d, v in self.interference().items()
            },
        }


def _service(drive: DiskDrive, lbns: np.ndarray, window: int) -> float:
    if lbns.size == 0:
        return 0.0
    starts, lengths = coalesce_ranks(np.unique(lbns))
    plan = RequestPlan(starts, lengths, policy="sorted", merge_gap=0)
    res = drive.service_runs(plan.starts, plan.lengths,
                             policy=plan.policy, window=window)
    return res.total_ms


def plan_reorganize(pipeline, *, throttle: float = 1.0,
                    grow: bool = True):
    """Reorganise every store of ``pipeline`` that needs it and model
    the background I/O.  Returns a :class:`ReorgReport`, or ``None``
    when no chunk needed work.

    With ``grow`` (the default) each chained store's per-cell capacity
    is first raised to its :meth:`~repro.core.store.CellStore
    .required_capacity` — the §4.6 re-provisioning a fixed plan
    deferred: cells are resized to the density the stream delivered
    (what the adaptive loader would have picked up front), so every
    chain folds back and its pages free.  Without it only chains whose
    cells already have free space fold.
    """
    if not 0 < throttle <= 1:
        raise IngestError("throttle must be in (0, 1]")
    storage = pipeline.storage
    drives: dict[int, DiskDrive] = {}
    io_ms: dict[int, float] = {}
    n_blocks = 0
    pages_freed = 0
    chunks: list[int] = []

    def drive_for(disk: int) -> DiskDrive:
        d = drives.get(disk)
        if d is None:
            # fresh instance: background I/O must not disturb the real
            # drive's head state (foreground keeps its own position)
            d = DiskDrive(storage.volume.models[disk])
            drives[disk] = d
        return d

    for ci, store in enumerate(pipeline.stores):
        if not (store.needs_reorganization or store.chained_cells().size):
            continue
        cells = store.chained_cells()
        page_idx = store.overflow_page_lbns() - store.overflow_extent.start
        lcoords = pipeline._unflatten_local(cells, pipeline.chunks[ci].shape)
        if grow:
            store.points_per_cell = store.required_capacity()
        freed = store.reorganize()
        if freed == 0 and cells.size == 0:
            continue
        pages_freed += freed
        chunks.append(ci)
        cb = int(pipeline._chunk_mappers[ci].cell_blocks)
        for copy, cmapper in pipeline._write_copies(ci):
            if cells.size:
                home = np.asarray(cmapper.lbns(lcoords), dtype=np.int64)
                if cb > 1:
                    home = (
                        home[:, None] + np.arange(cb, dtype=np.int64)
                    ).ravel()
            else:
                home = np.empty(0, dtype=np.int64)
            ext = pipeline._copy_extents[ci][copy]
            pages = ext.start + page_idx
            disk = int(cmapper.disk_index)
            drive = drive_for(disk)
            # read the chained cells + their chains, write the folded
            # cells back in place
            read = np.concatenate([home, pages])
            ms = _service(drive, read, storage.window)
            ms += _service(drive, home, storage.window)
            io_ms[disk] = io_ms.get(disk, 0.0) + ms
            n_blocks += int(np.unique(read).size + np.unique(home).size)

    if not chunks:
        return None
    ideal = max(io_ms.values(), default=0.0)
    return ReorgReport(
        chunks=tuple(chunks),
        pages_freed=pages_freed,
        n_blocks=n_blocks,
        io_ms_by_disk=io_ms,
        ideal_ms=ideal,
        throttle=float(throttle),
        reorg_ms=ideal / float(throttle),
    )
