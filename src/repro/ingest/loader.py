"""Bulk-loading strategies: fixed vs adaptive cell/chunk sizing.

A loader inspects the dataset and the incoming stream *before* any
point is buffered and fixes the knobs the pipeline will load under: the
per-cell point capacity, the initial fill factor, and (on sharded
datasets) a suggested chunk shape.  The ``fixed`` loader keeps the
configured defaults; the ``adaptive`` loader follows the sampling idea
of "Fast and Adaptive Bulk Loading of Multidimensional Points": it
draws a seeded sample from the stream, estimates the per-cell density
at a high quantile to size cells so hot cells do not spill to overflow
chains, and picks the chunk split axis whose marginal distribution is
flattest across the member disks (least imbalanced slabs).

Loaders are registered in :data:`LOADERS` (``repro-bench
--list-loaders``) with the plain ``fn(dataset, stream, **opts) ->
IngestPlan`` shape, mirroring the read policies' registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import IngestError
from repro.registry import Registry, first_doc_line

__all__ = [
    "LOADERS",
    "IngestPlan",
    "LoaderEntry",
    "loader_names",
    "register_loader",
    "resolve_loader",
]


@dataclass(frozen=True)
class IngestPlan:
    """The knobs a loader fixed for one ingest run."""

    points_per_cell: int
    fill_factor: float
    chunk_shape: tuple | None = None
    meta: dict = field(default_factory=dict)

    def describe(self) -> dict:
        return {
            "points_per_cell": int(self.points_per_cell),
            "fill_factor": float(self.fill_factor),
            "chunk_shape": (
                None if self.chunk_shape is None else list(self.chunk_shape)
            ),
            **{k: v for k, v in self.meta.items()},
        }


@dataclass(frozen=True)
class LoaderEntry:
    """A registered bulk-loading strategy.

    ``fn(dataset, stream, **opts)`` returns an :class:`IngestPlan`; it
    must not mutate either argument (sampling uses the stream's
    independent substream).
    """

    name: str
    fn: Callable
    description: str = ""


#: loader-name -> :class:`LoaderEntry`; builtins live in this module,
#: so importing it is the whole population step
LOADERS = Registry("loader")


def register_loader(name: str, *, description: str = ""):
    """Function decorator adding a loading strategy to
    :data:`LOADERS`."""

    def deco(fn):
        desc = description or first_doc_line(fn)
        LOADERS.add(name, LoaderEntry(name, fn, desc))
        return fn

    return deco


def loader_names() -> tuple[str, ...]:
    return LOADERS.names()


def resolve_loader(spec) -> LoaderEntry:
    """Resolve a loader spec (registered name or entry) to its entry."""
    if isinstance(spec, LoaderEntry):
        return spec
    if isinstance(spec, str):
        return LOADERS.get(spec)
    raise IngestError(
        f"unknown loader spec {spec!r} (registered: "
        f"{', '.join(loader_names())})"
    )


@register_loader("fixed")
def _fixed(dataset, stream, *, points_per_cell: int = 16,
           fill_factor: float = 1.0, **_ignored) -> IngestPlan:
    """Keep the configured chunking and a fixed per-cell capacity."""
    return IngestPlan(
        points_per_cell=int(points_per_cell),
        fill_factor=float(fill_factor),
        chunk_shape=None,
        meta={"loader": "fixed"},
    )


@register_loader("adaptive")
def _adaptive(dataset, stream, *, points_per_cell: int = 16,
              fill_factor: float = 1.0, sample_points: int = 512,
              quantile: float = 0.98, headroom: float = 1.25,
              **_ignored) -> IngestPlan:
    """Sample the stream: size cells to the observed density, split
    chunks along the flattest marginal."""
    if not 0.0 < quantile <= 1.0:
        raise IngestError("quantile must be in (0, 1]")
    if headroom < 1.0:
        raise IngestError("headroom must be >= 1")
    sample = stream.sample(min(int(sample_points), stream.n_points))
    dims = tuple(int(s) for s in dataset.shape)

    # per-cell density estimate: quantile of the sampled occupancy,
    # scaled up to the full stream, with headroom against undersampling
    strides = np.cumprod((1,) + dims[:-1]).astype(np.int64)
    flat = sample @ strides
    _, cnt = np.unique(flat, return_counts=True)
    scale = stream.n_points / len(sample)
    est = float(np.quantile(cnt, quantile)) * scale * headroom
    ppc = int(np.clip(np.ceil(est), points_per_cell, 4096))

    # chunk split axis: slab the axis whose marginal spreads the sample
    # most evenly over n_shards slabs (ties keep the last-axis default)
    chunk_shape = None
    split_axis = None
    n = int(getattr(dataset, "n_shards", 1))
    if n > 1:
        imbalance = []
        for d, s in enumerate(dims):
            hist, _ = np.histogram(sample[:, d],
                                   bins=np.linspace(0, s, n + 1))
            imbalance.append(hist.max() * n / len(sample))
        rev = imbalance[::-1]
        split_axis = len(dims) - 1 - int(np.argmin(rev))
        shape = list(dims)
        shape[split_axis] = -(-dims[split_axis] // n)
        chunk_shape = tuple(shape)

    return IngestPlan(
        points_per_cell=ppc,
        fill_factor=float(fill_factor),
        chunk_shape=chunk_shape,
        meta={
            "loader": "adaptive",
            "sampled_points": int(len(sample)),
            "estimated_cell_points": est,
            "split_axis": split_axis,
        },
    )
