"""The staged ingest pipeline: buffer → flush → sequential writes.

Incoming points are routed to the chunk that owns their cell and held
in **per-disk write buffers** (one buffer per owning member disk, one
cell-count map per chunk).  When a disk's buffered backlog crosses
``flush_points`` — or the stream ends — that disk's chunks flush: each
chunk's buffered points are folded into its :class:`CellStore`
(§4.6 semantics: free cell space absorbs, the rest spills to overflow
chains), and the touched **whole cells plus dirtied overflow pages**
become one :class:`~repro.query.executor.WritePrepared` batch per copy,
issued in sorted LBN order so a locality-preserving layout (MultiMap's
basic cubes) turns a flush into a few long sequential writes.

Replica-consistent writes: on a replicated manager every flush targets
the primary *and* all live copies (``write_copies``), with a twin
overflow extent allocated per copy so chain pages land block-for-block
identically everywhere — an acknowledged batch survives any single
``fail_disk``.  Copies on dead disks are skipped (counted, rebuilt
later); a chunk with **no** live copy refuses the flush loudly.

One logical :class:`CellStore` exists per chunk regardless of k: the
copies are byte-equal by construction, so occupancy bookkeeping is
shared and only the block writes fan out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.core.store import CellStore
from repro.datasets.grid import Chunk
from repro.errors import IngestError
from repro.ingest.loader import IngestPlan, resolve_loader
from repro.ingest.streams import RecordStream
from repro.mappings.base import RequestPlan
from repro.query.executor import WritePrepared
from repro.query.scatter import ShardedPrepared

__all__ = [
    "FlushPlan",
    "IngestPipeline",
    "IngestPrepared",
    "IngestStats",
    "WriteSource",
]


@dataclass(frozen=True)
class WriteSource:
    """Provenance of one write sub-plan: which chunk copy it targets.

    The traffic engine's failure path reads ``is_write`` to *drop* a
    dead copy's write (the surviving copies already hold the batch)
    instead of failing the whole flush over like a read."""

    chunk: int
    copy: int
    disk: int
    is_write: ClassVar[bool] = True


@dataclass(frozen=True)
class IngestPrepared(ShardedPrepared):
    """One flush prepared as per-copy, per-disk write sub-plans.

    Quacks like a :class:`~repro.replica.executor.ReplicatedPrepared`:
    ``sources[i]`` describes ``subs[i]`` (``None`` for the memory-only
    staging sub the traffic path prepends), so the engine's sub-plan
    bookkeeping needs no new cases.  ``n_points`` counts the points the
    flush acknowledges."""

    sources: tuple = ()
    n_points: int = 0
    is_write: ClassVar[bool] = True


@dataclass(frozen=True)
class FlushPlan:
    """One buffered flush, ready to execute."""

    prepared: IngestPrepared
    n_points: int
    chunks: tuple[int, ...]


@dataclass
class IngestStats:
    """Cumulative pipeline totals over its lifetime."""

    streamed_points: int = 0
    batches_staged: int = 0
    flushes: int = 0
    flushed_points: int = 0
    home_blocks: int = 0
    overflow_points: int = 0
    skipped_copy_writes: int = 0

    @property
    def buffered_points(self) -> int:
        return self.streamed_points - self.flushed_points

    def to_dict(self) -> dict:
        return {
            "streamed_points": self.streamed_points,
            "batches_staged": self.batches_staged,
            "flushes": self.flushes,
            "flushed_points": self.flushed_points,
            "buffered_points": self.buffered_points,
            "home_blocks": self.home_blocks,
            "overflow_points": self.overflow_points,
            "skipped_copy_writes": self.skipped_copy_writes,
        }


class IngestPipeline:
    """Buffers a record stream and flushes it as sequential cube writes.

    Parameters
    ----------
    dataset:
        The (possibly sharded/replicated) façade dataset written into.
        The pipeline builds one :class:`CellStore` per chunk against the
        *primary* chunk mapper; the cell-store façade gate does not
        apply here — this is the write path it points at.
    stream:
        A :class:`~repro.ingest.streams.RecordStream`.
    loader:
        Registered loader name (or entry) fixing the ingest plan;
        ``plan`` overrides with a pre-resolved :class:`IngestPlan`.
    flush_points:
        Per-disk buffered backlog that triggers a flush of that disk.
    stage_ms_per_point:
        Memory cost of buffering one point (the staging sub's service
        time on the traffic path).
    """

    def __init__(
        self,
        dataset,
        stream: RecordStream,
        loader="fixed",
        *,
        plan: IngestPlan | None = None,
        flush_points: int = 1024,
        stage_ms_per_point: float = 2e-4,
        reclaim_threshold: float = 0.25,
        max_overflow_pages: int = 256,
        loader_opts: dict | None = None,
    ):
        if tuple(stream.dims) != tuple(dataset.shape):
            raise IngestError(
                f"stream dims {tuple(stream.dims)} do not match dataset "
                f"shape {tuple(dataset.shape)}"
            )
        if flush_points < 1:
            raise IngestError("flush_points must be >= 1")
        self.dataset = dataset
        self.stream = stream
        self.loader = resolve_loader(loader)
        if plan is None:
            plan = self.loader.fn(dataset, stream, **(loader_opts or {}))
        self.plan = plan
        self.flush_points = int(flush_points)
        self.stage_ms_per_point = float(stage_ms_per_point)
        self.stats = IngestStats()

        storage = dataset.storage
        self.storage = storage
        mapper = dataset.mapper
        self.mapper_name = mapper.name
        chunk_mappers = getattr(mapper, "chunk_mappers", None)
        ndim = len(dataset.shape)
        if chunk_mappers is None:
            # unsharded: one pseudo-chunk spanning the dataset, the
            # plain mapper doing the placement
            self.chunks = (
                Chunk(0, (0,) * ndim, tuple(dataset.shape),
                      mapper.disk_index),
            )
            self.grid = (1,) * ndim
            self._chunk_mappers = (mapper,)
        else:
            self.chunks = storage.shard_map.chunks
            self.grid = storage.shard_map.grid
            self._chunk_mappers = chunk_mappers
        replica_map = getattr(storage, "replica_map", None)
        self.n_copies = (
            int(replica_map.k) if replica_map is not None else 1
        )

        self.stores = tuple(
            CellStore(
                m,
                storage.volume,
                points_per_cell=plan.points_per_cell,
                fill_factor=plan.fill_factor,
                reclaim_threshold=reclaim_threshold,
                max_overflow_pages=max_overflow_pages,
            )
            for m in self._chunk_mappers
        )
        # twin overflow extents per extra copy, so chain pages land at
        # the same page index on every replica (byte-equal copies)
        self._copy_extents: list[dict] = []
        for ci, store in enumerate(self.stores):
            exts = {0: store.overflow_extent}
            if replica_map is not None:
                for r in range(1, replica_map.k):
                    disk = int(replica_map.disks[ci, r])
                    exts[r] = storage.volume.allocate_blocks(
                        disk, store.overflow_extent.nblocks
                    )
            self._copy_extents.append(exts)

        # per-disk write buffers: disk -> chunk -> {local flat: count}
        self._buffers: dict[int, dict[int, dict[int, int]]] = {}
        self._pending: dict[int, int] = {}
        self._grid_strides = np.cumprod((1,) + self.grid[:-1]).astype(
            np.int64
        )
        self._base_shape = np.asarray(self.chunks[0].shape,
                                      dtype=np.int64)

    # ------------------------------------------------------------------
    # staging
    # ------------------------------------------------------------------

    @staticmethod
    def _flatten_local(coords: np.ndarray, shape) -> np.ndarray:
        strides = np.cumprod((1,) + tuple(shape)[:-1]).astype(np.int64)
        return coords @ strides

    @staticmethod
    def _unflatten_local(flats: np.ndarray, shape) -> np.ndarray:
        rem = np.asarray(flats, dtype=np.int64).copy()
        out = np.empty((len(rem), len(shape)), dtype=np.int64)
        for d, s in enumerate(shape):
            out[:, d] = rem % s
            rem //= s
        return out

    def stage(self, coords) -> list[int]:
        """Buffer a batch of cell coordinates; returns the member disks
        whose backlog crossed ``flush_points``."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords[np.newaxis, :]
        dims = np.asarray(self.dataset.shape, dtype=np.int64)
        if coords.shape[1] != len(dims):
            raise IngestError("coordinate rank does not match dataset")
        if coords.size and ((coords < 0).any()
                            or (coords >= dims).any()):
            raise IngestError("coordinates out of dataset bounds")
        cid = (coords // self._base_shape) @ self._grid_strides
        order = np.argsort(cid, kind="stable")
        cid = cid[order]
        coords = coords[order]
        bounds = np.flatnonzero(np.diff(cid)) + 1
        for rows, ci in zip(
            np.split(np.arange(len(cid)), bounds),
            cid[np.concatenate(([0], bounds))] if len(cid) else (),
        ):
            ci = int(ci)
            chunk = self.chunks[ci]
            local = coords[rows] - np.asarray(chunk.origin,
                                              dtype=np.int64)
            flats, counts = np.unique(
                self._flatten_local(local, chunk.shape),
                return_counts=True,
            )
            buf = self._buffers.setdefault(chunk.disk, {}).setdefault(
                ci, {}
            )
            for f, c in zip(flats.tolist(), counts.tolist()):
                buf[f] = buf.get(f, 0) + c
            self._pending[chunk.disk] = (
                self._pending.get(chunk.disk, 0) + len(rows)
            )
        self.stats.streamed_points += len(coords)
        return sorted(
            d for d, p in self._pending.items() if p >= self.flush_points
        )

    def drain_disks(self) -> list[int]:
        """Member disks with any buffered points (the final-drain set)."""
        return sorted(
            d for d, bufs in self._buffers.items()
            if any(bufs.values())
        )

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------

    def _write_copies(self, chunk_index: int):
        storage = self.storage
        if hasattr(storage, "write_copies"):
            return storage.write_copies(chunk_index)
        return ((0, self._chunk_mappers[chunk_index]),)

    def build_flush(self, disks) -> FlushPlan | None:
        """Fold the given disks' buffers into their stores and prepare
        one write sub-plan per (chunk, live copy)."""
        subs: list = []
        sources: list = []
        n_points = 0
        flushed: list[int] = []
        for disk in sorted({int(d) for d in disks}):
            chunk_bufs = self._buffers.get(disk, {})
            for ci in sorted(chunk_bufs):
                cells = chunk_bufs[ci]
                if not cells:
                    continue
                items = sorted(cells.items())
                flats = np.array([f for f, _ in items], dtype=np.int64)
                counts = np.array([c for _, c in items], dtype=np.int64)
                chunk = self.chunks[ci]
                lcoords = self._unflatten_local(flats, chunk.shape)
                store = self.stores[ci]
                spilled = store.bulk_insert(lcoords, counts)
                page_idx = (
                    store.drain_touched_pages()
                    - store.overflow_extent.start
                )
                pts = int(counts.sum())
                copies = self._write_copies(ci)
                self.stats.skipped_copy_writes += (
                    self.n_copies - len(copies)
                )
                cb = int(self._chunk_mappers[ci].cell_blocks)
                for copy, cmapper in copies:
                    if hasattr(cmapper, "write_extents"):
                        # locality-preserving packing: the flush lays
                        # down each touched basic cube whole, one long
                        # sequential run per track group (§4.6)
                        starts, lengths = cmapper.write_extents(lcoords)
                        home = np.concatenate([
                            s + np.arange(n, dtype=np.int64)
                            for s, n in zip(starts.tolist(),
                                            lengths.tolist())
                        ])
                    else:
                        home = np.asarray(cmapper.lbns(lcoords),
                                          dtype=np.int64)
                        if cb > 1:
                            home = (
                                home[:, None]
                                + np.arange(cb, dtype=np.int64)
                            ).ravel()
                    lbns = home
                    if page_idx.size:
                        ext = self._copy_extents[ci][copy]
                        lbns = np.concatenate(
                            [home, ext.start + page_idx]
                        )
                    subs.append(
                        self.storage.prepare_write(cmapper, lbns, pts)
                    )
                    sources.append(
                        WriteSource(chunk=ci, copy=int(copy),
                                    disk=cmapper.disk_index)
                    )
                    if copy == 0:
                        # goodput accounting: home-region blocks laid
                        # down on the primary (whole cubes for a packing
                        # mapper, the touched cells otherwise)
                        self.stats.home_blocks += len(home)
                n_points += pts
                self.stats.overflow_points += spilled
                flushed.append(ci)
                chunk_bufs[ci] = {}
            self._pending[disk] = 0
        if not subs:
            return None
        self.stats.flushes += 1
        self.stats.flushed_points += n_points
        prepared = IngestPrepared(
            mapper_name=self.mapper_name,
            subs=tuple(subs),
            n_cells=n_points,
            sources=tuple(sources),
            n_points=n_points,
        )
        return FlushPlan(prepared, n_points, tuple(flushed))

    def prepare_batch(self, coords, *, final: bool = False):
        """The traffic path: stage a batch and prepare its flush (if
        any) as one submission.

        The returned prepared query always carries a memory-only
        *staging sub* (empty plan, ``cache_ms`` = buffering time) so a
        batch that only buffers still completes through the engine's
        cache-done path; a triggered flush rides along as write
        sub-plans.  ``final`` drains every buffer regardless of
        thresholds (the last batch acknowledges everything).
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords[np.newaxis, :]
        ready = self.stage(coords)
        if final:
            ready = self.drain_disks()
        flush = self.build_flush(ready) if ready else None
        self.stats.batches_staged += 1
        empty = np.empty(0, dtype=np.int64)
        stage_sub = WritePrepared(
            mapper_name=self.mapper_name,
            disk_index=self.chunks[0].disk,
            plan=RequestPlan(empty, empty, policy="sorted", merge_gap=0),
            policy="sorted",
            n_cells=len(coords),
            cache_ms=len(coords) * self.stage_ms_per_point,
        )
        if flush is None:
            return stage_sub
        return IngestPrepared(
            mapper_name=self.mapper_name,
            subs=(stage_sub,) + flush.prepared.subs,
            n_cells=len(coords),
            sources=(None,) + flush.prepared.sources,
            n_points=flush.n_points,
        )

    # ------------------------------------------------------------------
    # reclamation + reporting
    # ------------------------------------------------------------------

    @property
    def needs_reorganization(self) -> bool:
        return any(s.needs_reorganization for s in self.stores)

    def store_summary(self) -> dict:
        """Aggregate occupancy over the per-chunk stores."""
        stats = [s.stats() for s in self.stores]
        cells = sum(s.n_cells for s in stats)
        return {
            "n_chunks": len(stats),
            "n_cells": cells,
            "n_points": sum(s.n_points for s in stats),
            "points_per_cell": int(self.plan.points_per_cell),
            "fill_factor": float(self.plan.fill_factor),
            "overflow_pages": sum(s.overflow_pages for s in stats),
            "overflow_points": sum(s.overflow_points for s in stats),
            "underflow_cells": sum(s.underflow_cells for s in stats),
            "mean_fill": (
                sum(s.mean_fill * s.n_cells for s in stats) / cells
                if cells else 0.0
            ),
        }

    def describe(self) -> dict:
        return {
            "stream": self.stream.describe(),
            "loader": self.loader.name,
            "plan": self.plan.describe(),
            "flush_points": self.flush_points,
            "n_chunks": len(self.chunks),
            "n_copies": self.n_copies,
            "stats": self.stats.to_dict(),
        }
