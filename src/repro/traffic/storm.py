"""Layout-vs-load sweeps: the "traffic storm" scenario.

``run_storm`` replays the same seeded multi-client workload against each
registered layout at rising client counts and collects throughput and
latency-percentile aggregates — the concurrent analogue of the paper's
Figure 6 comparisons.  Fairness mirrors :meth:`Dataset.with_layout`:
every (layout, client-count) cell builds a fresh dataset from the same
seed, so client *k* draws the identical query stream in every cell and
only the placement (and the contention it causes) differs.
"""

from __future__ import annotations

from repro.bench.reporting import render_table
from repro.traffic.arrivals import ClosedLoop
from repro.traffic.clients import QueryMix

__all__ = ["run_storm", "render_storm"]

DEFAULT_LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
DEFAULT_CLIENTS = (1, 2, 4, 8)


def run_storm(
    shape,
    layouts=DEFAULT_LAYOUTS,
    client_counts=DEFAULT_CLIENTS,
    *,
    drive: str = "atlas10k3",
    queries_per_client: int = 20,
    mix: QueryMix | None = None,
    arrival=None,
    seed: int = 42,
    slice_runs: int | None = 64,
    head: str = "random",
    dataset_opts: dict | None = None,
) -> dict:
    """Sweep layouts × client counts; returns a JSON-friendly dict.

    The result maps ``layout -> {n_clients: aggregate}`` (see
    :meth:`TrafficReport.aggregate`) plus a ``meta`` entry recording the
    sweep parameters.
    """
    from repro.api.dataset import Dataset

    shape = tuple(int(s) for s in shape)
    mix = mix or QueryMix.beams(*range(1, len(shape)))
    arrival = arrival or ClosedLoop()
    data: dict = {}
    for layout in layouts:
        per_load: dict = {}
        for n in client_counts:
            ds = Dataset.create(
                shape, layout=layout, drive=drive, seed=seed,
                **(dataset_opts or {}),
            )
            report = (
                ds.traffic()
                .clients(int(n), mix=mix, arrival=arrival,
                         queries=queries_per_client)
                .slice_runs(slice_runs)
                .head(head)
                .run()
            )
            per_load[int(n)] = report.aggregate()
        data[layout] = per_load
    data["meta"] = {
        "shape": list(shape),
        "drive": drive if isinstance(drive, str) else getattr(
            drive, "name", str(drive)
        ),
        "queries_per_client": int(queries_per_client),
        "mix": mix.describe(),
        "arrival": arrival.describe(),
        "seed": seed,
        "slice_runs": slice_runs,
        "head": head,
        "client_counts": [int(n) for n in client_counts],
    }
    return data


def _layout_rows(data: dict, metric) -> tuple[list[int], list[list]]:
    counts = data["meta"]["client_counts"]
    rows = []
    for layout, per_load in data.items():
        if layout == "meta":
            continue
        rows.append([layout] + [metric(per_load[n]) for n in counts])
    return counts, rows


def render_storm(data: dict) -> str:
    """Throughput-vs-load plus p50/p95/p99 latency tables."""
    meta = data["meta"]
    parts = [
        f"traffic storm: shape={tuple(meta['shape'])} on {meta['drive']}, "
        f"{meta['queries_per_client']} queries/client, mix={meta['mix']}, "
        f"arrival={meta['arrival']['model']}, seed={meta['seed']}"
    ]
    counts, rows = _layout_rows(
        data, lambda agg: f"{agg['throughput_qps']:.2f}"
    )
    headers = ["layout"] + [f"{n} cl" for n in counts]
    parts.append("throughput (queries/s) vs client count")
    parts.append(render_table(headers, rows))
    for pct in ("p50", "p95", "p99"):
        _, rows = _layout_rows(
            data, lambda agg, p=pct: f"{agg['latency_ms'][p]:.2f}"
        )
        parts.append(f"{pct} latency (ms) vs client count")
        parts.append(render_table(headers, rows))
    return "\n\n".join(parts)
