"""Traffic clients and the query mixes they draw from.

A :class:`QueryMix` turns a client's random stream into a sequence of
:mod:`repro.query.workload` queries.  Mixes are stateless: ``draw``
receives the dataset dims, the client's generator, and the per-client
query index, so one mix instance can serve any number of clients.

A single-part mix consumes *exactly* the draws of the underlying
workload generator (no mix-selection draw), which is what makes a lone
closed-loop client stream-identical to
:meth:`repro.api.Dataset.random_beams` — the parity the traffic tests
pin.  Multi-part mixes spend one uniform draw choosing the part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import QueryError
from repro.mappings.base import Mapper
from repro.query.executor import StorageManager
from repro.query.workload import (
    BeamQuery,
    RangeQuery,
    random_beam,
    random_range_cube,
)
from repro.traffic.arrivals import ArrivalProcess, ClosedLoop

__all__ = ["BeamDraw", "RangeDraw", "QueryMix", "Replay", "TrafficClient"]


@dataclass(frozen=True)
class BeamDraw:
    """Full-length beam along ``axis`` at a random position."""

    axis: int
    weight: float = 1.0

    def draw(self, dims, rng: np.random.Generator):
        return random_beam(dims, self.axis, rng)

    def describe(self) -> str:
        return f"beam:{self.axis}"


@dataclass(frozen=True)
class RangeDraw:
    """~``selectivity_pct``-% cube at a random anchor (§5.1)."""

    selectivity_pct: float
    weight: float = 1.0

    def draw(self, dims, rng: np.random.Generator):
        return random_range_cube(dims, self.selectivity_pct, rng)

    def describe(self) -> str:
        return f"range:{self.selectivity_pct:g}"


class QueryMix:
    """A weighted mixture of query generators.

    With a single part no selection draw is made; with several, one
    uniform draw picks the part by normalised weight before the part's
    own draws run.
    """

    def __init__(self, parts: Sequence[BeamDraw | RangeDraw]):
        parts = tuple(parts)
        if not parts:
            raise QueryError("a mix needs at least one part")
        weights = np.asarray([p.weight for p in parts], dtype=np.float64)
        if (weights <= 0).any():
            raise QueryError("mix weights must be > 0")
        self.parts = parts
        self._cum = np.cumsum(weights / weights.sum())

    @classmethod
    def beams(cls, *axes: int) -> "QueryMix":
        """Equal-weight random beams along the given axes."""
        if not axes:
            raise QueryError("beams() needs at least one axis")
        return cls([BeamDraw(int(a)) for a in axes])

    @classmethod
    def ranges(cls, *pcts: float) -> "QueryMix":
        """Equal-weight random range cubes at the given selectivities."""
        if not pcts:
            raise QueryError("ranges() needs at least one selectivity")
        return cls([RangeDraw(float(p)) for p in pcts])

    def draw(self, dims, rng: np.random.Generator, index: int):
        if len(self.parts) == 1:
            return self.parts[0].draw(dims, rng)
        k = int(np.searchsorted(self._cum, rng.random(), side="right"))
        k = min(k, len(self.parts) - 1)
        return self.parts[k].draw(dims, rng)

    def describe(self) -> str:
        return "+".join(p.describe() for p in self.parts)


class Replay:
    """A fixed query sequence, cycled; consumes no randomness."""

    def __init__(self, queries: Sequence[BeamQuery | RangeQuery]):
        queries = tuple(queries)
        if not queries:
            raise QueryError("replay needs at least one query")
        for q in queries:
            if not isinstance(q, (BeamQuery, RangeQuery)):
                raise QueryError(f"unknown query type {type(q).__name__}")
        self.queries = queries

    def draw(self, dims, rng: np.random.Generator, index: int):
        return self.queries[index % len(self.queries)]

    def describe(self) -> str:
        return f"replay[{len(self.queries)}]"


@dataclass
class TrafficClient:
    """One traffic source: a query mix, an arrival process, and a stack.

    ``storage``/``mapper`` bind the client to a dataset placement; several
    clients may share them (the common case) or target different mappers
    on the same volume — contention happens at the drive either way.
    ``rng`` is the client's private stream: it drives arrivals, query
    draws, and (in per-query head randomisation mode) the initial head
    position, all consumed in submission order.
    """

    name: str
    storage: StorageManager
    mapper: Mapper
    mix: QueryMix | Replay
    arrival: ArrivalProcess = field(default_factory=ClosedLoop)
    n_queries: int = 50
    rng: np.random.Generator = None

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise QueryError("n_queries must be >= 1")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def prepare(self, query):
        """Plan one drawn query against this client's stack.  Subclasses
        override to route submissions elsewhere (the ingest client plans
        write batches through its pipeline instead)."""
        return self.storage.prepare(self.mapper, query)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "mapper": self.mapper.name,
            "mix": self.mix.describe(),
            "arrival": self.arrival.describe(),
            "n_queries": int(self.n_queries),
        }
