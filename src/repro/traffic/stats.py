"""Traces and reports for traffic runs.

A :class:`TrafficReport` mirrors :class:`repro.api.report.Report` for the
concurrent world: it wraps the per-query :class:`QueryTrace` records of
one simulation together with per-client, per-drive, and aggregate
statistics (throughput, utilisation, and p50/p90/p95/p99 latency), and
serialises to JSON with a stable layout so same-seed runs are
byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench.reporting import render_table
from repro.query.workload import BeamQuery, RangeQuery

__all__ = ["QueryTrace", "DriveStats", "TrafficReport", "describe_query"]

_PCTS = (50, 90, 95, 99)


def describe_query(query) -> str:
    """Short label for a workload query (matches the Report labels)."""
    label = getattr(query, "traffic_label", None)
    if label is not None:
        # non-workload submissions (ingest batches) label themselves
        return str(label)
    if isinstance(query, BeamQuery):
        return f"beam[axis={query.axis}]"
    if isinstance(query, RangeQuery):
        return f"range{tuple(query.shape)}"
    return type(query).__name__


@dataclass(frozen=True)
class QueryTrace:
    """One completed query: who issued it, when, and what it cost.

    ``service_ms`` is drive time actually spent on this query's slices;
    ``latency_ms`` is submission to completion, so ``queue_ms`` (their
    difference) is time spent waiting behind other clients' requests —
    the quantity contention creates.
    """

    client: str
    label: str
    index: int
    disk: int
    arrival_ms: float
    start_ms: float
    completion_ms: float
    service_ms: float
    n_slices: int
    n_runs: int
    n_blocks: int
    n_cells: int
    seek_ms: float
    rotation_ms: float
    transfer_ms: float
    switch_ms: float

    @property
    def latency_ms(self) -> float:
        return self.completion_ms - self.arrival_ms

    @property
    def queue_ms(self) -> float:
        return self.latency_ms - self.service_ms


@dataclass(frozen=True)
class DriveStats:
    """Aggregate servicing done by one drive over the run."""

    disk: int
    busy_ms: float
    served_slices: int
    served_blocks: int

    def utilization(self, makespan_ms: float) -> float:
        return self.busy_ms / makespan_ms if makespan_ms > 0 else 0.0


def _latency_stats(values: np.ndarray) -> dict:
    if not values.size:
        return {}
    out = {
        "mean": float(values.mean()),
        "min": float(values.min()),
        "max": float(values.max()),
    }
    out.update(
        {f"p{p}": float(np.percentile(values, p)) for p in _PCTS}
    )
    return out


@dataclass(frozen=True)
class TrafficReport:
    """Results of one traffic simulation."""

    traces: tuple[QueryTrace, ...]
    drives: tuple[DriveStats, ...]
    makespan_ms: float
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # record access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def client_names(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for tr in self.traces:
            seen.setdefault(tr.client, None)
        return tuple(seen)

    def for_client(self, name: str) -> tuple[QueryTrace, ...]:
        return tuple(tr for tr in self.traces if tr.client == name)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def _values(self, traces, attr: str) -> np.ndarray:
        return np.asarray(
            [getattr(tr, attr) for tr in traces], dtype=np.float64
        )

    def throughput_qps(self) -> float:
        """Completed queries per simulated second over the makespan."""
        if self.makespan_ms <= 0:
            return 0.0
        return len(self.traces) / (self.makespan_ms / 1000.0)

    def percentile(self, p: float, attr: str = "latency_ms") -> float:
        vals = self._values(self.traces, attr)
        return float(np.percentile(vals, p)) if vals.size else 0.0

    def _stats_for(self, traces) -> dict:
        lat = self._values(traces, "latency_ms")
        blocks = int(self._values(traces, "n_blocks").sum())
        span_ms = (
            max(tr.completion_ms for tr in traces) if traces else 0.0
        )
        out = {
            "n_queries": len(traces),
            "throughput_qps": (
                len(traces) / (span_ms / 1000.0) if span_ms > 0 else 0.0
            ),
            "served_blocks": blocks,
            "mb_per_s": (
                blocks * 512 / 1e6 / (span_ms / 1000.0)
                if span_ms > 0 else 0.0
            ),
            "latency_ms": _latency_stats(lat),
            "mean_service_ms": float(
                self._values(traces, "service_ms").mean()
            ) if traces else 0.0,
            "mean_queue_ms": float(
                self._values(traces, "queue_ms").mean()
            ) if traces else 0.0,
        }
        return out

    def aggregate(self) -> dict:
        """Whole-run summary across every client."""
        out = self._stats_for(self.traces)
        out["makespan_ms"] = float(self.makespan_ms)
        out["throughput_qps"] = self.throughput_qps()
        return out

    def per_client(self) -> dict:
        return {
            name: self._stats_for(self.for_client(name))
            for name in self.client_names()
        }

    def per_drive(self) -> list[dict]:
        return [
            {
                "disk": d.disk,
                "busy_ms": float(d.busy_ms),
                "served_slices": int(d.served_slices),
                "served_blocks": int(d.served_blocks),
                "utilization": float(d.utilization(self.makespan_ms)),
            }
            for d in self.drives
        ]

    def cache_stats(self) -> dict | list | None:
        """Shared buffer-pool snapshot(s) the engine recorded, if any.

        ``None`` when the run had no pool attached (the meta — and so
        the JSON — then stays identical to an uncached run).
        """
        return self.meta.get("cache")

    # ------------------------------------------------------------------
    # serialisation / rendering
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "meta": dict(self.meta),
            "makespan_ms": float(self.makespan_ms),
            "aggregate": self.aggregate(),
            "clients": self.per_client(),
            "drives": self.per_drive(),
            "traces": [asdict(tr) for tr in self.traces],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render_table(self) -> str:
        """Per-client stats table plus a drive utilisation table."""
        headers = ["client", "queries", "qps", "mean ms", "p50", "p95",
                   "p99", "blocks"]

        def fmt(lat: dict, key: str) -> str:
            # latency stats are absent when no traces were collected
            return f"{lat[key]:.2f}" if key in lat else "-"

        def row(label: str, st: dict) -> list:
            lat = st["latency_ms"]
            return [
                label,
                st["n_queries"],
                f"{st['throughput_qps']:.2f}",
                fmt(lat, "mean"),
                fmt(lat, "p50"),
                fmt(lat, "p95"),
                fmt(lat, "p99"),
                st["served_blocks"],
            ]

        rows = [
            row(name, st) for name, st in self.per_client().items()
        ]
        rows.append(row("TOTAL", self.aggregate()))
        parts = [render_table(headers, rows)]
        drows = [
            [
                f"disk{d['disk']}",
                f"{d['busy_ms']:.1f}",
                d["served_slices"],
                d["served_blocks"],
                f"{d['utilization']:.1%}",
            ]
            for d in self.per_drive()
        ]
        parts.append(render_table(
            ["drive", "busy ms", "slices", "blocks", "util"], drows
        ))
        cache = self.cache_stats()
        if cache is not None:
            crows = [
                [
                    c["policy"],
                    c["prefetch"],
                    c["capacity_blocks"],
                    c["occupancy"],
                    f"{c['stats']['hit_ratio']:.1%}",
                    f"{c['stats']['prefetch_accuracy']:.1%}",
                    c["stats"]["evictions"],
                ]
                for c in (cache if isinstance(cache, list) else [cache])
            ]
            parts.append(render_table(
                ["cache", "prefetch", "capacity", "used", "hit%",
                 "pf acc", "evict"], crows
            ))
        return "\n\n".join(parts)

    def __str__(self) -> str:
        title = (
            f"[traffic] {len(self.traces)} queries, "
            f"{self.throughput_qps():.2f} q/s over "
            f"{self.makespan_ms:.1f} ms"
        )
        return f"{title}\n{self.render_table()}"
