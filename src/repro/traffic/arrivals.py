"""Seeded arrival processes for traffic clients.

Every process is a *stateless specification*: one instance can be shared
by many clients, and all randomness comes from the generator each client
hands in (there is no wall-clock anywhere — times are simulated
milliseconds).  Two families exist:

* **Closed-loop** (:class:`ClosedLoop`): the client keeps one query
  outstanding and submits the next one ``think_ms`` after the previous
  completion — the load model of interactive users and of the paper's
  own one-query-at-a-time methodology (zero think time saturates the
  drive with a single stream).
* **Open-loop** (:class:`PoissonArrivals`, :class:`BurstyArrivals`):
  submission times are independent of completions, so queues build up
  when the drive falls behind.  Poisson models a large population of
  independent requesters; the bursty process is a batch-Poisson
  (Poisson burst starts, geometrically sized bursts) that models flash
  crowds hitting the same dataset.

Determinism: given the same per-client generator, :meth:`arrivals`
yields the same times regardless of what the rest of the simulation
does; the engine pulls the iterator only at arrival events, which occur
in fixed per-client order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import QueryError

__all__ = ["ArrivalProcess", "ClosedLoop", "PoissonArrivals",
           "BurstyArrivals"]


class ArrivalProcess:
    """Base class; subclasses are either closed- or open-loop."""

    #: closed-loop processes schedule from completions, not a stream
    closed: bool = False

    def arrivals(self, rng: np.random.Generator) -> Iterator[float]:
        """Infinite iterator of absolute submission times (ms)."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-friendly parameters (recorded in report metadata)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ClosedLoop(ArrivalProcess):
    """One query outstanding; resubmit ``think_ms`` after completion.

    ``initial_delay_ms`` staggers the first submission (all clients start
    at 0 by default, which is the worst-case stampede).
    """

    think_ms: float = 0.0
    initial_delay_ms: float = 0.0
    closed = True

    def __post_init__(self) -> None:
        if self.think_ms < 0 or self.initial_delay_ms < 0:
            raise QueryError("think/initial delay must be >= 0")

    def first_arrival(self) -> float:
        return float(self.initial_delay_ms)

    def next_after_completion(self, completion_ms: float) -> float:
        return completion_ms + float(self.think_ms)

    def describe(self) -> dict:
        return {
            "model": "closed",
            "think_ms": float(self.think_ms),
            "initial_delay_ms": float(self.initial_delay_ms),
        }


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson stream: exponential interarrivals at
    ``rate_qps`` queries per (simulated) second, starting at
    ``start_ms``."""

    rate_qps: float
    start_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise QueryError("rate_qps must be > 0")

    def arrivals(self, rng: np.random.Generator) -> Iterator[float]:
        mean_ms = 1000.0 / float(self.rate_qps)
        t = float(self.start_ms)
        while True:
            t += float(rng.exponential(mean_ms))
            yield t

    def describe(self) -> dict:
        return {
            "model": "poisson",
            "rate_qps": float(self.rate_qps),
            "start_ms": float(self.start_ms),
        }


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Batch-Poisson flash-crowd stream.

    Burst *starts* form a Poisson process at ``burst_rate_per_s``; each
    burst contains ``Geometric(1/mean_burst)`` queries (mean
    ``mean_burst``) spaced ``intra_ms`` apart.  The effective query rate
    is ``burst_rate_per_s * mean_burst``.
    """

    burst_rate_per_s: float
    mean_burst: float = 4.0
    intra_ms: float = 0.5
    start_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.burst_rate_per_s <= 0:
            raise QueryError("burst_rate_per_s must be > 0")
        if self.mean_burst < 1:
            raise QueryError("mean_burst must be >= 1")
        if self.intra_ms < 0:
            raise QueryError("intra_ms must be >= 0")

    def arrivals(self, rng: np.random.Generator) -> Iterator[float]:
        mean_gap_ms = 1000.0 / float(self.burst_rate_per_s)
        t = float(self.start_ms)
        last = t
        while True:
            t += float(rng.exponential(mean_gap_ms))
            size = int(rng.geometric(1.0 / float(self.mean_burst)))
            for i in range(size):
                # a long burst can outlast the gap to the next burst
                # start; emission stays non-decreasing (the overlapping
                # crowd just piles onto the tail)
                last = max(last, t + i * float(self.intra_ms))
                yield last

    def describe(self) -> dict:
        return {
            "model": "bursty",
            "burst_rate_per_s": float(self.burst_rate_per_s),
            "mean_burst": float(self.mean_burst),
            "intra_ms": float(self.intra_ms),
            "start_ms": float(self.start_ms),
        }
