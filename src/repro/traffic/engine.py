"""Discrete-event engine servicing many clients on shared drives.

The simulation advances through a single event heap keyed on simulated
milliseconds.  Clients submit queries according to their arrival process;
each query is prepared once by its client's :class:`StorageManager`
(coalescing + effective policy, exactly the one-shot path) and split into
*service slices* (:func:`repro.query.scheduler.slice_plan`).  Every drive
services one slice at a time from a FIFO queue, and a multi-slice query
re-enters the queue behind whatever arrived meanwhile — so requests from
different clients interleave at the drive rather than running whole
queries back-to-back, and a query's later slices resume from wherever
the contending traffic left the head.

Head position (``TrafficConfig.head``):

* ``"random"`` — every query starts from a uniformly random head
  position *pre-drawn from the submitting client's stream at submission
  time* and applied when its first slice is dispatched.  Pre-drawing
  keeps each client's random stream a pure function of its own
  submission order, so per-drive served-block totals are invariant
  under re-interleavings, while a lone zero-think closed-loop client
  consumes draws in exactly the order of
  :meth:`repro.api.QueryBatch.run` (query, head, query, head, ...) —
  the parity the regression tests pin.
* ``"carry"`` — the head stays wherever the previous request left it;
  idle gaps advance the drive clock (:meth:`DiskDrive.advance_clock`)
  so the platter keeps rotating while the queue is empty.

Caching: when a client's storage manager carries a
:class:`repro.cache.BufferPool`, queries are cache-filtered at
*submission* (inside :meth:`StorageManager.prepare`) and the missed
blocks are admitted — with their prefetched neighbors — when the last
slice completes, so concurrent clients sharing one pool interact the
way shared caches do: one client's miss work becomes another's hits,
and one client's scan can pollute everyone's working set.  Memory-served
blocks add their (bus-speed) service time to the query's completion
without occupying the drive.  Without a pool the engine is bit-identical
to the pre-cache behaviour.

Determinism: no wall-clock, no hash-order iteration; ties in the event
heap break by submission sequence number.  Same clients + same seeds
⇒ bit-identical :class:`TrafficReport`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.disk.drive import BatchResult, DiskDrive
from repro.errors import QueryError
from repro.query.executor import PreparedQuery
from repro.query.scheduler import slice_plan
from repro.traffic.clients import TrafficClient
from repro.traffic.stats import (
    DriveStats,
    QueryTrace,
    TrafficReport,
    describe_query,
)

__all__ = ["TrafficConfig", "TrafficSim"]


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the traffic engine.

    ``slice_runs`` bounds how many runs of one query the drive services
    before other queued requests may cut in; ``None`` services each
    query as one batch (the one-shot executor's behaviour, required for
    exact parity with :class:`StorageManager` timings).  ``horizon_ms``
    stops open-loop clients from *submitting* past the horizon (queries
    already submitted still finish).
    """

    slice_runs: int | None = 256
    head: str = "random"
    horizon_ms: float | None = None
    collect_traces: bool = True

    def __post_init__(self) -> None:
        if self.head not in ("random", "carry"):
            raise QueryError(f"unknown head mode {self.head!r}")
        if self.slice_runs is not None and self.slice_runs < 1:
            raise QueryError("slice_runs must be >= 1 or None")

    def describe(self) -> dict:
        return {
            "slice_runs": self.slice_runs,
            "head": self.head,
            "horizon_ms": self.horizon_ms,
        }


class _Job:
    """One submitted query moving through the drive queue."""

    __slots__ = ("cs", "query", "prepared", "slices", "next_slice",
                 "arrival_ms", "start_ms", "head_pos", "acc", "index")

    def __init__(self, cs, query, prepared, slices, arrival_ms,
                 head_pos, index):
        self.cs = cs
        self.query = query
        self.prepared: PreparedQuery = prepared
        self.slices = slices
        self.next_slice = 0
        self.arrival_ms = arrival_ms
        self.start_ms = arrival_ms
        self.head_pos = head_pos
        self.acc: BatchResult = BatchResult.empty()
        self.index = index


class _DriveState:
    """Per-drive FIFO queue plus servicing bookkeeping."""

    __slots__ = ("drive", "disk", "queue", "busy", "busy_ms",
                 "served_slices", "served_blocks")

    def __init__(self, drive: DiskDrive, disk: int):
        self.drive = drive
        self.disk = disk
        self.queue: deque[_Job] = deque()
        self.busy = False
        self.busy_ms = 0.0
        self.served_slices = 0
        self.served_blocks = 0


class _ClientState:
    """Mutable per-run bookkeeping for one client."""

    __slots__ = ("client", "issued", "completed", "stream", "stopped")

    def __init__(self, client: TrafficClient):
        self.client = client
        self.issued = 0
        self.completed = 0
        self.stream = None  # open-loop arrival iterator
        self.stopped = False  # open-loop horizon reached


class TrafficSim:
    """Run a set of :class:`TrafficClient` s to completion.

    Drives are discovered from each client's storage manager, so clients
    of different datasets contend exactly when their mappers live on the
    same :class:`DiskDrive` object (e.g. two layouts sharing one
    :class:`LogicalVolume`).
    """

    def __init__(self, clients, config: TrafficConfig | None = None,
                 meta: dict | None = None):
        self.clients = list(clients)
        if not self.clients:
            raise QueryError("traffic needs at least one client")
        names = [c.name for c in self.clients]
        if len(set(names)) != len(names):
            raise QueryError("client names must be unique")
        self.config = config or TrafficConfig()
        self.meta = dict(meta or {})

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def run(self) -> TrafficReport:
        cfg = self.config
        heap: list[tuple] = []
        seq = 0
        drives: dict[int, _DriveState] = {}
        drive_order: list[int] = []
        traces: list[QueryTrace] = []
        states = [_ClientState(c) for c in self.clients]

        def drive_state(cs: _ClientState) -> _DriveState:
            drive = cs.client.storage.volume.drive(
                cs.client.mapper.disk_index
            )
            key = id(drive)
            ds = drives.get(key)
            if ds is None:
                ds = _DriveState(drive, cs.client.mapper.disk_index)
                drives[key] = ds
                drive_order.append(key)
            return ds

        def push(t: float, kind: str, payload) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, seq, kind, payload))
            seq += 1

        def submit(cs: _ClientState, t: float) -> None:
            """Draw, prepare, and enqueue one query of ``cs`` at ``t``."""
            c = cs.client
            query = c.mix.draw(c.mapper.dims, c.rng, cs.issued)
            prepared = c.storage.prepare(c.mapper, query)
            ds = drive_state(cs)
            head_pos = (
                ds.drive.draw_position(c.rng)
                if cfg.head == "random" else None
            )
            if prepared.plan.n_runs == 0:
                # every block hit the cache at prepare time: memory
                # service only, never touches the drive or its queue
                # (the head draw above still happens, keeping the
                # client's stream draw-for-draw with the one-shot path)
                job = _Job(cs, query, prepared, [], t, head_pos,
                           cs.issued)
                cs.issued += 1
                push(t + prepared.cache_ms, "cache_done", (ds, job))
                return
            job = _Job(cs, query, prepared,
                       slice_plan(prepared.plan, cfg.slice_runs),
                       t, head_pos, cs.issued)
            cs.issued += 1
            ds.queue.append(job)
            maybe_start(ds, t)

        def schedule_next_open(cs: _ClientState) -> None:
            if cs.stopped or cs.issued >= cs.client.n_queries:
                return
            t_next = next(cs.stream)
            if cfg.horizon_ms is not None and t_next > cfg.horizon_ms:
                cs.stopped = True
                return
            push(t_next, "arrive", cs)

        def maybe_start(ds: _DriveState, t: float) -> None:
            if ds.busy or not ds.queue:
                return
            job = ds.queue.popleft()
            ds.busy = True
            drive = ds.drive
            if cfg.head == "carry":
                drive.advance_clock(t)
            if job.next_slice == 0:
                job.start_ms = t
                if job.head_pos is not None:
                    drive.reset(*job.head_pos)
            sl = job.slices[job.next_slice]
            job.next_slice += 1
            res = drive.service_runs(
                sl.starts, sl.lengths,
                policy=job.prepared.policy,
                window=job.cs.client.storage.window,
            )
            job.acc = job.acc + res
            ds.busy_ms += res.total_ms
            ds.served_slices += 1
            ds.served_blocks += res.n_blocks
            push(t + res.total_ms, "slice_done", (ds, job))

        def complete(ds: _DriveState, job: _Job, t_done: float) -> None:
            """Shared end-of-query bookkeeping (drive or cache path)."""
            nonlocal makespan
            cs = job.cs
            # admit the serviced blocks (plus prefetch) into the shared
            # pool; a no-op for cache-only jobs and uncached managers
            cs.client.storage.admit_prepared(job.prepared)
            cs.completed += 1
            makespan = max(makespan, t_done)
            if cfg.collect_traces:
                traces.append(self._trace(job, ds.disk, t_done))
            arrival = cs.client.arrival
            if arrival.closed and cs.issued < cs.client.n_queries:
                push(arrival.next_after_completion(t_done), "arrive", cs)

        # -- seed initial arrivals (client list order) ------------------
        for cs in states:
            arrival = cs.client.arrival
            if arrival.closed:
                push(arrival.first_arrival(), "arrive", cs)
            else:
                cs.stream = arrival.arrivals(cs.client.rng)
                schedule_next_open(cs)

        makespan = 0.0
        while heap:
            t, _, kind, payload = heapq.heappop(heap)
            if kind == "arrive":
                cs = payload
                if cs.issued >= cs.client.n_queries:
                    continue
                # open-loop: keep the stream flowing independently
                if not cs.client.arrival.closed:
                    submit(cs, t)
                    schedule_next_open(cs)
                else:
                    submit(cs, t)
            elif kind == "cache_done":
                ds, job = payload
                complete(ds, job, t)
            else:  # slice_done
                ds, job = payload
                ds.busy = False
                if job.next_slice < len(job.slices):
                    ds.queue.append(job)
                else:
                    # completion is billed the memory service time of
                    # the blocks the cache filter claimed at submission
                    # (zero without an attached pool)
                    complete(ds, job, t + job.prepared.cache_ms)
                maybe_start(ds, t)

        drive_stats = tuple(
            DriveStats(
                disk=drives[k].disk,
                busy_ms=drives[k].busy_ms,
                served_slices=drives[k].served_slices,
                served_blocks=drives[k].served_blocks,
            )
            for k in drive_order
        )
        meta = dict(self.meta)
        meta.setdefault("config", cfg.describe())
        meta.setdefault(
            "clients", [c.describe() for c in self.clients]
        )
        pools = []
        for c in self.clients:
            pool = getattr(c.storage, "cache", None)
            if pool is not None and pool.active \
                    and not any(pool is p for p in pools):
                pools.append(pool)
        if pools:
            # only present when a pool is attached, so uncached runs
            # keep their pre-cache JSON layout bit-for-bit
            meta.setdefault(
                "cache",
                pools[0].describe() if len(pools) == 1
                else [p.describe() for p in pools],
            )
        return TrafficReport(
            traces=tuple(traces),
            drives=drive_stats,
            makespan_ms=makespan,
            meta=meta,
        )

    @staticmethod
    def _trace(job: _Job, disk: int, completion_ms: float) -> QueryTrace:
        acc = job.acc
        prepared = job.prepared
        return QueryTrace(
            client=job.cs.client.name,
            label=describe_query(job.query),
            index=job.index,
            disk=disk,
            arrival_ms=job.arrival_ms,
            start_ms=job.start_ms,
            completion_ms=completion_ms,
            service_ms=acc.total_ms + prepared.cache_ms,
            n_slices=len(job.slices),
            n_runs=acc.n_requests + prepared.cache_runs,
            n_blocks=acc.n_blocks + prepared.cache_hits,
            n_cells=prepared.n_cells,
            seek_ms=acc.seek_ms,
            rotation_ms=acc.rotation_ms,
            transfer_ms=acc.transfer_ms,
            switch_ms=acc.switch_ms,
        )
