"""Discrete-event engine servicing many clients on shared drives.

The simulation advances through a single event heap keyed on simulated
milliseconds.  Clients submit queries according to their arrival process;
each query is prepared once by its client's :class:`StorageManager`
(coalescing + effective policy, exactly the one-shot path) and split into
*service slices* (:func:`repro.query.scheduler.slice_plan`).  Every drive
services one slice at a time from a FIFO queue, and a multi-slice query
re-enters the queue behind whatever arrived meanwhile — so requests from
different clients interleave at the drive rather than running whole
queries back-to-back, and a query's later slices resume from wherever
the contending traffic left the head.

Sharded datasets (whose managers prepare a
:class:`~repro.query.scatter.ShardedPrepared` of per-disk sub-plans)
occupy *several* drive queues at once: every sub-plan's slices queue on
the drive that owns its chunk, drives drain concurrently, and the query
completes when its **last** disk's portion finishes (each disk's last
slice plus that disk's share of cache memory time) — the traffic
analogue of the batch executor's per-disk busy + makespan accounting.
A one-sub prepared query follows exactly the single-drive path below,
which keeps 1-shard runs bit-identical to unsharded ones.

Head position (``TrafficConfig.head``):

* ``"random"`` — every query starts from a uniformly random head
  position *pre-drawn from the submitting client's stream at submission
  time* (one draw per involved disk, in sub-plan order) and applied when
  its first slice on that drive is dispatched.  Pre-drawing keeps each
  client's random stream a pure function of its own submission order,
  so per-drive served-block totals are invariant under re-interleavings,
  while a lone zero-think closed-loop client consumes draws in exactly
  the order of :meth:`repro.api.QueryBatch.run` (query, head, query,
  head, ...) — the parity the regression tests pin.
* ``"carry"`` — the head stays wherever the previous request left it;
  idle gaps advance the drive clock (:meth:`DiskDrive.advance_clock`)
  so the platter keeps rotating while the queue is empty.

Caching: when a client's storage manager carries a
:class:`repro.cache.BufferPool`, queries are cache-filtered at
*submission* (inside :meth:`StorageManager.prepare`) and the missed
blocks are admitted — with their prefetched neighbors — when the last
slice completes, so concurrent clients sharing one pool interact the
way shared caches do: one client's miss work becomes another's hits,
and one client's scan can pollute everyone's working set.  Memory-served
blocks add their (bus-speed) service time to the query's completion
without occupying the drive.  Without a pool the engine is bit-identical
to the pre-cache behaviour.

Failures: a :class:`~repro.replica.failures.FailureSchedule` passed as
``TrafficSim(..., failures=...)`` kills and revives member disks at
fixed simulated times.  A killed disk stops servicing immediately: its
queued jobs — and the job whose slice was in flight, whose partial work
is lost — re-dispatch through the owning client's replicated storage
manager (:meth:`ReplicatedStorageManager.failover_sub`), restarting the
whole sub-plan on a surviving copy's disk; queries submitted afterwards
avoid dead disks at prepare time.  A client without replicas whose disk
dies raises — the engine never silently drops queries.  The report's
meta gains gated ``"failures"`` (the schedule plus re-dispatch totals)
and ``"replicas"`` (the managers' placement + routing snapshots)
entries; without a schedule and without replicated clients both keys
are absent, keeping the JSON bit-identical to pre-replica runs.

Determinism: no wall-clock, no hash-order iteration; ties in the event
heap break by submission sequence number.  Same clients + same seeds
⇒ bit-identical :class:`TrafficReport`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from time import perf_counter

from repro.disk.drive import BatchResult, DiskDrive
from repro.errors import QueryError
from repro.obs.span import record_traffic_query
from repro.perf.profile import PROBES
from repro.query.scatter import subplans
from repro.query.scheduler import slice_plan
from repro.traffic.clients import TrafficClient
from repro.traffic.stats import (
    DriveStats,
    QueryTrace,
    TrafficReport,
    describe_query,
)

__all__ = ["TrafficConfig", "TrafficSim"]


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the traffic engine.

    ``slice_runs`` bounds how many runs of one query the drive services
    before other queued requests may cut in; ``None`` services each
    query as one batch (the one-shot executor's behaviour, required for
    exact parity with :class:`StorageManager` timings).  ``horizon_ms``
    stops open-loop clients from *submitting* past the horizon (queries
    already submitted still finish).
    """

    slice_runs: int | None = 256
    head: str = "random"
    horizon_ms: float | None = None
    collect_traces: bool = True

    def __post_init__(self) -> None:
        if self.head not in ("random", "carry"):
            raise QueryError(f"unknown head mode {self.head!r}")
        if self.slice_runs is not None and self.slice_runs < 1:
            raise QueryError("slice_runs must be >= 1 or None")

    def describe(self) -> dict:
        return {
            "slice_runs": self.slice_runs,
            "head": self.head,
            "horizon_ms": self.horizon_ms,
        }


class _Query:
    """One submitted query, possibly fanned out over several drives.

    ``disk_cache`` holds each involved disk's share of the memory
    service time (the cache hits its sub-plans carried); a disk's
    portion of the query completes ``disk_cache[disk]`` after its last
    slice, and the query completes at the max over disks (``done_ms``)
    — the traffic analogue of the batch executor's per-disk busy +
    makespan accounting, coinciding with it exactly at one sub-plan.
    """

    __slots__ = ("cs", "query", "prepared", "remaining", "arrival_ms",
                 "start_ms", "started", "acc", "index", "disk",
                 "cache_ms", "cache_hits", "cache_runs", "n_slices",
                 "disk_cache", "disk_remaining", "done_ms",
                 "failover_subs", "abandoned", "obs")

    def __init__(self, cs, query, prepared, arrival_ms, index):
        self.cs = cs
        self.query = query
        self.prepared = prepared
        self.remaining = 0
        self.arrival_ms = arrival_ms
        self.start_ms = arrival_ms
        self.started = False
        self.acc: BatchResult = BatchResult.empty()
        self.index = index
        # both prepared forms expose the same aggregate surface
        # (ShardedPrepared sums its sub-plans)
        self.disk = prepared.disk_index
        self.cache_ms = prepared.cache_ms
        self.cache_hits = prepared.cache_hits
        self.cache_runs = prepared.cache_runs
        self.n_slices = 0
        self.disk_cache: dict[int, float] = {}
        self.disk_remaining: dict[int, int] = {}
        self.done_ms = arrival_ms
        # sub-plans re-dispatched onto replicas after a disk failure
        # (admitted to the cache at completion alongside the original),
        # and the dead-disk sub-plans they replaced (whose blocks were
        # never fully serviced, so they must NOT be admitted — even if
        # the disk is revived before the query completes)
        self.failover_subs: list = []
        self.abandoned: list = []
        # telemetry scratchpad (None when the client's storage carries
        # no Telemetry): the cache shares as captured at submission
        # (before billing zeroes them), serviced slices, and failover
        # events — distilled into one span tree at completion
        self.obs: dict | None = None


class _Job:
    """One sub-plan of a query moving through one drive's queue.

    ``disk`` is the sub-plan's member index on its OWN client's volume —
    the key of the query's ``disk_cache``/``disk_remaining`` maps.  (A
    shared :class:`_DriveState` records whatever index the first client
    discovered the drive under, which need not match.)
    """

    __slots__ = ("qs", "slices", "next_slice", "head_pos", "policy",
                 "disk", "source", "sub")

    def __init__(self, qs: _Query, slices, head_pos, policy: str,
                 disk: int, source=None, sub=None):
        self.qs = qs
        self.slices = slices
        self.next_slice = 0
        self.head_pos = head_pos
        self.policy = policy
        self.disk = disk
        # the sub-plan's SubSource on a replicated manager (None
        # otherwise) — what failover re-dispatch re-plans from — and
        # the PreparedQuery itself, marked abandoned on re-dispatch
        self.source = source
        self.sub = sub


class _DriveState:
    """Per-drive FIFO queue plus servicing bookkeeping."""

    __slots__ = ("drive", "disk", "queue", "busy", "busy_ms",
                 "served_slices", "served_blocks", "failed", "current",
                 "epoch")

    def __init__(self, drive: DiskDrive, disk: int):
        self.drive = drive
        self.disk = disk
        self.queue: deque[_Job] = deque()
        self.busy = False
        self.busy_ms = 0.0
        self.served_slices = 0
        self.served_blocks = 0
        self.failed = False
        self.current: _Job | None = None
        # bumped on failure so in-flight slice_done events of the dead
        # drive are recognised as stale and ignored
        self.epoch = 0


class _ClientState:
    """Mutable per-run bookkeeping for one client."""

    __slots__ = ("client", "issued", "completed", "stream", "stopped")

    def __init__(self, client: TrafficClient):
        self.client = client
        self.issued = 0
        self.completed = 0
        self.stream = None  # open-loop arrival iterator
        self.stopped = False  # open-loop horizon reached


class TrafficSim:
    """Run a set of :class:`TrafficClient` s to completion.

    Drives are discovered from each prepared query's member disks on the
    client's volume, so clients of different datasets contend exactly
    when their plans land on the same :class:`DiskDrive` object (e.g.
    two layouts sharing one :class:`LogicalVolume`), and a sharded
    client occupies one queue per involved member disk.
    """

    def __init__(self, clients, config: TrafficConfig | None = None,
                 meta: dict | None = None, failures=None):
        self.clients = list(clients)
        if not self.clients:
            raise QueryError("traffic needs at least one client")
        names = [c.name for c in self.clients]
        if len(set(names)) != len(names):
            raise QueryError("client names must be unique")
        self.config = config or TrafficConfig()
        self.meta = dict(meta or {})
        if failures is None:
            self.failures = None
        else:
            from repro.replica.failures import FailureSchedule

            self.failures = FailureSchedule.coerce(failures)

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------

    def run(self) -> TrafficReport:
        cfg = self.config
        # wall-clock probes only (meta-gated, never simulated time), so
        # determinism of the report body is untouched
        probing = PROBES.enabled
        if probing:
            wall_t0 = perf_counter()
            probe_mark = PROBES.snapshot()
        n_events = 0
        heap: list[tuple] = []
        seq = 0
        drives: dict[int, _DriveState] = {}
        drive_order: list[int] = []
        traces: list[QueryTrace] = []
        states = [_ClientState(c) for c in self.clients]

        dead_ids: set[int] = set()  # id(drive) of currently dead drives
        n_redispatched = 0
        n_dropped_writes = 0

        def drive_state(cs: _ClientState, disk: int) -> _DriveState:
            drive = cs.client.storage.volume.drive(disk)
            key = id(drive)
            ds = drives.get(key)
            if ds is None:
                ds = _DriveState(drive, disk)
                ds.failed = key in dead_ids
                drives[key] = ds
                drive_order.append(key)
            return ds

        def push(t: float, kind: str, payload) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, seq, kind, payload))
            seq += 1

        def submit(cs: _ClientState, t: float) -> None:
            """Draw, prepare, and enqueue one query of ``cs`` at ``t``."""
            c = cs.client
            query = c.mix.draw(c.mapper.dims, c.rng, cs.issued)
            # the client routes its own submissions: reads through the
            # storage manager's prepare (the one-shot path), ingest
            # batches through the client's pipeline — identical calls
            # for a plain client, so read-only runs are untouched
            prepared = c.prepare(query)
            subs = subplans(prepared)
            # one head draw per involved disk, in sub-plan order — drawn
            # at submission even for all-hit queries, keeping the
            # client's stream draw-for-draw with the one-shot path
            heads: dict[int, tuple | None] = {}
            disk_states: dict[int, _DriveState] = {}
            for sub in subs:
                disk = sub.disk_index
                if disk not in disk_states:
                    ds = drive_state(cs, disk)
                    disk_states[disk] = ds
                    heads[disk] = (
                        ds.drive.draw_position(c.rng)
                        if cfg.head == "random" else None
                    )
            qs = _Query(cs, query, prepared, t, cs.issued)
            cs.issued += 1
            sources = getattr(prepared, "sources", None)
            real = []
            for i, sub in enumerate(subs):
                disk = sub.disk_index
                qs.disk_cache[disk] = (
                    qs.disk_cache.get(disk, 0.0) + sub.cache_ms
                )
                if sub.plan.n_runs > 0:
                    qs.disk_remaining[disk] = (
                        qs.disk_remaining.get(disk, 0) + 1
                    )
                    real.append((sub, sources[i] if sources else None))
            tele = getattr(c.storage, "obs", None)
            if tele is not None:
                # snapshot the cache shares BEFORE billing zeroes them
                # (plus the per-disk hit/run counts behind them, which
                # the monitor's cache-hit-ratio column consumes)
                hits: dict[int, int] = {}
                hit_runs: dict[int, int] = {}
                for sub in subs:
                    disk = sub.disk_index
                    hits[disk] = hits.get(disk, 0) + sub.cache_hits
                    hit_runs[disk] = (
                        hit_runs.get(disk, 0) + sub.cache_runs
                    )
                qs.obs = {"tele": tele, "cache": dict(qs.disk_cache),
                          "hits": hits, "runs": hit_runs,
                          "slices": [], "events": []}
            # a disk whose sub-plans all hit the cache is done after its
            # memory service alone (it never occupies the drive queue).
            # disk_cache holds UNBILLED memory time: every billing site
            # zeroes what it bills, so a failover that re-opens a disk
            # later never double-counts already-billed cache time
            for disk, cache_ms in qs.disk_cache.items():
                if disk not in qs.disk_remaining:
                    qs.done_ms = max(qs.done_ms, t + cache_ms)
                    qs.disk_cache[disk] = 0.0
            if not real:
                # every block of every sub-plan hit the cache at prepare
                # time: the query completes at its slowest disk's memory
                # service (the batch path's makespan)
                push(qs.done_ms, "cache_done", qs)
                return
            qs.remaining = len(qs.disk_remaining)
            claimed: set[int] = set()
            for sub, source in real:
                disk = sub.disk_index
                ds = disk_states[disk]
                if ds.failed:
                    # a replicated manager never routes here (prepare
                    # skips failed disks), so this client has no copies
                    # to divert to — fail loudly, never drop the query
                    raise QueryError(
                        f"disk {disk} has failed and client "
                        f"{c.name!r} has no replicas to fail over to"
                    )
                # the first sub-plan per drive applies the head draw;
                # later sub-plans of the same query on that drive resume
                # from wherever it ends up (the batch path's sequence)
                head = heads[disk] if disk not in claimed else None
                claimed.add(disk)
                job = _Job(qs, slice_plan(sub.plan, cfg.slice_runs),
                           head, sub.policy, disk, source=source,
                           sub=sub)
                qs.n_slices += len(job.slices)
                ds.queue.append(job)
                maybe_start(ds, t)

        def schedule_next_open(cs: _ClientState) -> None:
            if cs.stopped or cs.issued >= cs.client.n_queries:
                return
            t_next = next(cs.stream)
            if cfg.horizon_ms is not None and t_next > cfg.horizon_ms:
                cs.stopped = True
                return
            push(t_next, "arrive", cs)

        def maybe_start(ds: _DriveState, t: float) -> None:
            if ds.failed or ds.busy or not ds.queue:
                return
            job = ds.queue.popleft()
            ds.busy = True
            ds.current = job
            drive = ds.drive
            if cfg.head == "carry":
                drive.advance_clock(t)
            qs = job.qs
            if job.next_slice == 0:
                if not qs.started:
                    # events pop in time order, so the first dispatch of
                    # any sub-plan is the query's earliest service start
                    qs.started = True
                    qs.start_ms = t
                if job.head_pos is not None:
                    drive.reset(*job.head_pos)
            sl = job.slices[job.next_slice]
            job.next_slice += 1
            res = drive.service_runs(
                sl.starts, sl.lengths,
                policy=job.policy,
                window=qs.cs.client.storage.window,
            )
            # the result is counted at slice_done, not here: a slice
            # interrupted by a disk failure is LOST work and must not
            # inflate the dead drive's served totals or the query's
            # accumulated service (its stale slice_done is discarded)
            push(t + res.total_ms, "slice_done",
                 (ds, job, ds.epoch, res))

        def complete(qs: _Query, t_done: float) -> None:
            """Shared end-of-query bookkeeping (drive or cache path)."""
            nonlocal makespan
            cs = qs.cs
            # admit the serviced blocks (plus prefetch) into the shared
            # pool; a no-op for cache-only jobs and uncached managers.
            # Sub-plans abandoned by failover were never fully serviced
            # (their frames were dropped with the disk), so they are
            # skipped even if their disk has since been revived.
            storage = cs.client.storage
            if qs.abandoned:
                for sub in subplans(qs.prepared):
                    if not any(sub is a for a in qs.abandoned):
                        storage.admit_prepared(sub)
            else:
                storage.admit_prepared(qs.prepared)
            for sub in qs.failover_subs:
                if not any(sub is a for a in qs.abandoned):
                    storage.admit_prepared(sub)
            cs.completed += 1
            makespan = max(makespan, t_done)
            if cfg.collect_traces:
                traces.append(self._trace(qs, t_done))
            if qs.obs is not None:
                record_traffic_query(
                    qs.obs["tele"],
                    client=cs.client.name,
                    label=describe_query(qs.query),
                    index=qs.index,
                    n_cells=qs.prepared.n_cells,
                    policy=qs.prepared.policy,
                    arrival_ms=qs.arrival_ms,
                    start_ms=qs.start_ms,
                    done_ms=t_done,
                    prepared=qs.prepared,
                    cache=qs.obs["cache"],
                    slices=qs.obs["slices"],
                    events=qs.obs["events"],
                    hits=qs.obs["hits"],
                    runs=qs.obs["runs"],
                )
            arrival = cs.client.arrival
            if arrival.closed and cs.issued < cs.client.n_queries:
                push(arrival.next_after_completion(t_done), "arrive", cs)

        def redispatch(job: _Job, t: float, dead: int) -> None:
            """Restart one dead disk's sub-plan on a surviving copy."""
            nonlocal n_redispatched, n_dropped_writes
            qs = job.qs
            c = qs.cs.client
            storage = c.storage
            if getattr(job.source, "is_write", False):
                # a write sub targets ONE copy; the surviving copies'
                # subs of the same flush already carry the batch, so a
                # dead copy's write is DROPPED (rebuild restores it),
                # never replayed elsewhere.  No live copy left means
                # acknowledged data would be lost — that raises.
                rm = getattr(storage, "replica_map", None)
                live = (
                    rm.live_copies(job.source.chunk, storage.failed)
                    if rm is not None else ()
                )
                if not live:
                    raise QueryError(
                        f"disk {dead} failed mid-flush and chunk "
                        f"{job.source.chunk} has no surviving copy: "
                        f"an acknowledged ingest batch would be lost"
                    )
                n_dropped_writes += 1
                if qs.obs is not None:
                    qs.obs["events"].append(
                        ("dropped_write", t, job.disk, None)
                    )
                if job.sub is not None:
                    qs.abandoned.append(job.sub)
                old = job.disk
                qs.disk_remaining[old] -= 1
                if qs.disk_remaining[old] == 0:
                    del qs.disk_remaining[old]
                    qs.done_ms = max(
                        qs.done_ms, t + qs.disk_cache.get(old, 0.0)
                    )
                    qs.disk_cache[old] = 0.0
                    qs.remaining -= 1
                    if qs.remaining == 0:
                        push(qs.done_ms, "cache_done", qs)
                return
            if job.source is None or not hasattr(storage,
                                                "failover_sub"):
                raise QueryError(
                    f"disk {dead} failed mid-run and client "
                    f"{c.name!r} has no replicas to fail over to"
                )
            source, sub = storage.failover_sub(job.source)
            n_redispatched += 1
            if qs.obs is not None:
                qs.obs["events"].append(
                    ("failover", t, job.disk, sub.disk_index)
                )
                qs.obs["cache"][sub.disk_index] = (
                    qs.obs["cache"].get(sub.disk_index, 0.0)
                    + sub.cache_ms
                )
                qs.obs["hits"][sub.disk_index] = (
                    qs.obs["hits"].get(sub.disk_index, 0)
                    + sub.cache_hits
                )
                qs.obs["runs"][sub.disk_index] = (
                    qs.obs["runs"].get(sub.disk_index, 0)
                    + sub.cache_runs
                )
            if job.sub is not None:
                qs.abandoned.append(job.sub)
            old = job.disk
            qs.disk_remaining[old] -= 1
            if qs.disk_remaining[old] == 0:
                # the dead disk's portion is over: bill its (already
                # served) memory time and release the pending slot
                del qs.disk_remaining[old]
                qs.done_ms = max(
                    qs.done_ms, t + qs.disk_cache.get(old, 0.0)
                )
                qs.disk_cache[old] = 0.0
                qs.remaining -= 1
            new = sub.disk_index
            qs.disk_cache[new] = (
                qs.disk_cache.get(new, 0.0) + sub.cache_ms
            )
            qs.failover_subs.append(sub)
            if sub.plan.n_runs > 0:
                if new not in qs.disk_remaining:
                    qs.disk_remaining[new] = 0
                    qs.remaining += 1
                qs.disk_remaining[new] += 1
                # no head draw: the replica drive resumes from wherever
                # contending traffic left it (a drawn head would also
                # perturb the client's pre-kill stream)
                nj = _Job(qs, slice_plan(sub.plan, cfg.slice_runs),
                          None, sub.policy, new, source=source,
                          sub=sub)
                qs.n_slices += len(nj.slices)
                target = drive_state(qs.cs, new)
                target.queue.append(nj)
                maybe_start(target, t)
            else:
                # the whole failover sub hit the cache at re-prepare
                if new not in qs.disk_remaining:
                    qs.done_ms = max(
                        qs.done_ms, t + qs.disk_cache[new]
                    )
                    qs.disk_cache[new] = 0.0
                if qs.remaining == 0:
                    push(qs.done_ms, "cache_done", qs)

        def storages_with(attr: str):
            seen: list = []
            for cs in states:
                st = cs.client.storage
                if hasattr(st, attr) and not any(
                    st is s for s in seen
                ):
                    seen.append(st)
            return seen

        def check_member(disk: int) -> None:
            # a typo'd disk index must not silently measure the healthy
            # path while the meta reports a failure was injected
            if not any(
                disk < cs.client.storage.volume.n_disks
                for cs in states
            ):
                raise QueryError(
                    f"failure schedule names disk {disk}, but no "
                    f"client volume has that many member disks"
                )

        def notify_monitors(t: float, action: str, disk: int) -> None:
            """Report one capacity event to every attached monitor
            (after the storages applied it, so ``failed`` is current)."""
            seen: list = []
            for cs in states:
                st = cs.client.storage
                if disk >= st.volume.n_disks:
                    continue
                mon = getattr(getattr(st, "obs", None), "monitor", None)
                if mon is None or any(mon is m for m in seen):
                    continue
                seen.append(mon)
                total = st.volume.n_disks
                failed = getattr(st, "failed", None)
                n_failed = (len(failed) if failed is not None
                            else 1 if action == "kill" else 0)
                mon.record_disk_event(
                    t, action, disk, total - n_failed, total
                )

        def kill_member(disk: int, t: float) -> None:
            check_member(disk)
            # mark storages first, so failover re-prepares avoid the
            # dead disk (and caches drop its frames)
            for st in storages_with("fail_disk"):
                if disk < st.volume.n_disks:
                    st.fail_disk(disk)
            affected: list[_DriveState] = []
            for cs in states:
                vol = cs.client.storage.volume
                if disk < vol.n_disks:
                    key = id(vol.drive(disk))
                    dead_ids.add(key)
                    ds = drives.get(key)
                    if ds is not None and not ds.failed:
                        affected.append(ds)
            for ds in affected:
                ds.failed = True
                ds.epoch += 1  # in-flight slice_done becomes stale
                ds.busy = False
                jobs = list(ds.queue)
                if ds.current is not None:
                    # the in-flight slice's partial work is lost; the
                    # whole sub-plan restarts on a replica
                    jobs.insert(0, ds.current)
                ds.queue.clear()
                ds.current = None
                for job in jobs:
                    redispatch(job, t, disk)
            notify_monitors(t, "kill", disk)

        def revive_member(disk: int, t: float) -> None:
            check_member(disk)
            for st in storages_with("revive_disk"):
                if disk < st.volume.n_disks:
                    st.revive_disk(disk)
            for cs in states:
                vol = cs.client.storage.volume
                if disk < vol.n_disks:
                    key = id(vol.drive(disk))
                    dead_ids.discard(key)
                    ds = drives.get(key)
                    if ds is not None:
                        ds.failed = False
                        maybe_start(ds, t)
            notify_monitors(t, "revive", disk)

        # -- schedule failures (before arrivals: a kill at t applies
        #    ahead of any same-t submission) --------------------------
        if self.failures is not None:
            for ev in self.failures:
                push(ev.t_ms, "failure", ev)

        # -- seed initial arrivals (client list order) ------------------
        for cs in states:
            arrival = cs.client.arrival
            if arrival.closed:
                push(arrival.first_arrival(), "arrive", cs)
            else:
                cs.stream = arrival.arrivals(cs.client.rng)
                schedule_next_open(cs)

        makespan = 0.0
        while heap:
            t, _, kind, payload = heapq.heappop(heap)
            n_events += 1
            if kind == "arrive":
                cs = payload
                if cs.issued >= cs.client.n_queries:
                    continue
                # open-loop: keep the stream flowing independently
                if not cs.client.arrival.closed:
                    submit(cs, t)
                    schedule_next_open(cs)
                else:
                    submit(cs, t)
            elif kind == "cache_done":
                complete(payload, t)
            elif kind == "failure":
                if payload.action == "kill":
                    kill_member(payload.disk, t)
                else:
                    revive_member(payload.disk, t)
            else:  # slice_done
                ds, job, epoch, res = payload
                if epoch != ds.epoch:
                    # the drive died while this slice was in flight;
                    # the job was already re-dispatched at kill time
                    # and the slice's work is lost, never counted
                    continue
                jq = job.qs
                jq.acc = jq.acc + res
                if jq.obs is not None:
                    # the slice was dispatched at t - res.total_ms
                    jq.obs["slices"].append((
                        job.disk, t - res.total_ms, res,
                        bool(getattr(job.sub, "is_write", False)),
                    ))
                ds.busy_ms += res.total_ms
                ds.served_slices += 1
                ds.served_blocks += res.n_blocks
                ds.busy = False
                ds.current = None
                if job.next_slice < len(job.slices):
                    ds.queue.append(job)
                else:
                    qs = job.qs
                    qs.disk_remaining[job.disk] -= 1
                    if qs.disk_remaining[job.disk] == 0:
                        # this disk's portion is done: bill its share of
                        # the memory service time (zero without a pool).
                        # The key is DELETED, not left at zero —
                        # disk_remaining must hold only disks with
                        # pending subs, or a later failover onto this
                        # disk would skip its qs.remaining increment and
                        # the query would never complete.
                        del qs.disk_remaining[job.disk]
                        qs.done_ms = max(
                            qs.done_ms, t + qs.disk_cache[job.disk]
                        )
                        qs.disk_cache[job.disk] = 0.0
                        qs.remaining -= 1
                        if qs.remaining == 0:
                            # the query completes when its LAST disk's
                            # last slice (plus that disk's cache time)
                            # finishes — the batch makespan rule
                            complete(qs, qs.done_ms)
                maybe_start(ds, t)

        drive_stats = tuple(
            DriveStats(
                disk=drives[k].disk,
                busy_ms=drives[k].busy_ms,
                served_slices=drives[k].served_slices,
                served_blocks=drives[k].served_blocks,
            )
            for k in drive_order
        )
        meta = dict(self.meta)
        meta.setdefault("config", cfg.describe())
        meta.setdefault(
            "clients", [c.describe() for c in self.clients]
        )
        pools = []
        for c in self.clients:
            pool = getattr(c.storage, "cache", None)
            if pool is not None and pool.active \
                    and not any(pool is p for p in pools):
                pools.append(pool)
        if pools:
            # only present when a pool is attached, so uncached runs
            # keep their pre-cache JSON layout bit-for-bit
            meta.setdefault(
                "cache",
                pools[0].describe() if len(pools) == 1
                else [p.describe() for p in pools],
            )
        pipelines = []
        for c in self.clients:
            p = getattr(c, "pipeline", None)
            if p is not None and not any(p is q for q in pipelines):
                pipelines.append(p)
        if self.failures is not None:
            # gated on a schedule being passed, so failure-free runs
            # keep their JSON layout bit-for-bit
            fail_meta = {
                "schedule": self.failures.describe()["events"],
                "redispatched_subs": n_redispatched,
            }
            if pipelines:
                # only under ingest clients: read-only failure runs keep
                # the PR 5 failures payload bit-for-bit
                fail_meta["dropped_write_subs"] = n_dropped_writes
            meta.setdefault("failures", fail_meta)
        if pipelines:
            # gated on an ingest client being present, so read-only
            # storms keep their pre-ingest JSON layout bit-for-bit
            meta.setdefault(
                "ingest",
                pipelines[0].describe() if len(pipelines) == 1
                else [p.describe() for p in pipelines],
            )
        replicated = []
        for c in self.clients:
            st = c.storage
            rm = getattr(st, "replica_map", None)
            if rm is not None and rm.k > 1 and not any(
                st is s for s in replicated
            ):
                replicated.append(st)
        if replicated:
            # gated on k > 1: single-copy managers stay bit-identical
            # to the sharded stack, meta included
            meta.setdefault(
                "replicas",
                replicated[0].describe_replicas()
                if len(replicated) == 1
                else [s.describe_replicas() for s in replicated],
            )
        teles = []
        for c in self.clients:
            tele = getattr(c.storage, "obs", None)
            if tele is not None and not any(tele is x for x in teles):
                teles.append(tele)
        if teles:
            # gated on a Telemetry being attached, so detached runs
            # keep their JSON layout bit-for-bit (a monitor-only
            # Telemetry describes to {} — its payload lives under
            # "monitor" instead, so the empty "obs" block is skipped)
            payloads = [p for p in (x.describe() for x in teles) if p]
            if payloads:
                meta.setdefault(
                    "obs",
                    payloads[0] if len(payloads) == 1 else payloads,
                )
            monitors = []
            for tele in teles:
                mon = getattr(tele, "monitor", None)
                if mon is not None and not any(
                    mon is m for m in monitors
                ):
                    monitors.append(mon)
            if monitors:
                meta.setdefault(
                    "monitor",
                    monitors[0].describe() if len(monitors) == 1
                    else [m.describe() for m in monitors],
                )
        if probing:
            # gated on the probes being enabled, so default runs keep
            # their JSON layout bit-for-bit
            PROBES.count("traffic_events", n_events)
            PROBES.add_time(
                "traffic_run_ms", (perf_counter() - wall_t0) * 1e3
            )
            meta.setdefault("perf", PROBES.delta(probe_mark))
        return TrafficReport(
            traces=tuple(traces),
            drives=drive_stats,
            makespan_ms=makespan,
            meta=meta,
        )

    @staticmethod
    def _trace(qs: _Query, completion_ms: float) -> QueryTrace:
        acc = qs.acc
        return QueryTrace(
            client=qs.cs.client.name,
            label=describe_query(qs.query),
            index=qs.index,
            disk=qs.disk,
            arrival_ms=qs.arrival_ms,
            start_ms=qs.start_ms,
            completion_ms=completion_ms,
            service_ms=acc.total_ms + qs.cache_ms,
            n_slices=qs.n_slices,
            n_runs=acc.n_requests + qs.cache_runs,
            n_blocks=acc.n_blocks + qs.cache_hits,
            n_cells=qs.prepared.n_cells,
            seek_ms=acc.seek_ms,
            rotation_ms=acc.rotation_ms,
            transfer_ms=acc.transfer_ms,
            switch_ms=acc.switch_ms,
        )
