"""Concurrent multi-client traffic simulation.

The one-shot executor (:mod:`repro.query.executor`) times a single query
on an idle drive; this package models *contention*: many clients issuing
beam/range queries concurrently against drives they share, with
queueing, slice-level interleaving, and per-client fairness statistics.

Quick tour::

    from repro.api import Dataset
    from repro.traffic import QueryMix, PoissonArrivals

    ds = Dataset.create((64, 64, 32), layout="multimap", seed=42)
    report = (
        ds.traffic()
        .clients(8, mix=QueryMix.beams(1, 2), queries=25)
        .run()
    )
    print(report.render_table())

Everything is seeded and wall-clock free: the same seeds produce a
bit-identical :class:`TrafficReport`.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoop,
    PoissonArrivals,
)
from repro.traffic.clients import (
    BeamDraw,
    QueryMix,
    RangeDraw,
    Replay,
    TrafficClient,
)
from repro.traffic.engine import TrafficConfig, TrafficSim
from repro.traffic.stats import DriveStats, QueryTrace, TrafficReport
from repro.traffic.storm import render_storm, run_storm

__all__ = [
    "ArrivalProcess",
    "BeamDraw",
    "BurstyArrivals",
    "ClosedLoop",
    "DriveStats",
    "PoissonArrivals",
    "QueryMix",
    "QueryTrace",
    "RangeDraw",
    "Replay",
    "TrafficClient",
    "TrafficConfig",
    "TrafficReport",
    "TrafficSim",
    "render_storm",
    "run_storm",
]
