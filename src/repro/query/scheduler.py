"""Request-batch preparation between the mapper and the drive.

The storage manager of the paper sorts the LBNs of linearised mappings in
ascending order before issuing them ("an easy optimization ... that
significantly improves performance in practice", §5.2) and issues
semi-sequential batches all at once for the drive's internal scheduler to
order.  This module holds those batch transforms plus the policy clamp
that keeps windowed SPTF off absurdly large batches (positioning is
irrelevant once a batch is thousands of near-sequential runs, and the
O(n·window) scheduler would dominate simulation time).
"""

from __future__ import annotations

import numpy as np

from repro.mappings.base import RequestPlan, coalesce_ranks

__all__ = [
    "coalesce_lbns",
    "merge_plan_runs",
    "effective_policy",
    "slice_plan",
]

#: beyond this many runs, SPTF batches degrade to an elevator pass
SPTF_RUN_LIMIT = 20_000


def coalesce_lbns(lbns: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort distinct block addresses and merge consecutive ones into runs."""
    lbns = np.unique(np.asarray(lbns, dtype=np.int64))
    return coalesce_ranks(lbns)


def merge_plan_runs(plan: RequestPlan, max_gap: int = 0) -> RequestPlan:
    """Merge nearby runs of a sorted plan into larger reads.

    ``max_gap`` is the largest hole (in blocks) worth reading through and
    discarding: re-positioning across a small gap costs at least the
    per-command overhead and risks a full missed revolution, while
    streaming through it costs only the gap's transfer time.  Real storage
    managers (and drive firmware read-ahead) do exactly this coalescing for
    skip-sequential patterns.  ``max_gap=0`` merges only touching runs.
    """
    if plan.n_runs <= 1:
        return plan
    order = np.argsort(plan.starts, kind="stable")
    starts = plan.starts[order]
    lengths = plan.lengths[order]
    # Runs may overlap after mapping (never in practice, but be safe):
    # extend each end monotonically before measuring gaps.
    ends = np.maximum.accumulate(starts + lengths)
    breaks = np.flatnonzero(starts[1:] > ends[:-1] + max_gap)
    first = np.concatenate(([0], breaks + 1))
    last = np.concatenate((breaks, [starts.size - 1]))
    return RequestPlan.from_arrays(
        starts[first],
        ends[last] - starts[first],
        plan.policy,
        plan.merge_gap,
    )


def effective_policy(plan: RequestPlan, limit: int = SPTF_RUN_LIMIT) -> str:
    """Clamp 'sptf' to 'sorted' for very large batches."""
    if plan.policy == "sptf" and plan.n_runs > limit:
        return "sorted"
    return plan.policy


def slice_plan(plan: RequestPlan, max_runs: int | None) -> list[RequestPlan]:
    """Split a prepared plan into consecutive service slices.

    Slices are the scheduling unit of the traffic simulator: a drive
    services one slice at a time and requests from other clients may be
    interleaved between a query's slices, resuming from wherever the head
    ended up.  The split preserves run order, so for ``"fifo"``/``"sorted"``
    plans (whose merged runs are already in issue order) servicing the
    slices back-to-back is timing-identical to servicing the whole plan in
    one batch.  ``"sptf"`` slices clamp the drive's lookahead window to the
    slice, modelling a command queue that only holds admitted requests.

    ``max_runs=None`` (or a plan no larger than ``max_runs``) yields the
    plan unsplit.
    """
    if max_runs is None or plan.n_runs <= max_runs:
        return [plan]
    if max_runs < 1:
        raise ValueError("max_runs must be >= 1")
    return [
        RequestPlan.from_arrays(
            plan.starts[i:i + max_runs],
            plan.lengths[i:i + max_runs],
            plan.policy,
            plan.merge_gap,
        )
        for i in range(0, plan.n_runs, max_runs)
    ]
