"""Query workloads and the storage manager that executes them."""

from repro.query.executor import PreparedQuery, QueryResult, StorageManager
from repro.query.scatter import ShardedPrepared, scatter_execute, subplans
from repro.query.scheduler import (
    coalesce_lbns,
    effective_policy,
    merge_plan_runs,
    slice_plan,
)
from repro.query.workload import (
    BeamQuery,
    RangeQuery,
    random_beam,
    random_range_cube,
    range_for_selectivity,
)

__all__ = [
    "BeamQuery",
    "PreparedQuery",
    "QueryResult",
    "RangeQuery",
    "ShardedPrepared",
    "StorageManager",
    "coalesce_lbns",
    "effective_policy",
    "merge_plan_runs",
    "random_beam",
    "random_range_cube",
    "range_for_selectivity",
    "scatter_execute",
    "slice_plan",
    "subplans",
]
