"""Query classes of the paper's evaluation (§5.1) and random generators.

* **Beam queries** are 1-D queries retrieving cells along a line parallel
  to one dimension (e.g. velocity history of one point in the earthquake
  dataset).
* **Range queries** fetch an N-D equal-length cube with a selectivity of
  p% of the dataset, anchored at a random position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError

__all__ = [
    "BeamQuery",
    "RangeQuery",
    "random_beam",
    "random_range_cube",
    "range_for_selectivity",
]


@dataclass(frozen=True)
class BeamQuery:
    """All cells along ``axis`` with the other coordinates pinned."""

    axis: int
    fixed: tuple[int, ...]
    lo: int = 0
    hi: int | None = None

    def n_cells(self, dims) -> int:
        hi = dims[self.axis] if self.hi is None else self.hi
        return hi - self.lo


@dataclass(frozen=True)
class RangeQuery:
    """The half-open box [lo, hi)."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def n_cells(self, dims=None) -> int:
        return int(
            np.prod(
                [b - a for a, b in zip(self.lo, self.hi)], dtype=np.int64
            )
        )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.lo, self.hi))


def random_beam(dims, axis: int, rng: np.random.Generator) -> BeamQuery:
    """Full-length beam along ``axis`` at a random position."""
    dims = tuple(int(s) for s in dims)
    if not 0 <= axis < len(dims):
        raise QueryError(f"axis {axis} out of range for dims {dims}")
    fixed = tuple(
        int(rng.integers(0, s)) if d != axis else 0
        for d, s in enumerate(dims)
    )
    return BeamQuery(axis=axis, fixed=fixed)


def range_for_selectivity(dims, selectivity_pct: float) -> tuple[int, ...]:
    """Side lengths of an equal-length cube covering ~p% of the dataset.

    When a dimension is too short for the equal side, it is used fully and
    the remaining volume is redistributed over the other dimensions (so
    100% selectivity covers the whole dataset even for non-cubic grids).
    """
    dims = tuple(int(s) for s in dims)
    if not 0 < selectivity_pct <= 100:
        raise QueryError("selectivity must be in (0, 100]")
    target = selectivity_pct / 100.0 * float(np.prod(dims, dtype=np.float64))
    shape = [0] * len(dims)
    free = list(range(len(dims)))
    remaining = target
    while free:
        side = remaining ** (1.0 / len(free))
        clamped = [d for d in free if dims[d] <= side]
        if not clamped:
            w = max(1, round(side))
            for d in free:
                shape[d] = min(dims[d], w)
            break
        for d in clamped:
            shape[d] = dims[d]
            remaining /= dims[d]
            free.remove(d)
    return tuple(shape)


def random_range_cube(
    dims, selectivity_pct: float, rng: np.random.Generator
) -> RangeQuery:
    """Equal-length cube of ~p% selectivity at a random anchor (§5.1:
    "the borders of range queries are generated randomly")."""
    dims = tuple(int(s) for s in dims)
    shape = range_for_selectivity(dims, selectivity_pct)
    lo = tuple(
        int(rng.integers(0, s - w + 1)) for s, w in zip(dims, shape)
    )
    hi = tuple(a + w for a, w in zip(lo, shape))
    return RangeQuery(lo=lo, hi=hi)
