"""The storage manager: executes queries against a mapping on the volume.

This is the component the paper calls the "database storage manager"
(§5.1): it asks the mapper for a request plan, applies the issue-order
conventions of §5.2, hands the batch to the owning drive, and reports the
timing breakdown.  Every query can start from a randomised head position,
matching the paper's averaging over runs at random locations.

When a :class:`repro.cache.BufferPool` is attached, preparation gains a
cache-filter step *after* the §5.2 coalescing: resident blocks are
carved out of the plan (served at memory speed) and only the miss runs
reach the drive, still in the plan's issue order; once serviced, the
missed blocks and their prefetched neighbors are admitted back into the
pool (:meth:`StorageManager.admit_prepared`).  Without a pool — or with
a capacity-0 pool — every path below is bit-identical to the uncached
storage manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import ClassVar

import numpy as np

from repro.disk.drive import BatchResult
from repro.errors import QueryError
from repro.lvm.volume import LogicalVolume
from repro.mappings.base import Mapper, RequestPlan, coalesce_ranks
from repro.obs.span import record_one_shot
from repro.perf.profile import PROBES
from repro.query.scheduler import effective_policy, merge_plan_runs
from repro.query.workload import BeamQuery, RangeQuery

__all__ = ["PreparedQuery", "QueryResult", "StorageManager", "WritePrepared"]


@dataclass(frozen=True)
class PreparedQuery:
    """A query after issue-order preparation, ready to be serviced.

    The plan has already been coalesced (for ``"sorted"``/``"sptf"``
    batches) and ``policy`` is the *effective* policy after the SPTF batch
    clamp — servicing ``plan`` under ``policy`` is exactly what
    :meth:`StorageManager.execute_plan` would do.  Keeping this stage
    separate lets the traffic simulator split the plan into service slices
    (:func:`repro.query.scheduler.slice_plan`) and interleave slices from
    different clients at the drive, resuming the drive position between
    them.

    With a buffer pool attached, ``plan`` holds only the *miss* runs —
    ``cache_hits`` blocks (in ``cache_runs`` contiguous stretches) were
    already carved out at the cache-filter step and cost ``cache_ms`` of
    memory service instead of drive time.  All three stay zero on the
    uncached path.
    """

    mapper_name: str
    disk_index: int
    plan: RequestPlan
    policy: str
    n_cells: int
    cache_hits: int = 0
    cache_runs: int = 0
    cache_ms: float = 0.0
    #: preparation record for an attached telemetry (None when detached;
    #: excluded from equality so observed and unobserved plans compare equal)
    obs: object = field(default=None, compare=False, repr=False)

    @property
    def n_runs(self) -> int:
        return self.plan.n_runs

    @property
    def n_blocks(self) -> int:
        return self.plan.n_blocks


@dataclass(frozen=True)
class WritePrepared(PreparedQuery):
    """A prepared write batch (an ingest flush's blocks on one disk).

    Serviced exactly like a read batch — writes follow the same §5.2
    issue-order conventions — but ``is_write`` routes it past every
    cache admit/filter path (written blocks were *invalidated* at
    preparation instead) and lets the traffic engine drop, rather than
    fail over, a dead replica's copy of a flush.  ``n_cells`` counts the
    points acknowledged by this batch.
    """

    is_write: ClassVar[bool] = True


@dataclass(frozen=True)
class QueryResult:
    """Timing of one executed query on one disk."""

    mapper: str
    total_ms: float
    n_cells: int
    n_blocks: int
    n_runs: int
    seek_ms: float
    rotation_ms: float
    transfer_ms: float
    switch_ms: float
    policy: str

    @property
    def ms_per_cell(self) -> float:
        return self.total_ms / self.n_cells if self.n_cells else 0.0

    @property
    def ms_per_block(self) -> float:
        return self.total_ms / self.n_blocks if self.n_blocks else 0.0


class StorageManager:
    """Executes beam and range queries for any mapper on a volume.

    Parameters
    ----------
    volume:
        The logical volume whose drives service the requests.
    window:
        Drive command-queue depth for SPTF batches (real drives of the
        paper's era exposed 32-256 tagged commands).
    sptf_run_limit:
        Batches with more runs than this fall back to one elevator pass.
    cache:
        Optional :class:`repro.cache.BufferPool` shared by every query
        this manager prepares (and by every other manager handed the
        same pool — the per-volume cache of the traffic simulator).
        ``None`` or a capacity-0 pool leaves all paths bit-identical to
        the uncached manager.
    """

    def __init__(
        self,
        volume: LogicalVolume,
        *,
        window: int = 128,
        sptf_run_limit: int = 150_000,
        coalesce_gap_blocks: int = 24,
        cache=None,
    ):
        self.volume = volume
        self.window = int(window)
        self.sptf_run_limit = int(sptf_run_limit)
        self.coalesce_gap_blocks = int(coalesce_gap_blocks)
        self.cache = cache
        #: attached :class:`repro.obs.Telemetry`, or None (the default:
        #: every path below is then bit-identical to a build without obs)
        self.obs = None

    # ------------------------------------------------------------------
    # plan execution
    # ------------------------------------------------------------------

    def prepare_plan(
        self, mapper: Mapper, plan: RequestPlan, n_cells: int
    ) -> PreparedQuery:
        """Apply the issue-order conventions of §5.2 without servicing.

        Coalesces nearby runs of sortable batches and resolves the
        effective scheduling policy; the result can be serviced in one
        batch (:meth:`execute_prepared`) or split into slices by the
        traffic simulator.  With a buffer pool attached, the cache
        filter then partitions the prepared plan: resident blocks are
        served from memory and only the miss runs — still in the §5.2
        issue order — go to the drive.
        """
        probing = PROBES.enabled
        if probing:
            t0 = perf_counter()
        observing = self.obs is not None
        if observing:
            raw_runs = plan.n_runs
        if plan.policy in ("sorted", "sptf"):
            gap = plan.merge_gap
            if gap is None:
                gap = self.coalesce_gap_blocks
            plan = merge_plan_runs(plan, gap)
        cache_hits = cache_runs = 0
        cache_ms = 0.0
        cache = self.cache
        if cache is not None and cache.active:
            plan, cache_hits, cache_runs = cache.filter_plan(
                mapper.disk_index, plan
            )
            cache_ms = cache_hits * cache.service_ms_per_block
        # resolve the SPTF clamp on what the drive will actually queue:
        # a warm cache can shrink a too-large batch back under the limit
        policy = effective_policy(plan, self.sptf_run_limit)
        if probing:
            PROBES.add_time("prepare_plan_ms", (perf_counter() - t0) * 1e3)
            PROBES.count("plans_prepared")
            PROBES.count("cells_planned", int(n_cells))
            PROBES.count("runs_prepared", plan.n_runs)
        return PreparedQuery(
            mapper_name=mapper.name,
            disk_index=mapper.disk_index,
            plan=plan,
            policy=policy,
            n_cells=int(n_cells),
            cache_hits=cache_hits,
            cache_runs=cache_runs,
            cache_ms=cache_ms,
            obs={"raw_runs": raw_runs} if observing else None,
        )

    def prepare(self, mapper: Mapper, query) -> PreparedQuery:
        """Plan and prepare a :class:`BeamQuery` / :class:`RangeQuery`."""
        if isinstance(query, BeamQuery):
            plan = mapper.beam_plan(query.axis, query.fixed, query.lo,
                                    query.hi)
            return self.prepare_plan(mapper, plan, query.n_cells(mapper.dims))
        if isinstance(query, RangeQuery):
            plan = mapper.range_plan(query.lo, query.hi)
            return self.prepare_plan(mapper, plan, query.n_cells())
        raise QueryError(f"unknown query type {type(query).__name__}")

    def prepare_write(
        self, mapper: Mapper, lbns, n_points: int
    ) -> WritePrepared:
        """Prepare a write batch of whole blocks on ``mapper``'s disk.

        Writes take the same issue-order treatment as reads (sorted
        runs, SPTF clamp) but never consult the cache filter — every
        block goes to the drive — and instead *invalidate* any resident
        frames of the written blocks, so no reader is served pre-flush
        contents.  Runs merge only on exact adjacency (``merge_gap=0``):
        a write must not touch blocks it does not own.
        """
        lbns = np.unique(np.asarray(lbns, dtype=np.int64).ravel())
        if lbns.size == 0:
            raise QueryError("a write batch needs at least one block")
        starts, lengths = coalesce_ranks(lbns)
        plan = RequestPlan(starts, lengths, policy="sorted", merge_gap=0)
        cache = self.cache
        if cache is not None and cache.active:
            cache.invalidate(mapper.disk_index, lbns)
        return WritePrepared(
            mapper_name=mapper.name,
            disk_index=mapper.disk_index,
            plan=plan,
            policy=effective_policy(plan, self.sptf_run_limit),
            n_cells=int(n_points),
            obs=(
                {"raw_runs": int(lbns.size)}
                if self.obs is not None else None
            ),
        )

    def execute_prepared(
        self,
        prepared: PreparedQuery,
        *,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Service a prepared query in one batch on its disk.

        Drive timing components cover only the miss runs; blocks the
        cache filter already claimed add their memory service time to
        ``total_ms`` (and to the block/run counts) without touching the
        mechanical breakdown.  Missed blocks are admitted to the pool —
        with their prefetched neighbors — once serviced.
        """
        drive = self.volume.drive(prepared.disk_index)
        if rng is not None:
            drive.randomize_position(rng)
        res: BatchResult = drive.service_runs(
            prepared.plan.starts,
            prepared.plan.lengths,
            policy=prepared.policy,
            window=self.window,
        )
        self.admit_prepared(prepared)
        tele = self.obs
        if tele is not None:
            record_one_shot(tele, prepared, res)
        return QueryResult(
            mapper=prepared.mapper_name,
            total_ms=res.total_ms + prepared.cache_ms,
            n_cells=prepared.n_cells,
            n_blocks=res.n_blocks + prepared.cache_hits,
            n_runs=res.n_requests + prepared.cache_runs,
            seek_ms=res.seek_ms,
            rotation_ms=res.rotation_ms,
            transfer_ms=res.transfer_ms,
            switch_ms=res.switch_ms,
            policy=prepared.policy,
        )

    def admit_prepared(self, prepared: PreparedQuery) -> None:
        """Admit a serviced query's missed blocks (plus prefetch).

        No-op without an active pool.  The traffic simulator calls this
        when a query's *last* slice completes; the one-shot path calls
        it from :meth:`execute_prepared`.  Write batches are never
        admitted — their blocks were invalidated at preparation.
        """
        if getattr(prepared, "is_write", False):
            return
        cache = self.cache
        if cache is not None and cache.active:
            cache.admit_plan(self.volume, prepared.disk_index,
                             prepared.plan)

    def execute_plan(
        self,
        mapper: Mapper,
        plan: RequestPlan,
        n_cells: int,
        *,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Service a prepared plan on the mapper's disk."""
        prepared = self.prepare_plan(mapper, plan, n_cells)
        return self.execute_prepared(prepared, rng=rng)

    # ------------------------------------------------------------------
    # query entry points
    # ------------------------------------------------------------------

    def beam(
        self,
        mapper: Mapper,
        axis: int,
        fixed,
        lo: int = 0,
        hi: int | None = None,
        *,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        plan = mapper.beam_plan(axis, fixed, lo, hi)
        hi_val = mapper.dims[axis] if hi is None else hi
        return self.execute_plan(mapper, plan, hi_val - lo, rng=rng)

    def range(
        self,
        mapper: Mapper,
        lo,
        hi,
        *,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        plan = mapper.range_plan(lo, hi)
        n_cells = int(
            np.prod([b - a for a, b in zip(lo, hi)], dtype=np.int64)
        )
        return self.execute_plan(mapper, plan, n_cells, rng=rng)

    def run_query(
        self,
        mapper: Mapper,
        query,
        *,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Dispatch a :class:`BeamQuery` or :class:`RangeQuery`."""
        if isinstance(query, BeamQuery):
            return self.beam(
                mapper, query.axis, query.fixed, query.lo, query.hi, rng=rng
            )
        if isinstance(query, RangeQuery):
            return self.range(mapper, query.lo, query.hi, rng=rng)
        raise QueryError(f"unknown query type {type(query).__name__}")
