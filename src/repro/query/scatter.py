"""Scatter-gather execution of queries sharded across member disks.

The shard layer (:mod:`repro.shard`) splits one logical query into
per-chunk :class:`~repro.query.executor.PreparedQuery` sub-plans, each
bound — via its ``disk_index`` — to the member disk that owns the chunk.
This module holds the concurrent-execution half: a
:class:`ShardedPrepared` bundles the sub-plans, and
:func:`scatter_execute` services them with the paper's multi-disk
semantics — drives work in parallel, each preserving its own
seek/rotation state, and the query completes when the slowest drive
finishes (makespan = max over drives), exactly how the §5.3 chunked
evaluation overlaps per-disk fetches.

A :class:`ShardedPrepared` with a single sub-plan is serviced through
the very same sequence of drive calls the one-shot
:meth:`StorageManager.execute_prepared` path makes, which is what makes
a 1-shard dataset bit-identical to the unsharded stack (the parity
``tests/shard/test_parity.py`` pins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.query.executor import PreparedQuery, QueryResult

__all__ = ["ShardedPrepared", "scatter_execute", "subplans"]


@dataclass(frozen=True)
class ShardedPrepared:
    """One logical query prepared as per-chunk, per-disk sub-plans.

    ``subs`` holds one fully prepared :class:`PreparedQuery` per
    intersected chunk, in chunk-enumeration order; sub-plans of the same
    disk are serviced sequentially in that order, different disks in
    parallel.  Aggregate counters below sum over the sub-plans, so the
    object quacks enough like a :class:`PreparedQuery` for reporting.
    """

    mapper_name: str
    subs: tuple[PreparedQuery, ...]
    n_cells: int

    def __post_init__(self) -> None:
        if not self.subs:
            raise QueryError("a sharded query needs at least one sub-plan")

    @property
    def disks(self) -> tuple[int, ...]:
        """Involved disks, in first-appearance (chunk) order."""
        seen: dict[int, None] = {}
        for sub in self.subs:
            seen.setdefault(sub.disk_index, None)
        return tuple(seen)

    @property
    def disk_index(self) -> int:
        """The first involved disk (the query's reporting home)."""
        return self.subs[0].disk_index

    @property
    def policy(self) -> str:
        """The effective policy — the shared one, or ``"mixed"`` when
        the per-sub-plan SPTF clamp resolved differently across chunks
        (a single sub-plan always reports its own, the parity case)."""
        first = self.subs[0].policy
        if all(sub.policy == first for sub in self.subs[1:]):
            return first
        return "mixed"

    @property
    def n_runs(self) -> int:
        return sum(sub.n_runs for sub in self.subs)

    @property
    def n_blocks(self) -> int:
        return sum(sub.n_blocks for sub in self.subs)

    @property
    def cache_hits(self) -> int:
        return sum(sub.cache_hits for sub in self.subs)

    @property
    def cache_runs(self) -> int:
        return sum(sub.cache_runs for sub in self.subs)

    @property
    def cache_ms(self) -> float:
        return sum(sub.cache_ms for sub in self.subs)

    @property
    def obs(self):
        """The sub-plans' preparation records (a property, not a field,
        so shard/replica constructors need no telemetry plumbing)."""
        return tuple(sub.obs for sub in self.subs)


def subplans(prepared) -> tuple[PreparedQuery, ...]:
    """The per-disk sub-plans of any prepared form (plain or sharded)."""
    if isinstance(prepared, ShardedPrepared):
        return prepared.subs
    return (prepared,)


def scatter_execute(
    storage,
    prepared: ShardedPrepared,
    *,
    rng: np.random.Generator | None = None,
) -> tuple[QueryResult, dict[int, dict]]:
    """Service a sharded query's sub-plans with scatter-gather semantics.

    Per disk (first-appearance order): the head is randomised once from
    ``rng`` — the same single draw per drive the one-shot executor makes
    — then that disk's sub-plans are serviced back to back, each admitted
    to the cache after service.  Drives run concurrently, so the query's
    ``total_ms`` is the *makespan*: the largest per-disk busy time
    (mechanical service plus memory-served cache time).  The mechanical
    component fields (seek/rotation/transfer/switch) sum the work done
    across all drives.

    Returns ``(result, per_disk)`` where ``per_disk`` maps each involved
    disk to its ``{"busy_ms", "blocks", "runs"}`` contribution (the
    gather half the shard stats merge into reports).
    """
    volume = storage.volume
    by_disk: dict[int, list[PreparedQuery]] = {}
    for sub in prepared.subs:
        by_disk.setdefault(sub.disk_index, []).append(sub)

    tele = getattr(storage, "obs", None)
    parts: list[tuple] = []
    per_disk: dict[int, dict] = {}
    seek = rotation = transfer = switch = 0.0
    blocks = runs = 0
    makespan = 0.0
    for disk, subs in by_disk.items():
        drive = volume.drive(disk)
        if rng is not None:
            drive.randomize_position(rng)
        busy = 0.0
        d_blocks = d_runs = 0
        for sub in subs:
            res = drive.service_runs(
                sub.plan.starts,
                sub.plan.lengths,
                policy=sub.policy,
                window=storage.window,
            )
            storage.admit_prepared(sub)
            if tele is not None:
                parts.append((sub, res))
            busy += res.total_ms + sub.cache_ms
            d_blocks += res.n_blocks + sub.cache_hits
            d_runs += res.n_requests + sub.cache_runs
            seek += res.seek_ms
            rotation += res.rotation_ms
            transfer += res.transfer_ms
            switch += res.switch_ms
        blocks += d_blocks
        runs += d_runs
        makespan = max(makespan, busy)
        per_disk[disk] = {
            "busy_ms": busy, "blocks": d_blocks, "runs": d_runs,
        }

    result = QueryResult(
        mapper=prepared.mapper_name,
        total_ms=makespan,
        n_cells=prepared.n_cells,
        n_blocks=blocks,
        n_runs=runs,
        seek_ms=seek,
        rotation_ms=rotation,
        transfer_ms=transfer,
        switch_ms=switch,
        policy=prepared.policy,
    )
    if tele is not None:
        from repro.obs.span import record_scatter

        record_scatter(tele, prepared, parts, result)
    return result, per_disk
