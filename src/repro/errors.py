"""Exception hierarchy for the MultiMap reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class GeometryError(ReproError):
    """Raised for invalid disk geometry parameters or out-of-range LBNs."""


class AdjacencyError(ReproError):
    """Raised when an adjacent block cannot be produced.

    Typical causes: the requested adjacency step exceeds ``D``, or the target
    track would fall outside the zone of the starting block (MultiMap never
    maps basic cubes across zone boundaries, so adjacency is intra-zone).
    """


class MappingError(ReproError):
    """Raised when a dataset cannot be mapped (constraint violations)."""


class AllocationError(ReproError):
    """Raised when a logical volume cannot satisfy an allocation request."""


class QueryError(ReproError):
    """Raised for malformed queries (out-of-bounds ranges, bad axes)."""


class DatasetError(ReproError):
    """Raised by dataset generators for invalid parameters."""


class RegistryError(ReproError):
    """Raised by the :mod:`repro.api` registries for unknown or duplicate
    layout/drive names."""


class CacheError(ReproError):
    """Raised by :mod:`repro.cache` for invalid buffer-pool configuration
    or policy misuse (e.g. evicting from an empty policy)."""


class ReplicaError(ReproError):
    """Raised by :mod:`repro.replica` for invalid replication configuration
    or unreadable data (every copy of a chunk on failed disks)."""


class BenchmarkError(ReproError):
    """Raised by :mod:`repro.bench` and :mod:`repro.perf` for invalid
    sweep parameters or a fast path that diverges from its reference."""


class IngestError(ReproError):
    """Raised by :mod:`repro.ingest` for invalid stream/loader
    configuration or an unserviceable flush (e.g. every copy of a
    chunk's write targets on failed disks)."""


class ObsError(ReproError):
    """Raised by :mod:`repro.obs` for invalid telemetry configuration
    (unknown exporter, mismatched histogram buckets, malformed spans)."""


class MonitorError(ReproError):
    """Raised by :mod:`repro.monitor` for invalid monitoring
    configuration (bad window size, unknown SLO rule, malformed run
    summaries handed to the differ)."""


class ExplainError(ReproError):
    """Raised by :mod:`repro.explain` for invalid diagnosis requests
    (unexplainable query types, mismatched stride arrays, malformed
    reports handed to the attributor)."""
