"""The sharded storage manager: one dataset, many member disks.

:class:`ShardedStorageManager` extends the single-disk
:class:`~repro.query.executor.StorageManager` with the multi-disk
pipeline of §4.4/§5.1: a :class:`~repro.shard.map.ShardMap` declusters
the dataset's chunks across the volume's member disks, one mapper per
chunk places its cells (same registry wiring as the façade, so a chunk
is laid out exactly as a standalone dataset of the chunk's shape would
be), and queries split into per-chunk sub-plans serviced scatter-gather
(:func:`repro.query.scatter.scatter_execute`): drives in parallel,
per-drive head state preserved, query time = makespan over drives.

With one shard the map holds a single chunk covering the whole dataset
on disk 0, the chunk mapper *is* the unsharded mapper, and every code
path below reduces to the one-shot executor call for call — the parity
``tests/shard/test_parity.py`` pins bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import LayoutEntry, build_mapper
from repro.errors import AllocationError, QueryError
from repro.lvm.volume import LogicalVolume
from repro.query.executor import QueryResult, StorageManager
from repro.query.scatter import ShardedPrepared, scatter_execute
from repro.query.workload import BeamQuery, RangeQuery
from repro.shard.map import ShardMap

__all__ = ["ShardStats", "ShardedMapper", "ShardedStorageManager"]


class ShardedMapper:
    """The mapper-shaped face of a sharded placement.

    Exposes the attributes the façade, reports, and traffic clients read
    from a :class:`~repro.mappings.base.Mapper` (``name``, ``dims``,
    ``n_cells``, ``cell_blocks``, ``disk_index``) while the per-chunk
    mappers underneath do the actual cell-to-LBN work.  Plans are always
    produced per chunk, so the cross-disk ``lbns``/``*_plan`` interface
    is deliberately absent.
    """

    def __init__(self, name: str, shard_map: ShardMap, chunk_mappers):
        self.name = str(name)
        self.shard_map = shard_map
        self.chunk_mappers = tuple(chunk_mappers)
        self.dims = shard_map.dims
        self.cell_blocks = self.chunk_mappers[0].cell_blocks
        self.disk_index = self.chunk_mappers[0].disk_index

    @property
    def n_dims(self) -> int:
        return len(self.dims)

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.dims, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedMapper({self.name!r}, dims={self.dims}, "
            f"shards={self.shard_map.n_disks})"
        )


@dataclass
class ShardStats:
    """Cumulative per-disk gather totals over a manager's lifetime.

    ``busy_ms`` is each drive's mechanical + memory service time;
    ``parallel_efficiency`` compares the work actually overlapped
    against perfect speedup (sum of busy time over ``n_disks`` × the
    accumulated makespan; 1.0 = every drive always busy).
    """

    n_disks: int
    busy_ms: list = field(init=False)
    served_blocks: list = field(init=False)
    served_runs: list = field(init=False)
    queries: list = field(init=False)
    n_queries: int = 0
    makespan_ms: float = 0.0

    def __post_init__(self) -> None:
        self.busy_ms = [0.0] * self.n_disks
        self.served_blocks = [0] * self.n_disks
        self.served_runs = [0] * self.n_disks
        self.queries = [0] * self.n_disks

    def record(self, per_disk: dict, makespan_ms: float) -> None:
        self.n_queries += 1
        self.makespan_ms += float(makespan_ms)
        for disk, d in per_disk.items():
            self.busy_ms[disk] += d["busy_ms"]
            self.served_blocks[disk] += d["blocks"]
            self.served_runs[disk] += d["runs"]
            self.queries[disk] += 1

    @property
    def parallel_efficiency(self) -> float:
        denom = self.makespan_ms * self.n_disks
        return sum(self.busy_ms) / denom if denom > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "n_queries": self.n_queries,
            "makespan_ms": self.makespan_ms,
            "parallel_efficiency": self.parallel_efficiency,
            "per_disk": [
                {
                    "disk": i,
                    "busy_ms": self.busy_ms[i],
                    "served_blocks": self.served_blocks[i],
                    "served_runs": self.served_runs[i],
                    "queries": self.queries[i],
                }
                for i in range(self.n_disks)
            ],
        }


class ShardedStorageManager(StorageManager):
    """Executes queries scatter-gather across a sharded placement.

    Parameters mirror :class:`StorageManager`; additionally the manager
    owns the chunk mappers it builds (in chunk order, so placement is
    deterministic) from the registered ``layout`` on the assigned disk
    of each chunk.  The volume must have exactly the map's disk count —
    a mismatch raises instead of silently truncating the placement.
    """

    def __init__(
        self,
        volume: LogicalVolume,
        shard_map: ShardMap,
        layout,
        *,
        cell_blocks: int = 1,
        window: int = 128,
        sptf_run_limit: int = 150_000,
        coalesce_gap_blocks: int = 24,
        cache=None,
        layout_opts: dict | None = None,
    ):
        super().__init__(
            volume,
            window=window,
            sptf_run_limit=sptf_run_limit,
            coalesce_gap_blocks=coalesce_gap_blocks,
            cache=cache,
        )
        if shard_map.n_disks != volume.n_disks:
            raise AllocationError(
                f"shard map expects {shard_map.n_disks} disks, volume "
                f"has {volume.n_disks}"
            )
        self.shard_map = shard_map
        self.layout_opts = dict(layout_opts or {})
        chunk_mappers = [
            build_mapper(
                layout, chunk.shape, volume, chunk.disk,
                cell_blocks=cell_blocks, **self.layout_opts,
            )
            for chunk in shard_map.chunks
        ]
        name = (layout.name if isinstance(layout, LayoutEntry)
                else str(layout))
        self.mapper = ShardedMapper(name, shard_map, chunk_mappers)
        self.shard_stats = ShardStats(shard_map.n_disks)

    # ------------------------------------------------------------------
    # scatter: one query -> per-chunk prepared sub-plans
    # ------------------------------------------------------------------

    def _query_pieces(self, query):
        """Validate ``query`` and split it over the chunks it touches.

        Returns ``(pieces, axis)``: ``pieces`` is a list of
        ``(chunk, llo, lhi, n_cells)`` in chunk-enumeration order (local
        chunk coordinates), ``axis`` the beam axis or ``None`` for
        ranges — enough for :meth:`_piece_plan` to (re-)plan any piece
        on any chunk mapper, which is what the replica layer's failover
        re-dispatch builds on."""
        if isinstance(query, BeamQuery):
            lo, hi = self._beam_box(query)
            axis = int(query.axis)
            n_cells_of = lambda llo, lhi: lhi[axis] - llo[axis]  # noqa: E731
        elif isinstance(query, RangeQuery):
            lo, hi = tuple(query.lo), tuple(query.hi)
            axis = None
            dims = self.mapper.dims
            if len(lo) != len(dims) or len(hi) != len(dims):
                raise QueryError("box rank does not match dataset rank")
            for d in range(len(dims)):
                if not 0 <= lo[d] < hi[d] <= dims[d]:
                    raise QueryError(
                        f"box [{lo[d]}, {hi[d]}) invalid on axis {d}"
                    )
            n_cells_of = lambda llo, lhi: int(  # noqa: E731
                np.prod([b - a for a, b in zip(llo, lhi)], dtype=np.int64)
            )
        else:
            raise QueryError(f"unknown query type {type(query).__name__}")
        pieces = [
            (chunk, llo, lhi, n_cells_of(llo, lhi))
            for chunk, llo, lhi in self.shard_map.intersections(lo, hi)
        ]
        if not pieces:
            raise QueryError("query intersects no chunk")
        return pieces, axis

    @staticmethod
    def _piece_plan(chunk_mapper, axis, llo, lhi):
        """Plan one chunk-local piece on ``chunk_mapper``."""
        if axis is None:
            return chunk_mapper.range_plan(llo, lhi)
        return chunk_mapper.beam_plan(axis, llo, llo[axis], lhi[axis])

    def prepare(self, mapper, query) -> ShardedPrepared:
        """Split a query across the chunks it touches and prepare each
        sub-plan (coalescing, cache filter, policy clamp) on its chunk's
        mapper.  ``mapper`` is accepted for interface compatibility; the
        split always runs against this manager's own chunk mappers."""
        pieces, axis = self._query_pieces(query)
        subs = []
        total_cells = 0
        for chunk, llo, lhi, n_cells in pieces:
            chunk_mapper = self.mapper.chunk_mappers[chunk.index]
            plan = self._piece_plan(chunk_mapper, axis, llo, lhi)
            subs.append(self.prepare_plan(chunk_mapper, plan, n_cells))
            total_cells += n_cells
        return ShardedPrepared(
            mapper_name=self.mapper.name,
            subs=tuple(subs),
            n_cells=total_cells,
        )

    def _beam_box(self, query: BeamQuery):
        """The beam as a global half-open box (validated)."""
        dims = self.mapper.dims
        axis = int(query.axis)
        if not 0 <= axis < len(dims):
            raise QueryError(f"axis {axis} out of range")
        hi_val = dims[axis] if query.hi is None else int(query.hi)
        if not 0 <= query.lo < hi_val <= dims[axis]:
            raise QueryError(f"beam span [{query.lo}, {hi_val}) invalid")
        fixed = tuple(int(v) for v in query.fixed)
        if len(fixed) != len(dims):
            raise QueryError("fixed must have one entry per dimension")
        lo, hi = [], []
        for d, v in enumerate(fixed):
            if d == axis:
                lo.append(int(query.lo))
                hi.append(hi_val)
            else:
                if not 0 <= v < dims[d]:
                    raise QueryError(f"fixed[{d}]={v} out of range")
                lo.append(v)
                hi.append(v + 1)
        return tuple(lo), tuple(hi)

    # ------------------------------------------------------------------
    # gather: concurrent service, makespan timing
    # ------------------------------------------------------------------

    def execute_prepared(self, prepared, *, rng=None) -> QueryResult:
        if not isinstance(prepared, ShardedPrepared):
            return super().execute_prepared(prepared, rng=rng)
        result, per_disk = scatter_execute(self, prepared, rng=rng)
        self.shard_stats.record(per_disk, result.total_ms)
        return result

    def admit_prepared(self, prepared) -> None:
        if isinstance(prepared, ShardedPrepared):
            for sub in prepared.subs:
                super().admit_prepared(sub)
        else:
            super().admit_prepared(prepared)

    def write_copies(self, chunk_index: int):
        """The ``(copy, chunk_mapper)`` targets an ingest flush of
        ``chunk_index`` must write — one copy (the primary) without
        replication; the replica manager overrides this with every live
        copy."""
        return ((0, self.mapper.chunk_mappers[int(chunk_index)]),)

    def run_query(self, mapper, query, *, rng=None) -> QueryResult:
        return self.execute_prepared(self.prepare(mapper, query), rng=rng)

    def beam(self, mapper, axis, fixed, lo=0, hi=None, *, rng=None):
        return self.run_query(
            mapper, BeamQuery(int(axis), tuple(fixed), lo, hi), rng=rng
        )

    def range(self, mapper, lo, hi, *, rng=None):
        return self.run_query(
            mapper, RangeQuery(tuple(lo), tuple(hi)), rng=rng
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def reset_shard_stats(self) -> None:
        self.shard_stats = ShardStats(self.shard_map.n_disks)

    def describe_shards(self) -> dict:
        """Placement summary plus lifetime gather stats (cumulative, like
        the cache snapshot; ``reset_shard_stats`` scopes it)."""
        out = self.shard_map.describe()
        out["stats"] = self.shard_stats.to_dict()
        return out
