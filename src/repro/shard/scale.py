"""Speedup-vs-disks sweeps: the scale-out analogue of the traffic storm.

``run_scale_sweep`` replays one fixed, seeded beam workload against each
registered layout at rising shard counts and records per-query makespan
timings — producing the throughput/speedup-vs-disks curve per layout.
Every (layout, n_shards) cell builds a fresh same-seed dataset, shards it
with :meth:`Dataset.with_shards`, and runs the *identical* query objects,
so only the placement and the scatter-gather parallelism differ.

The sweep chunks along one *split axis* (default: axis 1, recomputed per
shard count) and queries beams over the non-streaming axes, so beams
along the split axis fan out across all drives while each layout keeps
paying its own cost structure on the untouched axes.  The expected
shape: MultiMap's throughput is monotone non-decreasing in shard count
and stays ahead of every baseline at every tested N — beams on the
split axis parallelise its cheap semi-sequential hops, while the
space-filling curves' cross-disk beams still pay scattered positioning
on every member disk and naive remains bound by its unsplit worst axis.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import render_table
from repro.query.workload import random_beam

__all__ = ["scale_beams", "run_scale_sweep", "render_scale_sweep"]

DEFAULT_LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
DEFAULT_SHARDS = (1, 2, 4)


def scale_beams(shape, *, n_beams: int = 12, axes=None, seed: int = 0):
    """A fixed beam workload cycling over ``axes`` (default: every
    non-streaming axis, the traffic storm's mix) at seeded random
    positions — the same concrete queries for every (layout,
    shard-count) cell."""
    shape = tuple(int(s) for s in shape)
    if axes is None:
        axes = tuple(range(1, len(shape))) if len(shape) > 1 else (0,)
    rng = np.random.default_rng(seed)
    return [
        random_beam(shape, int(axes[i % len(axes)]), rng)
        for i in range(int(n_beams))
    ]


def run_scale_sweep(
    shape,
    layouts=DEFAULT_LAYOUTS,
    shard_counts=DEFAULT_SHARDS,
    *,
    strategy: str = "disk_modulo",
    split_axis: int = 1,
    chunk_shape=None,
    n_beams: int = 12,
    axes=None,
    drive: str = "atlas10k3",
    seed: int = 42,
    dataset_opts: dict | None = None,
) -> dict:
    """Sweep layouts × shard counts under one fixed beam workload.

    Chunking slabs ``split_axis`` into ``n`` pieces per cell (an explicit
    ``chunk_shape`` overrides this and is then used at every shard
    count).  Returns ``layout -> {n_shards: cell}`` where each cell
    carries the batch total, per-query mean, aggregate throughput (MB/s
    over summed makespans), and the speedup relative to that layout's
    first shard count, plus a ``meta`` entry recording the sweep
    parameters.
    """
    from repro.api.dataset import Dataset

    from repro.lvm.striping import STRATEGIES

    shape = tuple(int(s) for s in shape)
    shard_counts = tuple(int(n) for n in shard_counts)
    split_axis = int(split_axis) % len(shape)
    entry = STRATEGIES.get(strategy) if isinstance(strategy, str) \
        else strategy
    align_cubes = bool(getattr(entry, "align_cubes", False))
    strategy_name = getattr(entry, "name", str(strategy))
    # resolve one chunk shape per shard count up front and hand the SAME
    # shape to every layout — the fairness condition of the sweep (cells
    # compare placements, never chunk grids).  cube_aligned shapes split
    # on a basic-cube boundary (overriding split_axis); the granule K
    # depends only on shape/drive, so one probe dataset resolves it for
    # every shard count.  Otherwise: split_axis slabs.
    align = None
    if align_cubes and chunk_shape is None:
        from repro.shard.map import ShardMap

        align = Dataset.create(
            shape, layout="multimap", drive=drive, seed=seed,
            **(dataset_opts or {}),
        )._basic_cube_sides()
    shapes_by_n: dict[int, tuple[int, ...]] = {}
    for n in shard_counts:
        if chunk_shape is not None:
            shapes_by_n[n] = tuple(chunk_shape)
        elif align is not None:
            shapes_by_n[n] = ShardMap.build(
                shape, n, strategy, align=align
            ).chunks[0].shape
        else:
            cs = list(shape)
            cs[split_axis] = -(-shape[split_axis] // n)
            shapes_by_n[n] = tuple(cs)
    if axes is None:
        axes = tuple(range(1, len(shape))) if len(shape) > 1 else (0,)
    queries = scale_beams(shape, n_beams=n_beams, axes=axes, seed=seed)
    data: dict = {}
    for layout in layouts:
        per_n: dict = {}
        base_ms = None
        for n in shard_counts:
            ds = Dataset.create(
                shape, layout=layout, drive=drive, seed=seed,
                **(dataset_opts or {}),
            ).with_shards(n, strategy=strategy,
                          chunk_shape=shapes_by_n[n])
            report = ds.query().add(queries).run()
            blocks = sum(r.result.n_blocks for r in report.records)
            total_ms = report.total_ms
            if base_ms is None:
                base_ms = total_ms
            per_n[n] = {
                "n_shards": n,
                "total_ms": total_ms,
                "mean_query_ms": report.mean("total_ms"),
                "ms_per_cell": report.mean("ms_per_cell"),
                "served_blocks": blocks,
                "mb_per_s": (
                    blocks * 512 / 1e6 / (total_ms / 1000.0)
                    if total_ms > 0 else 0.0
                ),
                "speedup": base_ms / total_ms if total_ms > 0 else 0.0,
            }
        data[layout] = per_n
    data["meta"] = {
        "shape": list(shape),
        "drive": drive if isinstance(drive, str) else getattr(
            drive, "name", str(drive)
        ),
        "strategy": strategy_name,
        # cube_aligned overrides the slab axis (it splits on a basic-cube
        # boundary instead), so don't record a split_axis it ignored
        "split_axis": None if (align_cubes and chunk_shape is None)
        else split_axis,
        "chunk_shape": list(chunk_shape) if chunk_shape else None,
        "chunk_shapes": {
            int(n): list(s) for n, s in shapes_by_n.items()
        },
        "n_beams": int(n_beams),
        "axes": [int(a) for a in axes],
        "seed": int(seed),
        "shard_counts": list(shard_counts),
        "layouts": [str(layout) for layout in layouts],
    }
    return data


def _layout_rows(data: dict, metric) -> tuple[list[int], list[list]]:
    counts = data["meta"]["shard_counts"]
    rows = []
    for layout in data["meta"]["layouts"]:
        per_n = data[layout]
        rows.append([layout] + [metric(per_n[n]) for n in counts])
    return counts, rows


def render_scale_sweep(data: dict) -> str:
    """Throughput, speedup, and ms/cell tables, shard columns per layout."""
    meta = data["meta"]
    parts = [
        f"scale-out sweep: shape={tuple(meta['shape'])} on {meta['drive']},"
        f" strategy={meta['strategy']}, {meta['n_beams']} beams over axes "
        f"{meta['axes']}, seed={meta['seed']}"
    ]
    counts, rows = _layout_rows(data, lambda c: f"{c['mb_per_s']:.2f}")
    headers = ["layout"] + [f"{n} disk" + ("s" if n > 1 else "")
                            for n in counts]
    parts.append("throughput (MB/s) vs shard count")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(data, lambda c: f"{c['speedup']:.2f}x")
    parts.append("speedup vs shard count (relative to first column)")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(data, lambda c: f"{c['ms_per_cell']:.4f}")
    parts.append("mean ms/cell vs shard count")
    parts.append(render_table(headers, rows))
    return "\n\n".join(parts)
