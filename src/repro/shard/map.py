"""Shard maps: which member disk owns each chunk of a dataset.

The paper's evaluation (§5.3) partitions its 1024³ grid into chunks and
"maps each chunk to a different disk"; :class:`ShardMap` makes that
placement a first-class object.  It is built *from* the chunker of
:mod:`repro.datasets.grid` — the per-chunk disk assignment
:meth:`GridDataset.chunks` computes (via
:func:`repro.lvm.striping.assign_chunks`) is exactly what a shard map
records — so the declustering strategies of the :data:`STRATEGIES`
registry drive both paths.

Chunking defaults to slabs along the *last* axis (one slab per disk):
chunks keep the full Dim0 extent, so every chunk's layout preserves the
track-streaming dimension, while beams along the last axis scatter
across all disks.  Pass ``chunk_shape`` for finer grids (e.g. the
paper's 259³ cubes).  A ``cube_aligned`` strategy additionally rounds
chunk boundaries up to multiples of the MultiMap basic-cube sides
(``align=K``), so no basic cube is ever split across disks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.grid import Chunk, GridDataset
from repro.errors import AllocationError

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """An immutable chunk-to-disk placement for one dataset."""

    dims: tuple[int, ...]
    n_disks: int
    strategy: str
    chunks: tuple[Chunk, ...]
    grid: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n_disks < 1:
            raise AllocationError("a shard map needs at least one disk")
        if not self.chunks:
            raise AllocationError("a shard map needs at least one chunk")
        n_cells = int(np.prod(self.dims, dtype=np.int64))
        covered = sum(c.n_cells for c in self.chunks)
        if covered != n_cells:
            raise AllocationError(
                f"chunks cover {covered} cells, dataset has {n_cells}"
            )
        expected = int(np.prod(self.grid, dtype=np.int64))
        if len(self.chunks) != expected:
            raise AllocationError(
                f"{len(self.chunks)} chunks do not tile grid {self.grid}"
            )
        for c in self.chunks:
            if not 0 <= c.disk < self.n_disks:
                raise AllocationError(
                    f"chunk {c.index} assigned to disk {c.disk}, "
                    f"volume has {self.n_disks}"
                )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        dims,
        n_disks: int,
        strategy: str = "disk_modulo",
        *,
        chunk_shape=None,
        align=None,
    ) -> "ShardMap":
        """Chunk ``dims`` and decluster the chunks across ``n_disks``.

        Without ``align``, ``chunk_shape`` defaults to last-axis slabs
        of ``ceil(dims[-1] / n_disks)`` cells (1 disk ⇒ one chunk
        covering the whole dataset, the parity configuration).  With
        ``align`` (the per-axis granule — MultiMap's basic-cube sides
        ``K`` for the ``cube_aligned`` strategy), the default instead
        splits the *last axis whose granule does not span it* — the
        only axes where aligned chunk boundaries exist — rounding the
        chunk side up to whole granules; when every granule spans its
        axis the dataset stays one chunk (a granule is never split,
        even at the cost of fan-out).  An explicit ``chunk_shape`` is
        authoritative — used as given (clipped to ``dims``), never
        re-aligned, so the same shape always reproduces the same chunk
        grid (the fairness condition ``Dataset.with_layout`` clones
        rely on).
        """
        dims = tuple(int(s) for s in dims)
        n_disks = int(n_disks)
        if n_disks < 1:
            raise AllocationError("need at least one disk")
        if chunk_shape is None:
            axis = len(dims) - 1
            granule = 1
            if align is not None:
                align = tuple(int(a) for a in align)
                if len(align) != len(dims):
                    raise AllocationError("align rank mismatch")
                splittable = [
                    i for i, (a, s) in enumerate(zip(align, dims)) if a < s
                ]
                if splittable:
                    axis = splittable[-1]
                    granule = align[axis]
                else:
                    granule = align[axis]  # spans the axis: one chunk
            raw = -(-dims[axis] // n_disks)
            side = min(dims[axis], -(-raw // granule) * granule)
            chunk_shape = dims[:axis] + (side,) + dims[axis + 1:]
        if len(tuple(chunk_shape)) != len(dims):
            raise AllocationError(
                f"chunk_shape rank {len(tuple(chunk_shape))} does not "
                f"match dataset rank {len(dims)}"
            )
        chunk_shape = tuple(
            min(int(c), s) for c, s in zip(chunk_shape, dims)
        )
        chunks = GridDataset(dims).chunks(chunk_shape, n_disks,
                                          strategy=strategy)
        grid = tuple(-(-s // m) for s, m in zip(dims, chunk_shape))
        name = strategy if isinstance(strategy, str) else getattr(
            strategy, "name", str(strategy)
        )
        return cls(dims, n_disks, name, tuple(chunks), grid)

    @classmethod
    def from_chunks(cls, dims, chunks, n_disks: int,
                    strategy: str = "custom") -> "ShardMap":
        """Wrap a pre-computed chunk list (e.g. straight from
        :meth:`GridDataset.chunks`) whose per-chunk disk assignment this
        map now makes authoritative."""
        dims = tuple(int(s) for s in dims)
        chunks = tuple(chunks)
        grid = tuple(
            len({c.origin[d] for c in chunks}) for d in range(len(dims))
        )
        return cls(dims, int(n_disks), strategy, chunks, grid)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def chunks_for_disk(self, disk: int) -> tuple[Chunk, ...]:
        return tuple(c for c in self.chunks if c.disk == int(disk))

    def chunk_counts(self) -> list[int]:
        """Chunks per disk (index = disk)."""
        disks = np.asarray([c.disk for c in self.chunks], dtype=np.int64)
        return np.bincount(disks, minlength=self.n_disks).tolist()

    def _chunk_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked (origins, exclusive ends) of every chunk, built once.

        The dataclass is frozen but not slotted, so the lazily computed
        arrays hide in ``__dict__`` without affecting equality or repr.
        """
        cached = self.__dict__.get("_bounds_cache")
        if cached is None:
            origins = np.array(
                [c.origin for c in self.chunks], dtype=np.int64
            )
            shapes = np.array(
                [c.shape for c in self.chunks], dtype=np.int64
            )
            cached = (origins, origins + shapes)
            object.__setattr__(self, "_bounds_cache", cached)
        return cached

    def intersections(self, lo, hi):
        """Yield ``(chunk, local_lo, local_hi)`` for every chunk the
        half-open global box ``[lo, hi)`` overlaps, in chunk order;
        local coordinates are chunk-relative."""
        origins, ends = self._chunk_bounds()
        lo = np.asarray([int(v) for v in lo], dtype=np.int64)
        hi = np.asarray([int(v) for v in hi], dtype=np.int64)
        olo = np.maximum(lo, origins)
        ohi = np.minimum(hi, ends)
        overlap = np.flatnonzero((olo < ohi).all(axis=1))
        llo = (olo - origins).tolist()
        lhi = (ohi - origins).tolist()
        for i in overlap.tolist():
            yield self.chunks[i], tuple(llo[i]), tuple(lhi[i])

    def describe(self) -> dict:
        """JSON-friendly placement summary."""
        return {
            "n_shards": self.n_disks,
            "strategy": self.strategy,
            "n_chunks": self.n_chunks,
            "grid": list(self.grid),
            "chunk_counts": self.chunk_counts(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardMap(dims={self.dims}, n_disks={self.n_disks}, "
            f"strategy={self.strategy!r}, chunks={self.n_chunks})"
        )
