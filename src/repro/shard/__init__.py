"""repro.shard — multi-disk scale-out via declustered chunk placement.

The shard layer turns the single-drive stack into a parallel storage
system: a :class:`ShardMap` declusters a dataset's chunks across the
member disks of one :class:`~repro.lvm.volume.LogicalVolume` using the
registered strategies of :data:`repro.lvm.striping.STRATEGIES`
(``round_robin``, ``disk_modulo``, ``cube_aligned``), one registered
mapper per chunk places its cells on the owning disk, and the
:class:`ShardedStorageManager` services queries scatter-gather — drives
in parallel, per-drive head state preserved, query time = makespan::

    from repro import Dataset

    ds = Dataset.create((64, 16, 16), layout="multimap", seed=42)
    ds.with_shards(4, strategy="disk_modulo")
    report = ds.random_beams(axis=2, n=8).run()
    print(report.meta["shards"]["stats"]["parallel_efficiency"])

A 1-shard dataset is bit-identical to the unsharded stack across the
executor, batch reports, and traffic runs — ``tests/shard/test_parity.py``
pins the guarantee.  :func:`run_scale_sweep` produces the
speedup-vs-disks curves per layout (``repro-bench scale``).
"""

from repro.shard.executor import (
    ShardStats,
    ShardedMapper,
    ShardedStorageManager,
)
from repro.shard.map import ShardMap
from repro.shard.scale import (
    render_scale_sweep,
    run_scale_sweep,
    scale_beams,
)

__all__ = [
    "ShardMap",
    "ShardStats",
    "ShardedMapper",
    "ShardedStorageManager",
    "render_scale_sweep",
    "run_scale_sweep",
    "scale_beams",
]
