"""Mapping non-grid (skewed) datasets — paper §4.5.

Skewed datasets cannot be gridded wholesale without destroying space
utilisation, so MultiMap is applied *locally*: find subareas with uniform
density (on an octree index: maximal subtrees whose leaves share a level),
grow them by merging neighbours of similar density, map each resulting
region's leaf grid with MultiMap, and fall back to a linear layout for
whatever does not fit a grid.

This module implements that pipeline for 3-D octree-indexed datasets:

* :func:`merge_uniform_octants` — greedy box-growing over the maximal
  uniform subtrees reported by the octree ("we grow the area by
  incorporating its neighbors of similar density; with the octree
  structure, we just need to compare the levels of the elements");
* :class:`RegionMapping` — one MultiMap mapper per merged region plus a
  row-major fallback extent, with a leaf-index -> LBN translation used by
  the query layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.multimap import MultiMapMapper
from repro.errors import MappingError
from repro.index.octree import Octree
from repro.lvm.volume import LogicalVolume

__all__ = ["UniformRegion", "merge_uniform_octants", "RegionMapping"]


@dataclass(frozen=True)
class UniformRegion:
    """An axis-aligned box of equal-size leaves (a gridded subarea)."""

    origin: tuple[int, int, int]     # finest-grid cells
    shape: tuple[int, int, int]      # finest-grid cells
    leaf_level: int
    leaf_side: int                   # finest cells per leaf per axis
    grid: tuple[int, int, int]       # leaves per axis

    @property
    def n_leaves(self) -> int:
        return int(np.prod(self.grid, dtype=np.int64))

    def contains_leaf(self, origin, side) -> bool:
        if side != self.leaf_side:
            return False
        return all(
            self.origin[d] <= origin[d] < self.origin[d] + self.shape[d]
            for d in range(3)
        )

    def leaf_local_coords(self, origins: np.ndarray) -> np.ndarray:
        """Leaf-grid coordinates of leaves given their cell origins."""
        rel = origins - np.asarray(self.origin, dtype=np.int64)
        return rel // self.leaf_side


def merge_uniform_octants(octree: Octree, min_leaves: int = 8) -> list[UniformRegion]:
    """Grow maximal uniform octants into larger box regions.

    Octants of the same size and leaf level are arranged on their natural
    grid; a greedy sweep grows each unclaimed octant into the largest
    axis-aligned box of present octants (+x, then +y, then +z).  Returns
    regions ordered by descending leaf count.
    """
    octants = octree.uniform_regions()
    by_key: dict[tuple[int, int], dict[tuple[int, int, int], dict]] = {}
    for oct_ in octants:
        key = (oct_["side"], oct_["leaf_level"])
        pos = tuple(o // oct_["side"] for o in oct_["origin"])
        by_key.setdefault(key, {})[pos] = oct_

    regions: list[UniformRegion] = []
    for (side, leaf_level), cells in by_key.items():
        unused = set(cells)
        while unused:
            seed = min(unused)  # deterministic
            ext = [1, 1, 1]
            # grow greedily one axis at a time
            for axis in range(3):
                while True:
                    if axis == 0:
                        face = [
                            (seed[0] + ext[0], seed[1] + dy, seed[2] + dz)
                            for dy in range(ext[1])
                            for dz in range(ext[2])
                        ]
                    elif axis == 1:
                        face = [
                            (seed[0] + dx, seed[1] + ext[1], seed[2] + dz)
                            for dx in range(ext[0])
                            for dz in range(ext[2])
                        ]
                    else:
                        face = [
                            (seed[0] + dx, seed[1] + dy, seed[2] + ext[2])
                            for dx in range(ext[0])
                            for dy in range(ext[1])
                        ]
                    if face and all(p in unused for p in face):
                        ext[axis] += 1
                    else:
                        break
            claimed = [
                (seed[0] + dx, seed[1] + dy, seed[2] + dz)
                for dx in range(ext[0])
                for dy in range(ext[1])
                for dz in range(ext[2])
            ]
            for p in claimed:
                unused.discard(p)
            leaf_side = 1 << (octree.depth - leaf_level)
            per_oct = side // leaf_side
            region = UniformRegion(
                origin=(seed[0] * side, seed[1] * side, seed[2] * side),
                shape=(ext[0] * side, ext[1] * side, ext[2] * side),
                leaf_level=leaf_level,
                leaf_side=leaf_side,
                grid=(ext[0] * per_oct, ext[1] * per_oct, ext[2] * per_oct),
            )
            if region.n_leaves >= min_leaves:
                regions.append(region)
    regions.sort(key=lambda r: -r.n_leaves)
    return regions


class RegionMapping:
    """MultiMap applied per uniform region, linear fallback elsewhere.

    Parameters
    ----------
    octree:
        The dataset's index.
    regions:
        Output of :func:`merge_uniform_octants` (possibly truncated).
    volume, disk:
        Where the data lives; each region allocates its own basic cubes.
    """

    def __init__(
        self,
        octree: Octree,
        regions: list[UniformRegion],
        volume: LogicalVolume,
        disk: int = 0,
    ):
        self.octree = octree
        self.regions = list(regions)
        self.volume = volume
        self.disk = disk

        origins = octree.leaf_origins()
        n = octree.n_leaves
        self._region_of_leaf = np.full(n, -1, dtype=np.int64)
        self._local = np.zeros((n, 3), dtype=np.int64)

        self.mappers: list[MultiMapMapper] = []
        for ri, region in enumerate(self.regions):
            mapper = MultiMapMapper(region.grid, volume, disk)
            self.mappers.append(mapper)
            sel = self._leaves_of_region(origins, region)
            self._region_of_leaf[sel] = ri
            self._local[sel] = region.leaf_local_coords(origins[sel, :3])

        # fallback: whatever is not in a mapped region, in canonical leaf
        # order on a plain extent (§4.5 "revert to traditional linear
        # mapping techniques")
        fallback = np.flatnonzero(self._region_of_leaf == -1)
        self._fallback_rank = np.full(n, -1, dtype=np.int64)
        self._fallback_rank[fallback] = np.arange(fallback.size)
        if fallback.size:
            self.fallback_extent = volume.allocate_blocks(
                disk, int(fallback.size)
            )
        else:
            self.fallback_extent = None
        self.n_fallback = int(fallback.size)

    @staticmethod
    def _leaves_of_region(origins: np.ndarray, region: UniformRegion):
        mask = origins[:, 3] == region.leaf_side
        for d in range(3):
            mask &= origins[:, d] >= region.origin[d]
            mask &= origins[:, d] < region.origin[d] + region.shape[d]
        return np.flatnonzero(mask)

    @property
    def coverage(self) -> float:
        """Fraction of leaves living inside MultiMap regions."""
        n = self.octree.n_leaves
        return (n - self.n_fallback) / n if n else 0.0

    def leaf_lbns(self, leaf_indices: np.ndarray) -> np.ndarray:
        """LBN of each requested leaf (one block per leaf)."""
        leaf_indices = np.asarray(leaf_indices, dtype=np.int64)
        out = np.empty(leaf_indices.shape, dtype=np.int64)
        regions = self._region_of_leaf[leaf_indices]
        for ri in np.unique(regions):
            sel = regions == ri
            idx = leaf_indices[sel]
            if ri < 0:
                if self.fallback_extent is None:
                    raise MappingError("leaf outside regions, no fallback")
                out[sel] = (
                    self.fallback_extent.start + self._fallback_rank[idx]
                )
            else:
                out[sel] = self.mappers[int(ri)].lbns(self._local[idx])
        return out
