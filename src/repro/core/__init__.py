"""MultiMap itself: basic cubes, planner, mapper, regions, updates."""

from repro.core.basic_cube import BasicCube, map_cell, max_dimensions
from repro.core.multimap import MultiMapMapper, ZoneAllocation
from repro.core.planner import CubePlan, plan_basic_cube, track_waste_fraction
from repro.core.regions import RegionMapping, UniformRegion, merge_uniform_octants
from repro.core.store import CellStore, StoreStats
from repro.core.visualize import (
    render_figure2,
    render_figure3,
    render_figure4,
    render_mapping,
)

__all__ = [
    "BasicCube",
    "CellStore",
    "CubePlan",
    "MultiMapMapper",
    "RegionMapping",
    "StoreStats",
    "UniformRegion",
    "ZoneAllocation",
    "map_cell",
    "max_dimensions",
    "merge_uniform_octants",
    "plan_basic_cube",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_mapping",
    "track_waste_fraction",
]
