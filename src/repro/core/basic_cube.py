"""Basic cubes: the unit of MultiMap allocation (paper §4.2).

A *basic cube* is the largest N-D data cube that can be mapped onto a disk
without losing spatial locality.  Its side lengths ``K = (K0 .. K_{N-1})``
must satisfy the paper's three constraints:

* **Equation 1** — ``K0 <= T``: the first dimension lies along a track.
* **Equation 2** — ``K_{N-1} <= tracks_in_zone / prod(K1 .. K_{N-2})``:
  the last dimension is bounded by the zone's track count.
* **Equation 3** — ``prod(K1 .. K_{N-2}) <= D``: every step along the last
  dimension must stay within the adjacency distance.

Within a cube, Dim0 runs along the track and Dim_i (i >= 1) follows
successive ``prod(K1..K_{i-1})``-th adjacent blocks.  The iterative
``map_cell`` below is a faithful transcription of the paper's Figure 5
algorithm, driving the LVM's ``get_adjacent`` interface call; the closed
form used by the vectorised mapper lives in
:mod:`repro.core.multimap` and is property-tested against this one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError

__all__ = ["BasicCube", "map_cell", "max_dimensions"]


@dataclass(frozen=True)
class BasicCube:
    """Validated basic-cube shape for a given zone.

    Parameters
    ----------
    K:
        Side lengths, ``K[0]`` along the track.
    track_length:
        The zone's *T* (in cells; divide the sector count by the cell size
        first when cells span multiple blocks).
    zone_tracks:
        Number of tracks in the target zone (Equation 2 bound).
    depth:
        The adjacency distance *D*.
    """

    K: tuple[int, ...]
    track_length: int
    zone_tracks: int
    depth: int

    def __post_init__(self) -> None:
        K = tuple(int(k) for k in self.K)
        object.__setattr__(self, "K", K)
        if not K or any(k < 1 for k in K):
            raise MappingError(f"invalid cube sides {K}")
        if K[0] > self.track_length:  # Equation 1
            raise MappingError(
                f"K0={K[0]} exceeds track length {self.track_length}"
            )
        if self.inner_volume > self.depth:  # Equation 3
            raise MappingError(
                f"prod(K1..K_N-2)={self.inner_volume} exceeds D={self.depth}"
            )
        if self.n_dims >= 2 and K[-1] > self.zone_tracks // self.inner_volume:
            # Equation 2
            raise MappingError(
                f"K_N-1={K[-1]} exceeds zone capacity"
                f" {self.zone_tracks}/{self.inner_volume}"
            )

    @property
    def n_dims(self) -> int:
        return len(self.K)

    @property
    def inner_volume(self) -> int:
        """prod(K1 .. K_{N-2}) — the Equation 3 quantity."""
        return int(np.prod(self.K[1:-1], dtype=np.int64)) if self.n_dims > 2 else 1

    @property
    def tracks_per_cube(self) -> int:
        """Tracks one cube occupies: prod(K1 .. K_{N-1})."""
        return int(np.prod(self.K[1:], dtype=np.int64)) if self.n_dims > 1 else 1

    @property
    def cells_per_cube(self) -> int:
        return int(np.prod(self.K, dtype=np.int64))

    def adjacency_steps(self) -> tuple[int, ...]:
        """Adjacency step used for each dimension i >= 1:
        step_i = prod(K1 .. K_{i-1})."""
        steps = []
        acc = 1
        for i in range(1, self.n_dims):
            steps.append(acc)
            acc *= self.K[i]
        return tuple(steps)

    def track_deltas(self, coords: np.ndarray) -> np.ndarray:
        """Track offset of each cell within its cube: the mixed-radix value
        of (x1 .. x_{N-1}) with radices (K1 .. K_{N-1})."""
        steps = self.adjacency_steps()
        out = np.zeros(coords.shape[0], dtype=np.int64)
        for i in range(1, self.n_dims):
            out += coords[:, i] * steps[i - 1]
        return out


def map_cell(adjacency, first_lbn: int, coords, K) -> int:
    """Figure 5: map one cell of a basic cube to an LBN.

    ``adjacency`` is anything exposing ``get_adjacent(lbn, step)`` — an
    :class:`~repro.disk.adjacency.AdjacencyModel` or a logical-volume
    shim.  ``first_lbn`` stores cell (0, .., 0).
    """
    coords = tuple(int(x) for x in coords)
    K = tuple(int(k) for k in K)
    if len(coords) != len(K):
        raise MappingError("coords rank does not match cube rank")
    for x, k in zip(coords, K):
        if not 0 <= x < k:
            raise MappingError(f"cell {coords} outside cube {K}")
    lbn = first_lbn + coords[0]
    step = 1
    for i in range(1, len(K)):
        for _ in range(coords[i]):
            lbn = adjacency.get_adjacent(lbn, step)
        step *= K[i]
    return lbn


def max_dimensions(depth: int) -> int:
    """Equation 5: N_max = 2 + log2(D), the dimensionality a disk supports
    (each inner dimension needs K_i >= 2)."""
    if depth < 1:
        raise MappingError("depth must be >= 1")
    return 2 + int(math.log2(depth))
