"""Choosing basic-cube dimensions for a dataset (paper §4.4).

The paper leaves the choice of ``K_i`` to the system ("a system can choose
the best basic cube size based on the dimensions of its datasets"), noting
only that bigger cubes preserve more locality and that short-``S0``
datasets waste ``(T mod K0) / T`` of each track.  This module makes the
choice explicit:

* ``K0 = min(S0, T)`` — the track length is not tunable;
* inner dimensions are searched under the Equation 3 budget
  (``prod <= D``), with two strategies:

  - ``"compact"`` (default): minimise the total tracks the dataset
    allocates, counting cube-grid padding, track packing and zone-end
    fragmentation — what a space-conscious system would do;
  - ``"volume"``: maximise cube volume, the paper's "bigger is better"
    guidance, ignoring padding.

* ``K_{N-1} = min(S_{N-1}, zone_tracks / prod(K_1..K_{N-2}))`` (Eq. 2).

The planner also reports the §4.4 waste diagnostics so EXPERIMENTS.md can
quote them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.basic_cube import BasicCube
from repro.errors import MappingError
from repro.perf.memo import MEMO

__all__ = ["CubePlan", "plan_basic_cube", "track_waste_fraction"]


@dataclass(frozen=True)
class CubePlan:
    """A planned basic cube plus the allocation bookkeeping around it."""

    cube: BasicCube
    dims: tuple[int, ...]
    grid: tuple[int, ...]          # cubes per dimension (ceil(S_i / K_i))
    packing: int                   # cubes sharing one track group (T // K0)
    total_cubes: int
    total_track_groups: int
    total_tracks: int
    waste_fraction: float          # §4.4 track waste for this K0

    @property
    def K(self) -> tuple[int, ...]:
        return self.cube.K


def track_waste_fraction(track_length: int, k0: int, packing: int) -> float:
    """§4.4: fraction of each track left unmapped, (T mod K0)/T with
    packing, zero when the row spans the whole track."""
    used = packing * k0
    return (track_length - used) / track_length


def _inner_candidates(dims, depth: int):
    """Enumerate every (K1 .. K_{N-2}) tuple with prod <= depth.

    The Equation 3 budget keeps this space small (O(D polylog D) tuples),
    so exhaustive enumeration is affordable and avoids the greedy trap
    where a larger side pads the cube grid more than it helps.
    """
    inner_dims = dims[1:-1]
    if not inner_dims:
        yield ()
        return

    def rec(prefix: tuple[int, ...], budget: int, remaining):
        if not remaining:
            yield prefix
            return
        s = remaining[0]
        for k in range(1, min(s, budget) + 1):
            yield from rec(prefix + (k,), budget // k, remaining[1:])

    yield from rec((), depth, tuple(int(s) for s in inner_dims))


def _plan_cost(dims, K, track_length, zone_tracks, packing):
    """Total tracks the dataset would allocate under this cube shape.

    Counts cube-grid padding (ceil(S/K) rounding) and track-slot packing.
    Zone-end remainders are *not* charged: the allocator lays groups
    contiguously and the remainder stays available to other data.
    """
    grid = tuple(-(-s // k) for s, k in zip(dims, K))
    total_cubes = int(np.prod(grid, dtype=np.int64))
    tracks_per_cube = int(np.prod(K[1:], dtype=np.int64)) if len(K) > 1 else 1
    groups = -(-total_cubes // packing)
    return groups * tracks_per_cube, grid, total_cubes, groups


def plan_basic_cube(
    dims,
    track_length: int,
    zone_tracks: int,
    depth: int,
    strategy: str = "compact",
) -> CubePlan:
    """Choose basic-cube sides for a dataset in a zone.

    Parameters
    ----------
    dims:
        Dataset side lengths (S_i), in cells.
    track_length:
        Zone track length *T* in cells (callers divide by the cell size).
    zone_tracks:
        Tracks available per zone (Equation 2 bound).
    depth:
        Adjacency distance *D*.
    strategy:
        ``"compact"`` or ``"volume"`` (see module docstring).
    """
    dims = tuple(int(s) for s in dims)
    if not dims or any(s < 1 for s in dims):
        raise MappingError(f"invalid dataset dims {dims}")
    if strategy not in ("compact", "volume"):
        raise MappingError(f"unknown strategy {strategy!r}")
    n = len(dims)
    if n > 2 and depth < 1:
        raise MappingError("adjacency depth must be >= 1")

    # a pure function of its (validated) arguments returning a frozen
    # plan: memoize it, so with_layout/with_shards clones and the
    # cube_aligned granule probe share one copy instead of re-searching
    memo_key = (
        dims, int(track_length), int(zone_tracks), int(depth), strategy
    )
    cached = MEMO.get("cube_plan", memo_key)
    if cached is not None:
        return cached

    # K0 candidates: the natural min(S0, T) plus shorter rows that let
    # several cubes pack per track with little tail waste — splitting Dim0
    # is cheap because consecutive cubes share track groups, so rows stay
    # contiguous across the split.
    k0_set = {min(dims[0], track_length)}
    for p in range(2, 17):
        k0 = min(dims[0], track_length // p)
        if k0 >= 1:
            k0_set.add(k0)

    candidates = []
    for k0 in sorted(k0_set, reverse=True):
        packing = max(track_length // k0, 1)
        inner_tuples = [()] if n == 1 else _inner_candidates(dims, depth)
        for inner in inner_tuples:
            inner_vol = int(np.prod(inner, dtype=np.int64)) if inner else 1
            if n == 1:
                K = (k0,)
            else:
                k_last = max(1, min(dims[-1], zone_tracks // inner_vol))
                K = (k0,) + inner + (k_last,)
            tracks_per_cube = (
                int(np.prod(K[1:], dtype=np.int64)) if n > 1 else 1
            )
            if tracks_per_cube > zone_tracks:
                continue
            cost, grid, total_cubes, groups = _plan_cost(
                dims, K, track_length, zone_tracks, packing
            )
            candidates.append((cost, K, grid, total_cubes, groups, packing))

    if not candidates:
        raise MappingError(
            f"no basic cube fits dims {dims} in a zone of {zone_tracks}"
            f" tracks with D={depth}"
        )

    # Two-pass selection: space first, then locality among near-ties.
    # Within 10% of the minimum track count, prefer longer sides for
    # *later* dimensions (crossing a cube boundary along Dim_i jumps
    # prod(K1..K_{i-1}) tracks, so later dimensions pay the most for small
    # K_i), then larger cubes, then fewer tracks.
    min_cost = min(c[0] for c in candidates)
    if strategy == "compact":
        pool = [c for c in candidates if c[0] <= min_cost * 1.10]

        def rank(c):
            cost, K = c[0], c[1]
            later_first = tuple(-k for k in reversed(K[1:])) or (0,)
            return (later_first, -int(np.prod(K, dtype=np.int64)), cost)

    else:  # "volume": the paper's bigger-is-better guidance
        pool = candidates

        def rank(c):
            cost, K = c[0], c[1]
            later_first = tuple(-k for k in reversed(K[1:])) or (0,)
            return (-int(np.prod(K, dtype=np.int64)), cost, later_first)

    cost, K, grid, total_cubes, groups, packing = min(pool, key=rank)
    cube = BasicCube(K, track_length, zone_tracks, depth)
    plan = CubePlan(
        cube=cube,
        dims=dims,
        grid=grid,
        packing=packing,
        total_cubes=total_cubes,
        total_track_groups=groups,
        total_tracks=cost,
        waste_fraction=track_waste_fraction(track_length, K[0], packing),
    )
    MEMO.put("cube_plan", memo_key, plan)
    return plan
