"""The MultiMap mapper (paper §4).

Maps an N-D dataset onto one disk of a logical volume as a grid of basic
cubes:

* the dataset is partitioned into ``ceil(S_i / K_i)`` cubes per dimension
  (§4.4), enumerated cube-0-fastest;
* consecutive cubes share track groups when several rows fit on a track
  (``T // K0`` of them — "pack as many basic cubes next to each other
  along the track as possible");
* cubes are laid into zones outer-first and never straddle a zone boundary;
* within a cube, Dim0 runs along the track and Dim_i follows chains of
  ``prod(K1..K_{i-1})``-th adjacent blocks (Figure 5).

Two implementations of the cell->LBN map coexist: the faithful iterative
Figure 5 algorithm (:func:`repro.core.basic_cube.map_cell`, driven through
the LVM's ``get_adjacent``) and the closed form used here.  An adjacency
hop of step *j* advances *j* tracks and shifts the sector by ``A - j*w``
(mod T), where *A* is the drive's angular adjacency offset and *w* its
track skew; composing the hops of a whole coordinate gives::

    track  = cube_track_base + dtrack          dtrack = sum x_i * step_i
    sector = (base + x0 + A*sigma - w*dtrack) mod T,    sigma = sum x_i

which vectorises over millions of cells.  A property test asserts the two
implementations agree cell-for-cell.

The mapper learns each zone's (A, w) *through the LVM interface calls
alone* — the sector deltas of the first and second adjacent blocks are
``A - w`` and ``A - 2w`` — keeping the paper's abstraction boundary intact.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.api.registry import register_layout
from repro.core.planner import CubePlan, plan_basic_cube
from repro.errors import MappingError
from repro.lvm.volume import LogicalVolume
from repro.mappings.base import Mapper, RequestPlan, enumerate_box

__all__ = ["MultiMapMapper", "ZoneAllocation"]


@dataclass(frozen=True)
class ZoneAllocation:
    """One zone's worth of basic cubes."""

    zone_index: int
    first_cube: int          # linear index of the first cube placed here
    n_cubes: int
    packing: int             # cubes per track group in this zone
    track_length: int        # sectors per track (spt)
    offset: int              # angular adjacency offset A in sectors (derived)
    skew: int                # track skew w in sectors (derived)
    first_lbn: int           # start of the allocated, track-aligned extent


@register_layout("multimap", wiring="volume")
class MultiMapMapper(Mapper):
    """MultiMap data placement for one dataset chunk on one disk."""

    name = "multimap"

    def __init__(
        self,
        dims,
        volume: LogicalVolume,
        disk: int = 0,
        *,
        cell_blocks: int = 1,
        strategy: str = "compact",
        plan: CubePlan | None = None,
        zones: list[int] | None = None,
    ):
        self.volume = volume
        self.disk = disk
        zone_infos = volume.zones(disk)
        if zones is not None:
            zone_infos = [zone_infos[i] for i in zones]
        if not zone_infos:
            raise MappingError("no zones available")

        depth = volume.depth(disk)
        # Plan against the first (outermost) usable zone: allocation starts
        # there, and later zones recompute their own slot packing.  Zones
        # whose tracks are too short for K0 are skipped at allocation time;
        # if that starves the allocation, replan conservatively with the
        # shortest track length so every zone stays usable.
        t_outer = zone_infos[0].track_length // cell_blocks
        t_min = min(z.track_length for z in zone_infos) // cell_blocks
        if t_outer < 1:
            raise MappingError("cells larger than a track")
        min_tracks = min(z.tracks for z in zone_infos)
        candidates = [plan] if plan is not None else [
            plan_basic_cube(dims, t, min_tracks, depth, strategy=strategy)
            for t in dict.fromkeys((t_outer, t_min))
        ]

        # Mapper.__init__ before allocation so dims validation happens once.
        super().__init__(dims, extent=None, cell_blocks=cell_blocks, disk=disk)

        self._zone_infos = zone_infos
        last_error: MappingError | None = None
        for cand in candidates:
            if len(cand.K) != self.n_dims:
                raise MappingError("plan rank does not match dataset rank")
            self.plan = cand
            self.K = cand.K
            self._steps = cand.cube.adjacency_steps()
            self._tracks_per_cube = cand.cube.tracks_per_cube
            self._grid = cand.grid
            grid_strides = [1]
            for g in self._grid[:-1]:
                grid_strides.append(grid_strides[-1] * g)
            self._grid_strides = np.asarray(grid_strides, dtype=np.int64)
            self._K_arr = np.asarray(self.K, dtype=np.int64)
            saved = volume.allocation_cursor(disk)
            try:
                self._allocations = self._allocate(zone_infos)
                last_error = None
                break
            except MappingError as exc:
                volume.restore_allocation(disk, saved)
                last_error = exc
        if last_error is not None:
            raise last_error
        self._refresh_records()

    def _refresh_records(self) -> None:
        """Rebuild the vectorised per-allocation lookup arrays."""
        self._rec_first_cube = np.array(
            [a.first_cube for a in self._allocations], dtype=np.int64
        )
        self._rec_pack = np.array(
            [a.packing for a in self._allocations], dtype=np.int64
        )
        self._rec_spt = np.array(
            [a.track_length for a in self._allocations], dtype=np.int64
        )
        self._rec_offset = np.array(
            [a.offset for a in self._allocations], dtype=np.int64
        )
        self._rec_skew = np.array(
            [a.skew for a in self._allocations], dtype=np.int64
        )
        self._rec_lbn = np.array(
            [a.first_lbn for a in self._allocations], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def _derive_offsets(self, zone_first_lbn: int, spt: int) -> tuple[int, int]:
        """Learn (A, w) from the interface calls alone.

        For a track-aligned LBN, the first adjacent block sits at sector
        ``(A - w) mod spt`` and the second at ``(A - 2w) mod spt``; two
        calls therefore separate the angular adjacency offset *A* from the
        track skew *w*.  Depth-1 volumes expose only ``A - w``, which is
        all their single-step mappings ever use.
        """
        vol, disk = self.volume, self.disk
        a1 = vol.get_adjacent(disk, zone_first_lbn, 1)
        lo1, _ = vol.get_track_boundaries(disk, a1)
        d1 = a1 - lo1  # (A - w) mod spt
        if vol.depth(disk) < 2:
            return d1, 0
        a2 = vol.get_adjacent(disk, zone_first_lbn, 2)
        lo2, _ = vol.get_track_boundaries(disk, a2)
        d2 = a2 - lo2  # (A - 2w) mod spt
        w = (d1 - d2) % spt
        a = (2 * d1 - d2) % spt
        return a, w

    def _allocate(
        self, zone_infos, n_cubes: int | None = None, first_cube: int = 0
    ) -> list[ZoneAllocation]:
        """Allocate ``n_cubes`` basic cubes (default: the whole plan),
        assigning them linear indices starting at ``first_cube``."""
        vol, disk = self.volume, self.disk
        tpc = self._tracks_per_cube
        k0_sectors = self.K[0] * self.cell_blocks
        remaining = self.plan.total_cubes if n_cubes is None else n_cubes
        out: list[ZoneAllocation] = []
        next_cube = first_cube
        for z in zone_infos:
            if remaining == 0:
                break
            packing = z.track_length // k0_sectors
            if packing == 0:
                continue
            free_groups = vol.free_tracks_in_zone(disk, z.index) // tpc
            if free_groups == 0:
                continue
            groups_needed = -(-remaining // packing)
            groups = min(groups_needed, free_groups)
            extent = vol.allocate_tracks(disk, groups * tpc, zone_index=z.index)
            n_here = min(remaining, groups * packing)
            a_off, w_off = self._derive_offsets(z.first_lbn, z.track_length)
            out.append(
                ZoneAllocation(
                    zone_index=z.index,
                    first_cube=next_cube,
                    n_cubes=n_here,
                    packing=packing,
                    track_length=z.track_length,
                    offset=a_off,
                    skew=w_off,
                    first_lbn=extent.start,
                )
            )
            next_cube += n_here
            remaining -= n_here
        if remaining:
            raise MappingError(
                f"allocation needs {remaining + next_cube - first_cube}"
                f" basic cubes; only {next_cube - first_cube} fit on disk"
                f" {disk}"
            )
        return out

    # ------------------------------------------------------------------
    # closed-form cell mapping
    # ------------------------------------------------------------------

    def _locate(self, coords: np.ndarray):
        """(rec, track_offset_lbn, sector) for each cell.

        ``track_offset_lbn`` is the LBN of the cell's track start relative
        to the zone allocation's first LBN; adding ``sector`` gives the
        final LBN.
        """
        cube_coord = coords // self._K_arr
        rel = coords - cube_coord * self._K_arr
        cube_idx = cube_coord @ self._grid_strides
        rec = (
            np.searchsorted(self._rec_first_cube, cube_idx, side="right") - 1
        )
        local = cube_idx - self._rec_first_cube[rec]
        pack = self._rec_pack[rec]
        group = local // pack
        slot = local - group * pack

        dtrack = np.zeros(coords.shape[0], dtype=np.int64)
        sigma = np.zeros(coords.shape[0], dtype=np.int64)
        for i in range(1, self.n_dims):
            dtrack += rel[:, i] * self._steps[i - 1]
            sigma += rel[:, i]

        spt = self._rec_spt[rec]
        offset = self._rec_offset[rec]
        skew = self._rec_skew[rec]
        cb = self.cell_blocks
        base = slot * (self.K[0] * cb)
        shift = (offset * sigma - skew * dtrack) % spt
        if cb > 1:
            # Multi-block cells must stay cell-aligned so no cell straddles
            # a track end: round the angular shift up to a cell boundary
            # and wrap within the largest cell-aligned prefix of the track.
            spt_eff = (spt // cb) * cb
            shift = (-(-shift // cb) * cb) % spt_eff
            sector = (base + rel[:, 0] * cb + shift) % spt_eff
        else:
            sector = (base + rel[:, 0] + shift) % spt
        track_delta = group * self._tracks_per_cube + dtrack
        return rec, track_delta, sector, spt

    def lbns(self, coords) -> np.ndarray:
        arr = self._check_coords(coords)
        rec, track_delta, sector, spt = self._locate(arr)
        return self._rec_lbn[rec] + track_delta * spt + sector

    def write_extents(self, coords) -> tuple[np.ndarray, np.ndarray]:
        """Whole-cube write extents covering ``coords`` (§4.6 bulk load).

        A bulk load flushes buffered points as *whole basic cubes*: each
        touched cube's track group is laid down start to end as one long
        sequential run — "MultiMap can be used to allocate basic cubes
        to hold new points while preserving spatial locality" — instead
        of scattering cell-sized writes across the semi-sequential
        placement (whose ascending-LBN hops land just behind the head
        and pay near-full revolutions).  Returns sorted unique
        ``(starts, lengths)`` covering extents; packed cube groups share
        one extent.
        """
        arr = self._check_coords(coords)
        cube_idx = (arr // self._K_arr) @ self._grid_strides
        rec = (
            np.searchsorted(self._rec_first_cube, cube_idx, side="right") - 1
        )
        local = cube_idx - self._rec_first_cube[rec]
        group = local // self._rec_pack[rec]
        spt = self._rec_spt[rec]
        tpc = self._tracks_per_cube
        starts = self._rec_lbn[rec] + group * tpc * spt
        uniq, idx = np.unique(starts, return_index=True)
        return uniq, (tpc * spt)[idx]

    def append_slabs(self, n_cells: int) -> None:
        """Bulk-append ``n_cells`` along the last dimension (§4.6).

        Observation-based applications "generate large amounts of new data
        at regular intervals and append the new data to the existing
        database in a bulk-load fashion.  In such applications, MultiMap
        can be used to allocate basic cubes to hold new points while
        preserving spatial locality."

        The last dimension is the slowest-varying in the cube enumeration,
        so growth appends cubes at the end of the linear order: existing
        cells keep their LBNs, new cells first fill the partial cubes of
        the final slab and fresh basic cubes are allocated only when a new
        cube row starts.
        """
        if n_cells < 1:
            raise MappingError("append size must be >= 1")
        old_dims = self.dims
        new_last = old_dims[-1] + n_cells
        k_last = self.K[-1]
        new_g_last = -(-new_last // k_last)
        added_rows = new_g_last - self._grid[-1]
        if added_rows > 0:
            per_row = int(
                np.prod(self._grid[:-1], dtype=np.int64)
            )
            first_new = self.plan.total_cubes
            saved = self.volume.allocation_cursor(self.disk)
            try:
                new_allocs = self._allocate(
                    self._zone_infos,
                    n_cubes=added_rows * per_row,
                    first_cube=first_new,
                )
            except MappingError:
                self.volume.restore_allocation(self.disk, saved)
                raise
            self._allocations = self._allocations + new_allocs
            self._refresh_records()
        self.dims = old_dims[:-1] + (new_last,)
        self._grid = self._grid[:-1] + (new_g_last,)
        self.plan = dataclasses.replace(
            self.plan,
            dims=self.dims,
            grid=self._grid,
            total_cubes=int(np.prod(self._grid, dtype=np.int64)),
        )
        # grid strides only involve grid[:-1]; they are unchanged.

    def first_lbn_of_cube(self, cube_coord) -> int:
        """LBN storing cell (0,..,0) of a cube — the Figure 5 anchor."""
        cube_coord = np.asarray(cube_coord, dtype=np.int64)
        origin = (cube_coord * self._K_arr)[np.newaxis, :]
        return int(self.lbns(origin)[0])

    # ------------------------------------------------------------------
    # query planning
    # ------------------------------------------------------------------

    def beam_plan(self, axis, fixed, lo=0, hi=None) -> RequestPlan:
        coords = self._beam_coords(axis, fixed, lo, hi)
        if axis == 0:
            starts, lengths = self._rows_to_runs(
                coords[:1], int(coords[0, 0]), int(coords[-1, 0]) + 1
            )
            order = np.argsort(starts, kind="stable")
            return RequestPlan.from_arrays(
                starts[order], lengths[order], "sorted", 0
            )
        # Semi-sequential path: one cell per request, already in path
        # (= ascending LBN) order.
        lbns = self.lbns(coords)
        lengths = np.full(lbns.shape, self.cell_blocks, dtype=np.int64)
        return RequestPlan.from_arrays(lbns, lengths, "fifo", 0)

    def range_plan(self, lo, hi) -> RequestPlan:
        lo, hi = self._check_box(lo, hi)
        if self.n_dims == 1:
            rows = np.zeros((1, 1), dtype=np.int64)
            rows[0, 0] = lo[0]
            starts, lengths = self._rows_to_runs(rows, lo[0], hi[0])
            return RequestPlan.from_arrays(starts, lengths, "sorted")
        row_coords = enumerate_box(lo[1:], hi[1:])
        anchors = np.empty(
            (row_coords.shape[0], self.n_dims), dtype=np.int64
        )
        anchors[:, 0] = lo[0]
        anchors[:, 1:] = row_coords
        starts, lengths = self._rows_to_runs(anchors, lo[0], hi[0])
        order = np.argsort(starts, kind="stable")
        return RequestPlan.from_arrays(starts[order], lengths[order], "sptf")

    def _rows_to_runs(self, anchors: np.ndarray, x0_lo: int, x0_hi: int):
        """Runs covering x0 in [x0_lo, x0_hi) for each anchor row.

        Rows are split at basic-cube columns (x0 crossing K0) and at track
        wrap-around (a skew-shifted row may straddle the track end, in
        which case it continues at sector 0 of the same track).
        """
        k0 = self.K[0]
        cb = self.cell_blocks
        all_starts = []
        all_lengths = []
        c_lo, c_hi = x0_lo // k0, (x0_hi - 1) // k0
        for c0 in range(c_lo, c_hi + 1):
            seg_lo = max(x0_lo, c0 * k0)
            seg_hi = min(x0_hi, (c0 + 1) * k0)
            seg_len = (seg_hi - seg_lo) * cb
            coords = anchors.copy()
            coords[:, 0] = seg_lo
            rec, track_delta, sector, spt = self._locate(coords)
            base_lbn = self._rec_lbn[rec] + track_delta * spt
            # rows wrap within the cell-aligned prefix of the track
            wrap_at = spt if cb == 1 else (spt // cb) * cb
            overflow = sector + seg_len - wrap_at
            wraps = overflow > 0
            first_len = np.where(wraps, wrap_at - sector, seg_len)
            all_starts.append(base_lbn + sector)
            all_lengths.append(first_len)
            if bool(wraps.any()):
                all_starts.append(base_lbn[wraps])
                all_lengths.append(overflow[wraps])
        starts = np.concatenate(all_starts)
        lengths = np.concatenate(all_lengths)
        return starts, lengths
