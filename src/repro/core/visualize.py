"""ASCII rendering of MultiMap layouts — the paper's Figures 2-4 as text.

``render_mapping`` draws the LBN each cell maps to, layer by layer, in the
same orientation as the paper's figures (Dim0 left-to-right, Dim1
bottom-to-top, outer dimensions as separate layer blocks).  Useful for
documentation, debugging a planner choice, and the examples.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.mappings.base import Mapper

__all__ = ["render_mapping", "render_figure2", "render_figure3",
           "render_figure4"]


def _layer_lines(mapper: Mapper, fixed_outer: tuple[int, ...]) -> list[str]:
    s0, s1 = mapper.dims[0], mapper.dims[1]
    coords = np.empty((s0 * s1, mapper.n_dims), dtype=np.int64)
    xs, ys = np.meshgrid(np.arange(s0), np.arange(s1), indexing="ij")
    coords[:, 0] = xs.T.ravel()
    coords[:, 1] = ys.T.ravel()
    for d, v in enumerate(fixed_outer, start=2):
        coords[:, d] = v
    lbns = mapper.lbns(coords).reshape(s1, s0)
    width = max(len(str(int(lbns.max()))), 3)
    lines = []
    for row in range(s1 - 1, -1, -1):  # Dim1 bottom-to-top, like the paper
        lines.append(
            " ".join(str(int(v)).rjust(width) for v in lbns[row])
        )
    return lines


def render_mapping(mapper: Mapper, max_cells: int = 4096) -> str:
    """Render every cell's LBN, one 2-D layer per outer coordinate."""
    if mapper.n_cells > max_cells:
        raise MappingError(
            f"{mapper.n_cells} cells is too many to render (cap {max_cells})"
        )
    if mapper.n_dims < 2:
        coords = np.arange(mapper.dims[0])[:, None]
        lbns = mapper.lbns(coords)
        return " ".join(str(int(v)) for v in lbns)
    blocks = []
    outer_dims = mapper.dims[2:]
    outer_coords = [()]
    for d, s in enumerate(outer_dims):
        outer_coords = [c + (v,) for c in outer_coords for v in range(s)]
    # enumerate with the *earlier* outer dimension varying fastest
    outer_coords.sort(key=lambda c: tuple(reversed(c)))
    for outer in outer_coords:
        if outer:
            label = ", ".join(
                f"x{d + 2}={v}" for d, v in enumerate(outer)
            )
            blocks.append(f"[{label}]")
        blocks.extend(_layer_lines(mapper, outer))
        blocks.append("")
    return "\n".join(blocks).rstrip()


def _toy_mapper(dims):
    from repro.core.multimap import MultiMapMapper
    from repro.disk import toy_disk
    from repro.lvm import LogicalVolume

    volume = LogicalVolume([toy_disk(tracks=80)], depth=9)
    return MultiMapMapper(dims, volume)


def render_figure2() -> str:
    """The paper's Figure 2: the (5 x 3) mapping on the toy disk."""
    return render_mapping(_toy_mapper((5, 3)))


def render_figure3() -> str:
    """The paper's Figure 3: the (5 x 3 x 3) mapping."""
    return render_mapping(_toy_mapper((5, 3, 3)))


def render_figure4() -> str:
    """The paper's Figure 4: the (5 x 3 x 3 x 2) mapping."""
    return render_mapping(_toy_mapper((5, 3, 3, 2)))
