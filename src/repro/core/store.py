"""Variable-size dataset support — paper §4.6.

MultiMap targets mostly-static scientific data, but §4.6 sketches how
online updates work: cells are loaded with a **tunable fill factor**, new
points go to free space in their destination cell, full cells spill to
**overflow pages**, and space reclamation of underflowing cells is
triggered by a second tunable threshold and performed by (expensive)
reorganisation.  This module implements that scheme on top of any
:class:`~repro.mappings.base.Mapper`.

Point capacity is expressed per cell; overflow pages live in a separate
extent on the same disk and are chained per cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError, MappingError
from repro.lvm.volume import LogicalVolume
from repro.mappings.base import Mapper, RequestPlan, coalesce_ranks

__all__ = ["CellStore", "StoreStats"]


@dataclass(frozen=True)
class StoreStats:
    """Occupancy summary of a :class:`CellStore`."""

    n_cells: int
    n_points: int
    capacity_per_cell: int
    fill_factor: float
    overflow_pages: int
    overflow_points: int
    underflow_cells: int
    mean_fill: float


class CellStore:
    """Cells with fill factor, overflow chains and reclamation triggers.

    Parameters
    ----------
    mapper:
        The placement of the primary cells.
    volume:
        Volume the overflow extent is allocated from (the mapper's disk).
    points_per_cell:
        Physical capacity of one cell.
    fill_factor:
        Fraction of capacity used during initial load (leaving headroom
        for inserts); 1.0 reproduces the paper's read-only evaluation.
    reclaim_threshold:
        A cell underflows when its occupancy falls below this fraction;
        :attr:`needs_reorganization` trips when any cell underflows.
    """

    def __init__(
        self,
        mapper: Mapper,
        volume: LogicalVolume,
        *,
        points_per_cell: int = 16,
        fill_factor: float = 1.0,
        reclaim_threshold: float = 0.25,
        max_overflow_pages: int = 4096,
    ):
        if not 0.0 < fill_factor <= 1.0:
            raise DatasetError("fill_factor must be in (0, 1]")
        if not 0.0 <= reclaim_threshold < 1.0:
            raise DatasetError("reclaim_threshold must be in [0, 1)")
        if points_per_cell < 1:
            raise DatasetError("points_per_cell must be >= 1")
        self.mapper = mapper
        self.volume = volume
        self.points_per_cell = int(points_per_cell)
        self.fill_factor = float(fill_factor)
        self.reclaim_threshold = float(reclaim_threshold)

        self._occupancy = np.zeros(mapper.n_cells, dtype=np.int64)
        self._loaded = np.zeros(mapper.n_cells, dtype=bool)
        # overflow chains: cell flat index -> list of (page_lbn, count)
        self._overflow: dict[int, list[list[int]]] = {}
        self._overflow_extent = volume.allocate_blocks(
            mapper.disk_index, max_overflow_pages
        )
        self._next_overflow_page = 0
        # overflow-page LBNs written to since the last drain (ingest
        # flushes read this to know which chain pages need disk writes)
        self._touched_pages: set[int] = set()

    # ------------------------------------------------------------------
    # addressing helpers
    # ------------------------------------------------------------------

    def _flat(self, coords) -> np.ndarray:
        arr = np.asarray(coords, dtype=np.int64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        strides = [1]
        for s in self.mapper.dims[:-1]:
            strides.append(strides[-1] * s)
        return arr @ np.asarray(strides, dtype=np.int64)

    # ------------------------------------------------------------------
    # loading and updates
    # ------------------------------------------------------------------

    def bulk_load(self, coords, counts=None) -> int:
        """Initial load honouring the fill factor.

        ``coords`` are cell coordinates (repeats allowed); ``counts``
        optionally gives points per row.  Returns the number of points
        that exceeded the fill-factor budget and went to overflow pages.
        """
        flat = self._flat(coords)
        if counts is None:
            counts = np.ones(flat.shape, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        budget = int(self.points_per_cell * self.fill_factor)
        budget = max(budget, 1)
        overflowed = 0
        totals = np.bincount(
            flat, weights=counts, minlength=self.mapper.n_cells
        ).astype(np.int64)
        loaded = np.minimum(totals, budget)
        self._occupancy += loaded
        self._loaded |= totals > 0
        for cell in np.flatnonzero(totals > budget):
            extra = int(totals[cell] - budget)
            overflowed += extra
            self._spill(int(cell), extra)
        return overflowed

    def insert(self, cell_coord, n: int = 1) -> str:
        """Insert ``n`` points into a cell.

        Returns ``"cell"`` when they fit in the destination cell and
        ``"overflow"`` when an overflow page had to absorb them (§4.6:
        "If there is free space in the destination cell, new points will
        be stored there.  Otherwise, an overflow page will be created").
        """
        cell = int(self._flat(cell_coord)[0])
        free = self.points_per_cell - int(self._occupancy[cell])
        self._loaded[cell] = True
        if n <= free:
            self._occupancy[cell] += n
            return "cell"
        if free > 0:
            self._occupancy[cell] += free
            n -= free
        self._spill(cell, n)
        return "overflow"

    def delete(self, cell_coord, n: int = 1) -> None:
        """Remove points, draining overflow chains first."""
        cell = int(self._flat(cell_coord)[0])
        chain = self._overflow.get(cell, [])
        while n > 0 and chain:
            page = chain[-1]
            take = min(n, page[1])
            page[1] -= take
            n -= take
            if page[1] == 0:
                chain.pop()
        if not chain and cell in self._overflow:
            del self._overflow[cell]
        take = min(n, int(self._occupancy[cell]))
        self._occupancy[cell] -= take

    def bulk_insert(self, coords, counts=None) -> int:
        """Vectorised :meth:`insert`: absorb into free cell space at full
        capacity (the fill-factor budget only applies to the initial
        load), spill the rest.  Returns the number of overflowed points.
        """
        flat = self._flat(coords)
        if counts is None:
            counts = np.ones(flat.shape, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        totals = np.bincount(
            flat, weights=counts, minlength=self.mapper.n_cells
        ).astype(np.int64)
        free = np.maximum(self.points_per_cell - self._occupancy, 0)
        absorbed = np.minimum(totals, free)
        self._occupancy += absorbed
        self._loaded |= totals > 0
        overflowed = 0
        for cell in np.flatnonzero(totals > absorbed):
            extra = int(totals[cell] - absorbed[cell])
            overflowed += extra
            self._spill(int(cell), extra)
        return overflowed

    def _spill(self, cell: int, n: int) -> None:
        pages = self._overflow.setdefault(cell, [])
        while n > 0:
            if pages and pages[-1][1] < self.points_per_cell:
                take = min(n, self.points_per_cell - pages[-1][1])
                pages[-1][1] += take
                n -= take
                self._touched_pages.add(pages[-1][0])
                continue
            if self._next_overflow_page >= self._overflow_extent.nblocks:
                raise MappingError("overflow extent exhausted")
            lbn = self._overflow_extent.start + self._next_overflow_page
            self._next_overflow_page += 1
            pages.append([lbn, 0])

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def read_plan(self, coords) -> RequestPlan:
        """Plan reading the given cells *including* their overflow pages."""
        flat = self._flat(coords)
        lbns = [self.mapper.lbns(coords)]
        extra = []
        for cell in flat.tolist():
            for page_lbn, _count in self._overflow.get(int(cell), []):
                extra.append(page_lbn)
        if extra:
            lbns.append(np.asarray(extra, dtype=np.int64))
        merged = np.unique(np.concatenate(lbns))
        starts, lengths = coalesce_ranks(merged)
        return RequestPlan(starts, lengths, policy="sorted", merge_gap=0)

    # ------------------------------------------------------------------
    # write bookkeeping (ingest flushes)
    # ------------------------------------------------------------------

    @property
    def overflow_extent(self):
        """The overflow pages' extent (ingest maps its page indices onto
        per-replica twin extents)."""
        return self._overflow_extent

    def drain_touched_pages(self) -> np.ndarray:
        """Sorted LBNs of overflow pages dirtied since the last drain,
        clearing the dirty set."""
        pages = np.array(sorted(self._touched_pages), dtype=np.int64)
        self._touched_pages.clear()
        return pages

    def chained_cells(self) -> np.ndarray:
        """Sorted flat indices of cells with live overflow chains."""
        return np.array(sorted(self._overflow), dtype=np.int64)

    def overflow_page_lbns(self) -> np.ndarray:
        """Sorted LBNs of every live overflow page."""
        lbns = [p[0] for chain in self._overflow.values() for p in chain]
        return np.array(sorted(lbns), dtype=np.int64)

    # ------------------------------------------------------------------
    # reclamation
    # ------------------------------------------------------------------

    @property
    def underflow_cells(self) -> np.ndarray:
        """Flat indices of loaded cells below the reclaim threshold."""
        floor = self.points_per_cell * self.reclaim_threshold
        return np.flatnonzero(self._loaded & (self._occupancy < floor))

    @property
    def needs_reorganization(self) -> bool:
        return self.underflow_cells.size > 0

    def required_capacity(self) -> int:
        """Smallest per-cell capacity that would fold every live chain
        back into its cell (the §4.6 re-provisioning target: size cells
        to the density the stream actually delivered)."""
        need = self.points_per_cell
        for cell, chain in self._overflow.items():
            need = max(
                need,
                int(self._occupancy[cell]) + sum(p[1] for p in chain),
            )
        return need

    def reorganize(self) -> int:
        """Fold overflow chains back into cells where they now fit and
        reset the underflow bookkeeping.  Returns pages freed.  This
        stands in for the paper's "dataset reorganization, an expensive
        operation for any mapping technique"."""
        freed = 0
        for cell in list(self._overflow):
            chain = self._overflow[cell]
            while chain:
                free = self.points_per_cell - int(self._occupancy[cell])
                if free <= 0:
                    break
                page = chain[-1]
                take = min(free, page[1])
                self._occupancy[cell] += take
                page[1] -= take
                if page[1] == 0:
                    chain.pop()
                    freed += 1
                    self._touched_pages.discard(page[0])
                else:
                    break
            if not chain:
                del self._overflow[cell]
        self._loaded &= self._occupancy > 0
        return freed

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats(self) -> StoreStats:
        pages = sum(len(c) for c in self._overflow.values())
        opoints = sum(p[1] for c in self._overflow.values() for p in c)
        loaded = self._occupancy[self._loaded]
        return StoreStats(
            n_cells=self.mapper.n_cells,
            n_points=int(self._occupancy.sum()) + opoints,
            capacity_per_cell=self.points_per_cell,
            fill_factor=self.fill_factor,
            overflow_pages=pages,
            overflow_points=opoints,
            underflow_cells=int(self.underflow_cells.size),
            mean_fill=(
                float(loaded.mean()) / self.points_per_cell
                if loaded.size
                else 0.0
            ),
        )
