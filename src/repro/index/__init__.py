"""Index structures used by the evaluation datasets."""

from repro.index.octree import Octree, OctreeLeaf

__all__ = ["Octree", "OctreeLeaf"]
