"""Region octree over a 3-D cell grid.

The paper's earthquake dataset (Tu & O'Hallaron's etree meshes) indexes
~114 M variable-resolution elements with an octree whose leaves are the
elements.  This module provides the equivalent substrate: a pointerless
region octree over a ``2^depth``-sided grid, built by recursive refinement
of a user-supplied level function, with the queries the evaluation needs —
leaf lookup along lines (beam queries), leaf collection within boxes
(range queries), and maximal-uniform-subtree detection (§4.5).

Leaves are stored as locational codes ``(level, ix, iy, iz)`` where the
index triple addresses the leaf's cell in the ``2^level`` grid of that
level.  A leaf at level L covers ``2^(depth-L)`` finest-grid cells per
axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError

__all__ = ["OctreeLeaf", "Octree"]


@dataclass(frozen=True)
class OctreeLeaf:
    """One octree leaf (an 'element' of the dataset)."""

    level: int
    ix: int
    iy: int
    iz: int

    def extent(self, depth: int) -> tuple[tuple[int, int, int], int]:
        """(origin in finest-grid cells, side length in finest cells)."""
        side = 1 << (depth - self.level)
        return (self.ix * side, self.iy * side, self.iz * side), side


class Octree:
    """Pointerless region octree with level-function construction.

    Parameters
    ----------
    depth:
        Maximum refinement level; the finest grid is ``2^depth`` per axis.
    level_fn:
        ``level_fn(x, y, z, side)`` -> desired refinement level for the
        cube with origin ``(x, y, z)`` (finest-grid units) and ``side``
        cells per axis.  A node splits while its level is below the
        demanded level of any point it covers; for efficiency the function
        receives whole boxes and must return the *maximum* level needed
        inside the box.
    """

    def __init__(self, depth: int, level_fn):
        if not 1 <= depth <= 12:
            raise DatasetError("depth must be in [1, 12]")
        self.depth = depth
        self.side = 1 << depth
        self._level_fn = level_fn
        leaves: list[tuple[int, int, int, int]] = []
        self._build(0, 0, 0, 0, leaves)
        arr = np.asarray(leaves, dtype=np.int64)
        # canonical order: by level then z-y-x for reproducibility
        order = np.lexsort((arr[:, 1], arr[:, 2], arr[:, 3], arr[:, 0]))
        self._leaves = arr[order]

    def _build(self, level, ix, iy, iz, out) -> None:
        side = 1 << (self.depth - level)
        x, y, z = ix * side, iy * side, iz * side
        needed = self._level_fn(x, y, z, side)
        if level >= needed or level == self.depth:
            out.append((level, ix, iy, iz))
            return
        for dz in (0, 1):
            for dy in (0, 1):
                for dx in (0, 1):
                    self._build(
                        level + 1,
                        ix * 2 + dx,
                        iy * 2 + dy,
                        iz * 2 + dz,
                        out,
                    )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n_leaves(self) -> int:
        return int(self._leaves.shape[0])

    def leaves(self) -> np.ndarray:
        """All leaves as an (n, 4) array of (level, ix, iy, iz)."""
        return self._leaves

    def leaf_objects(self) -> list[OctreeLeaf]:
        return [OctreeLeaf(*map(int, row)) for row in self._leaves]

    def leaf_centers(self) -> np.ndarray:
        """Finest-grid center coordinates of each leaf, (n, 3) float."""
        lv = self._leaves[:, 0]
        side = (1 << (self.depth - lv)).astype(np.float64)
        coords = self._leaves[:, 1:4].astype(np.float64)
        return coords * side[:, None] + side[:, None] / 2.0

    def leaf_origins(self) -> np.ndarray:
        """Finest-grid origin of each leaf plus per-leaf side, (n, 4)."""
        lv = self._leaves[:, 0]
        side = 1 << (self.depth - lv)
        coords = self._leaves[:, 1:4] * side[:, None]
        return np.concatenate([coords, side[:, None]], axis=1)

    def levels_histogram(self) -> dict[int, int]:
        vals, counts = np.unique(self._leaves[:, 0], return_counts=True)
        return {int(v): int(c) for v, c in zip(vals, counts)}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def find_leaf(self, x: int, y: int, z: int) -> OctreeLeaf:
        """The leaf containing finest-grid cell (x, y, z)."""
        for c in (x, y, z):
            if not 0 <= c < self.side:
                raise DatasetError(f"cell ({x},{y},{z}) outside the grid")
        origins = self.leaf_origins()
        inside = (
            (origins[:, 0] <= x) & (x < origins[:, 0] + origins[:, 3])
            & (origins[:, 1] <= y) & (y < origins[:, 1] + origins[:, 3])
            & (origins[:, 2] <= z) & (z < origins[:, 2] + origins[:, 3])
        )
        idx = np.flatnonzero(inside)
        if idx.size != 1:
            raise DatasetError("octree invariant violated: overlap/gap")
        return OctreeLeaf(*map(int, self._leaves[int(idx[0])]))

    def leaves_in_box(self, lo, hi) -> np.ndarray:
        """Indices of leaves intersecting the finest-grid box [lo, hi)."""
        lo = tuple(int(v) for v in lo)
        hi = tuple(int(v) for v in hi)
        origins = self.leaf_origins()
        mask = np.ones(self.n_leaves, dtype=bool)
        for d in range(3):
            mask &= origins[:, d] < hi[d]
            mask &= origins[:, d] + origins[:, 3] > lo[d]
        return np.flatnonzero(mask)

    def leaves_on_line(self, axis: int, fixed: tuple[int, int]) -> np.ndarray:
        """Indices of leaves crossed by a grid line along ``axis``.

        ``fixed`` holds the two pinned coordinates in axis order (the
        other two dimensions, ascending).
        """
        if axis not in (0, 1, 2):
            raise DatasetError("axis must be 0, 1 or 2")
        lo = [0, 0, 0]
        hi = [self.side, self.side, self.side]
        others = [d for d in range(3) if d != axis]
        for d, v in zip(others, fixed):
            lo[d] = int(v)
            hi[d] = int(v) + 1
        idx = self.leaves_in_box(lo, hi)
        # order along the axis for beam semantics
        origins = self.leaf_origins()[idx]
        return idx[np.argsort(origins[:, axis], kind="stable")]

    # ------------------------------------------------------------------
    # uniform subtree detection (input to §4.5 region mapping)
    # ------------------------------------------------------------------

    def uniform_regions(self, min_level: int = 1) -> list[dict]:
        """Maximal axis-aligned octants whose leaves all share one level.

        Walks the tree top-down; a subtree is *uniform* when every leaf
        under it has the same level.  Returns one record per maximal
        uniform subtree: origin/side in finest-grid cells, the leaf level,
        leaf-grid shape inside the region, and the indices of its leaves.

        The recursion carries each octant's leaf-index subset downward
        (leaves never straddle octant boundaries), so the walk is
        O(n_leaves * depth) rather than O(n_leaves * nodes).
        """
        origins = self.leaf_origins()
        levels_all = self._leaves[:, 0]
        out: list[dict] = []

        def rec(level, ix, iy, iz, idx):
            if idx.size == 0:
                return
            levels = np.unique(levels_all[idx])
            if levels.size == 1 and int(levels[0]) >= level:
                side = 1 << (self.depth - level)
                x, y, z = ix * side, iy * side, iz * side
                leaf_level = int(levels[0])
                per_axis = 1 << (leaf_level - level)
                out.append(
                    {
                        "origin": (x, y, z),
                        "side": side,
                        "leaf_level": leaf_level,
                        "grid": (per_axis, per_axis, per_axis),
                        "leaf_indices": idx,
                    }
                )
                return
            if level == self.depth:
                return
            half = 1 << (self.depth - level - 1)
            x0 = ix * 2 * half
            y0 = iy * 2 * half
            z0 = iz * 2 * half
            ox = origins[idx, 0] >= x0 + half
            oy = origins[idx, 1] >= y0 + half
            oz = origins[idx, 2] >= z0 + half
            for dz in (0, 1):
                for dy in (0, 1):
                    for dx in (0, 1):
                        mask = (
                            (ox == bool(dx))
                            & (oy == bool(dy))
                            & (oz == bool(dz))
                        )
                        rec(
                            level + 1,
                            ix * 2 + dx,
                            iy * 2 + dy,
                            iz * 2 + dz,
                            idx[mask],
                        )

        rec(0, 0, 0, 0, np.arange(self.n_leaves, dtype=np.int64))
        return [r for r in out if r["leaf_level"] >= min_level]
