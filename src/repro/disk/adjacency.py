"""The adjacency model: adjacent blocks and semi-sequential access.

This implements the generalised disk model of Schlosser et al. (FAST 2005)
that MultiMap builds on.  Two concepts:

* **Adjacent blocks.**  For a starting block *b* there are ``D = R * C``
  adjacent blocks, one on each of the next *D* tracks (*R* surfaces times
  *C* cylinders reachable within the settle time).  The *j*-th adjacent
  block sits at the same *angular* offset from *b* for every *j* — the
  angle the platter rotates during one settle — so accessing any of them
  costs exactly the settle time, with no rotational latency.

* **Semi-sequential access.**  Chaining adjacent-block hops (with any fixed
  step *j*) yields the second-most-efficient access pattern after pure
  sequential: one block per settle time.

The angular adjacency offset *A* is the rotation consumed between issuing
the next command after a one-block read and the head being ready on the
destination track: one sector of transfer, the per-command processing
overhead, and the settle — rounded up to a sector (the conservatism real
extraction tools apply).  With this package's uniform track skew *w* (which
covers only the settle, since firmware pays no command overhead at track
crossings inside a streaming run), the *j*-th adjacent block of a block at
sector ``s`` lives at sector ``(s + A - j*w) mod spt`` on track ``t + j``.
When the drive has zero command overhead ``A == w`` and the first adjacent
block of LBN ``b`` is exactly ``b + spt`` — the layout drawn in the
paper's Figures 2-4.

The class below is what the logical volume manager exposes to applications
(the paper's ``get_adjacent`` / ``get_track_boundaries`` interface); it
never reveals raw geometry to the mapping layer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics
from repro.disk.models import DiskModel
from repro.errors import AdjacencyError

__all__ = ["AdjacencyModel"]


class AdjacencyModel:
    """Adjacent-block arithmetic for one disk.

    Parameters
    ----------
    geometry, mechanics:
        The disk being modelled.
    depth:
        Override for *D*, the number of adjacent blocks.  Defaults to
        ``surfaces * settle_cylinders`` (= R·C).  The paper's prototype
        uses D = 128 for both of its disks.
    """

    def __init__(
        self,
        geometry: DiskGeometry,
        mechanics: DiskMechanics,
        depth: int | None = None,
    ):
        self.geometry = geometry
        self.mechanics = mechanics
        max_depth = geometry.surfaces * mechanics.settle_cylinders
        if depth is None:
            depth = max_depth
        if not 1 <= depth <= max_depth:
            raise AdjacencyError(
                f"depth {depth} outside [1, {max_depth}] supported by the"
                " settle region"
            )
        self.D = int(depth)
        # Per-zone angular adjacency offset, in sectors: one block of
        # transfer + command overhead + settle, rounded up.  This is >= the
        # track skew (which covers only the settle), so semi-sequential
        # hops never miss their target even with command processing costs.
        rot = mechanics.rotation_ms
        self._offset = []
        for zone in geometry.zones:
            spt = zone.sectors_per_track
            if zone.skew_sectors == 0 and mechanics.settle_ms < rot / spt / 100:
                # idealised zero-skew disk (the paper's toy figures)
                self._offset.append(0)
            else:
                need = 1 + math.ceil(
                    spt
                    * (mechanics.settle_ms + mechanics.command_overhead_ms)
                    / rot
                )
                self._offset.append(max(need, zone.skew_sectors) % spt)

    @classmethod
    def for_model(cls, model: DiskModel, depth: int | None = None):
        return cls(model.geometry, model.mechanics, depth)

    # ------------------------------------------------------------------
    # interface functions exported to applications (paper §3.2)
    # ------------------------------------------------------------------

    def get_adjacent(self, lbn: int, step: int = 1) -> int:
        """The ``step``-th adjacent block of ``lbn`` (paper's GETADJACENT).

        Raises :class:`AdjacencyError` if ``step`` exceeds *D* or the target
        track falls outside the zone of ``lbn`` (adjacency is intra-zone:
        MultiMap never maps a basic cube across a zone boundary).
        """
        if not 1 <= step <= self.D:
            raise AdjacencyError(f"step {step} outside [1, {self.D}]")
        geom = self.geometry
        zi = geom.zone_index_of_lbn(lbn)
        zone = geom.zone(zi)
        first_lbn = geom.zone_first_lbn(zi)
        spt = zone.sectors_per_track
        tz, s = divmod(lbn - first_lbn, spt)
        target_tz = tz + step
        if target_tz >= geom.zone_tracks(zi):
            raise AdjacencyError(
                f"adjacent track of LBN {lbn} at step {step} crosses the"
                f" boundary of zone {zi}"
            )
        target_s = (s + self._offset[zi] - step * zone.skew_sectors) % spt
        return first_lbn + target_tz * spt + target_s

    def get_track_boundaries(self, lbn: int) -> tuple[int, int]:
        """Half-open LBN interval of the track holding ``lbn``."""
        return self.geometry.track_boundaries(lbn)

    # ------------------------------------------------------------------
    # vectorised and convenience forms
    # ------------------------------------------------------------------

    def get_adjacent_array(self, lbns, step: int = 1) -> np.ndarray:
        """Vectorised :meth:`get_adjacent` (same step for all inputs)."""
        if not 1 <= step <= self.D:
            raise AdjacencyError(f"step {step} outside [1, {self.D}]")
        geom = self.geometry
        lbns = np.asarray(lbns, dtype=np.int64)
        zi, track, sector, spt, _ = geom.decompose(lbns)
        skew = np.array(
            [z.skew_sectors for z in geom.zones], dtype=np.int64
        )[zi]
        offset = np.asarray(self._offset, dtype=np.int64)[zi]
        zone_first_track = np.array(
            [geom.zone_first_track(i) for i in range(len(geom.zones))],
            dtype=np.int64,
        )[zi]
        zone_tracks = np.array(
            [geom.zone_tracks(i) for i in range(len(geom.zones))],
            dtype=np.int64,
        )[zi]
        tz = track - zone_first_track
        if bool((tz + step >= zone_tracks).any()):
            raise AdjacencyError("adjacency step crosses a zone boundary")
        target_s = (sector + offset - step * skew) % spt
        return geom.lbns_from(track + step, target_s)

    def semi_sequential_path(
        self, lbn: int, count: int, step: int = 1
    ) -> np.ndarray:
        """``count`` LBNs starting at ``lbn``, each the ``step``-th adjacent
        block of the previous one — a semi-sequential path (Figure 1(b))."""
        path = np.empty(count, dtype=np.int64)
        cur = int(lbn)
        path[0] = cur
        for i in range(1, count):
            cur = self.get_adjacent(cur, step)
            path[i] = cur
        return path

    def adjacency_offset_sectors(self, zone_index: int) -> int:
        """Angular offset (in sectors) between a block and each of its
        adjacent blocks, for a given zone."""
        return self._offset[zone_index]

    def expected_hop_ms(self, zone_index: int) -> float:
        """Predicted start-to-start cadence of semi-sequential access.

        One adjacency offset's worth of rotation: transfer + command
        overhead + settle + residual alignment.  This is the figure the
        analytic model uses.
        """
        zone = self.geometry.zone(zone_index)
        spt = zone.sectors_per_track
        rot = self.mechanics.rotation_ms
        offset = self._offset[zone_index]
        if offset == 0:
            return spt * (self.mechanics.settle_ms / rot) * rot / spt
        return offset * rot / spt

    def max_dimensions(self) -> int:
        """Equation 5: N_max = 2 + log2(D) (K_i >= 2 for inner dims)."""
        return 2 + int(np.log2(self.D))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdjacencyModel(D={self.D})"
