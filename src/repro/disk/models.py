"""Parameterised disk models.

The paper evaluates on two real drives: a **Seagate Cheetah 36ES** and a
**Maxtor Atlas 10k III** (both ~36.7 GB, 10k RPM, SCSI).  The firmware-level
parameter tables of those drives are not public, so the factories below
approximate them from spec sheets and from the figures the paper itself
reports (settle ≈ 1.2-1.4 ms, D = 128, short-seek cost ≈ 1.3 ms, rotational
latency ≈ 3 ms ⇒ 10k RPM).  DESIGN.md §2 documents this substitution.

What matters for reproducing the paper's *shape* is preserved exactly:

* 6 ms revolution (10k RPM) ⇒ ~3 ms average rotational latency;
* settle-dominated seeks out to C = 32 cylinders with R = 4 surfaces
  ⇒ D = R·C = 128 adjacent tracks, the value the paper uses;
* zoned track lengths in the high hundreds of sectors, decreasing inward;
* ~36.7 GB capacity.

Also provided: a **toy disk** (T = 5, zero skew) matching the illustrative
layout of the paper's Figures 2-4, and a fully parameterised synthetic
factory for tests and ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.api.registry import register_drive
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics, SeekProfile

__all__ = [
    "DiskModel",
    "cheetah_36es",
    "atlas_10k3",
    "toy_disk",
    "mini_drive",
    "synthetic_disk",
    "paper_disks",
]


@dataclass(frozen=True)
class DiskModel:
    """A named pairing of geometry and mechanics."""

    name: str
    geometry: DiskGeometry
    mechanics: DiskMechanics

    @property
    def capacity_bytes(self) -> int:
        return self.geometry.capacity_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gb = self.capacity_bytes / 1e9
        return f"DiskModel({self.name!r}, {gb:.1f} GB)"


def _skew_fn(mechanics: DiskMechanics):
    """Per-zone track skew: settle-time worth of rotation, plus one sector.

    The ``+1`` guarantees that after *reading* a block (one sector time) and
    settling, the head arrives no later than the same sector index on the
    next track — which makes ``lbn + spt`` a true first adjacent block with
    zero rotational latency.
    """

    def skew_for_spt(spt: int) -> int:
        settle_sectors = math.ceil(
            spt * mechanics.settle_ms / mechanics.rotation_ms
        )
        return (settle_sectors + 1) % spt

    return skew_for_spt


@register_drive("atlas10k3")
def atlas_10k3() -> DiskModel:
    """Approximation of the Maxtor Atlas 10k III (36.7 GB, 10k RPM).

    8 zones, 4 surfaces, 32 000 cylinders, track lengths 686 down to 462
    sectors.  Settle 1.2 ms, C = 32 ⇒ D = 128.
    """
    seek = SeekProfile(
        settle_ms=1.2,
        settle_cylinders=32,
        max_cylinders=31_999,
        avg_seek_ms=4.5,
        full_stroke_ms=10.5,
    )
    mech = DiskMechanics(rpm=10_000, seek=seek, command_overhead_ms=0.15)
    zone_specs = [(4_000, spt) for spt in
                  (686, 654, 622, 590, 558, 526, 494, 462)]
    geom = DiskGeometry.build(4, zone_specs, _skew_fn(mech))
    return DiskModel("Maxtor Atlas 10k III", geom, mech)


@register_drive("cheetah36es")
def cheetah_36es() -> DiskModel:
    """Approximation of the Seagate Cheetah 36ES (36.7 GB, 10k RPM).

    9 zones, 4 surfaces, 32 400 cylinders, track lengths 738 down to 402
    sectors.  Settle 1.4 ms ("comparable" to the Atlas, per the paper),
    C = 32 ⇒ D = 128.
    """
    seek = SeekProfile(
        settle_ms=1.4,
        settle_cylinders=32,
        max_cylinders=32_399,
        avg_seek_ms=5.2,
        full_stroke_ms=11.0,
    )
    mech = DiskMechanics(rpm=10_000, seek=seek, command_overhead_ms=0.15)
    zone_specs = [(3_600, spt) for spt in
                  (738, 696, 654, 612, 570, 528, 486, 444, 402)]
    geom = DiskGeometry.build(4, zone_specs, _skew_fn(mech))
    return DiskModel("Seagate Cheetah 36ES", geom, mech)


@register_drive("toy")
def toy_disk(
    sectors_per_track: int = 5,
    tracks: int = 40,
    surfaces: int = 1,
    settle_cylinders: int = 9,
) -> DiskModel:
    """The illustrative disk of the paper's Figures 2-4.

    T = 5, D = 9 (with one surface, C = 9), and **zero skew** so that the
    first adjacent block of LBN 0 is LBN 5, its third adjacent block is
    LBN 15, and so on — exactly the LBN tables printed in the paper.
    Rotation is scaled so one sector passes in 1 ms, making hand-computed
    timings easy in tests.
    """
    rot_ms = float(sectors_per_track)  # 1 ms per sector
    rpm = 60_000.0 / rot_ms
    seek = SeekProfile(
        settle_ms=1e-9,  # effectively zero: adjacency offset becomes 0+1
        settle_cylinders=settle_cylinders,
        max_cylinders=max(tracks // surfaces, settle_cylinders + 1),
        avg_seek_ms=1e-9,
        full_stroke_ms=1e-9,
        step_ms=0.0,
    )
    mech = DiskMechanics(rpm=rpm, seek=seek, head_switch_ms=1e-9)
    # Zero-skew geometry: the paper's figures ignore rotational offsets.
    geom = DiskGeometry.build(
        surfaces,
        [(tracks // surfaces, sectors_per_track)],
        lambda spt: 0,
    )
    return DiskModel("toy", geom, mech)


@register_drive("minidrive")
def mini_drive() -> DiskModel:
    """A small synthetic drive sized for example-scale experiments.

    Two zones with 120- and 90-sector tracks, 2 surfaces, C = 8
    ⇒ D = 16, 10k RPM.  The short tracks let example-scale datasets
    (dim-0 around 100 cells) fill whole tracks the way the paper's
    chunked datasets fill the Atlas's 686-sector tracks, which keeps
    cache and traffic demonstrations honest (and fast) without
    simulating a 36 GB drive.
    """
    return synthetic_disk(
        "minidrive",
        rpm=10_000,
        settle_ms=1.0,
        settle_cylinders=8,
        surfaces=2,
        zone_specs=[(400, 120), (200, 90)],
        avg_seek_ms=3.0,
        full_stroke_ms=6.0,
    )


def synthetic_disk(
    name: str = "synthetic",
    *,
    rpm: float = 10_000,
    settle_ms: float = 1.2,
    settle_cylinders: int = 32,
    surfaces: int = 4,
    zone_specs: list[tuple[int, int]] | None = None,
    avg_seek_ms: float = 4.5,
    full_stroke_ms: float = 10.0,
    step_ms: float = 0.1,
    command_overhead_ms: float = 0.0,
) -> DiskModel:
    """Fully parameterised model for tests, ablations and scaled runs."""
    if zone_specs is None:
        zone_specs = [(1_000, 600), (1_000, 500)]
    max_cyl = sum(c for c, _ in zone_specs) - 1
    seek = SeekProfile(
        settle_ms=settle_ms,
        settle_cylinders=settle_cylinders,
        max_cylinders=max(max_cyl, settle_cylinders + 1),
        avg_seek_ms=avg_seek_ms,
        full_stroke_ms=full_stroke_ms,
        step_ms=step_ms,
    )
    mech = DiskMechanics(
        rpm=rpm, seek=seek, command_overhead_ms=command_overhead_ms
    )
    geom = DiskGeometry.build(surfaces, zone_specs, _skew_fn(mech))
    return DiskModel(name, geom, mech)


def paper_disks() -> list[DiskModel]:
    """The two drives of the paper's evaluation, in its reporting order."""
    return [atlas_10k3(), cheetah_36es()]
