"""Disk drive service-time simulator.

A :class:`DiskDrive` owns a head position (track + wall-clock time, from
which the rotational angle follows) and services requests expressed as
*runs* — ``(start_lbn, n_blocks)`` pairs of consecutive LBNs.  Every access
is decomposed into the classic cost components:

``seek``      arm movement between cylinders (plus head switches),
``rotation``  wait for the first target sector to pass under the head,
``transfer``  sectors streaming under the head,
``switch``    track-boundary crossings *inside* a run (settle + realign).

Three scheduling policies are provided for batches:

* ``"fifo"``    service in the order given (the storage manager already
                ordered the batch, e.g. a semi-sequential path);
* ``"sorted"``  ascending-LBN elevator pass, the order the paper's storage
                manager issues for the linearised mappings;
* ``"sptf"``    shortest-positioning-time-first within a bounded lookahead
                window, modelling the drive's internal queue scheduler
                (the paper relies on this for MultiMap's semi-sequential
                fetches: "the disk's internal scheduler will ensure that
                they are fetched in the most efficient way").

The batch path is vectorised: per-run geometry is computed with numpy and
the only per-run Python work is the rotational-position recurrence, which
is inherently sequential.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import DiskMechanics
from repro.disk.models import DiskModel
from repro.errors import GeometryError

__all__ = ["DiskDrive", "BatchResult", "RunTiming", "TrackCache"]

# Rotational waits within SNAP_REV of a full revolution are floating-point
# artifacts of on-the-knife-edge alignments (e.g. the zero-skew toy disk);
# physically the block is reachable with no wait.  Real models keep margins
# of a sector or more, far above this tolerance.
SNAP_REV = 1e-7


def _wait_rev(delta: float) -> float:
    """Fractional-revolution wait to reach angle delta ahead (snapped)."""
    w = delta % 1.0
    return 0.0 if w > 1.0 - SNAP_REV else w


class TrackCache:
    """LRU cache of whole tracks (firmware segment cache + read-ahead).

    The drives of the paper's era had small segment caches; modern drives
    buffer tens of MB.  The model is deliberately simple: a serviced run
    leaves every track it touched fully buffered (read-ahead fills the
    remainder), and a later request whose blocks all lie in buffered
    tracks is served at bus speed instead of mechanically.  The
    `modern-cache` ablation uses this to show how large caches erode the
    penalties that motivate track-aware placement.
    """

    def __init__(self, capacity_tracks: int):
        self.capacity = int(capacity_tracks)
        self._lru: dict[int, int] = {}
        self._tick = 0

    def hit(self, track_first: int, track_last: int) -> bool:
        """All tracks of the run buffered?  Refreshes recency on hit."""
        tracks = range(track_first, track_last + 1)
        if all(t in self._lru for t in tracks):
            for t in tracks:
                self._tick += 1
                self._lru[t] = self._tick
            return True
        return False

    def insert(self, track_first: int, track_last: int) -> None:
        for t in range(track_first, track_last + 1):
            self._tick += 1
            self._lru[t] = self._tick
        while len(self._lru) > self.capacity:
            oldest = min(self._lru, key=self._lru.get)
            del self._lru[oldest]

    def clear(self) -> None:
        self._lru.clear()


@dataclass(frozen=True)
class RunTiming:
    """Timing breakdown of a single serviced run (all in ms)."""

    start_ms: float
    seek_ms: float
    rotation_ms: float
    transfer_ms: float
    switch_ms: float
    overhead_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.overhead_ms
            + self.seek_ms
            + self.rotation_ms
            + self.transfer_ms
            + self.switch_ms
        )

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.total_ms


@dataclass
class BatchResult:
    """Aggregate timing of a serviced batch."""

    total_ms: float
    n_requests: int
    n_blocks: int
    seek_ms: float
    rotation_ms: float
    transfer_ms: float
    switch_ms: float
    overhead_ms: float = 0.0
    per_request_ms: np.ndarray | None = None
    order: np.ndarray | None = None

    @property
    def ms_per_block(self) -> float:
        return self.total_ms / self.n_blocks if self.n_blocks else 0.0

    def __add__(self, other: "BatchResult") -> "BatchResult":
        return BatchResult(
            total_ms=self.total_ms + other.total_ms,
            n_requests=self.n_requests + other.n_requests,
            n_blocks=self.n_blocks + other.n_blocks,
            seek_ms=self.seek_ms + other.seek_ms,
            rotation_ms=self.rotation_ms + other.rotation_ms,
            transfer_ms=self.transfer_ms + other.transfer_ms,
            switch_ms=self.switch_ms + other.switch_ms,
            overhead_ms=self.overhead_ms + other.overhead_ms,
        )

    @staticmethod
    def empty() -> "BatchResult":
        return BatchResult(0.0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)


class DiskDrive:
    """Simulated disk drive with positional state.

    Parameters
    ----------
    model:
        Geometry + mechanics pairing (see :mod:`repro.disk.models`).
    cache_tracks:
        Optional firmware segment cache capacity in whole tracks (0 = no
        cache, the default — matching the paper's measured behaviour).
        Cache hits are served at bus speed; see :class:`TrackCache`.
    """

    #: bus transfer cost per cached block (Ultra160-class, ms)
    CACHE_BLOCK_MS = 0.0032

    def __init__(self, model: DiskModel, cache_tracks: int = 0):
        self.model = model
        self.geometry: DiskGeometry = model.geometry
        self.mechanics: DiskMechanics = model.mechanics
        self._rot = self.mechanics.rotation_ms
        self._overhead = self.mechanics.command_overhead_ms
        self._time_ms = 0.0
        self._track = 0
        self.cache = TrackCache(cache_tracks) if cache_tracks > 0 else None
        # Exact cost of crossing one in-zone track boundary mid-run:
        # settle plus the wait for the skewed next track to come around.
        settle = self.mechanics.head_switch_ms
        self._boundary_cost = np.array(
            [
                settle
                + _wait_rev(
                    z.skew_sectors / z.sectors_per_track - settle / self._rot
                )
                * self._rot
                for z in self.geometry.zones
            ]
        )

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def now_ms(self) -> float:
        return self._time_ms

    @property
    def current_track(self) -> int:
        return self._track

    @property
    def current_cylinder(self) -> int:
        return self._track // self.geometry.surfaces

    def reset(self, track: int = 0, time_ms: float = 0.0) -> None:
        if not 0 <= track < self.geometry.n_tracks:
            raise GeometryError(f"track {track} out of range")
        self._track = track
        self._time_ms = float(time_ms)

    def draw_position(self, rng: np.random.Generator) -> tuple[int, float]:
        """Draw a uniformly random ``(track, time_ms)`` head position.

        Consumes exactly the draws :meth:`randomize_position` would, so a
        position can be drawn early (e.g. when a traffic client submits a
        query) and applied later with :meth:`reset` without perturbing the
        caller's random stream.
        """
        return (
            int(rng.integers(self.geometry.n_tracks)),
            float(rng.uniform(0.0, self._rot)),
        )

    def randomize_position(self, rng: np.random.Generator) -> None:
        """Place the head at a uniformly random track and rotation phase."""
        self._track, self._time_ms = self.draw_position(rng)

    def advance_clock(self, t_ms: float) -> None:
        """Advance the clock to ``t_ms`` without moving the head.

        Models the platter spinning while the drive sits idle between
        requests (the traffic simulator calls this when dispatching to an
        idle drive, so the rotational phase reflects the wait).  Clocks
        never move backwards; a ``t_ms`` at or before *now* is a no-op.
        """
        if t_ms > self._time_ms:
            self._time_ms = float(t_ms)

    def head_angle(self, t_ms: float | None = None) -> float:
        """Platter angle under the head at time ``t`` (revolutions)."""
        t = self._time_ms if t_ms is None else t_ms
        return (t / self._rot) % 1.0

    # ------------------------------------------------------------------
    # single-request service
    # ------------------------------------------------------------------

    def _seek_component(self, target_track: int) -> float:
        """Seek/settle cost to reach ``target_track`` from the current one."""
        if target_track == self._track:
            return 0.0
        surfaces = self.geometry.surfaces
        dist = abs(target_track // surfaces - self._track // surfaces)
        if dist == 0:
            return float(self.mechanics.head_switch_ms)
        return float(self.mechanics.seek_time(dist))

    def positioning_time(self, lbn: int) -> tuple[float, float]:
        """(seek_ms, rotation_ms) to position on ``lbn`` — no state change."""
        geom = self.geometry
        geom.check_lbn(lbn)
        track = geom.track_of(lbn)
        seek = self._seek_component(track)
        arrival = self._time_ms + seek
        angle = geom.start_angle(lbn)
        wait = _wait_rev(angle - arrival / self._rot) * self._rot
        return seek, wait

    def service(self, lbn: int, nblocks: int = 1) -> RunTiming:
        """Service one run of ``nblocks`` consecutive LBNs; advance state."""
        if nblocks < 1:
            raise GeometryError("nblocks must be >= 1")
        geom = self.geometry
        geom.check_lbn(lbn)
        geom.check_lbn(lbn + nblocks - 1)
        start_ms = self._time_ms
        track = geom.track_of(lbn)
        if self.cache is not None:
            last_track = geom.track_of(lbn + nblocks - 1)
            if self.cache.hit(track, last_track):
                cost = self._overhead + nblocks * self.CACHE_BLOCK_MS
                self._time_ms += cost
                return RunTiming(
                    start_ms, 0.0, 0.0, nblocks * self.CACHE_BLOCK_MS,
                    0.0, self._overhead,
                )
        seek = self._seek_component(track)
        arrival = self._time_ms + self._overhead + seek
        angle = geom.start_angle(lbn)
        wait = _wait_rev(angle - arrival / self._rot) * self._rot
        t = arrival + wait
        transfer, switch, end_track = self._transfer_scalar(lbn, nblocks, t)
        self._time_ms = t + transfer + switch
        self._track = end_track
        if self.cache is not None:
            self.cache.insert(track, end_track)
        return RunTiming(start_ms, seek, wait, transfer, switch, self._overhead)

    def _transfer_scalar(
        self, lbn: int, nblocks: int, t: float
    ) -> tuple[float, float, int]:
        """Exact transfer of a run, track by track (handles zone crossings).

        Returns (transfer_ms, switch_ms, final_track).  ``t`` is the time at
        which the first sector starts passing under the head.
        """
        geom = self.geometry
        mech = self.mechanics
        rot = self._rot
        track = geom.track_of(lbn)
        sector = geom.sector_of(lbn)
        spt = geom.track_length(track)
        transfer = 0.0
        switch = 0.0
        remaining = nblocks
        while True:
            burst = min(remaining, spt - sector)
            transfer += burst * (rot / spt)
            t += burst * (rot / spt)
            remaining -= burst
            if remaining == 0:
                return transfer, switch, track
            # cross to the next track: settle, then wait for its first
            # sector to come around (the skew normally absorbs the settle).
            track += 1
            spt = geom.track_length(track)
            sector = 0
            t_settle = t + mech.head_switch_ms
            next_angle = geom.start_angle(geom.track_first_lbn(track))
            realign = _wait_rev(next_angle - t_settle / rot) * rot
            switch += mech.head_switch_ms + realign
            t = t_settle + realign

    # ------------------------------------------------------------------
    # batch service
    # ------------------------------------------------------------------

    def _prepare_runs(self, starts, lengths):
        """Vectorised per-run geometry needed by the batch schedulers.

        Returns a dict of ndarrays: start cylinder/track/angle, end
        cylinder/track/angle, in-run transfer + switch cost.  Runs that
        cross a zone boundary are flagged for the exact scalar path.
        """
        geom = self.geometry
        rot = self._rot
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if starts.shape != lengths.shape:
            raise GeometryError("starts and lengths must have equal shape")
        if lengths.size and lengths.min() < 1:
            raise GeometryError("run lengths must be >= 1")
        ends = starts + lengths - 1

        zi0, track0, sector0, spt0, a0 = geom.decompose(starts)
        zie, tracke, sectore, spte, ae = geom.decompose(ends)

        cross_zone = zi0 != zie
        sector_time = rot / spt0
        boundaries = tracke - track0
        transfer = lengths * sector_time
        # Each in-zone boundary costs settle + realign to the skewed next
        # track; that cost depends only on the zone, precomputed at init.
        switch = boundaries * self._boundary_cost[zi0]
        end_angle = (ae + 1.0 / spte) % 1.0

        surfaces = self.geometry.surfaces
        return {
            "starts": starts,
            "lengths": lengths,
            "cyl0": track0 // surfaces,
            "track0": track0,
            "a0": a0,
            "cyle": tracke // surfaces,
            "tracke": tracke,
            "end_angle": end_angle,
            "transfer": transfer,
            "switch": switch,
            "cross_zone": cross_zone,
        }

    def _seek_vector(self, dist: np.ndarray, track_diff: np.ndarray) -> np.ndarray:
        """Vectorised seek component: seek curve, head switch, or zero."""
        seeks = self.mechanics.seek_time(dist)
        seeks = np.where(
            dist == 0,
            np.where(track_diff != 0, self.mechanics.head_switch_ms, 0.0),
            seeks,
        )
        return seeks

    def service_runs(
        self,
        starts,
        lengths,
        *,
        policy: str = "sorted",
        window: int = 64,
        collect: bool = False,
    ) -> BatchResult:
        """Service a batch of runs under a scheduling policy.

        Parameters
        ----------
        starts, lengths:
            Parallel arrays describing the runs.
        policy:
            ``"fifo"``, ``"sorted"`` or ``"sptf"`` (see module docstring).
        window:
            Lookahead depth for ``"sptf"`` — models the drive's command
            queue; requests are admitted in issue order.
        collect:
            If true, return per-request service times and the service order.
        """
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        n = int(starts.size)
        if n == 0:
            return BatchResult.empty()
        info = self._prepare_runs(starts, lengths)
        if bool(info["cross_zone"].any()):
            return self._service_cross_zone(starts, lengths, policy, collect)
        if policy == "sorted":
            order = np.argsort(starts, kind="stable")
            return self._service_in_order(info, order, collect)
        if policy == "fifo":
            order = np.arange(n, dtype=np.int64)
            return self._service_in_order(info, order, collect)
        if policy == "sptf":
            return self._service_sptf(info, window, collect)
        raise ValueError(f"unknown policy {policy!r}")

    def service_lbns(self, lbns, **kwargs) -> BatchResult:
        """Service single-block requests (no coalescing)."""
        lbns = np.asarray(lbns, dtype=np.int64)
        return self.service_runs(lbns, np.ones_like(lbns), **kwargs)

    # -- fixed-order servicing (fifo / sorted) -------------------------

    def _service_in_order(self, info, order, collect: bool) -> BatchResult:
        if self.cache is not None:
            # the cache makes run costs state-dependent; take the exact
            # scalar path (ablation feature, throughput is secondary)
            starts = info["starts"]
            lengths = info["lengths"]
            timings = [
                self.service(int(starts[i]), int(lengths[i])) for i in order
            ]
            per_request = (
                np.array([tm.total_ms for tm in timings])
                if collect
                else None
            )
            return BatchResult(
                total_ms=sum(tm.total_ms for tm in timings),
                n_requests=len(timings),
                n_blocks=int(lengths.sum()),
                seek_ms=sum(tm.seek_ms for tm in timings),
                rotation_ms=sum(tm.rotation_ms for tm in timings),
                transfer_ms=sum(tm.transfer_ms for tm in timings),
                switch_ms=sum(tm.switch_ms for tm in timings),
                overhead_ms=sum(tm.overhead_ms for tm in timings),
                per_request_ms=per_request,
                order=order if collect else None,
            )
        rot = self._rot
        n = order.size
        cyl0 = info["cyl0"][order]
        track0 = info["track0"][order]
        a0 = info["a0"][order]
        cyle = info["cyle"][order]
        tracke = info["tracke"][order]
        transfer = info["transfer"][order]
        switch = info["switch"][order]

        # Seek components are order-dependent but fully precomputable.
        prev_cyl = np.empty(n, dtype=np.int64)
        prev_cyl[0] = self._track // self.geometry.surfaces
        prev_cyl[1:] = cyle[:-1]
        prev_track = np.empty(n, dtype=np.int64)
        prev_track[0] = self._track
        prev_track[1:] = tracke[:-1]
        seeks = self._seek_vector(
            np.abs(cyl0 - prev_cyl), track0 - prev_track
        )

        # The rotational recurrence is sequential; run it as a tight loop
        # over plain floats.
        t = self._time_ms
        overhead = self._overhead
        seeks_l = seeks.tolist()
        a0_l = a0.tolist()
        xfer_l = (transfer + switch).tolist()
        waits = [0.0] * n if collect else None
        rot_total = 0.0
        snap = 1.0 - SNAP_REV
        for i in range(n):
            arrival = t + overhead + seeks_l[i]
            wait = (a0_l[i] - (arrival / rot)) % 1.0
            if wait > snap:
                wait = 0.0
            wait *= rot
            rot_total += wait
            t = arrival + wait + xfer_l[i]
            if collect:
                waits[i] = wait

        total = t - self._time_ms
        self._time_ms = t
        self._track = int(tracke[-1])

        per_request = None
        if collect:
            per_request = (
                seeks + np.asarray(waits) + transfer + switch + overhead
            )
        return BatchResult(
            total_ms=total,
            n_requests=n,
            n_blocks=int(info["lengths"].sum()),
            seek_ms=float(seeks.sum()),
            rotation_ms=rot_total,
            transfer_ms=float(transfer.sum()),
            switch_ms=float(switch.sum()),
            overhead_ms=overhead * n,
            per_request_ms=per_request,
            order=order if collect else None,
        )

    # -- windowed shortest-positioning-time-first -----------------------

    def _service_sptf(self, info, window: int, collect: bool) -> BatchResult:
        rot = self._rot
        mech = self.mechanics
        surfaces = self.geometry.surfaces
        n = info["starts"].size
        cyl0 = info["cyl0"]
        track0 = info["track0"]
        a0 = info["a0"]
        cyle = info["cyle"]
        tracke = info["tracke"]
        xfer = info["transfer"] + info["switch"]

        # Admission in issue order: the window holds the first `window`
        # not-yet-serviced requests, like a drive command queue.
        pending = np.arange(n, dtype=np.int64)
        in_window = min(window, n)
        window_idx = list(range(in_window))
        next_admit = in_window

        t = self._time_ms
        cur_cyl = self._track // surfaces
        cur_track = self._track

        order = np.empty(n, dtype=np.int64)
        per_request = np.empty(n, dtype=np.float64) if collect else None
        seek_total = rot_total = 0.0

        for step in range(n):
            widx = np.asarray(window_idx, dtype=np.int64)
            cand = pending[widx]
            dist = np.abs(cyl0[cand] - cur_cyl)
            seeks = mech.seek_time(dist)
            seeks = np.where(
                dist == 0,
                np.where(track0[cand] != cur_track, mech.head_switch_ms, 0.0),
                seeks,
            )
            arrival = t + self._overhead + seeks
            waits = (a0[cand] - arrival / rot) % 1.0
            waits = np.where(waits > 1.0 - SNAP_REV, 0.0, waits) * rot
            costs = seeks + waits
            k = int(np.argmin(costs))
            chosen = int(cand[k])

            seek_total += float(seeks[k])
            rot_total += float(waits[k])
            service_time = (
                self._overhead + float(costs[k]) + float(xfer[chosen])
            )
            if collect:
                per_request[step] = service_time
            t += service_time
            cur_cyl = int(cyle[chosen])
            cur_track = int(tracke[chosen])
            order[step] = chosen

            del window_idx[k]
            if next_admit < n:
                window_idx.append(next_admit)
                next_admit += 1

        total = t - self._time_ms
        self._time_ms = t
        self._track = cur_track
        return BatchResult(
            total_ms=total,
            n_requests=n,
            n_blocks=int(info["lengths"].sum()),
            seek_ms=seek_total,
            rotation_ms=rot_total,
            transfer_ms=float(info["transfer"].sum()),
            switch_ms=float(info["switch"].sum()),
            overhead_ms=self._overhead * n,
            per_request_ms=per_request,
            order=order if collect else None,
        )

    # -- exact fallback for zone-crossing runs ---------------------------

    def _service_cross_zone(
        self, starts, lengths, policy: str, collect: bool
    ) -> BatchResult:
        order = (
            np.argsort(starts, kind="stable")
            if policy == "sorted"
            else np.arange(starts.size, dtype=np.int64)
        )
        timings = []
        for i in order:
            timings.append(self.service(int(starts[i]), int(lengths[i])))
        per_request = (
            np.array([tm.total_ms for tm in timings]) if collect else None
        )
        return BatchResult(
            total_ms=sum(tm.total_ms for tm in timings),
            n_requests=len(timings),
            n_blocks=int(np.asarray(lengths).sum()),
            seek_ms=sum(tm.seek_ms for tm in timings),
            rotation_ms=sum(tm.rotation_ms for tm in timings),
            transfer_ms=sum(tm.transfer_ms for tm in timings),
            switch_ms=sum(tm.switch_ms for tm in timings),
            overhead_ms=sum(tm.overhead_ms for tm in timings),
            per_request_ms=per_request,
            order=order if collect else None,
        )

    # ------------------------------------------------------------------
    # derived figures
    # ------------------------------------------------------------------

    def streaming_bandwidth_bytes_per_s(self, zone_index: int = 0) -> float:
        """Sustained sequential bandwidth within a zone (includes skew loss)."""
        zone = self.geometry.zone(zone_index)
        spt = zone.sectors_per_track
        sector_time = self._rot / spt
        track_time = self._rot + zone.skew_sectors * sector_time
        return spt * 512 / (track_time / 1000.0)
