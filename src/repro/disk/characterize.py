"""Black-box drive characterisation.

The paper's prototype obtains its adjacency parameters from a
DIXtrac-style extraction tool that issues measured request pairs against a
real drive.  This module does the same against the *simulated* drive — it
only calls the public service interface (``reset`` / ``service`` /
``positioning_time``) and never reads the model's private parameters, so
the adjacency model used by MultiMap is *discovered*, exactly as it would
be on hardware.

Extracted quantities:

* the seek profile (Figure 1(a));
* the settle time and the settle-region width *C*;
* the adjacency depth *D* and the angular adjacency offset per zone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.drive import DiskDrive

__all__ = ["SeekMeasurement", "DiskProfile", "measure_seek_profile",
           "extract_profile"]


@dataclass(frozen=True)
class SeekMeasurement:
    """One point of the measured seek curve."""

    distance_cylinders: int
    seek_ms: float


@dataclass(frozen=True)
class DiskProfile:
    """Everything MultiMap needs to know about a drive, as measured.

    ``first_adjacent_sector_delta`` is the *sector-index* distance between
    a block and its first adjacent block, per zone (zero on skew-aligned
    drives: the first adjacent block has the same sector index one track
    over).  ``hop_ms`` is the measured cost of one semi-sequential hop per
    zone — the settle time plus residual rotational alignment.
    """

    settle_ms: float
    settle_cylinders: int
    adjacency_depth: int  # D
    first_adjacent_sector_delta: tuple[int, ...]  # per zone
    hop_ms: tuple[float, ...]  # per zone
    seek_curve: tuple[SeekMeasurement, ...]

    def seek_at(self, distance: int) -> float:
        for m in self.seek_curve:
            if m.distance_cylinders == distance:
                return m.seek_ms
        raise KeyError(distance)


def measure_seek_profile(
    drive: DiskDrive,
    distances: list[int] | None = None,
    samples: int = 5,
    seed: int = 42,
) -> list[SeekMeasurement]:
    """Measure arm seek time as a function of cylinder distance.

    For each distance the head is placed on a random cylinder and the seek
    component of positioning on a block ``distance`` cylinders away is
    recorded (the rotational component is excluded, as hardware tools do by
    repeating with varied target sectors and taking the minimum).
    """
    geom = drive.geometry
    surfaces = geom.surfaces
    max_cyl = geom.n_cylinders - 1
    if distances is None:
        distances = sorted(
            set(
                list(range(1, 13))  # dense where the settle edge may hide
                + [16, 20, 24, 28, 32, 36, 40, 48, 64, 96, 128, 256, 512]
                + [max_cyl // 8, max_cyl // 4, max_cyl // 2, max_cyl]
            )
        )
        distances = [d for d in distances if 1 <= d <= max_cyl]
    rng = np.random.default_rng(seed)
    out = []
    for dist in distances:
        total = 0.0
        for _ in range(samples):
            src = int(rng.integers(0, max_cyl - dist + 1))
            drive.reset(track=src * surfaces, time_ms=0.0)
            target_track = (src + dist) * surfaces
            lbn = geom.track_first_lbn(target_track)
            seek, _ = drive.positioning_time(lbn)
            total += seek
        out.append(SeekMeasurement(dist, total / samples))
    return out


def _find_settle_region(
    measurements: list[SeekMeasurement], tolerance: float = 0.05
) -> tuple[float, int]:
    """(settle_ms, C): the flat prefix of the measured seek curve."""
    settle = measurements[0].seek_ms
    c = measurements[0].distance_cylinders
    for m in measurements[1:]:
        if m.seek_ms <= settle * (1.0 + tolerance):
            c = m.distance_cylinders
        else:
            break
    return settle, c


def _probe_hop(
    drive: DiskDrive, lbn: int, step: int
) -> tuple[int, float] | None:
    """Best (sector_index_delta, hop_ms) to reach track(lbn)+step right
    after reading ``lbn``, minimised over every candidate sector.

    Mirrors how extraction tools probe for adjacent blocks: read the start
    block, then time a read of each sector on the target track.  ``hop_ms``
    excludes the one-sector transfer of the target block itself.
    """
    geom = drive.geometry
    track = geom.track_of(lbn)
    target = track + step
    if target >= geom.n_tracks:
        return None
    t_first = geom.track_first_lbn(target)
    spt = geom.track_length(target)
    best = None
    best_cost = np.inf
    for sector in range(spt):
        drive.reset(track=geom.track_of(lbn), time_ms=0.0)
        first = drive.service(lbn, 1)
        start = first.end_ms
        timing = drive.service(t_first + sector, 1)
        cost = timing.end_ms - start
        if cost < best_cost:
            best_cost = cost
            best = sector
    start_sector = geom.sector_of(lbn)
    hop = best_cost - drive.mechanics.rotation_ms / spt
    return (best - start_sector) % spt, hop


def _probe_adjacent_offset(
    drive: DiskDrive, lbn: int, step: int, settle_ms: float,
    tolerance: float = 0.05,
) -> tuple[int, float] | None:
    """Probe step adjacency relative to the measured step-1 floor.

    A step qualifies as adjacent when its best hop costs no more than the
    drive's step-1 semi-sequential hop (which already includes command
    overhead and alignment) plus a small tolerance; beyond the settle
    region the extra seek time disqualifies it.
    """
    floor = _probe_hop(drive, lbn, 1)
    if floor is None:
        return None
    probed = _probe_hop(drive, lbn, step) if step != 1 else floor
    if probed is None:
        return None
    spt = drive.geometry.track_length(drive.geometry.track_of(lbn))
    budget = floor[1] * (1.0 + tolerance) + drive.mechanics.rotation_ms / spt
    if probed[1] <= budget:
        return probed
    return None


def extract_profile(
    drive: DiskDrive,
    *,
    max_depth_probe: int = 512,
    samples: int = 5,
    seed: int = 42,
) -> DiskProfile:
    """Measure a full :class:`DiskProfile` from the drive's public API."""
    curve = measure_seek_profile(drive, samples=samples, seed=seed)
    settle, c = _find_settle_region(curve)

    geom = drive.geometry
    surfaces = geom.surfaces
    # Probe adjacency depth in the middle of zone 0 to stay clear of
    # boundaries.  D must hold from *any* starting surface — a step that is
    # within the settle region from head 0 may cross one extra cylinder
    # from head R-1 — so each step is validated from all R starting tracks.
    zone_mid_track = (geom.zone_tracks(0) // 2 // surfaces) * surfaces
    start_lbns = [
        geom.track_first_lbn(zone_mid_track + r) for r in range(surfaces)
    ]

    def step_is_adjacent(step: int) -> bool:
        return all(
            _probe_adjacent_offset(drive, lbn, step, settle) is not None
            for lbn in start_lbns
        )

    depth = 0
    step = 1
    while step <= max_depth_probe:
        if not step_is_adjacent(step):
            break
        depth = step
        # Probe densely near the start, then stride: D = R*C is large and
        # every intermediate track within the settle region qualifies.
        step = step + 1 if step < 8 else step + surfaces
    # Refine the boundary when we strode past it.
    while depth + 1 <= max_depth_probe and step_is_adjacent(depth + 1):
        depth += 1

    deltas = []
    hops = []
    for zi in range(len(geom.zones)):
        ztrack = geom.zone_first_track(zi) + 1
        zlbn = geom.track_first_lbn(ztrack)
        probed = _probe_adjacent_offset(drive, zlbn, 1, settle)
        if probed is None:
            deltas.append(-1)
            hops.append(float("nan"))
        else:
            deltas.append(probed[0])
            hops.append(probed[1])

    return DiskProfile(
        settle_ms=settle,
        settle_cylinders=c,
        adjacency_depth=depth,
        first_adjacent_sector_delta=tuple(deltas),
        hop_ms=tuple(hops),
        seek_curve=tuple(curve),
    )
