"""Disk-drive simulation substrate.

The MultiMap paper runs on real SCSI drives; this package replaces them
with a first-principles simulator: zoned geometry (:mod:`~repro.disk.geometry`),
mechanical timing (:mod:`~repro.disk.mechanics`), a drive with positional
state and batch schedulers (:mod:`~repro.disk.drive`), the adjacency model
(:mod:`~repro.disk.adjacency`), parameterised models of the paper's two
drives (:mod:`~repro.disk.models`), and black-box characterisation
(:mod:`~repro.disk.characterize`).
"""

from repro.disk.adjacency import AdjacencyModel
from repro.disk.characterize import DiskProfile, extract_profile, measure_seek_profile
from repro.disk.drive import BatchResult, DiskDrive, RunTiming, TrackCache
from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.mechanics import DiskMechanics, SeekProfile
from repro.disk.models import (
    DiskModel,
    atlas_10k3,
    cheetah_36es,
    mini_drive,
    paper_disks,
    synthetic_disk,
    toy_disk,
)

__all__ = [
    "AdjacencyModel",
    "BatchResult",
    "DiskDrive",
    "DiskGeometry",
    "DiskMechanics",
    "DiskModel",
    "DiskProfile",
    "RunTiming",
    "SeekProfile",
    "TrackCache",
    "Zone",
    "atlas_10k3",
    "cheetah_36es",
    "extract_profile",
    "mini_drive",
    "measure_seek_profile",
    "paper_disks",
    "synthetic_disk",
    "toy_disk",
]
