"""Mechanical timing model of a disk drive.

This module captures everything about a drive that is *time* rather than
*layout*: rotation speed, head settle time, and the seek-time curve.

The seek curve follows the three-region shape that the MultiMap paper's
Figure 1(a) sketches and that drive-characterisation studies (Schlosser et
al., FAST 2005) report for real drives:

1. **Settle region** — for short seeks of up to ``settle_cylinders`` (the
   paper's *C*), seek time is flat and equal to the head settle time.  This
   flat region is what makes *adjacent blocks* possible: any of ``D = R * C``
   nearby tracks can be reached for the same cost.
2. **Square-root region** — for medium distances the arm accelerates and
   decelerates, giving the classic ``a + b * sqrt(d)`` shape.
3. **Linear region** — long seeks are dominated by coast time, linear in
   distance.

The curve is parameterised by four anchor points (settle time, average seek
at one third of full stroke, full-stroke time) and is continuous across the
region boundaries.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError

__all__ = ["SeekProfile", "DiskMechanics"]


@dataclass(frozen=True)
class SeekProfile:
    """Piecewise seek-time curve (all times in milliseconds).

    Parameters
    ----------
    settle_ms:
        Head settle time; the cost of any seek within the settle region.
    settle_cylinders:
        The paper's *C*: largest cylinder distance whose seek cost is still
        just the settle time.
    max_cylinders:
        Full-stroke distance (number of cylinders on the drive minus one).
    avg_seek_ms:
        Seek time at one third of the full stroke, the usual "average seek"
        figure from drive spec sheets.
    full_stroke_ms:
        Seek time across the whole surface.
    step_ms:
        Discrete jump right after the settle region — the knee visible in
        the paper's Figure 1(a).  Makes the boundary at *C* crisp, which is
        what lets characterisation tools find it.
    """

    settle_ms: float
    settle_cylinders: int
    max_cylinders: int
    avg_seek_ms: float
    full_stroke_ms: float
    step_ms: float = 0.1

    def __post_init__(self) -> None:
        if self.settle_ms <= 0:
            raise GeometryError("settle_ms must be positive")
        if self.settle_cylinders < 1:
            raise GeometryError("settle_cylinders must be >= 1")
        if self.max_cylinders <= self.settle_cylinders:
            raise GeometryError("max_cylinders must exceed settle_cylinders")
        if not self.settle_ms <= self.avg_seek_ms <= self.full_stroke_ms:
            raise GeometryError(
                "expected settle_ms <= avg_seek_ms <= full_stroke_ms"
            )

    @property
    def knee_cylinders(self) -> int:
        """Distance separating the sqrt region from the linear region."""
        return max(self.settle_cylinders + 1, self.max_cylinders // 3)

    def _sqrt_coeff(self) -> float:
        span = self.knee_cylinders - self.settle_cylinders
        return max(
            self.avg_seek_ms - self.settle_ms - self.step_ms, 0.0
        ) / math.sqrt(span)

    def _linear_coeff(self) -> float:
        span = self.max_cylinders - self.knee_cylinders
        if span <= 0:
            return 0.0
        return (self.full_stroke_ms - self.avg_seek_ms) / span

    def time(self, distance):
        """Seek time in ms for a cylinder ``distance`` (scalar or ndarray).

        A distance of zero costs nothing (no arm motion).  Any distance in
        ``1..settle_cylinders`` costs exactly the settle time.
        """
        d = np.asarray(distance, dtype=np.float64)
        knee = self.knee_cylinders
        b1 = self._sqrt_coeff()
        b2 = self._linear_coeff()
        out = np.where(
            d <= 0,
            0.0,
            np.where(
                d <= self.settle_cylinders,
                self.settle_ms,
                np.where(
                    d <= knee,
                    self.settle_ms
                    + self.step_ms
                    + b1 * np.sqrt(np.maximum(d - self.settle_cylinders, 0.0)),
                    self.avg_seek_ms + b2 * (d - knee),
                ),
            ),
        )
        if np.isscalar(distance) or np.ndim(distance) == 0:
            return float(out)
        return out


@dataclass(frozen=True)
class DiskMechanics:
    """Full mechanical parameter set of a drive.

    Parameters
    ----------
    rpm:
        Spindle speed in revolutions per minute.
    seek:
        The :class:`SeekProfile` for arm movement.
    head_switch_ms:
        Time to activate a different head on the same cylinder.  Modern
        drives settle after a head switch exactly like after a short seek,
        which is the premise of the adjacency model; by default it equals
        the settle time.
    command_overhead_ms:
        Per-command processing cost (host/bus/firmware) paid once per
        request, not per sector.  This is what makes chains of small
        non-contiguous requests expensive in practice — a block a few
        sectors ahead is missed while the completion is processed — and
        why the adjacency offset must include a matching margin.
    """

    rpm: float
    seek: SeekProfile
    head_switch_ms: float | None = None
    command_overhead_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise GeometryError("rpm must be positive")
        if self.command_overhead_ms < 0:
            raise GeometryError("command_overhead_ms must be >= 0")
        if self.head_switch_ms is None:
            object.__setattr__(self, "head_switch_ms", self.seek.settle_ms)

    @property
    def rotation_ms(self) -> float:
        """Time of one full revolution, in milliseconds."""
        return 60_000.0 / self.rpm

    @property
    def settle_ms(self) -> float:
        return self.seek.settle_ms

    @property
    def settle_cylinders(self) -> int:
        return self.seek.settle_cylinders

    def seek_time(self, distance):
        """Arm seek time for a cylinder distance (scalar or array), in ms."""
        return self.seek.time(distance)

    def positioning_floor_ms(self) -> float:
        """Lower bound for reaching a block on another track (= settle)."""
        return self.settle_ms

    def avg_rotational_latency_ms(self) -> float:
        """Expected rotational delay for a randomly placed target block."""
        return self.rotation_ms / 2.0

    def with_settle(self, settle_ms: float) -> "DiskMechanics":
        """Return a copy with a different settle time (used in ablations)."""
        seek = dataclasses.replace(
            self.seek,
            settle_ms=settle_ms,
            avg_seek_ms=max(self.seek.avg_seek_ms, settle_ms),
            full_stroke_ms=max(self.seek.full_stroke_ms, settle_ms),
        )
        return dataclasses.replace(self, seek=seek, head_switch_ms=settle_ms)
