"""Disk layout model: zones, tracks, sectors, skew and angular positions.

The geometry answers "where is LBN x?" — both logically (zone, cylinder,
head, sector) and physically (the angular position of the sector on the
platter, which is what rotational latency depends on).

Key modelling choices
---------------------
* **Zoned recording.**  Each zone is a contiguous cylinder range with a
  fixed number of sectors per track.  Outer zones hold more sectors.  LBNs
  are assigned in the conventional order: within a cylinder, head by head;
  cylinder by cylinder; zone by zone.
* **Uniform track skew.**  Consecutive tracks are rotationally offset by
  ``skew_sectors`` so that a sequential stream loses only the settle time at
  each track boundary.  We use the *same* skew for head switches and
  cylinder switches, reflecting the paper's premise that settle time
  dominates both.  The skew is chosen as ``ceil(spt * settle / rotation) + 1``
  which also makes it the *adjacency offset*: the first adjacent block of
  any LBN ``b`` is exactly ``b + spt`` (same sector index, next track) —
  precisely the layout drawn in the paper's Figures 2-4.
* **Angles as fractions.**  Angular positions are expressed as fractions of
  a revolution so they compose across zones with different track lengths.

All heavy accessors come in scalar *and* vectorised (numpy) flavours; the
vectorised ones are what the batch simulator and the mapping closed forms
use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError

__all__ = ["Zone", "DiskGeometry"]

SECTOR_BYTES = 512


@dataclass(frozen=True)
class Zone:
    """A recording zone: contiguous cylinders with equal track length."""

    index: int
    first_cylinder: int
    cylinders: int
    sectors_per_track: int
    skew_sectors: int

    def __post_init__(self) -> None:
        if self.cylinders <= 0:
            raise GeometryError("zone must contain at least one cylinder")
        if self.sectors_per_track <= 0:
            raise GeometryError("sectors_per_track must be positive")
        if not 0 <= self.skew_sectors < self.sectors_per_track:
            raise GeometryError(
                "skew_sectors must lie in [0, sectors_per_track)"
            )

    @property
    def last_cylinder(self) -> int:
        return self.first_cylinder + self.cylinders - 1


class DiskGeometry:
    """Immutable description of a drive's data layout.

    Parameters
    ----------
    zones:
        Zones in increasing cylinder order; must tile the cylinder range
        contiguously starting at cylinder 0.
    surfaces:
        Number of recording surfaces (= tracks per cylinder, the paper's
        *R*).
    """

    def __init__(self, zones: Sequence[Zone], surfaces: int):
        if surfaces < 1:
            raise GeometryError("surfaces must be >= 1")
        if not zones:
            raise GeometryError("at least one zone is required")
        zones = tuple(zones)
        expected_cyl = 0
        for i, zone in enumerate(zones):
            if zone.index != i:
                raise GeometryError(f"zone {i} has index {zone.index}")
            if zone.first_cylinder != expected_cyl:
                raise GeometryError(
                    f"zone {i} does not start at cylinder {expected_cyl}"
                )
            expected_cyl += zone.cylinders

        self.zones = zones
        self.surfaces = surfaces

        n = len(zones)
        self._spt = np.array([z.sectors_per_track for z in zones], dtype=np.int64)
        self._skew = np.array([z.skew_sectors for z in zones], dtype=np.int64)
        zone_tracks = np.array(
            [z.cylinders * surfaces for z in zones], dtype=np.int64
        )
        zone_lbns = zone_tracks * self._spt

        self._zone_first_track = np.zeros(n, dtype=np.int64)
        self._zone_first_track[1:] = np.cumsum(zone_tracks)[:-1]
        self._zone_first_lbn = np.zeros(n, dtype=np.int64)
        self._zone_first_lbn[1:] = np.cumsum(zone_lbns)[:-1]
        self._zone_first_cyl = np.array(
            [z.first_cylinder for z in zones], dtype=np.int64
        )

        self.n_tracks = int(zone_tracks.sum())
        self.n_lbns = int(zone_lbns.sum())
        self.n_cylinders = int(expected_cyl)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.n_lbns * SECTOR_BYTES

    @property
    def max_sectors_per_track(self) -> int:
        return int(self._spt.max())

    @property
    def min_sectors_per_track(self) -> int:
        return int(self._spt.min())

    def zone(self, index: int) -> Zone:
        return self.zones[index]

    def zone_tracks(self, index: int) -> int:
        """Number of tracks in a zone (Equation 2's denominator input)."""
        return self.zones[index].cylinders * self.surfaces

    def zone_first_lbn(self, index: int) -> int:
        return int(self._zone_first_lbn[index])

    def zone_first_track(self, index: int) -> int:
        return int(self._zone_first_track[index])

    def zone_lbn_span(self, index: int) -> tuple[int, int]:
        """Half-open LBN interval ``[lo, hi)`` covered by a zone."""
        lo = int(self._zone_first_lbn[index])
        if index + 1 < len(self.zones):
            hi = int(self._zone_first_lbn[index + 1])
        else:
            hi = self.n_lbns
        return lo, hi

    # ------------------------------------------------------------------
    # scalar accessors
    # ------------------------------------------------------------------

    def check_lbn(self, lbn: int) -> None:
        if not 0 <= lbn < self.n_lbns:
            raise GeometryError(f"LBN {lbn} outside [0, {self.n_lbns})")

    def zone_index_of_lbn(self, lbn: int) -> int:
        self.check_lbn(lbn)
        return int(
            np.searchsorted(self._zone_first_lbn, lbn, side="right") - 1
        )

    def zone_index_of_track(self, track: int) -> int:
        if not 0 <= track < self.n_tracks:
            raise GeometryError(f"track {track} outside [0, {self.n_tracks})")
        return int(
            np.searchsorted(self._zone_first_track, track, side="right") - 1
        )

    def track_of(self, lbn: int) -> int:
        """Global track index of an LBN (tracks numbered across the disk)."""
        zi = self.zone_index_of_lbn(lbn)
        rel = lbn - int(self._zone_first_lbn[zi])
        return int(self._zone_first_track[zi]) + rel // int(self._spt[zi])

    def sector_of(self, lbn: int) -> int:
        zi = self.zone_index_of_lbn(lbn)
        rel = lbn - int(self._zone_first_lbn[zi])
        return rel % int(self._spt[zi])

    def cylinder_of_track(self, track: int) -> int:
        return track // self.surfaces

    def head_of_track(self, track: int) -> int:
        return track % self.surfaces

    def cylinder_of(self, lbn: int) -> int:
        return self.cylinder_of_track(self.track_of(lbn))

    def chs(self, lbn: int) -> tuple[int, int, int]:
        """(cylinder, head, sector) of an LBN."""
        track = self.track_of(lbn)
        return (
            self.cylinder_of_track(track),
            self.head_of_track(track),
            self.sector_of(lbn),
        )

    def track_length(self, track: int) -> int:
        return int(self._spt[self.zone_index_of_track(track)])

    def track_first_lbn(self, track: int) -> int:
        zi = self.zone_index_of_track(track)
        tz = track - int(self._zone_first_track[zi])
        return int(self._zone_first_lbn[zi]) + tz * int(self._spt[zi])

    def lbn(self, track: int, sector: int) -> int:
        spt = self.track_length(track)
        if not 0 <= sector < spt:
            raise GeometryError(f"sector {sector} outside [0, {spt})")
        return self.track_first_lbn(track) + sector

    def track_boundaries(self, lbn: int) -> tuple[int, int]:
        """Half-open LBN interval of the track containing ``lbn``.

        This is the ``get_track_boundaries`` interface call the paper's LVM
        exports to applications.
        """
        track = self.track_of(lbn)
        lo = self.track_first_lbn(track)
        return lo, lo + self.track_length(track)

    def start_angle(self, lbn: int) -> float:
        """Angular position of the start of an LBN, in revolutions [0, 1).

        Sector ``s`` of in-zone track ``tz`` sits at angle
        ``((s + skew * tz) mod spt) / spt`` — the skew staggers consecutive
        tracks so that streaming across a boundary only pays the settle.
        """
        zi = self.zone_index_of_lbn(lbn)
        rel = lbn - int(self._zone_first_lbn[zi])
        spt = int(self._spt[zi])
        tz, s = divmod(rel, spt)
        return ((s + int(self._skew[zi]) * tz) % spt) / spt

    # ------------------------------------------------------------------
    # vectorised accessors
    # ------------------------------------------------------------------

    def decompose(self, lbns: np.ndarray):
        """Vectorised decomposition of LBNs.

        Returns
        -------
        (zone_idx, track, sector, spt, angle) — all ndarrays.  ``track`` is
        the global track index, ``angle`` the start angle in revolutions.
        """
        lbns = np.asarray(lbns, dtype=np.int64)
        if lbns.size and (lbns.min() < 0 or lbns.max() >= self.n_lbns):
            raise GeometryError("LBN out of range in vectorised decompose")
        zi = np.searchsorted(self._zone_first_lbn, lbns, side="right") - 1
        rel = lbns - self._zone_first_lbn[zi]
        spt = self._spt[zi]
        tz = rel // spt
        sector = rel - tz * spt
        track = self._zone_first_track[zi] + tz
        angle = ((sector + self._skew[zi] * tz) % spt) / spt
        return zi, track, sector, spt, angle

    def tracks_of(self, lbns: np.ndarray) -> np.ndarray:
        return self.decompose(lbns)[1]

    def cylinders_of(self, lbns: np.ndarray) -> np.ndarray:
        return self.decompose(lbns)[1] // self.surfaces

    def angles_of(self, lbns: np.ndarray) -> np.ndarray:
        return self.decompose(lbns)[4]

    def track_first_lbns(self, tracks: np.ndarray) -> np.ndarray:
        tracks = np.asarray(tracks, dtype=np.int64)
        zi = np.searchsorted(self._zone_first_track, tracks, side="right") - 1
        tz = tracks - self._zone_first_track[zi]
        return self._zone_first_lbn[zi] + tz * self._spt[zi]

    def lbns_from(self, tracks: np.ndarray, sectors: np.ndarray) -> np.ndarray:
        """Vectorised inverse of (track, sector) -> LBN."""
        return self.track_first_lbns(tracks) + np.asarray(sectors, np.int64)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def build(
        surfaces: int,
        zone_specs: Iterable[tuple[int, int]],
        skew_for_spt,
    ) -> "DiskGeometry":
        """Build a geometry from ``(cylinders, sectors_per_track)`` pairs.

        ``skew_for_spt`` maps a track length to the per-track skew in
        sectors (models derive it from settle time and rotation speed).
        """
        zones = []
        cyl = 0
        for i, (cylinders, spt) in enumerate(zone_specs):
            zones.append(
                Zone(
                    index=i,
                    first_cylinder=cyl,
                    cylinders=cylinders,
                    sectors_per_track=spt,
                    skew_sectors=int(skew_for_spt(spt)) % spt,
                )
            )
            cyl += cylinders
        return DiskGeometry(zones, surfaces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskGeometry(zones={len(self.zones)}, surfaces={self.surfaces},"
            f" tracks={self.n_tracks}, lbns={self.n_lbns})"
        )
