"""Eviction policies for the block buffer pool.

Policies are pure ordering structures: they hold the set of resident
``(disk, lbn)`` keys and decide which one leaves when the pool is over
capacity.  The :class:`~repro.cache.pool.BufferPool` owns the stats and
the prefetch bookkeeping; a policy only sees three events — ``admit``
(a block enters), ``on_hit`` (a resident block is accessed), ``victim``
(pick and remove the block to evict).

Three builtins are registered (:data:`POLICIES`):

``"lru"``
    Classic least-recently-used.
``"slru"``
    Segmented LRU (ARC-lite): admissions land in a probationary
    segment; a hit promotes into a protected segment capped at
    ``protected_frac`` of capacity, demoting the protected LRU tail
    back to probation when full.  Victims come from probation first,
    so one-touch blocks (scans, failed prefetch) cannot flush the
    proven working set.
``"scan"``
    Scan-resistant LRU: admissions flagged as part of a large scan
    (the pool flags demand batches bigger than its scan threshold)
    are inserted at the *cold* end of the recency list, so a
    full-volume scan recycles a handful of frames instead of wiping
    the cache.  A hit promotes normally.

Third-party policies register through :func:`register_policy` and are
then available by name to :class:`~repro.cache.pool.BufferPool` and
``Dataset.with_cache``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict

from repro.registry import Registry
from repro.errors import CacheError

__all__ = [
    "POLICIES",
    "EvictionPolicy",
    "LRUPolicy",
    "ScanResistantPolicy",
    "SegmentedLRUPolicy",
    "policy_names",
    "register_policy",
]

Key = tuple  # (disk, lbn)


#: policy-name -> policy class (``cls(capacity, **opts)``); builtins
#: live in this module, so importing it is the whole population step
POLICIES = Registry("cache policy")


def register_policy(name: str):
    """Class decorator adding an eviction policy to :data:`POLICIES`."""

    def deco(cls: type) -> type:
        POLICIES.add(name, cls)
        cls.name = name
        return cls

    return deco


def policy_names() -> tuple[str, ...]:
    return POLICIES.names()


def make_policy(policy, capacity: int, **opts) -> "EvictionPolicy":
    """Resolve a policy spec (name, class, or instance) for a pool."""
    if isinstance(policy, EvictionPolicy):
        return policy
    if isinstance(policy, str):
        policy = POLICIES.get(policy)
    if isinstance(policy, type):
        return policy(capacity, **opts)
    raise CacheError(
        f"policy must be a registered name, a class, or an instance; "
        f"got {type(policy).__name__}"
    )


class EvictionPolicy(ABC):
    """Resident-set ordering for one :class:`BufferPool`."""

    name: str = "abstract"

    def __init__(self, capacity: int):
        if capacity < 0:
            raise CacheError("capacity must be >= 0")
        self.capacity = int(capacity)

    # -- residency ------------------------------------------------------

    @abstractmethod
    def __contains__(self, key: Key) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def keys(self):
        """Resident keys in eviction order (first = next victim)."""

    # -- events ---------------------------------------------------------

    @abstractmethod
    def admit(self, key: Key, *, scan: bool = False) -> None:
        """A block enters the pool (key is guaranteed non-resident)."""

    @abstractmethod
    def on_hit(self, key: Key) -> None:
        """A resident block was accessed."""

    @abstractmethod
    def victim(self) -> Key:
        """Pick, remove, and return the key to evict."""

    @abstractmethod
    def discard(self, key: Key) -> None:
        """Remove a key if resident (invalidation)."""

    @abstractmethod
    def clear(self) -> None: ...

    def describe(self) -> str:
        return self.name


@register_policy("lru")
class LRUPolicy(EvictionPolicy):
    """Least-recently-used over a single recency list."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._recency: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._recency

    def __len__(self) -> int:
        return len(self._recency)

    def keys(self):
        return tuple(self._recency)

    def admit(self, key: Key, *, scan: bool = False) -> None:
        self._recency[key] = None

    def on_hit(self, key: Key) -> None:
        self._recency.move_to_end(key)

    def victim(self) -> Key:
        if not self._recency:
            raise CacheError("victim() on an empty policy")
        return self._recency.popitem(last=False)[0]

    def discard(self, key: Key) -> None:
        self._recency.pop(key, None)

    def clear(self) -> None:
        self._recency.clear()


@register_policy("scan")
class ScanResistantPolicy(LRUPolicy):
    """LRU whose scan-flagged admissions enter at the cold end.

    Blocks admitted as part of a batch larger than the pool's scan
    threshold become the *next victims* instead of the most-recent
    entries, so a full-volume scan cycles through a few frames while
    the re-referenced working set keeps its recency.  A hit promotes a
    block to the hot end like plain LRU (it earned residency).
    """

    def admit(self, key: Key, *, scan: bool = False) -> None:
        self._recency[key] = None
        if scan:
            self._recency.move_to_end(key, last=False)


@register_policy("slru")
class SegmentedLRUPolicy(EvictionPolicy):
    """Segmented LRU (ARC-lite): probationary + protected segments."""

    def __init__(self, capacity: int, protected_frac: float = 0.8):
        super().__init__(capacity)
        if not 0.0 < protected_frac < 1.0:
            raise CacheError("protected_frac must be in (0, 1)")
        self.protected_cap = int(capacity * protected_frac)
        self._probation: OrderedDict[Key, None] = OrderedDict()
        self._protected: OrderedDict[Key, None] = OrderedDict()

    def __contains__(self, key: Key) -> bool:
        return key in self._probation or key in self._protected

    def __len__(self) -> int:
        return len(self._probation) + len(self._protected)

    def keys(self):
        # probation evicts first, then the protected tail
        return tuple(self._probation) + tuple(self._protected)

    def admit(self, key: Key, *, scan: bool = False) -> None:
        self._probation[key] = None

    def on_hit(self, key: Key) -> None:
        if key in self._protected:
            self._protected.move_to_end(key)
            return
        # promote probation -> protected; demote the protected LRU tail
        # back to probation's hot end when the segment is full
        del self._probation[key]
        self._protected[key] = None
        while len(self._protected) > max(1, self.protected_cap):
            demoted = self._protected.popitem(last=False)[0]
            self._probation[demoted] = None

    def victim(self) -> Key:
        if self._probation:
            return self._probation.popitem(last=False)[0]
        if self._protected:
            return self._protected.popitem(last=False)[0]
        raise CacheError("victim() on an empty policy")

    def discard(self, key: Key) -> None:
        if self._probation.pop(key, None) is None:
            self._protected.pop(key, None)

    def clear(self) -> None:
        self._probation.clear()
        self._protected.clear()
