"""repro.cache — buffer pool and locality-aware prefetch.

The memory layer above the simulated drives: a block-level
:class:`BufferPool` keyed by ``(disk, lbn)`` with pluggable,
registry-registered eviction policies (:data:`POLICIES`) and
prefetchers (:data:`PREFETCHERS`) that exploit the same LVM adjacency
interface MultiMap maps onto.  See :mod:`repro.cache.pool` for how it
plugs into the §5.2 issue-order pipeline, and :mod:`repro.cache.sweep`
for the hit-ratio-vs-capacity experiment::

    from repro import Dataset

    ds = Dataset.create((64, 32, 32), layout="multimap", seed=42)
    ds.with_cache(4096, policy="slru", prefetch="track")
    report = ds.random_beams(axis=1, n=5).repeats(3).run()
    print(ds.cache.stats.hit_ratio)
"""

from repro.cache.policies import (
    POLICIES,
    EvictionPolicy,
    LRUPolicy,
    ScanResistantPolicy,
    SegmentedLRUPolicy,
    policy_names,
    register_policy,
)
from repro.cache.pool import BufferPool, CacheStats, expand_plan
from repro.cache.sharded import ShardedBufferPool
from repro.cache.prefetch import (
    PREFETCHERS,
    AdjacentPrefetcher,
    NoPrefetcher,
    Prefetcher,
    TrackPrefetcher,
    prefetcher_names,
    register_prefetcher,
)
from repro.cache.sweep import (
    overlapping_beams,
    render_cache_sweep,
    run_cache_sweep,
)

__all__ = [
    "POLICIES",
    "PREFETCHERS",
    "AdjacentPrefetcher",
    "BufferPool",
    "CacheStats",
    "EvictionPolicy",
    "LRUPolicy",
    "NoPrefetcher",
    "Prefetcher",
    "ScanResistantPolicy",
    "SegmentedLRUPolicy",
    "ShardedBufferPool",
    "TrackPrefetcher",
    "expand_plan",
    "overlapping_beams",
    "policy_names",
    "prefetcher_names",
    "register_policy",
    "register_prefetcher",
    "render_cache_sweep",
    "run_cache_sweep",
]
