"""Hit-ratio-vs-capacity sweeps: the caching analogue of the storm.

``run_cache_sweep`` replays the same seeded *overlapping-beam* workload
against each registered layout at rising pool capacities and records the
cache hit ratio, prefetch accuracy, and query timings — producing the
hit-ratio-vs-capacity curve per layout that quantifies the second half
of MultiMap's locality dividend: under a placement that keeps spatial
neighbors physically adjacent, one beam's miss work (plus track-aligned
prefetch) is the neighboring beams' memory hits, while space-filling
curves scatter a beam across many tracks and pay the pollution.

The workload (:func:`overlapping_beams`) draws beams whose anchors
cluster inside a sub-region of the dataset and repeats the whole batch,
so queries overlap both spatially (neighboring anchors share tracks)
and temporally (repeats re-read the same cells) — the
repeated/overlapping access the paper's OLAP and earthquake scenarios
produce.  Every (layout, capacity) cell replays identical queries on a
fresh same-seed dataset, so only placement and pool behaviour differ.
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import render_table
from repro.query.workload import BeamQuery

__all__ = ["overlapping_beams", "run_cache_sweep", "render_cache_sweep"]

DEFAULT_LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
DEFAULT_CAPACITIES = (0, 4096, 12288, 24576)


def overlapping_beams(
    shape,
    *,
    n_beams: int = 16,
    axes=(1,),
    region_frac: float = 0.4,
    seed: int = 0,
) -> list[BeamQuery]:
    """Full-length beams whose anchors cluster in one sub-region.

    ``region_frac`` bounds each fixed coordinate to the first
    ``frac * dim`` cells, so distinct beams cross and share neighboring
    cells; cycling through ``axes`` mixes access directions the way the
    paper's multi-dimensional workloads do.  Deterministic for a given
    ``seed``.
    """
    shape = tuple(int(s) for s in shape)
    rng = np.random.default_rng(seed)
    queries = []
    for i in range(int(n_beams)):
        axis = int(axes[i % len(axes)])
        fixed = tuple(
            0 if d == axis
            else int(rng.integers(0, max(1, int(s * region_frac))))
            for d, s in enumerate(shape)
        )
        queries.append(BeamQuery(axis=axis, fixed=fixed))
    return queries


def run_cache_sweep(
    shape,
    layouts=DEFAULT_LAYOUTS,
    capacities=DEFAULT_CAPACITIES,
    *,
    policy: str = "lru",
    prefetch: str = "track",
    n_beams: int = 16,
    repeats: int = 3,
    axes=(1,),
    region_frac: float = 0.4,
    drive: str = "minidrive",
    seed: int = 42,
    dataset_opts: dict | None = None,
) -> dict:
    """Sweep layouts × pool capacities under one repeated beam workload.

    Returns ``layout -> {capacity: cell}`` where each cell carries the
    pool's hit ratio / prefetch accuracy and the batch's timing
    aggregates, plus a ``meta`` entry recording the sweep parameters.
    Capacity 0 cells run with no pool at all (the parity baseline).
    """
    from repro.api.dataset import Dataset

    shape = tuple(int(s) for s in shape)
    queries = overlapping_beams(
        shape, n_beams=n_beams, axes=axes,
        region_frac=region_frac, seed=seed,
    )
    data: dict = {}
    for layout in layouts:
        per_cap: dict = {}
        for cap in capacities:
            ds = Dataset.create(
                shape, layout=layout, drive=drive, seed=seed,
                **(dataset_opts or {}),
            ).with_cache(int(cap), policy=policy, prefetch=prefetch)
            report = ds.query().add(queries).repeats(repeats).run()
            cell = {
                "capacity": int(cap),
                "total_ms": report.total_ms,
                "mean_query_ms": report.mean("total_ms"),
            }
            if ds.cache is not None:
                stats = ds.cache.stats
                cell.update(
                    hit_ratio=stats.hit_ratio,
                    prefetch_accuracy=stats.prefetch_accuracy,
                    occupancy=ds.cache.occupancy,
                )
            else:
                cell.update(hit_ratio=0.0, prefetch_accuracy=0.0,
                            occupancy=0)
            per_cap[int(cap)] = cell
        data[layout] = per_cap
    data["meta"] = {
        "shape": list(shape),
        "drive": drive if isinstance(drive, str) else getattr(
            drive, "name", str(drive)
        ),
        "policy": policy,
        "prefetch": prefetch,
        "n_beams": int(n_beams),
        "repeats": int(repeats),
        "axes": [int(a) for a in axes],
        "region_frac": float(region_frac),
        "seed": int(seed),
        "capacities": [int(c) for c in capacities],
        "layouts": [str(layout) for layout in layouts],
    }
    return data


def _layout_rows(data: dict, metric) -> tuple[list[int], list[list]]:
    caps = data["meta"]["capacities"]
    rows = []
    for layout in data["meta"]["layouts"]:
        per_cap = data[layout]
        rows.append([layout] + [metric(per_cap[c]) for c in caps])
    return caps, rows


def render_cache_sweep(data: dict) -> str:
    """Hit-ratio and mean-latency tables, capacity columns per layout."""
    meta = data["meta"]
    parts = [
        f"cache sweep: shape={tuple(meta['shape'])} on {meta['drive']}, "
        f"policy={meta['policy']}, prefetch={meta['prefetch']}, "
        f"{meta['n_beams']} beams x {meta['repeats']} repeats, "
        f"seed={meta['seed']}"
    ]
    caps, rows = _layout_rows(data, lambda c: f"{c['hit_ratio']:.1%}")
    headers = ["layout"] + [f"cap {c}" for c in caps]
    parts.append("cache hit ratio vs pool capacity (blocks)")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(data, lambda c: f"{c['mean_query_ms']:.2f}")
    parts.append("mean query time (ms) vs pool capacity")
    parts.append(render_table(headers, rows))
    _, rows = _layout_rows(
        data, lambda c: f"{c['prefetch_accuracy']:.1%}"
    )
    parts.append("prefetch accuracy vs pool capacity")
    parts.append(render_table(headers, rows))
    return "\n\n".join(parts)
