"""The block-level buffer pool and its plan filter.

A :class:`BufferPool` caches 512-byte blocks keyed by ``(disk, lbn)``
above the simulated drives — the DRAM layer the paper's prototype leaves
to future work, and the missing half of MultiMap's locality dividend:
once neighbors in *every* dimension are physically adjacent, a
track-aligned prefetch turns one query's mechanical work into its
neighbors' memory hits.

The pool plugs into :class:`repro.query.executor.StorageManager` at the
§5.2 issue-order stage: ``prepare_plan`` calls :meth:`filter_plan` to
partition each prepared plan into *cached* blocks (served at
``service_ms_per_block``, the bus/DRAM cost) and a *miss plan* the drive
services mechanically; after servicing, :meth:`admit_plan` installs the
missed blocks together with their prefetched neighbors
(:mod:`repro.cache.prefetch`).  Filtering preserves the plan's issue
order — a MultiMap semi-sequential (``"fifo"``) plan stays in path
order, a ``"sorted"`` plan stays ascending — so the miss plan is
serviced exactly as the §5.2 conventions dictate.

A pool with ``capacity_blocks == 0`` is inert: lookups miss, admissions
are dropped, and every serviced plan is bit-identical to the uncached
path (the parity the regression tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.policies import EvictionPolicy, make_policy
from repro.cache.prefetch import Prefetcher, make_prefetcher
from repro.disk.drive import DiskDrive
from repro.errors import CacheError
from repro.mappings.base import RequestPlan, coalesce_ranks

__all__ = ["BufferPool", "CacheStats", "expand_plan"]


def expand_plan(plan: RequestPlan) -> np.ndarray:
    """Every LBN a plan touches, one entry per block, in issue order."""
    starts = plan.starts
    lengths = plan.lengths
    if starts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(lengths.sum())
    # offset of each block within the flattened batch minus the offset of
    # its run's first block == offset within the run
    run_first = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - np.repeat(run_first, lengths)
    return np.repeat(starts, lengths) + offsets


@dataclass
class CacheStats:
    """Cumulative counters over a pool's lifetime.

    ``hits + misses == accesses`` always holds (a property test pins
    it); ``prefetch_hits`` counts hits whose block was resident *because
    of* a prefetch and had not been demanded since, so
    ``prefetch_accuracy`` is the fraction of issued prefetches that
    turned into hits.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    admitted: int = 0
    evictions: int = 0
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    served_ms: float = field(default=0.0, repr=False)

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        if not self.prefetch_issued:
            return 0.0
        return self.prefetch_hits / self.prefetch_issued

    def to_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "admitted": self.admitted,
            "evictions": self.evictions,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_accuracy": self.prefetch_accuracy,
            "served_ms": self.served_ms,
        }


class BufferPool:
    """A shared, policy-pluggable block cache for one logical volume.

    Parameters
    ----------
    capacity_blocks:
        Frames in the pool (one 512-byte block each).  0 disables the
        pool entirely.
    policy:
        Eviction policy — a registered name (``"lru"``, ``"slru"``,
        ``"scan"``), an :class:`EvictionPolicy` class, or an instance.
    prefetch:
        Prefetcher — a registered name (``"none"``, ``"track"``,
        ``"adjacent"``), a :class:`Prefetcher` class, or an instance.
    service_ms_per_block:
        Memory service time per cached block; the default *is* the
        drive's Ultra160-class bus cost
        (:attr:`repro.disk.drive.DiskDrive.CACHE_BLOCK_MS`).
    scan_threshold:
        Demand admissions arriving in one batch of at least this many
        blocks are flagged as a scan to the policy (scan-resistant
        policies insert them cold).  Defaults to half the capacity.
    """

    def __init__(
        self,
        capacity_blocks: int,
        policy: str | type | EvictionPolicy = "lru",
        prefetch: str | type | Prefetcher = "none",
        *,
        service_ms_per_block: float | None = None,
        scan_threshold: int | None = None,
        policy_opts: dict | None = None,
        prefetch_opts: dict | None = None,
    ):
        if service_ms_per_block is None:
            service_ms_per_block = DiskDrive.CACHE_BLOCK_MS
        if capacity_blocks < 0:
            raise CacheError("capacity_blocks must be >= 0")
        if service_ms_per_block < 0:
            raise CacheError("service_ms_per_block must be >= 0")
        self.capacity = int(capacity_blocks)
        self.policy = make_policy(
            policy, self.capacity, **(policy_opts or {})
        )
        self.prefetcher = make_prefetcher(
            prefetch, **(prefetch_opts or {})
        )
        self.service_ms_per_block = float(service_ms_per_block)
        if scan_threshold is None:
            scan_threshold = max(1, self.capacity // 2)
        self.scan_threshold = int(scan_threshold)
        self.stats = CacheStats()
        self._prefetched: set[tuple] = set()
        # per-disk LBN mirror of the policy's resident set, kept in sync
        # by the pool (every policy mutation flows through pool methods)
        # so filter_plan can test membership without per-key tuple
        # hashing; _resident_arr lazily caches the ndarray form for
        # vectorized lookups of large plans and is dropped on mutation
        self._resident: dict[int, set[int]] = {}
        self._resident_arr: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # residency
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.capacity > 0

    @property
    def occupancy(self) -> int:
        return len(self.policy)

    def __contains__(self, key: tuple) -> bool:
        return key in self.policy

    def contains(self, disk: int, lbn: int) -> bool:
        return (int(disk), int(lbn)) in self.policy

    # ------------------------------------------------------------------
    # the cache-filter step (called from prepare_plan)
    # ------------------------------------------------------------------

    def filter_plan(
        self, disk: int, plan: RequestPlan
    ) -> tuple[RequestPlan, int, int]:
        """Partition ``plan`` into memory hits and a drive miss plan.

        Returns ``(miss_plan, hit_blocks, hit_runs)``.  Hits refresh
        recency; the miss plan preserves the plan's block issue order
        (contiguous surviving blocks re-coalesce into runs).  With zero
        hits the original plan object is returned untouched, so an
        empty or cold pool is exactly the uncached path.
        """
        if not self.active or plan.n_runs == 0:
            return plan, 0, 0
        lbns = expand_plan(plan)
        d = int(disk)
        policy = self.policy
        stats = self.stats
        resident = self._resident.get(d)
        if not resident:
            # guaranteed all-miss (cold pool, or nothing cached for
            # this disk): skip the membership test entirely
            stats.accesses += int(lbns.size)
            stats.misses += int(lbns.size)
            return plan, 0, 0
        # membership test scaled to the smaller side: set lookups for
        # plans much smaller than the pool, vectorized np.isin (against
        # a cached ndarray of the resident set) for large plans; only
        # the hits (bounded by capacity) then need per-key Python work
        # for recency and prefetch accounting
        if lbns.size * 8 < len(resident):
            hit_mask = np.fromiter(
                (lbn in resident for lbn in lbns.tolist()),
                dtype=bool, count=lbns.size,
            )
        else:
            arr = self._resident_arr.get(d)
            if arr is None:
                arr = np.fromiter(resident, dtype=np.int64,
                                  count=len(resident))
                self._resident_arr[d] = arr
            hit_mask = np.isin(lbns, arr)
        for lbn in lbns[hit_mask].tolist():
            key = (d, lbn)
            policy.on_hit(key)
            if key in self._prefetched:
                self._prefetched.discard(key)
                stats.prefetch_hits += 1
        n_hits = int(hit_mask.sum())
        stats.accesses += int(lbns.size)
        stats.hits += n_hits
        stats.misses += int(lbns.size) - n_hits
        if n_hits == 0:
            return plan, 0, 0
        stats.served_ms += n_hits * self.service_ms_per_block
        # coalesce_ranks is order-preserving (it only breaks on LBN
        # discontinuity), so fifo plans keep their issue order
        starts, lengths = coalesce_ranks(lbns[~hit_mask])
        miss = RequestPlan(starts, lengths, policy=plan.policy,
                           merge_gap=plan.merge_gap)
        # maximal contiguous stretches of hit blocks = "cached runs"
        transitions = int(np.count_nonzero(np.diff(hit_mask.astype(np.int8))
                                           == 1))
        hit_runs = transitions + int(hit_mask[0])
        return miss, n_hits, hit_runs

    def peek_plan(self, disk: int, plan: RequestPlan) -> tuple[int, int]:
        """The ``(hit_blocks, hit_runs)`` that :meth:`filter_plan`
        would report for ``plan`` — without serving it: no recency
        refresh, no prefetch accounting, no stats.  The EXPLAIN layer's
        probe for expected cache hits against the live pool.
        """
        if not self.active or plan.n_runs == 0:
            return 0, 0
        lbns = expand_plan(plan)
        d = int(disk)
        resident = self._resident.get(d)
        if not resident:
            return 0, 0
        if lbns.size * 8 < len(resident):
            hit_mask = np.fromiter(
                (lbn in resident for lbn in lbns.tolist()),
                dtype=bool, count=lbns.size,
            )
        else:
            arr = self._resident_arr.get(d)
            if arr is None:
                arr = np.fromiter(resident, dtype=np.int64,
                                  count=len(resident))
                self._resident_arr[d] = arr
            hit_mask = np.isin(lbns, arr)
        n_hits = int(hit_mask.sum())
        if n_hits == 0:
            return 0, 0
        transitions = int(np.count_nonzero(np.diff(hit_mask.astype(np.int8))
                                           == 1))
        return n_hits, transitions + int(hit_mask[0])

    # ------------------------------------------------------------------
    # admission (called after the drive serviced the miss plan)
    # ------------------------------------------------------------------

    def admit_plan(self, volume, disk: int, plan: RequestPlan) -> None:
        """Install a serviced miss plan's blocks plus their prefetch.

        Demand blocks are admitted first (batches at or above
        ``scan_threshold`` carry the scan flag); then the prefetcher's
        targets for the same runs, minus anything already resident.
        """
        if not self.active or plan.n_runs == 0:
            return
        demand = expand_plan(plan)
        scan = demand.size >= self.scan_threshold
        d = int(disk)
        for lbn in demand.tolist():
            self._admit((d, lbn), scan=scan, prefetch=False)
        targets = self.prefetcher.targets(volume, disk, plan)
        for lbn in targets.tolist():
            self._admit((d, lbn), scan=scan, prefetch=True)

    def _admit(self, key: tuple, *, scan: bool, prefetch: bool) -> None:
        policy = self.policy
        if key in policy:
            # Demand re-fetch of a resident block (e.g. admitted by a
            # contending client between filter and service) is a real
            # reference: refresh recency.  A speculative prefetch that
            # lands on a resident block is NOT — promoting on it would
            # let repeated track prefetch push one-touch blocks into an
            # SLRU protected segment without any demand access.
            if not prefetch:
                policy.on_hit(key)
            return
        policy.admit(key, scan=scan)
        self._resident.setdefault(key[0], set()).add(key[1])
        self._resident_arr.pop(key[0], None)
        self.stats.admitted += 1
        if prefetch:
            self.stats.prefetch_issued += 1
            self._prefetched.add(key)
        while len(policy) > self.capacity:
            victim = policy.victim()
            self._resident[victim[0]].discard(victim[1])
            self._resident_arr.pop(victim[0], None)
            self._prefetched.discard(victim)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # maintenance / introspection
    # ------------------------------------------------------------------

    def invalidate(self, disk: int, lbns) -> None:
        """Drop blocks (e.g. after an in-place update rewrote them)."""
        d = int(disk)
        resident = self._resident.get(d)
        self._resident_arr.pop(d, None)
        for lbn in np.asarray(lbns, dtype=np.int64).ravel().tolist():
            key = (d, lbn)
            self.policy.discard(key)
            self._prefetched.discard(key)
            if resident is not None:
                resident.discard(lbn)

    def drop_disk(self, disk: int) -> None:
        """Drop every frame of one member disk (e.g. the disk failed:
        a revived or rebuilt disk must not be served stale frames)."""
        d = int(disk)
        resident = self._resident.pop(d, None)
        self._resident_arr.pop(d, None)
        if resident:
            for lbn in resident:
                key = (d, lbn)
                self.policy.discard(key)
                self._prefetched.discard(key)

    def clear(self) -> None:
        self.policy.clear()
        self._prefetched.clear()
        self._resident.clear()
        self._resident_arr.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def describe(self) -> dict:
        """JSON-friendly config + lifetime stats snapshot."""
        return {
            "capacity_blocks": self.capacity,
            "policy": self.policy.describe(),
            "prefetch": self.prefetcher.describe(),
            "service_ms_per_block": self.service_ms_per_block,
            "occupancy": self.occupancy,
            "stats": self.stats.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool({self.capacity}, policy={self.policy.describe()!r},"
            f" prefetch={self.prefetcher.describe()!r},"
            f" occupancy={self.occupancy})"
        )
