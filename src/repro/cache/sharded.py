"""Per-shard buffer-pool composition for multi-disk volumes.

A shared :class:`~repro.cache.pool.BufferPool` already spans member
disks naturally (frames are keyed by ``(disk, lbn)``), modelling one
host-side DRAM pool in front of the whole volume.  A
:class:`ShardedBufferPool` instead gives every member disk its own
private pool of ``capacity_blocks`` frames — the per-controller cache of
a real disk array — so one shard's scan can never evict another shard's
working set.  ``Dataset.with_cache(..., scope="per_shard")`` picks this
composition.

The class mirrors the exact surface the storage manager, the traffic
engine, and the façade touch on a pool (``active``, ``filter_plan``,
``admit_plan``, ``invalidate``, ``clear``, ``reset_stats``, ``stats``,
``describe``, ``service_ms_per_block``), routing each call to the member
pool that owns the disk.
"""

from __future__ import annotations

from repro.cache.pool import BufferPool, CacheStats
from repro.errors import CacheError

__all__ = ["ShardedBufferPool"]


class ShardedBufferPool:
    """One private :class:`BufferPool` per member disk.

    Parameters match :class:`BufferPool` with ``capacity_blocks``
    applying *per shard* (total frames = ``n_disks * capacity_blocks``);
    remaining keywords pass through to every member pool.
    """

    def __init__(self, n_disks: int, capacity_blocks: int,
                 policy="lru", prefetch="none", **pool_opts):
        if n_disks < 1:
            raise CacheError("need at least one disk")
        self.n_disks = int(n_disks)
        self.capacity_per_shard = int(capacity_blocks)
        self.pools = tuple(
            BufferPool(capacity_blocks, policy=policy, prefetch=prefetch,
                       **pool_opts)
            for _ in range(self.n_disks)
        )

    def _pool(self, disk: int) -> BufferPool:
        d = int(disk)
        if not 0 <= d < self.n_disks:
            raise CacheError(
                f"disk {d} out of range for {self.n_disks} shard pools"
            )
        return self.pools[d]

    # ------------------------------------------------------------------
    # the pool surface the storage manager drives
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        return any(p.active for p in self.pools)

    @property
    def service_ms_per_block(self) -> float:
        return self.pools[0].service_ms_per_block

    @property
    def capacity(self) -> int:
        """Total frames across every member pool."""
        return sum(p.capacity for p in self.pools)

    @property
    def occupancy(self) -> int:
        return sum(p.occupancy for p in self.pools)

    def contains(self, disk: int, lbn: int) -> bool:
        return self._pool(disk).contains(disk, lbn)

    def filter_plan(self, disk: int, plan):
        return self._pool(disk).filter_plan(disk, plan)

    def peek_plan(self, disk: int, plan) -> tuple[int, int]:
        return self._pool(disk).peek_plan(disk, plan)

    def admit_plan(self, volume, disk: int, plan) -> None:
        self._pool(disk).admit_plan(volume, disk, plan)

    def invalidate(self, disk: int, lbns) -> None:
        self._pool(disk).invalidate(disk, lbns)

    def drop_disk(self, disk: int) -> None:
        self._pool(disk).drop_disk(disk)

    def clear(self) -> None:
        for p in self.pools:
            p.clear()

    def reset_stats(self) -> None:
        for p in self.pools:
            p.reset_stats()

    # ------------------------------------------------------------------
    # aggregate introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Counters summed across the member pools (a fresh snapshot;
        mutate the member pools' ``stats``, not this)."""
        agg = CacheStats()
        for p in self.pools:
            s = p.stats
            agg.accesses += s.accesses
            agg.hits += s.hits
            agg.misses += s.misses
            agg.admitted += s.admitted
            agg.evictions += s.evictions
            agg.prefetch_issued += s.prefetch_issued
            agg.prefetch_hits += s.prefetch_hits
            agg.served_ms += s.served_ms
        return agg

    def describe(self) -> dict:
        """JSON-friendly config + aggregate and per-shard snapshots.

        Carries the same top-level keys a :class:`BufferPool` snapshot
        has (so shared renderers work unchanged) plus the per-shard
        breakdown.
        """
        first = self.pools[0]
        return {
            "scope": "per_shard",
            "n_pools": self.n_disks,
            "capacity_blocks": self.capacity,
            "capacity_per_shard": self.capacity_per_shard,
            "policy": first.policy.describe(),
            "prefetch": first.prefetcher.describe(),
            "service_ms_per_block": first.service_ms_per_block,
            "occupancy": self.occupancy,
            "stats": self.stats.to_dict(),
            "pools": [p.describe() for p in self.pools],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedBufferPool({self.n_disks} x "
            f"{self.capacity_per_shard}, occupancy={self.occupancy})"
        )
