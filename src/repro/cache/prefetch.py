"""Prefetchers: layout-knowledge-driven readahead for the buffer pool.

A prefetcher turns the *miss runs* a query just serviced into the set of
LBNs worth pulling into the pool alongside them.  Both non-trivial
builtins exploit exactly the knowledge MultiMap itself builds on — the
LVM's exported geometry and adjacency interfaces (paper §3.2), never raw
disk internals:

``"none"``
    No prefetch (demand blocks only).
``"track"``
    Track-aligned readahead: every run is rounded out to whole track
    boundaries (``get_track_boundaries``), modelling firmware
    readahead filling the segment buffer with the remainder of each
    track the head crossed.  For track-aligned placements (MultiMap,
    naive) this is nearly free of pollution — a query's runs *are*
    tracks — while scattered placements drag in whole tracks of
    unrelated cells per touched block.
``"adjacent"``
    Semi-sequential successors: for each run the ``steps`` first
    adjacent blocks of its boundary blocks (``get_adjacent``), i.e.
    the blocks reachable in one settle with zero rotational latency.
    Under MultiMap those are the query's spatial neighbors in the
    non-streaming dimensions, so overlapping follow-up queries hit.

Prefetched blocks are admitted at zero simulated cost — the model is
that readahead overlaps the mechanical work the miss already paid for —
but they occupy frames and evict like any other block, so inaccurate
prefetch *is* punished (cache pollution), and the pool's
``prefetch_issued`` / ``prefetch_hits`` counters price the accuracy.

Third-party prefetchers register through :func:`register_prefetcher`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.registry import Registry
from repro.errors import AdjacencyError, CacheError

__all__ = [
    "PREFETCHERS",
    "AdjacentPrefetcher",
    "NoPrefetcher",
    "Prefetcher",
    "TrackPrefetcher",
    "prefetcher_names",
    "register_prefetcher",
]


#: prefetcher-name -> prefetcher class (``cls(**opts)``); builtins live
#: in this module, so importing it is the whole population step
PREFETCHERS = Registry("prefetcher")


def register_prefetcher(name: str):
    """Class decorator adding a prefetcher to :data:`PREFETCHERS`."""

    def deco(cls: type) -> type:
        PREFETCHERS.add(name, cls)
        cls.name = name
        return cls

    return deco


def prefetcher_names() -> tuple[str, ...]:
    return PREFETCHERS.names()


def make_prefetcher(prefetch, **opts) -> "Prefetcher":
    """Resolve a prefetcher spec (name, class, or instance)."""
    if isinstance(prefetch, Prefetcher):
        return prefetch
    if isinstance(prefetch, str):
        prefetch = PREFETCHERS.get(prefetch)
    if isinstance(prefetch, type):
        return prefetch(**opts)
    raise CacheError(
        f"prefetch must be a registered name, a class, or an instance; "
        f"got {type(prefetch).__name__}"
    )


class Prefetcher(ABC):
    """Maps a serviced plan's runs to the LBNs worth caching with them."""

    name: str = "abstract"

    @abstractmethod
    def targets(self, volume, disk: int, plan) -> np.ndarray:
        """LBNs to prefetch for ``plan``'s runs on ``volume``/``disk``.

        May include LBNs already resident or already in the plan — the
        pool admits only the new ones.  Returns a sorted int64 array.
        """

    def describe(self) -> str:
        return self.name


@register_prefetcher("none")
class NoPrefetcher(Prefetcher):
    """Demand-only: never prefetches."""

    def targets(self, volume, disk: int, plan) -> np.ndarray:
        return np.empty(0, dtype=np.int64)


@register_prefetcher("track")
class TrackPrefetcher(Prefetcher):
    """Round every run out to whole tracks (firmware-style readahead)."""

    def targets(self, volume, disk: int, plan) -> np.ndarray:
        geom = volume.models[disk].geometry
        spans = []
        for start, length in zip(plan.starts, plan.lengths):
            lo, _ = geom.track_boundaries(int(start))
            _, hi = geom.track_boundaries(int(start + length - 1))
            spans.append((lo, hi))
        if not spans:
            return np.empty(0, dtype=np.int64)
        # merge overlapping track spans before materialising the blocks
        spans.sort()
        merged = [spans[0]]
        for lo, hi in spans[1:]:
            if lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        return np.concatenate(
            [np.arange(lo, hi, dtype=np.int64) for lo, hi in merged]
        )


@register_prefetcher("adjacent")
class AdjacentPrefetcher(Prefetcher):
    """Pull each run's semi-sequential successors (``get_adjacent``).

    For every run, the ``steps`` first adjacent blocks of its last LBN:
    the continuation of the access path one settle away.  Steps beyond
    the disk's adjacency depth *D* or across a zone boundary are
    silently skipped (MultiMap never maps across zones, so nothing
    useful lives there).
    """

    def __init__(self, steps: int = 4):
        if steps < 1:
            raise CacheError("steps must be >= 1")
        self.steps = int(steps)

    def targets(self, volume, disk: int, plan) -> np.ndarray:
        adjacency = volume.adjacency[disk]
        steps = min(self.steps, adjacency.D)
        out: list[int] = []
        for start, length in zip(plan.starts, plan.lengths):
            last = int(start + length - 1)
            for step in range(1, steps + 1):
                try:
                    out.append(adjacency.get_adjacent(last, step))
                except AdjacencyError:
                    break
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.asarray(out, dtype=np.int64))

    def describe(self) -> str:
        return f"{self.name}[{self.steps}]"
