#!/usr/bin/env python3
"""Earthquake workload: MultiMap on a skewed octree dataset (paper §5.4).

Generates the synthetic stand-in for the paper's 64 GB ground-motion
dataset (variable-resolution octree, two dominant uniform subareas),
applies §4.5's region detection + per-region MultiMap, and compares beam
queries along X/Y/Z against the X-major / Z-order / Hilbert leaf layouts.

Run:  python examples/earthquake_scan.py [octree-depth]
"""

import sys

import numpy as np

from repro.bench.reporting import render_table
from repro.datasets import EarthquakeDataset, build_leaf_layouts
from repro.disk import atlas_10k3


def main(depth: int = 6) -> None:
    print(f"building octree dataset (depth {depth}) ...")
    dataset = EarthquakeDataset(depth=depth)
    print(f"  elements: {dataset.n_elements}")
    print(f"  levels:   {dataset.octree.levels_histogram()}")
    print(f"  uniform regions: {len(dataset.regions)}; the top two cover "
          f"{dataset.region_coverage(2):.0%} of all elements")
    for r in dataset.regions[:4]:
        print(f"    origin={r.origin} shape={r.shape} "
              f"leaf-grid={r.grid} ({r.n_leaves} elements)")

    print("\nbuilding the four leaf layouts ...")
    layouts = build_leaf_layouts(dataset, atlas_10k3)

    rows = []
    for name, layout in layouts.items():
        drive = layout.volume.drive(layout.disk)
        row = [name]
        for axis, label in enumerate("XYZ"):
            rng = np.random.default_rng(11 + axis)
            vals = []
            for _ in range(8):
                leaves = dataset.beam_leaves(axis, rng)
                plan = layout.plan_for_leaves(leaves, for_beam=True)
                drive.randomize_position(rng)
                res = drive.service_runs(
                    plan.starts, plan.lengths,
                    policy=layout.policy, window=128,
                )
                vals.append(res.total_ms / leaves.size)
            row.append(f"{np.mean(vals):.3f}")
        rows.append(row)

    print("\nbeam queries, avg I/O ms per element (cf. paper Figure 7a)")
    print(render_table(["mapping", "X", "Y", "Z"], rows))
    print(
        "\nMultiMap streams X inside each uniform region and semi-"
        "sequentially\nfetches Y and Z; the linearised layouts pay"
        " rotational latency on\ntheir non-major axes."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
