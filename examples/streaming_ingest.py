#!/usr/bin/env python3
"""Writing at scale: streaming ingest through the bulk-load write path.

Observation-based applications append new points in bulk (§4.6: "MultiMap
can be used to allocate basic cubes to hold new points while preserving
spatial locality").  This scenario streams a seeded, clustered record
stream into every layout on a 2-disk sharded volume through the staged
ingest pipeline — per-disk write buffers, locality-preserving flushes,
replica-consistent writes — and compares write goodput (home-region
MB/s laid down on the primaries).

Expected shape: MultiMap packs each flush into whole basic cubes and
lays them down as a few long sequential track-group runs (zero
positioning cost beyond the initial seek), while the baselines scatter
cell-sized writes across their placements and pay near-full revolutions
between semi-adjacent blocks — so multimap's ingest MB/s beats every
baseline.  The adaptive loader samples the stream first and sizes cells
to the observed density, so clustered hot spots stop chaining into
overflow pages; with the background reorganisation those chains force
counted in (the §4.6 "expensive operation" a fixed plan defers), the
adaptive plan meets or beats the fixed one on a skewed stream.

Run:  python examples/streaming_ingest.py           (quick, < 1 s)
      python examples/streaming_ingest.py --full    (more points)
"""

import argparse
import sys
import time

from repro.ingest import render_ingest_sweep, run_ingest_sweep

SHAPE = (32, 8, 8)
LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
LOADERS = ("fixed", "adaptive")
QUICK = dict(n_points=2048, batch_points=256, flush_points=512)
FULL = dict(n_points=8192, batch_points=512, flush_points=1024)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="stream four times the points")
    args = parser.parse_args(argv)
    params = FULL if args.full else QUICK

    t0 = time.time()
    data = run_ingest_sweep(
        SHAPE,
        layouts=LAYOUTS,
        loaders=LOADERS,
        stream="clustered",
        n_shards=2,
        drive="minidrive",
        seed=42,
        reorganize=True,
        **params,
    )
    print(render_ingest_sweep(data))

    ok = True
    multimap = data["multimap"]
    for loader in LOADERS:
        mm = multimap[loader]["mb_per_s"]
        for layout in LAYOUTS:
            if layout == "multimap":
                continue
            base = data[layout][loader]["mb_per_s"]
            if mm < base:
                print(f"FAIL: multimap {mm:.3f} MB/s < "
                      f"{layout} {base:.3f} MB/s under {loader}")
                ok = False
    if multimap["adaptive"]["mb_per_s"] < multimap["fixed"]["mb_per_s"]:
        print("FAIL: adaptive loader slower than fixed on the "
              "clustered stream")
        ok = False
    if multimap["adaptive"]["overflow_points"] \
            > multimap["fixed"]["overflow_points"]:
        print("FAIL: adaptive loader overflowed more than fixed")
        ok = False

    elapsed = time.time() - t0
    print(f"\n{'OK' if ok else 'FAILED'}: multimap beats every baseline "
          f"under both loaders and adaptive >= fixed "
          f"({elapsed:.2f}s)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
