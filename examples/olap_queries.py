#!/usr/bin/env python3
"""OLAP workload: the paper's §5.5 TPC-H cube and queries Q1-Q5.

Generates a scaled TPC-H-like fact table, aggregates it into the 4-D cube
(OrderDate x ProductType x Nation x Quantity), rolls OrderDate up by 2 as
the paper does, then runs the five evaluation queries against a per-disk
chunk under all four layouts — each layout a :class:`repro.Dataset` clone
of the same chunk via ``with_layout``.

Run:  python examples/olap_queries.py
"""

import numpy as np

from repro import Dataset
from repro.bench.reporting import render_table
from repro.datasets import MAPPER_ORDER, OLAPCube, generate_fact_table, paper_olap_queries

CHUNK = (296, 38, 25, 25)  # scaled-down per-disk chunk (paper: 591x75x25x25)
SEED = 23
RUNS = 3


def main() -> None:
    print("generating TPC-H-like fact table (200k lineitems) ...")
    table = generate_fact_table(200_000)
    cube = OLAPCube.from_fact_table(table)
    rolled = cube.roll_up_orderdate(2)
    print(f"  raw cube    {cube.dims}: {cube.mean_points_per_cell:.4f} "
          f"points/cell, occupancy {cube.occupancy():.1%}")
    print(f"  rolled cube {rolled.dims}: {rolled.mean_points_per_cell:.4f} "
          f"points/cell (the paper's roll-up-by-2 on OrderDate)")

    print(f"\nplacing a {CHUNK} chunk with all four layouts ...")
    base = Dataset.create(CHUNK, layout=MAPPER_ORDER[0], drive="atlas10k3")

    queries = {
        "Q1  profit of product P, quantity Q, nation C, all dates",
        "Q2  ... on one date over all nations",
        "Q3  product P, nation C, all quantities, one year",
        "Q4  product P, one year, all nations and quantities",
        "Q5  10 products x 10 quantities x 10 nations x 20 days",
    }
    print("\n".join(sorted(queries)))

    rows = []
    for name in MAPPER_ORDER:
        ds = base if name == base.layout else base.with_layout(name)
        series = {}
        for run in range(RUNS):
            rng = np.random.default_rng(SEED + run)
            for qname, query in paper_olap_queries(CHUNK, rng).items():
                report = ds.run([query], rng=rng)
                series.setdefault(qname, []).append(
                    report.mean("ms_per_cell")
                )
        rows.append(
            [name]
            + [f"{np.mean(series[q]):.3f}" for q in ("Q1", "Q2", "Q3", "Q4", "Q5")]
        )

    print("\navg I/O ms per cell (cf. paper Figure 8)")
    print(render_table(["mapping", "Q1", "Q2", "Q3", "Q4", "Q5"], rows))
    print(
        "\nQ1 shows the two-orders-of-magnitude streaming gap between the"
        "\nlinearised curves and Naive/MultiMap; Q2 shows MultiMap's semi-"
        "\nsequential advantage on a non-major dimension."
    )


if __name__ == "__main__":
    main()
