#!/usr/bin/env python3
"""Scale-out: the multi-disk half of MultiMap's locality dividend.

The paper evaluates one disk and notes (§4.4, §5.1) that MultiMap
composes with existing declustering schemes over a multi-disk logical
volume.  This scenario adds that layer: `Dataset.with_shards(n)`
declusters the dataset's chunks across n identical member disks
(disk-modulo by default, so every beam of the chunk grid spreads
evenly) and queries execute scatter-gather — per-disk sub-plans in
parallel, per-drive head state preserved, query time = makespan over
drives.

Expected shape: beams along the split axis fan out across all drives,
so every layout gains some parallel speedup — but MultiMap keeps its
semi-sequential cost structure inside every chunk, so its throughput
is monotone non-decreasing in shard count AND stays ahead of every
baseline at every tested N, while naive stays bound by its unsplit
worst axis and the space-filling curves keep paying scattered
positioning on each member disk.

Run:  python examples/scale_out.py           (quick, < 1 s)
      python examples/scale_out.py --full    (adds 8 shards, more beams)
"""

import argparse
import sys
import time

from repro.shard import render_scale_sweep, run_scale_sweep

QUICK = dict(shape=(64, 64, 32), shard_counts=(1, 2, 4), n_beams=12)
FULL = dict(shape=(64, 64, 32), shard_counts=(1, 2, 4, 8), n_beams=20)
LAYOUTS = ("naive", "zorder", "hilbert", "multimap")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="more shard counts and beams")
    args = parser.parse_args(argv)
    params = FULL if args.full else QUICK

    t0 = time.time()
    data = run_scale_sweep(
        params["shape"],
        layouts=LAYOUTS,
        shard_counts=params["shard_counts"],
        n_beams=params["n_beams"],
        drive="atlas10k3",
        seed=42,
    )
    print(render_scale_sweep(data))
    print(f"\n[{time.time() - t0:.1f} s simulated-wall time]")

    # The claim this example demonstrates: multimap's throughput never
    # drops as disks are added, and it leads every layout at every N.
    ok = True
    counts = params["shard_counts"]
    mm = [data["multimap"][n]["mb_per_s"] for n in counts]
    for a, b, n in zip(mm, mm[1:], counts[1:]):
        if b < a:
            ok = False
            print(f"UNEXPECTED: multimap throughput dropped at "
                  f"{n} shards ({b:.3f} < {a:.3f} MB/s)")
    for n in counts:
        best_other = max(
            data[layout][n]["mb_per_s"]
            for layout in LAYOUTS if layout != "multimap"
        )
        if data["multimap"][n]["mb_per_s"] < best_other:
            ok = False
            print(f"UNEXPECTED: a baseline beats multimap at {n} shards")
    print("multimap: monotone non-decreasing throughput, ahead of every "
          "layout at every shard count"
          if ok else "multimap fell behind — see above")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
