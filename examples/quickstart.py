#!/usr/bin/env python3
"""Quickstart: map a 3-D dataset four ways and compare query I/O times.

Builds a simulated Maxtor Atlas 10k III, places a 216x64x64 cell dataset
with each of the paper's four layouts (Naive, Z-order, Hilbert, MultiMap),
and runs one beam query per dimension plus a 1% range query — the
miniature version of the paper's Figure 6.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench.reporting import render_table
from repro.datasets import build_chunk_mappers
from repro.disk import atlas_10k3
from repro.query import StorageManager, random_beam, random_range_cube

DIMS = (216, 64, 64)


def main() -> None:
    print(f"dataset: {DIMS} cells, one 512-byte block per cell")
    print(f"disk:    {atlas_10k3().name} (simulated)\n")

    mappers = build_chunk_mappers(DIMS, atlas_10k3)

    rows = []
    for name, (mapper, volume) in mappers.items():
        sm = StorageManager(volume)
        row = [name]
        for axis in range(3):
            rng = np.random.default_rng(42 + axis)
            vals = [
                sm.beam(mapper, q.axis, q.fixed, rng=rng).ms_per_cell
                for q in (random_beam(DIMS, axis, rng) for _ in range(5))
            ]
            row.append(f"{np.mean(vals):.3f}")
        rng = np.random.default_rng(7)
        q = random_range_cube(DIMS, 1.0, rng)
        row.append(f"{sm.range(mapper, q.lo, q.hi, rng=rng).total_ms:.0f}")
        rows.append(row)

    print(render_table(
        ["mapping", "beam dim0 (ms/cell)", "beam dim1", "beam dim2",
         "1% range (ms)"],
        rows,
    ))
    print(
        "\nExpected shape (paper, Figure 6): Naive and MultiMap stream"
        " Dim0;\nMultiMap's other dimensions cost ~one settle time per"
        " cell while Naive\npays rotational latency and the curves pay"
        " even more; MultiMap leads\nthe low-selectivity range query."
    )


if __name__ == "__main__":
    main()
