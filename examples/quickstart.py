#!/usr/bin/env python3
"""Quickstart: map a 3-D dataset four ways and compare query I/O times.

Builds a simulated Maxtor Atlas 10k III, places a 216x64x64 cell dataset
with each of the paper's four layouts (Naive, Z-order, Hilbert, MultiMap),
and runs one beam query per dimension plus a 1% range query — the
miniature version of the paper's Figure 6.

Everything goes through the :class:`repro.Dataset` façade; the five-line
version of this whole script is::

    from repro import Dataset
    ds = Dataset.create((216, 64, 64), layout="multimap", drive="atlas10k3")
    print(ds.random_beams(axis=1, n=5).run().render_table())

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Dataset
from repro.bench.reporting import render_table
from repro.datasets import MAPPER_ORDER

DIMS = (216, 64, 64)
BEAM_SEED = 42   # per-axis streams are BEAM_SEED + axis
RANGE_SEED = 7


def main() -> None:
    base = Dataset.create(DIMS, layout=MAPPER_ORDER[0], drive="atlas10k3")
    print(f"dataset: {DIMS} cells, one 512-byte block per cell")
    print(f"disk:    {base.volume.models[0].name} (simulated)\n")

    rows = []
    for name in MAPPER_ORDER:
        ds = base if name == base.layout else base.with_layout(name)
        row = [name]
        for axis in range(len(DIMS)):
            rng = np.random.default_rng(BEAM_SEED + axis)
            report = ds.random_beams(axis, n=5).run(rng=rng)
            row.append(f"{report.mean('ms_per_cell'):.3f}")
        rng = np.random.default_rng(RANGE_SEED)
        report = ds.range_selectivity(1.0).run(rng=rng)
        row.append(f"{report.mean('total_ms'):.0f}")
        rows.append(row)

    print(render_table(
        ["mapping", "beam dim0 (ms/cell)", "beam dim1", "beam dim2",
         "1% range (ms)"],
        rows,
    ))
    print(
        "\nExpected shape (paper, Figure 6): Naive and MultiMap stream"
        " Dim0;\nMultiMap's other dimensions cost ~one settle time per"
        " cell while Naive\npays rotational latency and the curves pay"
        " even more; MultiMap leads\nthe low-selectivity range query."
    )


if __name__ == "__main__":
    main()
