#!/usr/bin/env python3
"""High-dimensional mapping: the paper's §4.3 dimensionality bound.

With D adjacent blocks a disk supports N_max = 2 + log2(D) dimensions
(each inner dimension needs K_i >= 2).  Our simulated drives expose
D = 128, so a 9-D dataset still gets streaming on Dim0 and semi-sequential
access on all eight other dimensions — this example maps one and times a
beam along the ninth dimension, whose hops land exactly D tracks apart.

Run:  python examples/high_dimensional.py
"""

import numpy as np

from repro.bench.reporting import render_table
from repro.core import MultiMapMapper, max_dimensions
from repro.disk import atlas_10k3
from repro.lvm import LogicalVolume
from repro.query import StorageManager


def main() -> None:
    model = atlas_10k3()
    vol = LogicalVolume([model], depth=128)
    print(f"D = 128  =>  N_max = {max_dimensions(128)} dimensions\n")

    dims = (32,) + (2,) * 7 + (8,)   # 9-D, inner sides at the K_i = 2 limit
    mapper = MultiMapMapper(dims, vol, strategy="volume")
    print(f"dataset {dims}  ({mapper.n_cells} cells)")
    print(f"basic cube K = {mapper.K}")
    print(f"inner volume prod(K1..K7) = {int(np.prod(mapper.K[1:-1]))} "
          f"(= D: Equation 3 is tight)\n")

    drive = vol.drive(0)
    geom = model.geometry
    rows = []
    for axis in (1, 4, 7, 8):
        # position exactly on the first cell, then time the hop alone
        a = np.zeros((1, 9), dtype=np.int64)
        b = a.copy()
        b[0, axis] = 1
        la = int(mapper.lbns(a)[0])
        lb = int(mapper.lbns(b)[0])
        drive.reset(track=geom.track_of(la))
        drive.service(la)
        tm = drive.service(lb)
        step = int(np.prod(mapper.K[1:axis]))
        rows.append([
            f"dim{axis}",
            step,
            geom.track_of(lb) - geom.track_of(la),
            f"{tm.total_ms:.3f}",
            f"{tm.rotation_ms:.4f}",
        ])
    print("single hops between neighbouring cells "
          "(step = prod(K1..K_i-1))")
    print(render_table(
        ["axis", "step", "tracks apart", "hop ms", "rotational wait ms"],
        rows,
    ))
    sm = StorageManager(vol)
    res = sm.beam(mapper, 0, (0,) * 9, rng=np.random.default_rng(1))
    print(f"\ndim0 beam streams at {res.ms_per_cell:.3f} ms/cell")
    print(
        "Every hop costs one settle with zero rotational latency, even"
        "\nthe dim8 hop spanning all 128 adjacent tracks — the whole"
        "\nsettle region of the seek curve."
    )


if __name__ == "__main__":
    main()
