#!/usr/bin/env python3
"""Variable-size datasets: fill factor, overflow, reclamation (§4.6).

MultiMap targets static scientific data, but the paper sketches online
updates: cells loaded with a tunable fill factor, inserts spilling to
overflow pages when cells fill up, and reclamation by reorganisation.
This example walks that life cycle on a MultiMap-placed dataset and shows
the read-path cost of overflow chains.

Run:  python examples/online_updates.py
"""

import numpy as np

from repro.core import CellStore, MultiMapMapper
from repro.disk import atlas_10k3
from repro.lvm import LogicalVolume

DIMS = (64, 16, 16)


def show(store: CellStore, label: str) -> None:
    s = store.stats()
    print(f"  [{label}] points={s.n_points} mean_fill={s.mean_fill:.0%} "
          f"overflow_pages={s.overflow_pages} "
          f"underflow_cells={s.underflow_cells}")


def main() -> None:
    vol = LogicalVolume([atlas_10k3()], depth=128)
    mapper = MultiMapMapper(DIMS, vol)
    store = CellStore(
        mapper, vol, points_per_cell=16, fill_factor=0.75,
        reclaim_threshold=0.25,
    )
    rng = np.random.default_rng(0)

    print(f"dataset {DIMS}, 16 points per cell, fill factor 0.75\n")

    # initial bulk load: ~10 points per cell on average
    n_cells = mapper.n_cells
    coords = np.stack(
        [rng.integers(0, s, size=10 * n_cells) for s in DIMS], axis=1
    )
    spilled = store.bulk_load(coords)
    print(f"bulk load of {10 * n_cells} points "
          f"({spilled} spilled past the fill factor)")
    show(store, "after load")

    # online inserts concentrate on a hot spot -> overflow chains grow
    hot = (5, 3, 2)
    results = [store.insert(hot, 4) for _ in range(12)]
    print(f"\n12 inserts of 4 points each into cell {hot}: "
          f"{results.count('cell')} fit in the cell, "
          f"{results.count('overflow')} spilled")
    show(store, "after inserts")

    # the read path must visit the overflow chain
    plan = store.read_plan(np.array([hot]))
    print(f"reading cell {hot} now touches {plan.n_blocks} blocks "
          f"(1 cell + {plan.n_blocks - 1} overflow pages)")

    # deletions create underflow, tripping the reorganisation trigger
    cold = coords[0]
    store.delete(tuple(cold), 14)
    print(f"\nheavy deletion in cell {tuple(int(c) for c in cold)}")
    show(store, "after deletes")
    if store.needs_reorganization:
        freed = store.reorganize()
        print(f"reorganisation folded overflow back, freed {freed} pages")
        show(store, "after reorganisation")


if __name__ == "__main__":
    main()
