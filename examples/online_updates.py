#!/usr/bin/env python3
"""Variable-size datasets: fill factor, overflow, reclamation (§4.6).

MultiMap targets static scientific data, but the paper sketches online
updates: cells loaded with a tunable fill factor, inserts spilling to
overflow pages when cells fill up, and reclamation by reorganisation.
This example walks that life cycle through the :class:`repro.Dataset`
façade — the cell store lives behind the same object as the queries —
and shows the read-path cost of overflow chains.  The dataset's ``seed``
drives every random draw, so the run is fully reproducible.

Run:  python examples/online_updates.py
"""

import numpy as np

from repro import Dataset

DIMS = (64, 16, 16)


def show(ds: Dataset, label: str) -> None:
    s = ds.store_stats()
    print(f"  [{label}] points={s.n_points} mean_fill={s.mean_fill:.0%} "
          f"overflow_pages={s.overflow_pages} "
          f"underflow_cells={s.underflow_cells}")


def main() -> None:
    ds = Dataset.create(DIMS, layout="multimap", drive="atlas10k3",
                        seed=0).configure_store(
        points_per_cell=16, fill_factor=0.75, reclaim_threshold=0.25,
    )
    rng = ds.rng()

    print(f"dataset {DIMS}, 16 points per cell, fill factor 0.75\n")

    # initial bulk load: ~10 points per cell on average
    n_cells = ds.n_cells
    coords = np.stack(
        [rng.integers(0, s, size=10 * n_cells) for s in DIMS], axis=1
    )
    spilled = ds.bulk_load(coords)
    print(f"bulk load of {10 * n_cells} points "
          f"({spilled} spilled past the fill factor)")
    show(ds, "after load")

    # online inserts concentrate on a hot spot -> overflow chains grow
    hot = (5, 3, 2)
    results = [ds.insert(hot, 4) for _ in range(12)]
    print(f"\n12 inserts of 4 points each into cell {hot}: "
          f"{results.count('cell')} fit in the cell, "
          f"{results.count('overflow')} spilled")
    show(ds, "after inserts")

    # the read path must visit the overflow chain
    result = ds.read_cells(hot)
    print(f"reading cell {hot} now touches {result.n_blocks} blocks "
          f"(1 cell + {result.n_blocks - 1} overflow pages) "
          f"in {result.total_ms:.2f} ms")

    # deletions create underflow, tripping the reorganisation trigger
    cold = coords[0]
    ds.delete(tuple(cold), 14)
    print(f"\nheavy deletion in cell {tuple(int(c) for c in cold)}")
    show(ds, "after deletes")
    if ds.needs_reorganization:
        freed = ds.reorganize()
        print(f"reorganisation folded overflow back, freed {freed} pages")
        show(ds, "after reorganisation")


if __name__ == "__main__":
    main()
