#!/usr/bin/env python3
"""Explain & diagnosis: why is this query slow, and is the model right?

Three acts.  First, EXPLAIN inspects a beam query on MultiMap and
z-order without executing anything: the prepared plan's run structure,
the paper's sequential / semi-sequential / random classification of
every inter-run step, the predicted mechanical cost from the drive
model, and the dominant-cost class — MultiMap's primary beam streams
(transfer-bound) while z-order's shatters into single-block runs
(seek-bound).  Second, ANALYZE executes each query once under a
private trace and reconciles prediction against measurement phase by
phase — the summed model error at this scale is a few percent.  Third,
regression attribution diffs two runs and localises what moved.

EXPLAIN has zero side effects: the live drives never move, cache and
replica-routing state are snapshotted and restored, so a fleet of
explains leaves a later measured run byte-identical.

Run:  python examples/explain_diagnosis.py
"""

from repro.api import Dataset
from repro.explain import attribute_runs, render_attribution
from repro.query.workload import BeamQuery

SHAPE = (240, 12, 12)
BEAM = BeamQuery(0, (0, 6, 6))


def act_one_explain() -> None:
    print("=== EXPLAIN: predicted plan structure and cost ===")
    header = (f"{'layout':<10} {'runs':>5} {'blocks':>7} {'pattern':<16} "
              f"{'predicted':>10} {'dominant cost':<15}")
    print(header)
    print("-" * len(header))
    for layout in ("multimap", "zorder"):
        ds = Dataset.create(SHAPE, layout=layout, drive="minidrive",
                            seed=42)
        out = ds.explain(BEAM)
        plan, pred = out["plan"], out["predicted"]
        print(f"{layout:<10} {plan['runs']:>5} {plan['blocks']:>7} "
              f"{plan['pattern']:<16} {pred['makespan_ms']:>8.2f}ms "
              f"{pred['dominant_cost']:<15}")
    print()


def act_two_analyze() -> None:
    print("=== ANALYZE: prediction vs one measured execution ===")
    for layout in ("multimap", "zorder"):
        ds = Dataset.create(SHAPE, layout=layout, drive="minidrive",
                            seed=42)
        out = ds.explain(BEAM, analyze=True)
        rec = out["reconciliation"]
        total = rec["per_phase"]["total"]
        print(f"{layout:<10} predicted {total['predicted_ms']:>8.2f} ms"
              f"  measured {total['measured_ms']:>8.2f} ms"
              f"  rel error {100 * rec['summed_rel_error']:>5.2f}%"
              f"  cost_match={rec['cost_match']}")
    print()


def act_three_attribute() -> None:
    print("=== Attribution: what changed between two runs? ===")

    from repro.obs.trace_cmd import slowest_queries

    def run_report(layout):
        ds = Dataset.create(SHAPE, layout=layout,
                            drive="minidrive", seed=7)
        ds.with_telemetry(trace=True)
        report = ds.random_beams(axis=0, n=4).run()
        tracer = ds.telemetry.tracer
        return {
            "dataset": ds.describe(),
            "makespan_ms": report.total_ms,
            "phase_ms": {cat: round(ms, 3)
                         for cat, ms in tracer.phase_ms().items()},
            "slowest": slowest_queries(tracer, 3),
        }

    base = run_report("multimap")
    cur = run_report("zorder")
    out = attribute_runs(base, cur)
    print(render_attribution(out))


def main() -> None:
    act_one_explain()
    act_two_analyze()
    act_three_attribute()


if __name__ == "__main__":
    main()
