#!/usr/bin/env python3
"""Traffic storm: layouts under rising concurrent client counts.

The paper evaluates each mapping one query at a time on an idle drive.
This scenario asks the production question instead: when 1, 2, 4, 8
clients hammer the same volume with beam queries concurrently — slices
of different queries interleaving at the drive — which placement
sustains throughput and keeps tail latency down?

Every (layout, client count) cell replays the *same* seeded per-client
query streams (client k draws identical queries in every cell), so only
the placement differs.  Expected shape: MultiMap's semi-sequential
fetches keep per-query service time low, so it sustains at least the
throughput of the linearised layouts at every load while their p95/p99
latencies blow up with queueing.

Run:  python examples/traffic_storm.py           (quick, < 60 s)
      python examples/traffic_storm.py --full    (bigger sweep)
"""

import argparse
import sys
import time

from repro.traffic import QueryMix, render_storm, run_storm

QUICK = dict(
    shape=(64, 64, 32),
    client_counts=(1, 2, 4, 8),
    queries_per_client=12,
)
FULL = dict(
    shape=(128, 64, 64),
    client_counts=(1, 2, 4, 8, 16),
    queries_per_client=30,
)
LAYOUTS = ("naive", "zorder", "hilbert", "multimap")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="bigger dataset and sweep")
    args = parser.parse_args(argv)
    params = FULL if args.full else QUICK

    t0 = time.time()
    data = run_storm(
        params["shape"],
        layouts=LAYOUTS,
        client_counts=params["client_counts"],
        queries_per_client=params["queries_per_client"],
        mix=QueryMix.beams(1, 2),
        seed=42,
        slice_runs=64,
    )
    print(render_storm(data))
    print(f"\n[{time.time() - t0:.1f} s simulated-wall time]")

    # The claim this example demonstrates: MultiMap sustains at least the
    # throughput of every linearised layout at every tested client count.
    ok = True
    for n in params["client_counts"]:
        mm = data["multimap"][n]["throughput_qps"]
        for layout in LAYOUTS:
            if layout == "multimap":
                continue
            other = data[layout][n]["throughput_qps"]
            if mm < other:
                ok = False
                print(f"UNEXPECTED: {layout} beats multimap at "
                      f"{n} clients ({other:.2f} vs {mm:.2f} q/s)")
    print("multimap sustained >= every linearised layout at every load"
          if ok else "multimap fell behind — see above")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
