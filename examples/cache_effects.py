#!/usr/bin/env python3
"""Cache effects: the memory half of MultiMap's locality dividend.

The paper rewards locality only at seek time — every block still comes
off the platter.  This scenario adds the layer above: a shared buffer
pool with *track-aligned prefetch*, and a workload of overlapping beam
queries whose anchors cluster in one sub-region (the repeated,
overlapping access OLAP slices and earthquake replays produce).

Under MultiMap a beam along a non-streaming axis touches one block per
track, and rounding those fetches out to whole tracks pulls in exactly
the neighboring cells the next overlapping beams want — a small, fully
useful footprint.  Space-filling curves scatter the same beam across
the volume, so the same prefetch drags in whole tracks of far-away
cells: pollution that evicts the working set.  Expected shape: at every
tested pool capacity MultiMap's hit ratio is at least every baseline's,
and it strictly beats the best space-filling curve.

Run:  python examples/cache_effects.py           (quick, < 1 s)
      python examples/cache_effects.py --full    (bigger sweep)
"""

import argparse
import sys
import time

from repro.cache import render_cache_sweep, run_cache_sweep

QUICK = dict(
    shape=(120, 16, 16),
    capacities=(12288, 16384, 24576),
    assert_from=12288,
    n_beams=16,
    repeats=3,
)
# The full sweep also shows the thrash region: below ~12k blocks the
# working set of whole z-planes (distinct planes x K1 tracks x T)
# no longer fits, so MultiMap churns like everyone else and the curves
# cross.  The locality claim is asserted where the working set fits.
FULL = dict(
    shape=(120, 16, 16),
    capacities=(4096, 8192, 12288, 16384, 24576, 32768),
    assert_from=12288,
    n_beams=24,
    repeats=4,
)
LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
SFC = ("zorder", "hilbert")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="more capacities, beams, and repeats")
    args = parser.parse_args(argv)
    params = FULL if args.full else QUICK

    t0 = time.time()
    data = run_cache_sweep(
        params["shape"],
        layouts=LAYOUTS,
        capacities=params["capacities"],
        policy="lru",
        prefetch="track",
        n_beams=params["n_beams"],
        repeats=params["repeats"],
        axes=(1,),
        region_frac=0.4,
        drive="minidrive",
        seed=42,
    )
    print(render_cache_sweep(data))
    print(f"\n[{time.time() - t0:.1f} s simulated-wall time]")

    # The claim this example demonstrates: once the pool holds the
    # working set, MultiMap's hit ratio is >= every baseline's at every
    # tested capacity and strictly above the best space-filling curve.
    ok = True
    strict = False
    tested = [c for c in params["capacities"]
              if c >= params["assert_from"]]
    for cap in tested:
        mm = data["multimap"][cap]["hit_ratio"]
        best_sfc = max(data[s][cap]["hit_ratio"] for s in SFC)
        if mm > best_sfc:
            strict = True
        for layout in LAYOUTS:
            if layout == "multimap":
                continue
            other = data[layout][cap]["hit_ratio"]
            if mm < other:
                ok = False
                print(f"UNEXPECTED: {layout} beats multimap at capacity "
                      f"{cap} ({other:.1%} vs {mm:.1%})")
    if not strict:
        ok = False
        print("UNEXPECTED: multimap never strictly beat the best "
              "space-filling curve")
    print("multimap hit ratio >= every layout at every capacity, "
          "strictly above the best space-filling curve"
          if ok else "multimap fell behind — see above")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
