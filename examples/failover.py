#!/usr/bin/env python3
"""Surviving failures: degraded-mode service keeps the locality dividend.

A production array must survive member-disk failures.  This scenario
replicates every chunk twice across a 3-disk sharded volume
(`Dataset.with_shards(3).with_replication(2)`), runs a seeded
multi-client traffic storm, and kills one disk mid-run: queries in
flight on the dead disk transparently re-dispatch onto surviving
replicas, queries submitted afterwards avoid it at prepare time, and
every single query still completes — the traffic report's `failures`
meta records the schedule and re-dispatch totals.

Expected shape: replica chunks are laid out by the *same* mapping as
their primaries, so MultiMap keeps its semi-sequential cost structure
even when reads divert to replicas — its degraded-mode throughput stays
ahead of every baseline layout.  A rebuild model then streams the dead
disk's chunks from replicas onto a spare and reports the rebuild time
plus the interference foreground traffic would see.

Run:  python examples/failover.py           (quick, < 1 s)
      python examples/failover.py --full    (more clients and queries)
"""

import argparse
import sys
import time

from repro.api import Dataset
from repro.replica import plan_rebuild
from repro.traffic import QueryMix

SHAPE = (64, 64, 32)
LAYOUTS = ("naive", "zorder", "hilbert", "multimap")
N_DISKS = 3
K = 2
KILL_DISK = 1
KILL_AT_MS = 20.0
QUICK = dict(clients=2, queries=8)
FULL = dict(clients=4, queries=12)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="more clients and queries per client")
    args = parser.parse_args(argv)
    params = FULL if args.full else QUICK
    expected = params["clients"] * params["queries"]

    t0 = time.time()
    ok = True
    degraded = {}
    rebuild = None
    for layout in LAYOUTS:
        ds = Dataset.create(
            SHAPE, layout=layout, drive="atlas10k3", seed=42,
        ).with_shards(N_DISKS).with_replication(K)
        report = (
            ds.traffic()
            .clients(params["clients"], mix=QueryMix.beams(1, 2),
                     queries=params["queries"])
            .slice_runs(64)
            .kill(KILL_AT_MS, KILL_DISK)
            .run()
        )
        failures = report.meta["failures"]
        replicas = report.meta["replicas"]
        if len(report.traces) != expected:
            ok = False
            print(f"UNEXPECTED: {layout} completed "
                  f"{len(report.traces)}/{expected} queries")
        if not failures["schedule"]:
            ok = False
            print(f"UNEXPECTED: {layout} recorded no failure schedule")
        degraded[layout] = report.aggregate()["mb_per_s"]
        print(f"{layout:>9}: {degraded[layout]:6.3f} MB/s degraded, "
              f"{len(report.traces)}/{expected} queries, "
              f"{failures['redispatched_subs']} sub-plan(s) re-dispatched,"
              f" {replicas['stats']['replica_reads']} replica reads")
        if layout == "multimap":
            rebuild = plan_rebuild(ds.storage, KILL_DISK, throttle=0.75)

    inter = rebuild.interference()
    worst = max(v["foreground_dilation"] for v in inter.values())
    print(f"\nrebuild of disk {KILL_DISK} (multimap, throttle 0.75): "
          f"{rebuild.n_copies} chunk copies, {rebuild.n_blocks} blocks, "
          f"{rebuild.rebuild_ms:.0f} ms; worst foreground dilation "
          f"{worst:.2f}x across sources {sorted(inter)}")
    print(f"[{time.time() - t0:.1f} s simulated-wall time]")

    # The claim this example demonstrates: with one disk down, multimap
    # still beats every baseline layout on degraded-mode throughput.
    best_other = max(v for l, v in degraded.items() if l != "multimap")
    if degraded["multimap"] < best_other:
        ok = False
        print("UNEXPECTED: a baseline beats multimap in degraded mode")
    print("multimap: every query served through the failure, degraded "
          "throughput ahead of every baseline"
          if ok else "multimap fell behind — see above")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
