#!/usr/bin/env python3
"""Black-box drive characterisation (the paper's §3 substrate).

Extracts the adjacency-model parameters — settle time, settle region C,
adjacency depth D, semi-sequential hop cost — from a simulated drive using
only its public request interface, the way DIXtrac-style tools measured
real hardware.  Then demonstrates the semi-sequential access pattern the
parameters enable.

Run:  python examples/characterize_disk.py
"""

import numpy as np

from repro.bench.reporting import render_table
from repro.disk import (
    AdjacencyModel,
    DiskDrive,
    extract_profile,
    synthetic_disk,
)


def main() -> None:
    # a small drive keeps exhaustive sector probing quick
    model = synthetic_disk(
        "demo",
        settle_ms=1.1,
        settle_cylinders=6,
        surfaces=2,
        zone_specs=[(150, 84), (150, 64)],
        command_overhead_ms=0.1,
    )
    drive = DiskDrive(model)
    print(f"probing '{model.name}' through its request interface ...\n")
    profile = extract_profile(drive, samples=3)

    print("measured seek profile (cylinder distance -> ms):")
    pairs = [(m.distance_cylinders, m.seek_ms) for m in profile.seek_curve]
    print("  " + "  ".join(f"{d}:{t:.2f}" for d, t in pairs))
    print(f"\nextracted: settle = {profile.settle_ms:.2f} ms, "
          f"C = {profile.settle_cylinders} cylinders, "
          f"D = {profile.adjacency_depth} adjacent blocks")
    print(f"ground truth: settle = {model.mechanics.settle_ms} ms, "
          f"C = {model.mechanics.settle_cylinders}, "
          f"D = {model.geometry.surfaces * model.mechanics.settle_cylinders}")
    print(f"semi-sequential hop per zone: "
          f"{[f'{h:.2f} ms' for h in profile.hop_ms]}")

    # demonstrate the access patterns the adjacency model distinguishes
    adj = AdjacencyModel.for_model(model)
    n = 120
    rows = []

    drive = DiskDrive(model)
    path = adj.semi_sequential_path(0, n, 1)
    rows.append(["semi-sequential",
                 f"{drive.service_lbns(path, policy='fifo').total_ms / n:.3f}"])

    rng = np.random.default_rng(5)
    geom = model.geometry
    drive = DiskDrive(model)
    tracks = geom.track_of(0) + rng.integers(1, adj.D, size=n)
    sectors = rng.integers(0, geom.track_length(0), size=n)
    nearby = geom.lbns_from(tracks, sectors)
    rows.append(["nearby (within D tracks)",
                 f"{drive.service_lbns(nearby, policy='fifo').total_ms / n:.3f}"])

    drive = DiskDrive(model)
    rand = rng.integers(0, geom.n_lbns, size=n)
    rows.append(["random",
                 f"{drive.service_lbns(rand, policy='fifo').total_ms / n:.3f}"])

    print("\naccess patterns, ms per block (cf. paper Figure 1b):")
    print(render_table(["pattern", "ms/block"], rows))


if __name__ == "__main__":
    main()
