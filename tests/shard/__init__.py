"""Package marker: keeps these module names (test_parity, test_executor,
test_map) from colliding with the same-named suites of tests/traffic and
tests/query under pytest's rootdir-based module naming."""
