"""The scale-out sweep: speedup-vs-disks curves per layout."""

import json

import pytest

from repro.shard import render_scale_sweep, run_scale_sweep, scale_beams


@pytest.fixture(scope="module")
def sweep():
    """One small sweep shared by the checks below (minidrive keeps the
    module fast; the acceptance-grade defaults run in the smoke job)."""
    return run_scale_sweep(
        (24, 12, 12),
        layouts=("naive", "multimap"),
        shard_counts=(1, 2, 4),
        n_beams=6,
        drive="minidrive",
        seed=42,
    )


class TestSweep:
    def test_layout_grid_complete(self, sweep):
        for layout in ("naive", "multimap"):
            assert set(sweep[layout]) == {1, 2, 4}
            for n, cell in sweep[layout].items():
                assert cell["n_shards"] == n
                assert cell["total_ms"] > 0
                assert cell["mb_per_s"] > 0

    def test_speedup_normalised_to_first_count(self, sweep):
        for layout in ("naive", "multimap"):
            assert sweep[layout][1]["speedup"] == pytest.approx(1.0)

    def test_same_blocks_every_cell(self, sweep):
        """Identical queries per cell: only timing may differ."""
        blocks = {
            (layout, n): sweep[layout][n]["served_blocks"]
            for layout in ("naive", "multimap")
            for n in (1, 2, 4)
        }
        assert len(set(blocks.values())) == 1

    def test_meta_records_parameters(self, sweep):
        meta = sweep["meta"]
        assert meta["shard_counts"] == [1, 2, 4]
        assert meta["strategy"] == "disk_modulo"
        assert meta["split_axis"] == 1
        json.dumps(sweep)

    def test_render_tables(self, sweep):
        out = render_scale_sweep(sweep)
        assert "throughput (MB/s) vs shard count" in out
        assert "speedup" in out
        assert "multimap" in out

    def test_explicit_chunk_shape_used_at_every_count(self):
        data = run_scale_sweep(
            (24, 12, 12),
            layouts=("multimap",),
            shard_counts=(1, 2),
            chunk_shape=(24, 6, 6),
            n_beams=4,
            drive="minidrive",
            seed=7,
        )
        assert data["meta"]["chunk_shape"] == [24, 6, 6]
        assert data["multimap"][2]["total_ms"] > 0

    def test_custom_axes_recorded(self):
        data = run_scale_sweep(
            (24, 12, 12),
            layouts=("naive",),
            shard_counts=(1,),
            n_beams=2,
            axes=(2,),
            drive="minidrive",
            seed=7,
        )
        assert data["meta"]["axes"] == [2]


class TestAcceptanceCurve:
    """The acceptance-grade claim at the bench defaults (atlas10k3):
    multimap throughput is monotone non-decreasing in shard count and
    leads every layout at every tested N."""

    @pytest.fixture(scope="class")
    def default_sweep(self):
        return run_scale_sweep((64, 64, 32), shard_counts=(1, 2, 4),
                               n_beams=12, seed=42)

    def test_multimap_monotone_non_decreasing(self, default_sweep):
        tp = [default_sweep["multimap"][n]["mb_per_s"] for n in (1, 2, 4)]
        assert all(b >= a for a, b in zip(tp, tp[1:]))

    def test_multimap_leads_at_every_shard_count(self, default_sweep):
        for n in (1, 2, 4):
            mm = default_sweep["multimap"][n]["mb_per_s"]
            for layout in ("naive", "zorder", "hilbert"):
                assert mm >= default_sweep[layout][n]["mb_per_s"]


class TestScaleBeams:
    def test_deterministic_and_cycled(self):
        a = scale_beams((16, 8, 8), n_beams=6, seed=5)
        b = scale_beams((16, 8, 8), n_beams=6, seed=5)
        assert a == b
        axes = [q.axis for q in a]
        assert axes == [1, 2, 1, 2, 1, 2]

    def test_custom_axes(self):
        qs = scale_beams((16, 8, 8), n_beams=4, axes=(0, 2), seed=1)
        assert [q.axis for q in qs] == [0, 2, 0, 2]
