"""ShardMap construction, chunk coverage, and grid wiring."""

import numpy as np
import pytest

from repro.datasets import GridDataset
from repro.errors import AllocationError
from repro.lvm import LogicalVolume, STRATEGIES
from repro.shard import ShardMap, ShardedStorageManager
from repro.api.registry import LAYOUTS


class TestBuild:
    def test_default_last_axis_slabs(self):
        smap = ShardMap.build((24, 12, 12), 4)
        assert smap.grid == (1, 1, 4)
        assert smap.n_chunks == 4
        assert [c.shape for c in smap.chunks] == [(24, 12, 3)] * 4
        assert sorted(c.disk for c in smap.chunks) == [0, 1, 2, 3]

    def test_one_shard_single_chunk(self):
        smap = ShardMap.build((24, 12, 12), 1)
        assert smap.n_chunks == 1
        assert smap.chunks[0].shape == (24, 12, 12)
        assert smap.chunks[0].disk == 0

    def test_explicit_chunk_shape(self):
        smap = ShardMap.build((24, 12, 12), 2, chunk_shape=(12, 6, 6))
        assert smap.grid == (2, 2, 2)
        assert smap.n_chunks == 8
        assert sum(c.n_cells for c in smap.chunks) == 24 * 12 * 12

    def test_chunks_cover_every_cell_exactly_once(self):
        dims = (10, 7, 5)
        smap = ShardMap.build(dims, 3, chunk_shape=(4, 3, 2))
        seen = np.zeros(dims, dtype=np.int64)
        for c in smap.chunks:
            sl = tuple(
                slice(o, o + s) for o, s in zip(c.origin, c.shape)
            )
            seen[sl] += 1
        assert (seen == 1).all()

    def test_align_rounds_split_axis_up(self):
        # split axis 2 into 3 -> raw 4, align granule 3 -> 6
        smap = ShardMap.build((24, 12, 12), 3, align=(8, 4, 3))
        assert smap.chunks[0].shape[2] == 6

    def test_align_ignores_full_axes(self):
        smap = ShardMap.build((24, 12, 12), 2, align=(5, 5, 3))
        # axes 0/1 are unsplit: stay at the full dim despite alignment
        assert smap.chunks[0].shape[:2] == (24, 12)

    def test_short_axis_uses_fewer_disks(self):
        smap = ShardMap.build((8, 4, 2), 4)
        assert smap.n_chunks == 2
        assert max(c.disk for c in smap.chunks) <= 3

    def test_rejects_zero_disks(self):
        with pytest.raises(AllocationError):
            ShardMap.build((8, 4, 4), 0)

    def test_unknown_strategy_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            ShardMap.build((8, 4, 4), 2, strategy="nope")


class TestFromChunks:
    def test_grid_dataset_wiring(self):
        """The chunker's per-chunk disk assignment (historically dropped)
        is the shard map's placement."""
        ds = GridDataset((16, 8, 8))
        chunks = ds.chunks((8, 4, 4), n_disks=2, strategy="disk_modulo")
        smap = ShardMap.from_chunks((16, 8, 8), chunks, 2,
                                    strategy="disk_modulo")
        assert smap.grid == (2, 2, 2)
        assert [c.disk for c in smap.chunks] == \
            [c.disk for c in chunks]

    def test_grid_dataset_shard_map_method(self):
        smap = GridDataset((16, 8, 8)).shard_map((8, 8, 8), n_disks=2)
        assert smap.n_disks == 2
        assert smap.n_chunks == 2
        assert smap.strategy == "round_robin"

    def test_rejects_out_of_range_disk(self):
        ds = GridDataset((16, 8, 8))
        # 4 chunks assigned round-robin over 4 disks...
        chunks = ds.chunks((4, 8, 8), n_disks=4)
        assert max(c.disk for c in chunks) == 3
        # ...cannot be mounted on a 2-disk map
        with pytest.raises(AllocationError):
            ShardMap.from_chunks((16, 8, 8), chunks, 2)

    def test_rejects_partial_coverage(self):
        ds = GridDataset((16, 8, 8))
        chunks = ds.chunks((8, 8, 8), n_disks=2)[:1]
        with pytest.raises(AllocationError):
            ShardMap.from_chunks((16, 8, 8), chunks, 2)


class TestLookups:
    def test_chunk_counts_and_chunks_for_disk(self):
        smap = ShardMap.build((24, 12, 12), 3)
        counts = smap.chunk_counts()
        assert len(counts) == 3
        assert sum(counts) == smap.n_chunks
        for d in range(3):
            assert len(smap.chunks_for_disk(d)) == counts[d]

    def test_intersections_match_brute_force(self):
        dims = (10, 6, 8)
        smap = ShardMap.build(dims, 2, chunk_shape=(5, 3, 3))
        lo, hi = (2, 1, 3), (9, 6, 7)
        cells = 0
        for chunk, llo, lhi in smap.intersections(lo, hi):
            for d in range(3):
                assert 0 <= llo[d] < lhi[d] <= chunk.shape[d]
            cells += int(np.prod([b - a for a, b in zip(llo, lhi)]))
        expected = int(np.prod([b - a for a, b in zip(lo, hi)]))
        assert cells == expected

    def test_describe_is_json_friendly(self):
        import json

        smap = ShardMap.build((24, 12, 12), 2)
        out = smap.describe()
        json.dumps(out)
        assert out["n_shards"] == 2
        assert out["chunk_counts"] == [1, 1]


class TestVolumeConsistency:
    def test_manager_rejects_disk_count_mismatch(self, small_model):
        """n_disks is validated against the volume instead of silently
        ignored."""
        smap = ShardMap.build((8, 4, 4), 4)
        volume = LogicalVolume([small_model, small_model])
        with pytest.raises(AllocationError):
            ShardedStorageManager(
                volume, smap, LAYOUTS.get("naive")
            )

    def test_strategy_registry_lists_builtins(self):
        names = STRATEGIES.names()
        assert {"round_robin", "disk_modulo", "cube_aligned"} <= set(names)
        assert STRATEGIES.get("cube_aligned").align_cubes
        assert not STRATEGIES.get("round_robin").needs_grid
