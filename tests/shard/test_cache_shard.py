"""Shared vs per-shard buffer-pool composition on sharded datasets."""

import pytest

from repro.api import Dataset
from repro.cache import BufferPool, ShardedBufferPool
from repro.errors import CacheError, DatasetError

SHAPE = (24, 12, 12)


class TestShardedBufferPool:
    def test_routes_by_disk(self):
        pool = ShardedBufferPool(3, 64, prefetch="none")
        assert pool.active
        assert pool.capacity == 3 * 64
        import numpy as np

        from repro.mappings.base import RequestPlan

        plan = RequestPlan(np.array([0]), np.array([4]))
        pool.admit_plan(None, 2, plan)
        assert pool.pools[2].occupancy == 4
        assert pool.pools[0].occupancy == 0
        assert pool.occupancy == 4

    def test_invalidate_is_per_shard(self):
        import numpy as np

        from repro.mappings.base import RequestPlan

        pool = ShardedBufferPool(2, 64)
        plan = RequestPlan(np.array([0]), np.array([4]))
        pool.admit_plan(None, 0, plan)
        pool.admit_plan(None, 1, plan)
        pool.invalidate(0, np.arange(4))
        assert pool.pools[0].occupancy == 0
        assert pool.pools[1].occupancy == 4
        pool.clear()
        assert pool.occupancy == 0

    def test_aggregate_stats_sum_members(self):
        import numpy as np

        from repro.mappings.base import RequestPlan

        pool = ShardedBufferPool(2, 64)
        plan = RequestPlan(np.array([0]), np.array([4]))
        pool.admit_plan(None, 0, plan)
        miss, hits, _ = pool.filter_plan(0, plan)
        assert hits == 4 and miss.n_runs == 0
        pool.filter_plan(1, plan)  # cold member: all miss
        agg = pool.stats
        assert agg.accesses == 8
        assert agg.hits == 4 and agg.misses == 4
        assert agg.hits + agg.misses == agg.accesses

    def test_out_of_range_disk_rejected(self):
        pool = ShardedBufferPool(2, 16)
        with pytest.raises(CacheError):
            pool.filter_plan(2, None)
        with pytest.raises(CacheError):
            ShardedBufferPool(0, 16)

    def test_describe_matches_pool_surface(self):
        import json

        pool = ShardedBufferPool(2, 16, policy="slru", prefetch="track")
        out = pool.describe()
        json.dumps(out)
        assert out["scope"] == "per_shard"
        assert out["capacity_blocks"] == 32
        assert out["policy"] == "slru" or "slru" in str(out["policy"])
        assert len(out["pools"]) == 2
        assert "hit_ratio" in out["stats"]


class TestDatasetComposition:
    def test_shared_pool_spans_shards(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=5).with_shards(3).with_cache(
            4096, prefetch="track",
        )
        assert isinstance(ds.cache, BufferPool)
        ds.random_beams(axis=2, n=4).repeats(2).run()
        assert ds.cache.stats.hits > 0

    def test_per_shard_pools(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=5).with_shards(3).with_cache(
            2048, prefetch="track", scope="per_shard",
        )
        assert isinstance(ds.cache, ShardedBufferPool)
        assert ds.cache.n_disks == 3
        rep = ds.random_beams(axis=2, n=4).repeats(2).run()
        assert ds.cache.stats.hits > 0
        assert rep.meta["cache"]["scope"] == "per_shard"

    def test_with_shards_reinstates_cache_spec(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=5).with_cache(
            1024, scope="per_shard",
        ).with_shards(4)
        assert isinstance(ds.cache, ShardedBufferPool)
        assert ds.cache.n_disks == 4

    def test_invalid_scope_rejected(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        with pytest.raises(DatasetError):
            ds.with_cache(1024, scope="nope")

    def test_rejected_cache_config_leaves_spec_unchanged(self,
                                                         small_model):
        """A pool constructor failure must not commit a stale spec."""
        from repro.errors import ReproError

        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        with pytest.raises(ReproError):
            ds.with_cache(1024, service_ms_per_block=-1)
        assert ds.cache is None
        assert "cache" not in ds.describe()
        # and the dataset still shards cleanly afterwards
        ds.with_shards(2)
        assert ds.cache is None

    def test_per_shard_capacity_zero_detaches(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=5).with_shards(2).with_cache(
            0, scope="per_shard",
        )
        assert ds.cache is None
