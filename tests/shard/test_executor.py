"""Scatter-gather semantics of the sharded storage manager."""

import numpy as np
import pytest

from repro.api import Dataset
from repro.errors import DatasetError, QueryError
from repro.query.scatter import ShardedPrepared, subplans
from repro.query.workload import BeamQuery, RangeQuery

SHAPE = (24, 12, 12)


def make(small_model, layout="multimap", n=4, **kw):
    return Dataset.create(SHAPE, layout=layout, drive=small_model,
                          seed=17).with_shards(n, **kw)


class TestPrepare:
    def test_cross_shard_beam_fans_out(self, small_model):
        ds = make(small_model, n=4)
        prepared = ds.storage.prepare(
            ds.mapper, BeamQuery(axis=2, fixed=(0, 3, 0))
        )
        assert isinstance(prepared, ShardedPrepared)
        assert len(prepared.subs) == 4
        assert sorted(prepared.disks) == [0, 1, 2, 3]
        assert prepared.n_cells == SHAPE[2]

    def test_single_shard_beam_stays_local(self, small_model):
        ds = make(small_model, n=4)
        prepared = ds.storage.prepare(
            ds.mapper, BeamQuery(axis=1, fixed=(0, 0, 5))
        )
        # fixed[2]=5 lives in exactly one last-axis slab
        assert len(prepared.subs) == 1
        assert prepared.n_cells == SHAPE[1]

    def test_range_cells_partition_across_chunks(self, small_model):
        ds = make(small_model, n=3)
        q = RangeQuery((2, 3, 1), (20, 9, 11))
        prepared = ds.storage.prepare(ds.mapper, q)
        assert prepared.n_cells == q.n_cells()
        assert sum(s.n_cells for s in prepared.subs) == q.n_cells()

    def test_beam_blocks_conserved_vs_unsharded(self, small_model):
        """Beams fetch exactly their cells (merge_gap=0), so block
        counts are invariant under sharding; range plans may read
        through different gap patterns per chunk shape, so only the
        cell totals are pinned for them (see the partition test)."""
        plain = Dataset.create(SHAPE, layout="multimap",
                               drive=small_model, seed=17)
        sharded = make(small_model, n=4)
        q = BeamQuery(axis=2, fixed=(1, 2, 0))
        p1 = plain.storage.prepare(plain.mapper, q)
        p2 = sharded.storage.prepare(sharded.mapper, q)
        assert p1.n_blocks == p2.n_blocks == SHAPE[2]

    def test_invalid_queries_raise(self, small_model):
        ds = make(small_model, n=2)
        with pytest.raises(QueryError):
            ds.storage.prepare(ds.mapper, BeamQuery(axis=9, fixed=(0,) * 3))
        with pytest.raises(QueryError):
            ds.storage.prepare(
                ds.mapper, RangeQuery((0, 0, 0), (25, 12, 12))
            )
        with pytest.raises(QueryError):
            ds.storage.prepare(ds.mapper, object())


class TestExecute:
    def test_makespan_is_max_over_disks(self, small_model):
        from repro.query.scatter import scatter_execute

        ds = make(small_model, n=4)
        prepared = ds.storage.prepare(
            ds.mapper, BeamQuery(axis=2, fixed=(3, 4, 0))
        )
        result, per_disk = scatter_execute(
            ds.storage, prepared, rng=np.random.default_rng(1)
        )
        assert len(per_disk) == 4
        busiest = max(d["busy_ms"] for d in per_disk.values())
        assert result.total_ms == pytest.approx(busiest)
        assert result.total_ms < sum(
            d["busy_ms"] for d in per_disk.values()
        )
        assert result.n_blocks == sum(
            d["blocks"] for d in per_disk.values()
        )

    def test_cross_shard_beam_speeds_up(self, small_model):
        """A beam along the split axis is faster on 4 shards than 1."""
        def time_beam(n):
            ds = Dataset.create(SHAPE, layout="multimap",
                                drive=small_model, seed=29).with_shards(n)
            rng = np.random.default_rng(5)
            res = ds.storage.run_query(
                ds.mapper, BeamQuery(axis=2, fixed=(0, 0, 0)), rng=rng
            )
            return res.total_ms

        assert time_beam(4) < time_beam(1)

    def test_multiple_chunks_per_disk(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=3).with_shards(
            2, chunk_shape=(24, 12, 3),
        )
        assert ds.shard_map.n_chunks == 4
        assert ds.shard_map.chunk_counts() == [2, 2]
        rep = ds.random_beams(axis=2, n=3).run()
        assert len(rep) == 3
        assert rep.meta["shards"]["n_chunks"] == 4

    def test_shard_stats_accumulate(self, small_model):
        ds = make(small_model, n=3)
        ds.random_beams(axis=2, n=4).run()
        stats = ds.storage.shard_stats
        assert stats.n_queries == 4
        assert sum(stats.queries) >= 4
        assert 0.0 < stats.parallel_efficiency <= 1.0
        ds.storage.reset_shard_stats()
        assert ds.storage.shard_stats.n_queries == 0

    def test_beam_range_entry_points(self, small_model):
        ds = make(small_model, n=2)
        rng = np.random.default_rng(3)
        res = ds.storage.beam(ds.mapper, 2, (0, 1, 0), rng=rng)
        assert res.n_cells == SHAPE[2]
        res = ds.storage.range(ds.mapper, (0, 0, 0), (4, 4, 8), rng=rng)
        assert res.n_cells == 4 * 4 * 8

    def test_plain_prepared_falls_through(self, small_model):
        """A plain PreparedQuery on the sharded manager takes the
        one-shot single-disk path."""
        ds = make(small_model, n=2)
        chunk_mapper = ds.mapper.chunk_mappers[0]
        plan = chunk_mapper.beam_plan(1, (0, 0, 0))
        prepared = ds.storage.prepare_plan(chunk_mapper, plan, SHAPE[1])
        res = ds.storage.execute_prepared(
            prepared, rng=np.random.default_rng(1)
        )
        assert res.n_cells == SHAPE[1]

    def test_subplans_helper(self, small_model):
        plain = Dataset.create(SHAPE, layout="naive", drive=small_model)
        p = plain.storage.prepare(
            plain.mapper, BeamQuery(axis=1, fixed=(0, 0, 0))
        )
        assert subplans(p) == (p,)


class TestDatasetIntegration:
    def test_with_layout_clone_keeps_sharding(self, small_model):
        ds = make(small_model, n=3)
        clone = ds.with_layout("naive")
        assert clone.n_shards == 3
        assert clone.shard_map.n_disks == 3
        assert clone.volume.n_disks == 3

    def test_with_layout_clone_keeps_identical_chunk_grid(self,
                                                          small_model):
        """Fairness: clones compare layouts on the SAME declustering,
        even when one layout's cube alignment shaped the default."""
        for src, dst in (("naive", "multimap"), ("multimap", "naive")):
            ds = Dataset.create((24, 8, 200), layout=src,
                                drive=small_model, seed=1).with_shards(
                2, strategy="cube_aligned",
            )
            clone = ds.with_layout(dst)
            assert clone.shard_map.grid == ds.shard_map.grid
            assert [c.disk for c in clone.shard_map.chunks] == \
                [c.disk for c in ds.shard_map.chunks]

    def test_store_rejected_on_sharded(self, small_model):
        ds = make(small_model, n=2)
        with pytest.raises(DatasetError):
            _ = ds.store
        with pytest.raises(DatasetError):
            ds.insert((0, 0, 0))
        with pytest.raises(DatasetError):
            ds.bulk_load(np.zeros((1, 3), dtype=np.int64))

    def test_shard_after_store_rejected(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        ds.insert((1, 2, 3))
        with pytest.raises(DatasetError):
            ds.with_shards(2)

    def test_invalid_shard_count(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        with pytest.raises(DatasetError):
            ds.with_shards(0)

    def test_failed_with_shards_leaves_dataset_intact(self, small_model):
        """A rejected call must not half-mutate the stack: volume,
        storage, and mapper all stay the originals."""
        from repro.errors import ReproError

        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=2)
        volume, storage, mapper = ds.volume, ds.storage, ds.mapper
        with pytest.raises(ReproError):
            ds.with_shards(2, strategy="typo")
        assert ds.volume is volume
        assert ds.storage is storage
        assert ds.mapper is mapper
        assert not ds.is_sharded
        # the untouched stack still answers queries
        assert ds.random_beams(axis=1, n=1).run().total_ms > 0

    def test_hand_wired_pool_not_silently_dropped(self, small_model):
        """A pool wired directly into storage.cache (the escape hatch
        with_cache documents) cannot be carried across the rebuild —
        refuse loudly instead of running the experiment uncached."""
        from repro.cache import BufferPool

        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model)
        ds.storage.cache = BufferPool(1024)
        with pytest.raises(DatasetError):
            ds.with_shards(2)
        # with_cache-managed specs still carry over fine
        ds.storage.cache = None
        ds.with_cache(1024).with_shards(2)
        assert ds.cache is not None

    def test_cube_aligned_keeps_basic_cubes_whole(self, small_model):
        """cube_aligned splits on an axis with real cube boundaries and
        every chunk boundary lands on a multiple of the cube side."""
        ds = Dataset.create((24, 8, 200), layout="multimap",
                            drive=small_model, seed=1)
        K = ds._basic_cube_sides()
        ds.with_shards(2, strategy="cube_aligned")
        assert ds.shard_map.n_chunks > 1  # a real split happened
        split_axes = [
            d for d in range(3) if ds.shard_map.grid[d] > 1
        ]
        for axis in split_axes:
            assert K[axis] < ds.shape[axis]
            for chunk in ds.shard_map.chunks:
                assert chunk.origin[axis] % K[axis] == 0

    def test_cube_aligned_single_cube_stays_whole(self):
        """When every basic cube spans its axis (the whole dataset is
        one cube column), cube_aligned refuses to split — one chunk
        beats a broken cube."""
        ds = Dataset.create((24, 8), layout="multimap",
                            drive="minidrive", seed=1)
        K = ds._basic_cube_sides()
        assert all(k >= s for k, s in zip(K, ds.shape))
        ds.with_shards(2, strategy="cube_aligned")
        assert ds.shard_map.n_chunks == 1

    def test_seeded_runs_reproducible(self, small_model):
        def run():
            return make(small_model, n=3).random_beams(axis=2, n=4) \
                .run().to_json()

        assert run() == run()
