"""Parity: ``with_shards(1)`` is bit-identical to the unsharded stack.

The acceptance bar of the shard subsystem: a 1-shard dataset runs the
full shard machinery (shard map, chunk mapper, scatter-gather executor,
multi-queue traffic path) yet must produce bit-identical results and
JSON to the unsharded stack across the executor, batch ``Report`` JSON,
and traffic JSON.  Every comparison below is ``==`` on full JSON or
dataclass fields, no tolerances — the same bar the capacity-0 cache
parity holds.
"""

import numpy as np
import pytest

from repro.api import Dataset
from repro.query.workload import random_beam, random_range_cube
from repro.traffic import QueryMix

LAYOUTS = ["multimap", "naive", "zorder", "hilbert"]
SHAPE = (24, 12, 12)


@pytest.mark.parametrize("layout", LAYOUTS)
class TestBatchParity:
    def test_report_json_identical(self, small_model, layout):
        plain = Dataset.create(SHAPE, layout=layout, drive=small_model,
                               seed=11)
        r_plain = plain.query().random_beams(axis=1, n=5) \
                       .range_selectivity(5.0).run()
        sharded = Dataset.create(SHAPE, layout=layout, drive=small_model,
                                 seed=11).with_shards(1)
        r_sharded = sharded.query().random_beams(axis=1, n=5) \
                           .range_selectivity(5.0).run()
        assert r_plain.to_json() == r_sharded.to_json()

    def test_executor_results_identical(self, small_model, layout):
        """Query-by-query QueryResult equality through the managers."""
        ds1 = Dataset.create(SHAPE, layout=layout, drive=small_model)
        ds2 = Dataset.create(SHAPE, layout=layout,
                             drive=small_model).with_shards(1)
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        for _ in range(3):
            q1 = random_beam(SHAPE, 1, rng1)
            q2 = random_beam(SHAPE, 1, rng2)
            assert ds1.storage.run_query(ds1.mapper, q1, rng=rng1) \
                == ds2.storage.run_query(ds2.mapper, q2, rng=rng2)
        for _ in range(2):
            q1 = random_range_cube(SHAPE, 8.0, rng1)
            q2 = random_range_cube(SHAPE, 8.0, rng2)
            assert ds1.storage.run_query(ds1.mapper, q1, rng=rng1) \
                == ds2.storage.run_query(ds2.mapper, q2, rng=rng2)

    def test_round_robin_strategy_also_identical(self, small_model,
                                                 layout):
        plain = Dataset.create(SHAPE, layout=layout, drive=small_model,
                               seed=3)
        sharded = Dataset.create(
            SHAPE, layout=layout, drive=small_model, seed=3,
        ).with_shards(1, strategy="round_robin")
        batch = plain.query().random_beams(axis=2, n=4)
        assert batch.run().to_json() == \
            sharded.random_beams(axis=2, n=4).run().to_json()


class TestTrafficParity:
    @pytest.mark.parametrize("layout", ["multimap", "zorder"])
    def test_seeded_traffic_json_identical(self, small_model, layout):
        def run(ds):
            return (
                ds.traffic()
                .clients(3, mix=QueryMix.beams(1, 2), queries=6)
                .slice_runs(8)
                .run()
            )

        plain = Dataset.create(SHAPE, layout=layout, drive=small_model,
                               seed=9)
        sharded = Dataset.create(SHAPE, layout=layout, drive=small_model,
                                 seed=9).with_shards(1)
        assert run(plain).to_json() == run(sharded).to_json()

    def test_one_shot_slice_none_parity(self, small_model):
        """slice_runs(None): whole-query batches, still identical."""
        def run(ds):
            return (
                ds.traffic()
                .clients(1, mix=QueryMix.beams(1), queries=6)
                .slice_runs(None)
                .run()
            )

        plain = Dataset.create(SHAPE, layout="multimap",
                               drive=small_model, seed=13)
        sharded = Dataset.create(SHAPE, layout="multimap",
                                 drive=small_model, seed=13).with_shards(1)
        assert run(plain).to_json() == run(sharded).to_json()


class TestCachedParity:
    def test_cached_one_shard_identical(self, small_model):
        """An active pool composes with 1-shard parity bit-for-bit."""
        def build(shard):
            ds = Dataset.create(SHAPE, layout="multimap",
                                drive=small_model, seed=21)
            if shard:
                ds.with_shards(1)
            return ds.with_cache(2048, policy="slru", prefetch="track")

        r_plain = build(False).query().random_beams(axis=1, n=6) \
                              .repeats(2).run()
        r_shard = build(True).query().random_beams(axis=1, n=6) \
                             .repeats(2).run()
        assert r_plain.to_json() == r_shard.to_json()


class TestMetaGating:
    def test_one_shard_meta_has_no_shard_keys(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=1).with_shards(1)
        report = ds.random_beams(axis=1, n=2).run()
        assert "shards" not in report.meta
        assert "shards" not in ds.describe()
        assert ds.n_shards == 1 and ds.is_sharded

    def test_multi_shard_meta_present(self, small_model):
        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=1).with_shards(3)
        report = ds.random_beams(axis=2, n=2).run()
        assert report.meta["shards"]["n_shards"] == 3
        assert ds.describe()["shards"]["strategy"] == "disk_modulo"
        assert ds.n_shards == 3
