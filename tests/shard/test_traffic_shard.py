"""Sharded datasets under the traffic engine: multi-queue jobs."""

import pytest

from repro.api import Dataset
from repro.traffic import QueryMix

SHAPE = (24, 12, 12)


def make(small_model, n=3, seed=7, layout="multimap"):
    return Dataset.create(SHAPE, layout=layout, drive=small_model,
                          seed=seed).with_shards(n)


class TestMultiDriveJobs:
    def test_cross_shard_queries_occupy_every_drive(self, small_model):
        ds = make(small_model, n=3)
        report = (
            ds.traffic()
            .clients(2, mix=QueryMix.beams(2), queries=5)
            .slice_runs(8)
            .run()
        )
        assert sorted(d.disk for d in report.drives) == [0, 1, 2]
        assert all(d.served_blocks > 0 for d in report.drives)
        # every issued query completed exactly once
        assert len(report.traces) == 10
        assert {tr.index for tr in report.for_client("c0")} == set(range(5))

    def test_completion_on_last_subplan(self, small_model):
        """Latency covers the slowest drive's work: a cross-shard query's
        service time is at least any single sub-plan's share."""
        ds = make(small_model, n=3)
        report = (
            ds.traffic()
            .clients(1, mix=QueryMix.beams(2), queries=4)
            .slice_runs(4)
            .run()
        )
        for tr in report.traces:
            assert tr.completion_ms >= tr.start_ms
            assert tr.n_blocks == SHAPE[2]

    def test_same_seed_bit_identical(self, small_model):
        def run():
            ds = make(small_model, n=3, seed=23)
            return (
                ds.traffic()
                .clients(3, mix=QueryMix.beams(1, 2), queries=6)
                .slice_runs(8)
                .run()
                .to_json()
            )

        assert run() == run()

    def test_served_blocks_invariant_under_slicing(self, small_model):
        """Re-interleavings change timing, never the blocks served."""
        def totals(slice_runs):
            ds = make(small_model, n=3, seed=31)
            rep = (
                ds.traffic()
                .clients(2, mix=QueryMix.beams(1, 2), queries=6)
                .slice_runs(slice_runs)
                .run()
            )
            return sorted(
                (d.disk, d.served_blocks) for d in rep.drives
            )

        assert totals(4) == totals(64) == totals(None)

    def test_mixed_sharded_clients_with_cache(self, small_model):
        ds = make(small_model, n=2, seed=41).with_cache(
            2048, prefetch="track",
        )
        rep = (
            ds.traffic()
            .clients(2, mix=QueryMix.beams(1, 2), queries=6)
            .slice_runs(8)
            .run()
        )
        assert rep.cache_stats() is not None
        assert len(rep.traces) == 12

    def test_all_hit_query_billed_per_disk_makespan(self, small_model):
        """A fully cached cross-shard query completes at the slowest
        disk's memory-service share, not the sum over disks — the batch
        executor's makespan rule."""
        from repro.api import Dataset
        from repro.query.workload import BeamQuery
        from repro.traffic import Replay

        ds = Dataset.create(SHAPE, layout="multimap", drive=small_model,
                            seed=11).with_shards(2).with_cache(
            8192, prefetch="none",
        )
        beam = BeamQuery(axis=2, fixed=(0, 0, 0))
        rep = (
            ds.traffic()
            .clients(1, mix=Replay([beam]), queries=2)
            .run()
        )
        warm = rep.traces[1]
        assert warm.n_runs == 0 or warm.seek_ms + warm.transfer_ms == 0
        total_cache = warm.service_ms  # sum over both disks' hits
        per_block = ds.cache.service_ms_per_block
        # each disk serves half the beam's blocks from memory
        expected_latency = (SHAPE[2] / 2) * per_block
        assert warm.latency_ms == pytest.approx(expected_latency)
        assert warm.latency_ms < total_cache

    def test_carry_head_mode_runs(self, small_model):
        ds = make(small_model, n=2, seed=3)
        rep = (
            ds.traffic()
            .clients(2, mix=QueryMix.beams(2), queries=4)
            .head("carry")
            .run()
        )
        assert rep.makespan_ms > 0
