"""Hypothesis property suites for the declustering invariants.

The contracts the shard layer leans on:

* every strategy's assignment is *total* (one disk per chunk) and
  *in-range* (``0 <= disk < n_disks``);
* round-robin is balanced within one chunk per disk for any chunk
  count; disk-modulo is balanced within one chunk per disk whenever
  some grid axis is a multiple of the disk count (and exactly balanced
  then — the sum over that axis cycles through every residue);
* every axis-aligned beam of a disk-modulo chunk grid touches the disks
  evenly (within one chunk, exactly evenly when the beam's axis length
  is a multiple of the disk count) — the property that makes cross-disk
  beams parallelise under the shard layer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lvm.striping import (
    STRATEGIES,
    assign_chunks,
    disk_modulo,
    round_robin,
)

grids = st.lists(st.integers(1, 8), min_size=1, max_size=4).map(tuple)
disks = st.integers(1, 6)


@settings(max_examples=60, deadline=None)
@given(n_items=st.integers(1, 200), n_disks=disks)
def test_round_robin_total_in_range_balanced(n_items, n_disks):
    out = round_robin(n_items, n_disks)
    assert out.size == n_items
    assert out.min() >= 0 and out.max() < n_disks
    counts = np.bincount(out, minlength=n_disks)
    assert counts.max() - counts.min() <= 1


@settings(max_examples=60, deadline=None)
@given(grid=grids, n_disks=disks)
def test_disk_modulo_total_and_in_range(grid, n_disks):
    out = disk_modulo(grid, n_disks)
    assert out.size == int(np.prod(grid, dtype=np.int64))
    assert out.min() >= 0 and out.max() < n_disks


@settings(max_examples=60, deadline=None)
@given(grid=grids, n_disks=disks, axis_len=st.integers(1, 4))
def test_disk_modulo_balance_with_divisible_axis(grid, n_disks, axis_len):
    """With one axis a multiple of n_disks, the assignment is exactly
    balanced: summing along that axis hits every residue equally."""
    grid = grid + (axis_len * n_disks,)
    out = disk_modulo(grid, n_disks)
    counts = np.bincount(out, minlength=n_disks)
    assert counts.max() == counts.min()


def _beam_lines(flat: np.ndarray, grid: tuple, axis: int) -> np.ndarray:
    """All beams along ``axis`` as rows (flat is c0-fastest)."""
    arr = flat.reshape(tuple(reversed(grid)))  # index [c_{n-1}, .., c0]
    arr = np.moveaxis(arr, len(grid) - 1 - axis, -1)
    return arr.reshape(-1, grid[axis])


@settings(max_examples=60, deadline=None)
@given(grid=grids, n_disks=disks)
def test_disk_modulo_beams_touch_disks_evenly(grid, n_disks):
    """Every axis-aligned beam of the chunk grid spreads within one
    chunk per disk (the varying coordinate walks consecutive residues)."""
    flat = disk_modulo(grid, n_disks)
    for axis in range(len(grid)):
        for line in _beam_lines(flat, grid, axis):
            counts = np.bincount(line, minlength=n_disks)
            assert counts.max() - counts.min() <= 1
            if grid[axis] % n_disks == 0:
                assert counts.max() == counts.min()


@settings(max_examples=40, deadline=None)
@given(grid=grids, n_disks=disks,
       name=st.sampled_from(["round_robin", "disk_modulo",
                             "cube_aligned"]))
def test_registered_strategies_total_and_in_range(grid, n_disks, name):
    n_chunks = int(np.prod(grid, dtype=np.int64))
    out = assign_chunks(n_chunks, n_disks, name, grid_shape=grid)
    assert out.size == n_chunks
    assert out.min() >= 0 and out.max() < n_disks
    # the dispatch path and the registry entry agree
    entry = STRATEGIES.get(name)
    np.testing.assert_array_equal(out, entry.fn(grid, n_disks))
