"""Tests for the 4-D OLAP cube and the five §5.5 queries."""

import numpy as np
import pytest

from repro.datasets import (
    OLAP_CHUNK_DIMS,
    OLAP_RAW_DIMS,
    OLAP_ROLLED_DIMS,
    OLAPCube,
    generate_fact_table,
    paper_olap_queries,
)
from repro.query import BeamQuery, RangeQuery


@pytest.fixture(scope="module")
def cube():
    return OLAPCube.from_fact_table(generate_fact_table(20_000, seed=9))


class TestCubeShapes:
    def test_paper_dims(self):
        assert OLAP_RAW_DIMS == (2361, 150, 25, 50)
        assert OLAP_ROLLED_DIMS == (1182, 150, 25, 50)
        assert OLAP_CHUNK_DIMS == (591, 75, 25, 25)

    def test_chunking_consistent(self):
        """Two chunks per rolled dimension except Nation (§5.5)."""
        ratio = [r // c for r, c in zip(OLAP_ROLLED_DIMS, OLAP_CHUNK_DIMS)]
        assert ratio == [2, 2, 1, 2]


class TestAggregation:
    def test_counts_total(self, cube):
        assert int(cube.counts.sum()) == 20_000

    def test_profit_preserved(self, cube):
        table = generate_fact_table(20_000, seed=9)
        assert cube.profit.sum() == pytest.approx(table.profit.sum())

    def test_cell_lookup(self, cube):
        table = generate_fact_table(20_000, seed=9)
        row = tuple(int(v) for v in table.coordinates()[0])
        assert cube.counts[row] >= 1


class TestRollUp:
    def test_rollup_halves_axis0(self, cube):
        rolled = cube.roll_up_orderdate(2)
        assert rolled.dims[0] == -(-2361 // 2)
        assert rolled.dims[1:] == cube.dims[1:]

    def test_rollup_preserves_totals(self, cube):
        rolled = cube.roll_up_orderdate(2)
        assert int(rolled.counts.sum()) == int(cube.counts.sum())
        assert rolled.profit.sum() == pytest.approx(cube.profit.sum())

    def test_rollup_increases_density(self, cube):
        """The §5.5 motivation: combining two days roughly doubles the
        points per cell."""
        rolled = cube.roll_up_orderdate(2)
        assert rolled.mean_points_per_cell == pytest.approx(
            cube.mean_points_per_cell * 2, rel=0.01
        )

    def test_rollup_factor_one_is_identity(self, cube):
        same = cube.roll_up_orderdate(1)
        assert same.dims == cube.dims

    def test_occupancy_bounds(self, cube):
        assert 0 < cube.occupancy() < 1


class TestPaperQueries:
    def test_query_set(self):
        qs = paper_olap_queries(rng=np.random.default_rng(0))
        assert set(qs) == {"Q1", "Q2", "Q3", "Q4", "Q5"}

    def test_q1_is_orderdate_beam(self):
        qs = paper_olap_queries(rng=np.random.default_rng(0))
        assert isinstance(qs["Q1"], BeamQuery)
        assert qs["Q1"].axis == 0

    def test_q2_is_nation_beam(self):
        qs = paper_olap_queries(rng=np.random.default_rng(0))
        assert isinstance(qs["Q2"], BeamQuery)
        assert qs["Q2"].axis == 2

    def test_q3_shape(self):
        qs = paper_olap_queries(rng=np.random.default_rng(0))
        assert isinstance(qs["Q3"], RangeQuery)
        assert qs["Q3"].shape == (183, 1, 1, 25)

    def test_q4_shape(self):
        qs = paper_olap_queries(rng=np.random.default_rng(0))
        assert qs["Q4"].shape == (183, 1, 25, 25)

    def test_q5_shape(self):
        qs = paper_olap_queries(rng=np.random.default_rng(0))
        assert qs["Q5"].shape == (10, 10, 10, 10)

    def test_queries_within_chunk(self):
        for seed in range(5):
            qs = paper_olap_queries(rng=np.random.default_rng(seed))
            for q in qs.values():
                if isinstance(q, RangeQuery):
                    for d in range(4):
                        assert 0 <= q.lo[d] < q.hi[d] <= OLAP_CHUNK_DIMS[d]

    def test_custom_chunk_dims(self):
        qs = paper_olap_queries((100, 20, 25, 25),
                                rng=np.random.default_rng(1))
        assert qs["Q3"].shape[0] == 100  # year clipped to chunk
