"""Tests for the synthetic earthquake dataset (§5.4 stand-in)."""

import numpy as np
import pytest

from repro.datasets import EarthquakeDataset, build_leaf_layouts
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def dataset():
    return EarthquakeDataset(depth=5, min_region_leaves=32)


@pytest.fixture(scope="module")
def layouts(dataset, small_model):
    return build_leaf_layouts(dataset, lambda: small_model, depth=16)


class TestStructure:
    def test_skewed_multi_level(self, dataset):
        hist = dataset.octree.levels_histogram()
        assert len(hist) >= 2  # variable resolution

    def test_paper_like_region_dominance(self, dataset):
        """Two subareas jointly cover well over 60% of elements (§5.4)."""
        assert dataset.region_coverage(2) > 0.6

    def test_regions_exist(self, dataset):
        assert len(dataset.regions) >= 2

    def test_rejects_tiny_depth(self):
        with pytest.raises(DatasetError):
            EarthquakeDataset(depth=2)


class TestQueries:
    def test_beam_leaves_nonempty(self, dataset, rng):
        for axis in range(3):
            leaves = dataset.beam_leaves(axis, rng)
            assert leaves.size > 0

    def test_beam_covers_full_axis(self, dataset, rng):
        leaves = dataset.beam_leaves(0, rng)
        origins = dataset.octree.leaf_origins()[leaves]
        assert origins[:, 3].sum() == dataset.side

    def test_range_leaves_grow_with_selectivity(self, dataset):
        rng1, rng2 = np.random.default_rng(4), np.random.default_rng(4)
        small = dataset.range_leaves(0.1, rng1)
        large = dataset.range_leaves(5.0, rng2)
        assert large.size > small.size

    def test_range_rejects_bad_selectivity(self, dataset, rng):
        with pytest.raises(DatasetError):
            dataset.range_leaves(0, rng)


class TestLayouts:
    def test_all_four_layouts_built(self, layouts):
        assert set(layouts) == {"naive", "zorder", "hilbert", "multimap"}

    def test_lbns_unique_per_layout(self, layouts, dataset):
        n = dataset.n_elements
        for name, layout in layouts.items():
            lbns = layout._lbn_of_leaf
            assert np.unique(lbns).size == n, name

    def test_plan_covers_requested_leaves(self, layouts, dataset, rng):
        leaves = dataset.beam_leaves(1, rng)
        for name, layout in layouts.items():
            plan = layout.plan_for_leaves(leaves, for_beam=True)
            assert plan.n_blocks == leaves.size, name

    def test_naive_is_x_major(self, layouts, dataset):
        """X varies fastest: leaves sorted by (Z, Y, X) get ascending
        LBNs, so beams along X stream sequentially."""
        origins = dataset.octree.leaf_origins()
        order = np.lexsort((origins[:, 0], origins[:, 1], origins[:, 2]))
        lbns = layouts["naive"]._lbn_of_leaf[order]
        assert (np.diff(lbns) > 0).all()

    def test_multimap_layout_plays_sptf(self, layouts):
        assert layouts["multimap"].policy == "sptf"

    def test_multimap_beats_naive_on_z_beams(self, dataset, small_model):
        """The headline §5.4 effect: MultiMap wins non-major beams."""
        layouts = build_leaf_layouts(
            dataset, lambda: small_model, depth=16,
            which=("naive", "multimap"),
        )
        totals = {}
        for name, layout in layouts.items():
            rng = np.random.default_rng(17)
            drive = layout.volume.drive(layout.disk)
            total = 0.0
            for _ in range(6):
                leaves = dataset.beam_leaves(2, rng)
                plan = layout.plan_for_leaves(leaves, for_beam=True)
                drive.randomize_position(rng)
                total += drive.service_runs(
                    plan.starts, plan.lengths, policy=layout.policy,
                    window=128,
                ).total_ms
            totals[name] = total
        assert totals["multimap"] < totals["naive"]
