"""Tests for grid datasets, chunking and the mapper factory."""

import numpy as np
import pytest

from repro.datasets import GridDataset, build_chunk_mappers, paper_synthetic_3d
from repro.errors import DatasetError


class TestGridDataset:
    def test_paper_dataset_dims(self):
        ds = paper_synthetic_3d()
        assert ds.dims == (1024, 1024, 1024)

    def test_n_cells(self):
        assert GridDataset((4, 5, 6)).n_cells == 120

    def test_rejects_bad_dims(self):
        with pytest.raises(DatasetError):
            GridDataset((0, 4))


class TestChunking:
    def test_paper_chunking_shape(self):
        """§5.3: 1024³ into chunks of at most 259³."""
        chunks = paper_synthetic_3d().chunks((259, 259, 259), n_disks=2)
        assert len(chunks) == 4 ** 3
        assert all(
            all(w <= 259 for w in c.shape) for c in chunks
        )

    def test_chunks_tile_dataset(self):
        ds = GridDataset((10, 7, 5))
        chunks = ds.chunks((4, 4, 4))
        total = sum(c.n_cells for c in chunks)
        assert total == ds.n_cells

    def test_edge_chunks_are_clipped(self):
        ds = GridDataset((10, 7, 5))
        chunks = ds.chunks((4, 4, 4))
        shapes = {c.shape for c in chunks}
        assert (2, 3, 1) in shapes  # the far corner

    def test_disk_assignment_round_robin(self):
        ds = GridDataset((8, 8, 8))
        chunks = ds.chunks((4, 4, 4), n_disks=2)
        assert [c.disk for c in chunks] == [0, 1] * 4

    def test_disk_modulo_strategy(self):
        ds = GridDataset((8, 8, 8))
        chunks = ds.chunks((4, 4, 4), n_disks=2, strategy="disk_modulo")
        assert {c.disk for c in chunks} == {0, 1}

    def test_rejects_rank_mismatch(self):
        with pytest.raises(DatasetError):
            GridDataset((8, 8)).chunks((4, 4, 4))

    def test_rejects_zero_chunk(self):
        with pytest.raises(DatasetError):
            GridDataset((8, 8)).chunks((0, 4))


class TestBuildChunkMappers:
    def test_all_four_mappings(self, small_model):
        out = build_chunk_mappers(
            (20, 10, 8), lambda: small_model, depth=16
        )
        assert set(out) == {"naive", "zorder", "hilbert", "multimap"}

    def test_each_on_fresh_volume(self, small_model):
        out = build_chunk_mappers(
            (20, 10, 8), lambda: small_model, depth=16
        )
        volumes = [v for _, v in out.values()]
        assert len({id(v) for v in volumes}) == 4

    def test_gray_available(self, small_model):
        out = build_chunk_mappers(
            (20, 10, 8), lambda: small_model, depth=16, which=("gray",)
        )
        assert out["gray"][0].name == "gray"

    def test_unknown_mapper_rejected(self, small_model):
        with pytest.raises(DatasetError):
            build_chunk_mappers(
                (20, 10, 8), lambda: small_model, which=("bogus",)
            )

    def test_mappers_cover_same_cells(self, small_model):
        from repro.mappings.base import enumerate_box

        dims = (20, 10, 8)
        out = build_chunk_mappers(dims, lambda: small_model, depth=16)
        coords = enumerate_box((0, 0, 0), dims)
        for name, (mapper, _vol) in out.items():
            lbns = mapper.lbns(coords)
            assert np.unique(lbns).size == coords.shape[0], name
