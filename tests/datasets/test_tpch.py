"""Tests for the TPC-H-like fact-table generator."""

import numpy as np
import pytest

from repro.datasets import P_TYPES, TPCH_DOMAINS, generate_fact_table
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def table():
    return generate_fact_table(30_000, seed=7)


class TestDomains:
    def test_150_part_types(self):
        assert len(P_TYPES) == 150
        assert len(set(P_TYPES)) == 150

    def test_domain_sizes_match_paper(self):
        assert TPCH_DOMAINS["orderdate"] == 2361
        assert TPCH_DOMAINS["p_type"] == 150
        assert TPCH_DOMAINS["c_nation"] == 25
        assert TPCH_DOMAINS["l_quantity"] == 50


class TestGenerator:
    def test_row_count_exact(self, table):
        assert table.n_rows == 30_000

    def test_values_in_domain(self, table):
        assert table.orderdate.min() >= 0
        assert table.orderdate.max() < 2361
        assert table.p_type.min() >= 0
        assert table.p_type.max() < 150
        assert table.c_nation.min() >= 0
        assert table.c_nation.max() < 25
        assert table.l_quantity.min() >= 1
        assert table.l_quantity.max() <= 50

    def test_lineitems_share_order_attributes(self):
        """Rows of one order agree on date and nation (the join is real)."""
        t = generate_fact_table(2_000, seed=3)
        # consecutive rows from the same order repeat (date, nation) pairs;
        # verify the pairing is far from independent by checking repeats
        pairs = t.orderdate * 25 + t.c_nation
        repeats = (pairs[1:] == pairs[:-1]).mean()
        assert repeats > 0.3  # ~4 items per order -> ~75% repeat rate

    def test_deterministic(self):
        a = generate_fact_table(1_000, seed=5)
        b = generate_fact_table(1_000, seed=5)
        np.testing.assert_array_equal(a.orderdate, b.orderdate)
        np.testing.assert_array_equal(a.profit, b.profit)

    def test_coordinates_shape(self, table):
        coords = table.coordinates()
        assert coords.shape == (30_000, 4)
        assert coords[:, 3].min() >= 0  # quantity shifted to 0-based
        assert coords[:, 3].max() <= 49

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            generate_fact_table(0)

    def test_profit_mostly_positive(self, table):
        assert (table.profit > 0).mean() > 0.9
