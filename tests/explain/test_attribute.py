"""Regression attribution: suspect ranking over exported reports."""

import pytest

from repro.errors import ExplainError
from repro.explain import attribute_runs, render_attribution


def _report(*, phase=None, busy=None, slowest=None, monitor=None):
    data = {"dataset": {"layout": "multimap"}}
    data["phase_ms"] = phase or {}
    if busy is not None:
        data["utilization"] = {"bin_ms": 10.0, "busy": busy}
    if slowest is not None:
        data["slowest"] = slowest
    if monitor is not None:
        data["monitor"] = monitor
    return data


class TestAttributeRuns:
    def test_identical_runs_have_zero_suspects(self):
        base = _report(phase={"service": 100.0, "prepare": 1.0},
                       busy={"0": [0.5, 0.6]})
        out = attribute_runs(base, base)
        assert out["suspects"] == []
        assert "no suspects" in out["summary"]

    def test_phase_growth_is_localized(self):
        base = _report(phase={"service": 100.0, "cache": 10.0})
        cur = _report(phase={"service": 150.0, "cache": 10.0})
        out = attribute_runs(base, cur)
        assert [s["name"] for s in out["suspects"]] == ["service"]
        assert out["suspects"][0]["kind"] == "phase"
        assert out["suspects"][0]["delta"] == 50.0

    def test_within_tolerance_is_clean(self):
        base = _report(phase={"service": 100.0})
        cur = _report(phase={"service": 105.0})
        assert attribute_runs(base, cur)["suspects"] == []

    def test_improvement_never_flags(self):
        base = _report(phase={"service": 150.0})
        cur = _report(phase={"service": 100.0})
        assert attribute_runs(base, cur)["suspects"] == []

    def test_hot_disk_is_named(self):
        base = _report(busy={"0": [0.4, 0.4], "1": [0.4, 0.4]})
        cur = _report(busy={"0": [0.4, 0.4], "1": [0.9, 0.9]})
        out = attribute_runs(base, cur)
        assert [s["name"] for s in out["suspects"]] == ["d1"]
        assert out["suspects"][0]["kind"] == "disk"

    def test_slowed_query_with_plan_drift(self):
        base = _report(slowest=[
            {"name": "c0#1", "dur_ms": 10.0, "cells": 64},
        ])
        cur = _report(slowest=[
            {"name": "c0#1", "dur_ms": 30.0, "cells": 128},
        ])
        out = attribute_runs(base, cur)
        suspect = out["suspects"][0]
        assert suspect["kind"] == "query"
        assert "plan shape drifted" in suspect["why"]

    def test_monitor_signals(self):
        base = _report(monitor={
            "alerts": [], "health": {"state": "healthy"},
        })
        cur = _report(monitor={
            "alerts": [{"rule": "latency_threshold"}] * 3,
            "health": {"state": "degraded"},
        })
        out = attribute_runs(base, cur)
        kinds = {s["kind"] for s in out["suspects"]}
        assert kinds == {"alerts", "health"}
        alert = next(s for s in out["suspects"]
                     if s["kind"] == "alerts")
        assert "latency_threshold" in alert["why"]

    def test_suspects_ranked_by_score(self):
        base = _report(phase={"service": 100.0, "cache": 10.0})
        cur = _report(phase={"service": 120.0, "cache": 100.0})
        out = attribute_runs(base, cur)
        scores = [s["score"] for s in out["suspects"]]
        assert scores == sorted(scores, reverse=True)
        assert out["suspects"][0]["name"] == "cache"

    def test_non_dict_inputs_raise(self):
        with pytest.raises(ExplainError):
            attribute_runs([], {})

    def test_negative_tolerance_raises(self):
        with pytest.raises(ExplainError):
            attribute_runs({}, {}, tolerance=-0.1)


class TestRender:
    def test_clean_render(self):
        out = attribute_runs(_report(), _report())
        assert "no suspects" in render_attribution(out)

    def test_suspect_table_lists_why(self):
        base = _report(phase={"service": 100.0})
        cur = _report(phase={"service": 200.0})
        text = render_attribution(attribute_runs(base, cur))
        assert "service time grew" in text
