"""The surfaced analytic model: predictions vs example-scale reality."""

import pytest

from repro.api.dataset import Dataset
from repro.explain import model_block, run_explain

# (240, 12, 12) is the scale where the basic cube spans both cross
# dimensions; smaller shapes plan K1=1 cubes and the model correctly
# predicts a *slowdown* on axis 1 (see test_small_scale_slowdown)
SHAPE = (240, 12, 12)


@pytest.fixture(scope="module")
def block():
    ds = Dataset.create(SHAPE, layout="multimap",
                        drive="minidrive", seed=42)
    return model_block(ds, SHAPE)


class TestModelBlock:
    def test_every_axis_has_a_speedup(self, block):
        assert sorted(block["beam_speedups"]) == ["0", "1", "2"]

    def test_primary_axis_is_baseline(self, block):
        """Axis 0 streams under both layouts — no predicted speedup."""
        assert block["beam_speedups"]["0"] == pytest.approx(1.0)

    def test_cross_axes_predict_speedup(self, block):
        assert block["beam_speedups"]["1"] > 1.0
        assert block["beam_speedups"]["2"] > 1.0

    def test_range_speedups_at_both_selectivities(self, block):
        assert set(block["range_speedups"]) == {"1%", "10%"}
        for speedup in block["range_speedups"].values():
            assert speedup > 1.0

    def test_small_scale_slowdown_is_predicted(self):
        """(48, 12, 12) plans a K1=1 cube, so axis-1 beams cross cube
        boundaries — the model predicts the penalty, not a speedup."""
        ds = Dataset.create((48, 12, 12), layout="multimap",
                            drive="minidrive", seed=42)
        small = model_block(ds, (48, 12, 12))
        assert small["beam_speedups"]["1"] < 1.0
        assert small["beam_speedups"]["2"] > 1.0

    def test_cli_engine_carries_the_block(self):
        data = run_explain(SHAPE, layouts=("multimap",),
                           drive="minidrive", axis=1, model=True)
        assert data["model"]["beam_speedups"]["1"] > 1.0


class TestMeasuredWithinSanityBand:
    def test_measured_cross_beam_speedup_tracks_prediction(self):
        """Example-scale measured naive/multimap speedup lands within a
        sanity band of the analytic prediction (the satellite's
        assertion: the §4 model is predictive, not decorative)."""
        measured = {}
        for layout in ("naive", "multimap"):
            ds = Dataset.create(SHAPE, layout=layout,
                                drive="minidrive", seed=42)
            report = ds.random_beams(axis=1, n=6).run()
            measured[layout] = report.total_ms
        measured_speedup = measured["naive"] / measured["multimap"]

        ds = Dataset.create(SHAPE, layout="multimap",
                            drive="minidrive", seed=42)
        predicted = model_block(ds, SHAPE)["beam_speedups"]["1"]
        assert predicted > 1.0
        assert measured_speedup > 1.0
        # same order of magnitude: the model idealises head placement
        # and ignores partial-track effects, so allow a wide band
        assert predicted / 4 < measured_speedup < predicted * 4
