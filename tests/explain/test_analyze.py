"""ANALYZE: measured splits, reconciliation, and model error."""

import json

import pytest

from repro.api.dataset import Dataset
from repro.query.workload import BeamQuery

BEAM = BeamQuery(0, (0, 6, 6))


@pytest.fixture()
def out():
    ds = Dataset.create((240, 12, 12), layout="multimap",
                        drive="minidrive", seed=42)
    return ds.explain(BEAM, analyze=True)


class TestAnalyze:
    def test_measured_and_reconciliation_present(self, out):
        assert out["measured"]["total_ms"] > 0
        rec = out["reconciliation"]
        assert {"per_phase", "per_disk", "summed_abs_error_ms",
                "summed_rel_error", "cost_match"} <= set(rec)

    def test_model_error_is_small_for_seeded_beam(self, out):
        """The ghost drive starts cold while the real run randomises
        the head once — the divergence is bounded by one positioning."""
        rec = out["reconciliation"]
        assert rec["summed_rel_error"] < 0.5
        assert rec["per_phase"]["service"]["measured_ms"] > 0

    def test_costs_match_for_streaming_beam(self, out):
        assert out["predicted"]["dominant_cost"] == "transfer_bound"
        assert out["measured"]["dominant_cost"] == "transfer_bound"
        assert out["reconciliation"]["cost_match"] is True

    def test_mechanical_split_reconciles_with_phase_total(self, out):
        meas = out["measured"]
        mech = (meas["seek_ms"] + meas["rotation_ms"]
                + meas["transfer_ms"] + meas["switch_ms"])
        assert mech == pytest.approx(
            meas["phase_ms"]["service"], abs=0.01
        )

    def test_json_serializable(self, out):
        json.dumps(out)

    def test_private_telemetry_restored(self):
        ds = Dataset.create((48, 12, 12), layout="multimap",
                            drive="minidrive", seed=42)
        ds.with_telemetry(trace=True)
        tele = ds.telemetry
        queries_before = tele.tracer.n_queries
        ds.explain(BEAM, analyze=True)
        assert ds.storage.obs is tele
        # ANALYZE's execution was traced privately, not into the
        # user's stream
        assert tele.tracer.n_queries == queries_before

    def test_sharded_analyze_reconciles_per_disk(self):
        from repro.query.workload import RangeQuery

        ds = (Dataset.create((48, 12, 12), layout="multimap",
                             drive="minidrive", seed=42)
              .with_shards(2))
        out = ds.explain(RangeQuery((0, 0, 0), (48, 12, 12)),
                         analyze=True)
        rec = out["reconciliation"]
        assert sorted(rec["per_disk"]) == ["0", "1"]
        for row in rec["per_disk"].values():
            assert row["measured_ms"] > 0

    def test_cached_analyze_reports_hits(self):
        ds = (Dataset.create((48, 12, 12), layout="multimap",
                             drive="minidrive", seed=42)
              .with_cache(4096))
        ds.run([BEAM])
        out = ds.explain(BEAM, analyze=True)
        assert out["measured"]["cache"]["hits"] \
            == out["predicted"]["cache"]["expected_hits"]
        assert "cache" in out["reconciliation"]["per_phase"]
