"""Tests for :mod:`repro.explain` — EXPLAIN/ANALYZE and attribution."""
