"""EXPLAIN: plan inspection with zero side effects."""

import json

import pytest

from repro.api.dataset import Dataset
from repro.query.workload import BeamQuery, RangeQuery


@pytest.fixture()
def ds(make_dataset):
    return make_dataset(shape=(48, 12, 12))


BEAM = BeamQuery(0, (0, 6, 6))


class TestExplainPayload:
    def test_blocks_match_prepared_plan(self, ds):
        from repro.explain import prepare_readonly

        out = ds.explain(BEAM)
        prepared = prepare_readonly(ds, BEAM)
        assert out["plan"]["blocks"] == prepared.n_blocks
        assert out["plan"]["runs"] == prepared.n_runs
        per_disk = out["predicted"]["per_disk"]
        assert sum(r["blocks"] for r in per_disk.values()) \
            == out["plan"]["blocks"]

    def test_histogram_covers_every_run(self, ds):
        out = ds.explain(BEAM)
        hist = out["plan"]["run_length_histogram"]
        assert sum(hist.values()) == out["plan"]["runs"]
        blocks = sum(int(length) * count
                     for length, count in hist.items())
        assert blocks == out["plan"]["blocks"]

    def test_range_query(self, ds):
        out = ds.explain(RangeQuery((0, 0, 0), (6, 6, 6)))
        assert out["query"]["kind"] == "range"
        assert out["plan"]["n_cells"] == 216
        assert out["predicted"]["dominant_cost"] in (
            "seek_bound", "rotation_bound", "transfer_bound",
        )

    def test_multimap_primary_beam_streams(self):
        ds = Dataset.create((240, 12, 12), layout="multimap",
                            drive="minidrive", seed=42)
        out = ds.explain(BEAM)
        assert out["plan"]["pattern"] == "sequential"
        assert out["predicted"]["dominant_cost"] == "transfer_bound"

    def test_multimap_cross_beam_is_semi_sequential(self):
        # (240, 12, 12) plans a K=(120, 12, 12) basic cube, so the cube
        # spans the full beam dimension; smaller shapes plan K1=1 cubes
        # whose cross-beam steps legitimately cross cube boundaries
        ds = Dataset.create((240, 12, 12), layout="multimap",
                            drive="minidrive", seed=42)
        out = ds.explain(BeamQuery(1, (0, 0, 6)))
        assert out["plan"]["pattern"] == "semi_sequential"
        assert out["plan"]["steps"]["semi_sequential"] == 11

    def test_zorder_beam_is_seek_bound(self):
        ds = Dataset.create((240, 12, 12), layout="zorder",
                            drive="minidrive", seed=42)
        out = ds.explain(BEAM)
        assert out["predicted"]["dominant_cost"] == "seek_bound"

    def test_analytic_block_present(self, ds):
        # axis 2 is the deepest adjacency step, where the paper's model
        # predicts a speedup at every scale
        out = ds.explain(BeamQuery(2, (0, 6, 0)))
        analytic = out["analytic"]
        assert analytic["kind"] == "beam" and analytic["axis"] == 2
        assert analytic["predicted_speedup"] > 1.0

    def test_json_serializable(self, ds):
        json.dumps(ds.explain(BEAM))

    def test_unknown_query_type_raises(self, ds):
        from repro.errors import ExplainError

        with pytest.raises(ExplainError):
            ds.explain(object())


class TestZeroSideEffects:
    def test_drives_never_move(self, ds):
        before = [d.now_ms for d in ds.volume.drives]
        ds.explain(BEAM)
        assert [d.now_ms for d in ds.volume.drives] == before

    def test_batch_report_identical_with_and_without_explain(self):
        def run(with_explain):
            d = (Dataset.create((48, 12, 12), layout="multimap",
                                drive="minidrive", seed=42)
                 .with_shards(2).with_replication(2).with_cache(1024))
            if with_explain:
                for _ in range(3):
                    d.explain(BEAM)
            return json.dumps(
                d.random_beams(axis=1, n=4).run().to_dict(),
                sort_keys=True,
            )

        assert run(False) == run(True)

    def test_cache_stats_untouched(self, ds):
        ds.with_cache(1024)
        ds.run([BEAM])
        stats_before = (ds.cache.stats.accesses, ds.cache.stats.hits)
        out = ds.explain(BEAM)
        assert out["predicted"]["cache"]["expected_hits"] > 0
        assert (ds.cache.stats.accesses,
                ds.cache.stats.hits) == stats_before

    def test_replica_routing_counters_untouched(self):
        ds = (Dataset.create((48, 12, 12), layout="multimap",
                             drive="minidrive", seed=42)
              .with_shards(2)
              .with_replication(2, read_policy="round_robin"))
        stats = ds.storage.replica_stats
        rr = ds.storage._rr_counts
        snapshot = (list(stats.reads), list(stats.planned_blocks),
                    dict(rr))
        out = ds.explain(BEAM)
        assert out["routing"]["read_policy"] == "round_robin"
        # same objects, same values: restored in place
        assert ds.storage.replica_stats is stats
        assert ds.storage._rr_counts is rr
        assert snapshot == (list(stats.reads),
                            list(stats.planned_blocks), dict(rr))

    def test_restores_on_prepare_failure(self, ds):
        from repro.errors import ReproError

        cache = ds.with_cache(512).cache
        bad = BeamQuery(0, (0, 99, 99))
        with pytest.raises(ReproError):
            ds.explain(bad)
        assert ds.storage.cache is cache
        assert ds.storage.obs is None


class TestScaleOutBlocks:
    def test_fanout_and_routing_gated(self, ds):
        out = ds.explain(BEAM)
        assert "fanout" not in out and "routing" not in out

    def test_fanout_present_when_sharded(self):
        ds = (Dataset.create((48, 12, 12), layout="multimap",
                             drive="minidrive", seed=42)
              .with_shards(2))
        out = ds.explain(RangeQuery((0, 0, 0), (48, 12, 12)))
        fan = out["fanout"]
        assert fan["shards"] == 2
        assert sorted(fan["disks"]) == [0, 1]
        assert fan["subplans"] == len(out["plan"]["subs"])

    def test_routing_avoids_failed_disk(self):
        ds = (Dataset.create((48, 12, 12), layout="multimap",
                             drive="minidrive", seed=42)
              .with_shards(2).with_replication(2))
        ds.storage.fail_disk(0)
        out = ds.explain(RangeQuery((0, 0, 0), (48, 12, 12)))
        assert out["routing"]["failed_disks"] == [0]
        for src in out["routing"]["sources"]:
            assert src["disk"] != 0

    def test_expected_cache_hits_match_execution(self):
        """peek_plan's prediction equals what filter_plan then reports."""
        ds = (Dataset.create((48, 12, 12), layout="multimap",
                             drive="minidrive", seed=42)
              .with_cache(4096))
        ds.run([BEAM])
        expected = ds.explain(BEAM)["predicted"]["cache"]
        hits_before = ds.cache.stats.hits
        ds.run([BEAM])
        assert ds.cache.stats.hits - hits_before \
            == expected["expected_hits"]
