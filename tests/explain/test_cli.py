"""The ``explain`` bench subcommand and ``diff --attribute``."""

import json

import pytest

from repro.bench.cli import main

QUICK = ["explain", "--shape", "48,12,12", "--drive", "minidrive"]


class TestExplainCommand:
    def test_renders_plan_tree(self, capsys):
        assert main(QUICK) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN" in out
        assert "multimap" in out
        assert "pattern" in out

    def test_json_export(self, tmp_path, capsys):
        dest = tmp_path / "explain.json"
        assert main(QUICK + ["--json", str(dest), "--quiet"]) == 0
        data = json.loads(dest.read_text())
        layout = data["layouts"]["multimap"]
        assert layout["plan"]["blocks"] > 0
        assert layout["predicted"]["dominant_cost"]
        assert capsys.readouterr().out == ""

    def test_two_layouts_and_analyze(self, capsys):
        assert main(["explain", "--shape", "240,12,12",
                     "--drive", "minidrive",
                     "--layouts", "multimap,zorder",
                     "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "ANALYZE" in out
        assert "zorder" in out
        assert "seek_bound" in out
        assert "transfer_bound" in out

    def test_model_table(self, capsys):
        assert main(QUICK + ["--model", "--axis", "1"]) == 0
        out = capsys.readouterr().out
        assert "analytic model" in out

    def test_box_query(self, capsys):
        assert main(QUICK + ["--box", "0,0,0:6,6,6"]) == 0
        out = capsys.readouterr().out
        assert "range" in out

    def test_bad_box_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(QUICK + ["--box", "nonsense"])
        assert exc.value.code == 2

    def test_list_costs(self, capsys):
        assert main(["--list-costs"]) == 0
        out = capsys.readouterr().out
        assert "seek_bound" in out
        assert "queue_bound" in out


class TestDiffAttribute:
    def _export(self, tmp_path, name, seed):
        dest = tmp_path / name
        argv = ["trace", "--shape", "24,12,12", "--drive", "minidrive",
                "--clients", "2", "--queries", "3",
                "--seed", str(seed), "--json", str(dest), "--quiet"]
        assert main(argv) == 0
        return str(dest)

    def test_same_seed_runs_have_no_suspects(self, tmp_path, capsys):
        base = self._export(tmp_path, "base.json", 7)
        cur = self._export(tmp_path, "cur.json", 7)
        assert main(["diff", base, cur, "--attribute"]) == 0
        assert "no suspects" in capsys.readouterr().out

    def test_attribution_lands_in_json(self, tmp_path):
        base = self._export(tmp_path, "base.json", 7)
        cur = self._export(tmp_path, "cur.json", 7)
        dest = tmp_path / "diff.json"
        assert main(["diff", base, cur, "--attribute",
                     "--json", str(dest), "--quiet"]) == 0
        data = json.loads(dest.read_text())
        assert data["attribution"]["suspects"] == []

    def test_without_flag_no_attribution(self, tmp_path):
        base = self._export(tmp_path, "base.json", 7)
        cur = self._export(tmp_path, "cur.json", 7)
        dest = tmp_path / "diff.json"
        assert main(["diff", base, cur,
                     "--json", str(dest), "--quiet"]) == 0
        assert "attribution" not in json.loads(dest.read_text())
