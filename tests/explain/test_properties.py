"""Hypothesis invariants tying EXPLAIN/ANALYZE to the layers below.

Three properties the diagnosis layer must never break: EXPLAIN's
predicted block totals equal the prepared plan's block totals for every
layout x query shape; run classification is a pure function of the run
sequence, so it is stable under any slice granularity; and ANALYZE's
measured per-phase durations reconcile exactly with the recorded span
tree.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.dataset import Dataset
from repro.explain import analyze_query, explain_query, prepare_readonly
from repro.explain.classify import classify_runs
from repro.query import slice_plan
from repro.query.scatter import subplans
from repro.query.workload import BeamQuery, RangeQuery

LAYOUTS = ("naive", "multimap", "zorder", "hilbert", "gray")


@st.composite
def dataset_and_query(draw):
    layout = draw(st.sampled_from(LAYOUTS))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    shape = tuple(int(rng.integers(4, 20)) for _ in range(3))
    if draw(st.booleans()):
        axis = int(rng.integers(0, 3))
        fixed = tuple(
            0 if d == axis else int(rng.integers(0, s))
            for d, s in enumerate(shape)
        )
        query = BeamQuery(axis, fixed)
    else:
        lo = tuple(int(rng.integers(0, s)) for s in shape)
        hi = tuple(int(rng.integers(l + 1, s + 1))
                   for l, s in zip(lo, shape))
        query = RangeQuery(lo, hi)
    return layout, shape, seed, query


class TestExplainProperties:
    @given(case=dataset_and_query())
    @settings(max_examples=25, deadline=None)
    def test_predicted_blocks_equal_prepared_blocks(self, case):
        """EXPLAIN's totals are the prepared plan's totals — per sub,
        per disk, and in aggregate — for every layout x query shape."""
        layout, shape, seed, query = case
        ds = Dataset.create(shape, layout=layout, drive="minidrive",
                            seed=seed)
        out = explain_query(ds, query)
        prepared = prepare_readonly(ds, query)
        assert out["plan"]["blocks"] == prepared.n_blocks
        assert out["plan"]["runs"] == prepared.n_runs
        per_disk = out["predicted"]["per_disk"]
        assert sum(row["blocks"] for row in per_disk.values()) \
            == prepared.n_blocks
        assert sum(row["runs"] for row in per_disk.values()) \
            == prepared.n_runs
        hist = out["plan"]["run_length_histogram"]
        assert sum(int(k) * v for k, v in hist.items()) \
            == prepared.n_blocks

    @given(case=dataset_and_query(),
           max_runs=st.integers(min_value=1, max_value=16))
    @settings(max_examples=25, deadline=None)
    def test_classification_stable_under_slice_granularity(
            self, case, max_runs):
        """Slicing a plan never changes its classification: per-slice
        step counts plus the boundary strides between consecutive
        slices recompose exactly to the whole plan's counts."""
        layout, shape, seed, query = case
        ds = Dataset.create(shape, layout=layout, drive="minidrive",
                            seed=seed)
        prepared = prepare_readonly(ds, query)
        for sub in subplans(prepared):
            whole = classify_runs(ds.volume, sub.disk_index, sub.plan)
            slices = slice_plan(sub.plan, max_runs)
            recomposed = {"sequential": 0, "semi_sequential": 0,
                          "random": 0}
            for i, piece in enumerate(slices):
                part = classify_runs(ds.volume, sub.disk_index, piece)
                for name, count in part["steps"].items():
                    recomposed[name] += count
                if i:
                    prev = slices[i - 1]
                    from repro.explain.classify import classify_strides

                    code = classify_strides(
                        ds.volume, sub.disk_index,
                        np.array([int(prev.starts[-1]
                                      + prev.lengths[-1] - 1)]),
                        np.array([int(piece.starts[0])]),
                    )[0]
                    key = ("sequential", "semi_sequential",
                           "random")[code]
                    recomposed[key] += 1
            assert recomposed == whole["steps"]

    @given(case=dataset_and_query())
    @settings(max_examples=10, deadline=None)
    def test_analyze_phases_reconcile_with_span_tree(self, case):
        """ANALYZE's measured per-phase durations equal an identical
        same-seed run's recorded span tree, category by category."""
        layout, shape, seed, query = case
        ds = Dataset.create(shape, layout=layout, drive="minidrive",
                            seed=seed)
        out = explain_query(ds, query)
        measured, _ = analyze_query(ds, query, out["predicted"])

        twin = Dataset.create(shape, layout=layout, drive="minidrive",
                              seed=seed)
        twin.with_telemetry(trace=True, metrics=False)
        twin.storage.run_query(twin.mapper, query, rng=twin.rng())
        root = twin.telemetry.tracer.roots[0]
        phases = {}
        for span in root.walk():
            if span is not root:
                phases[span.cat] = phases.get(span.cat, 0.0) \
                    + span.dur_ms
        assert measured["phase_ms"] == {
            cat: pytest.approx(ms, abs=0.01)
            for cat, ms in sorted(phases.items())
        }
        assert measured["total_ms"] == pytest.approx(
            root.dur_ms, abs=0.01
        )
