"""The access-pattern and dominant-cost classifiers."""

import numpy as np
import pytest

from repro.errors import ExplainError
from repro.explain.classify import (
    COST_CLASSES,
    classify_cost,
    classify_runs,
    classify_strides,
    run_length_histogram,
)
from repro.lvm import LogicalVolume
from repro.mappings.base import RequestPlan


@pytest.fixture()
def volume(small_model):
    return LogicalVolume([small_model])


class TestClassifyStrides:
    def test_unit_stride_is_sequential(self, volume):
        prev = np.arange(0, 10, dtype=np.int64)
        codes = classify_strides(volume, 0, prev, prev + 1)
        assert (codes == 0).all()

    def test_adjacency_hop_is_semi_sequential(self, volume):
        """The exact LBN ``get_adjacent`` returns, for every depth."""
        adj = volume.adjacency[0]
        lbn = 5
        prev = np.array([lbn] * adj.D, dtype=np.int64)
        nxt = np.array(
            [adj.get_adjacent(lbn, step) for step in range(1, adj.D + 1)],
            dtype=np.int64,
        )
        codes = classify_strides(volume, 0, prev, nxt)
        assert (codes == 1).all()

    def test_arbitrary_jump_is_random(self, volume):
        spt = volume.models[0].geometry.zones[0].sectors_per_track
        prev = np.array([0, 0, 100], dtype=np.int64)
        # half a track ahead, far away, and backwards: none adjacent
        nxt = np.array([spt // 2, 40 * spt + 3, 7], dtype=np.int64)
        codes = classify_strides(volume, 0, prev, nxt)
        assert (codes == 2).all()

    def test_mismatched_shapes_raise(self, volume):
        with pytest.raises(ExplainError):
            classify_strides(volume, 0, np.arange(3), np.arange(4))

    def test_empty_is_empty(self, volume):
        codes = classify_strides(
            volume, 0, np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        )
        assert codes.size == 0


class TestClassifyRuns:
    def test_single_run_is_streaming(self, volume):
        plan = RequestPlan(np.array([0]), np.array([50]))
        out = classify_runs(volume, 0, plan)
        assert out["pattern"] == "sequential"
        assert out["steps"] == {
            "sequential": 49, "semi_sequential": 0, "random": 0,
        }

    def test_one_block_is_single(self, volume):
        plan = RequestPlan(np.array([3]), np.array([1]))
        assert classify_runs(volume, 0, plan)["pattern"] == "single"

    def test_adjacent_runs_are_semi_sequential(self, volume):
        """One-block runs hopping along the adjacency path."""
        adj = volume.adjacency[0]
        path = [10]
        for _ in range(6):
            path.append(adj.get_adjacent(path[-1], 1))
        plan = RequestPlan(
            np.array(path, dtype=np.int64),
            np.ones(len(path), dtype=np.int64),
            policy="fifo",
        )
        out = classify_runs(volume, 0, plan)
        assert out["pattern"] == "semi_sequential"
        assert out["steps"]["semi_sequential"] == len(path) - 1

    def test_counts_sum_to_total_steps(self, volume):
        plan = RequestPlan(
            np.array([0, 500, 1000]), np.array([10, 1, 5])
        )
        out = classify_runs(volume, 0, plan)
        assert sum(out["steps"].values()) == plan.n_blocks - 1


class TestRunLengthHistogram:
    def test_counts(self):
        plan = RequestPlan(
            np.array([0, 100, 200, 300]), np.array([2, 2, 7, 2])
        )
        assert run_length_histogram(plan) == {"2": 3, "7": 1}

    def test_empty_plan(self):
        plan = RequestPlan(np.array([], dtype=np.int64),
                           np.array([], dtype=np.int64))
        assert run_length_histogram(plan) == {}


class TestClassifyCost:
    def test_registry_has_five_documented_classes(self):
        assert len(COST_CLASSES) == 5
        for name in COST_CLASSES.names():
            assert COST_CLASSES.get(name).description

    def test_transfer_bound(self):
        name = classify_cost(seek_ms=1, rotation_ms=2, transfer_ms=5)
        assert name == "transfer_bound"

    def test_seek_bound_includes_attendant_latency(self):
        """Scattered access: rotation exceeds seek, but each wait is
        attendant on a reposition — classified seek-bound."""
        name = classify_cost(seek_ms=40, rotation_ms=150, transfer_ms=10)
        assert name == "seek_bound"

    def test_rotation_bound_when_head_stationary(self):
        name = classify_cost(seek_ms=0.1, rotation_ms=100, transfer_ms=2)
        assert name == "rotation_bound"

    def test_queue_bound_beats_mechanics(self):
        name = classify_cost(seek_ms=5, rotation_ms=5, transfer_ms=5,
                             queue_ms=100)
        assert name == "queue_bound"

    def test_cache_miss_bound(self):
        name = classify_cost(seek_ms=5, rotation_ms=5, transfer_ms=5,
                             cache_ms=1, hit_ratio=0.1)
        assert name == "cache_miss_bound"

    def test_absorbing_cache_does_not_flag(self):
        name = classify_cost(seek_ms=1, rotation_ms=1, transfer_ms=5,
                             cache_ms=1, hit_ratio=0.9)
        assert name == "transfer_bound"

    def test_every_result_is_registered(self):
        name = classify_cost(seek_ms=3, rotation_ms=1, transfer_ms=1)
        assert name in COST_CLASSES
