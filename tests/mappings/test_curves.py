"""Tests for space-filling-curve codes: correctness and curve properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MappingError
from repro.mappings import curves


def full_grid(dims):
    from repro.mappings.base import enumerate_box

    return enumerate_box([0] * len(dims), dims)


class TestBitsFor:
    def test_power_of_two(self):
        assert curves.bits_for((8, 8)) == 3

    def test_non_power(self):
        assert curves.bits_for((9, 4)) == 4

    def test_single_cell(self):
        assert curves.bits_for((1, 1)) == 1

    def test_mixed(self):
        assert curves.bits_for((1024, 2, 3)) == 10


class TestMorton:
    def test_known_2d_sequence(self):
        # Z pattern over 4x4, dim0 least significant
        coords = full_grid((4, 4))
        codes = curves.morton_encode(coords, 2)
        expected = [0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15]
        assert codes.tolist() == expected

    def test_dim0_toggles_first(self):
        codes = curves.morton_encode(np.array([[0, 0], [1, 0]]), 3)
        assert codes[1] - codes[0] == 1

    def test_roundtrip_3d(self):
        coords = full_grid((8, 8, 8))
        codes = curves.morton_encode(coords, 3)
        back = curves.morton_decode(codes, 3, 3)
        np.testing.assert_array_equal(back, coords)

    def test_bijective(self):
        codes = curves.morton_encode(full_grid((4, 4, 4)), 2)
        assert sorted(codes.tolist()) == list(range(64))

    def test_rejects_overflow_coordinate(self):
        with pytest.raises(MappingError):
            curves.morton_encode(np.array([[4, 0]]), 2)

    def test_rejects_negative(self):
        with pytest.raises(MappingError):
            curves.morton_encode(np.array([[-1, 0]]), 2)

    def test_rejects_wide_codes(self):
        with pytest.raises(MappingError):
            curves.morton_encode(np.zeros((1, 8), dtype=np.int64), 8)

    @given(
        x=st.integers(min_value=0, max_value=1023),
        y=st.integers(min_value=0, max_value=1023),
        z=st.integers(min_value=0, max_value=1023),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, x, y, z):
        c = np.array([[x, y, z]])
        code = curves.morton_encode(c, 10)
        np.testing.assert_array_equal(
            curves.morton_decode(code, 3, 10), c
        )


class TestGray:
    def test_bijective(self):
        ranks = curves.gray_rank(full_grid((4, 4, 4)), 2)
        assert sorted(ranks.tolist()) == list(range(64))

    def test_roundtrip(self):
        coords = full_grid((8, 8))
        ranks = curves.gray_rank(coords, 3)
        np.testing.assert_array_equal(
            curves.gray_unrank(ranks, 2, 3), coords
        )

    def test_single_bit_steps(self):
        """Defining property: consecutive curve cells differ in exactly
        one bit of the interleaved coordinates."""
        cells = curves.gray_unrank(np.arange(64), 3, 2)
        m = curves.morton_encode(cells, 2)
        diffs = m[1:] ^ m[:-1]
        assert all(bin(int(d)).count("1") == 1 for d in diffs)


class TestHilbert:
    @pytest.mark.parametrize("n_dims,bits", [(2, 3), (3, 2), (4, 2)])
    def test_bijective(self, n_dims, bits):
        dims = (1 << bits,) * n_dims
        codes = curves.hilbert_encode(full_grid(dims), bits)
        assert sorted(codes.tolist()) == list(range(np.prod(dims)))

    @pytest.mark.parametrize("n_dims,bits", [(2, 3), (3, 2), (3, 3), (4, 2)])
    def test_unit_steps(self, n_dims, bits):
        """Defining property: consecutive curve positions are cells at L1
        distance exactly 1."""
        n = (1 << bits) ** n_dims
        cells = curves.hilbert_decode(np.arange(n), n_dims, bits)
        d = np.abs(np.diff(cells, axis=0)).sum(axis=1)
        assert set(d.tolist()) == {1}

    def test_roundtrip(self):
        coords = full_grid((8, 8, 8))
        codes = curves.hilbert_encode(coords, 3)
        np.testing.assert_array_equal(
            curves.hilbert_decode(codes, 3, 3), coords
        )

    def test_one_dimensional_is_identity(self):
        coords = np.arange(16)[:, None]
        np.testing.assert_array_equal(
            curves.hilbert_encode(coords, 4), np.arange(16)
        )

    def test_rejects_overflow(self):
        with pytest.raises(MappingError):
            curves.hilbert_encode(np.array([[8, 0]]), 3)

    @given(
        pts=st.lists(
            st.tuples(
                st.integers(0, 31), st.integers(0, 31), st.integers(0, 31)
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, pts):
        coords = np.array(pts, dtype=np.int64)
        codes = curves.hilbert_encode(coords, 5)
        np.testing.assert_array_equal(
            curves.hilbert_decode(codes, 3, 5), coords
        )

    def test_clustering_beats_morton(self):
        """Hilbert needs no more clusters (runs of consecutive curve
        positions) than Morton for square regions — Moon et al.'s
        clustering result, which the paper's measurements confirm."""

        def clusters(codes):
            codes = np.sort(codes)
            return 1 + int((np.diff(codes) != 1).sum())

        side = 32
        total_h = total_m = 0
        for ox in range(0, side - 8, 5):
            for oy in range(0, side - 8, 5):
                box = np.array(
                    [
                        [x, y]
                        for y in range(oy, oy + 8)
                        for x in range(ox, ox + 8)
                    ]
                )
                total_h += clusters(curves.hilbert_encode(box, 5))
                total_m += clusters(curves.morton_encode(box, 5))
        assert total_h <= total_m
