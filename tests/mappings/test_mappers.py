"""Tests for the linearised mappers: Naive, Z-order, Hilbert, Gray."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.lvm import Extent, LogicalVolume
from repro.mappings import (
    GrayMapper,
    HilbertMapper,
    NaiveMapper,
    RequestPlan,
    ZOrderMapper,
    coalesce_ranks,
    enumerate_box,
)

ALL_MAPPERS = [NaiveMapper, ZOrderMapper, HilbertMapper, GrayMapper]


def make(cls, dims=(8, 6, 5), start=100, cell_blocks=1):
    n = int(np.prod(dims)) * cell_blocks
    return cls(dims, Extent(0, start, n), cell_blocks)


class TestEnumerateBox:
    def test_dim0_fastest(self):
        out = enumerate_box((0, 0), (3, 2))
        assert out[:3, 0].tolist() == [0, 1, 2]
        assert out[:3, 1].tolist() == [0, 0, 0]

    def test_cell_count(self):
        assert enumerate_box((1, 2, 3), (4, 4, 5)).shape == (12, 3)

    def test_offset_box(self):
        out = enumerate_box((5,), (8,))
        assert out[:, 0].tolist() == [5, 6, 7]


class TestCoalesceRanks:
    def test_empty(self):
        s, l = coalesce_ranks(np.array([], dtype=np.int64))
        assert s.size == 0 and l.size == 0

    def test_single_run(self):
        s, l = coalesce_ranks(np.arange(5))
        assert s.tolist() == [0] and l.tolist() == [5]

    def test_split_runs(self):
        s, l = coalesce_ranks(np.array([1, 2, 3, 7, 8, 20]))
        assert s.tolist() == [1, 7, 20]
        assert l.tolist() == [3, 2, 1]


class TestCommonMapperBehaviour:
    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_lbns_are_a_permutation_of_the_extent(self, cls):
        m = make(cls)
        coords = enumerate_box((0, 0, 0), m.dims)
        lbns = m.lbns(coords)
        assert sorted(lbns.tolist()) == list(
            range(m.extent.start, m.extent.start + m.n_cells)
        )

    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_range_plan_covers_exact_blocks(self, cls):
        m = make(cls)
        lo, hi = (1, 2, 0), (5, 5, 4)
        plan = m.range_plan(lo, hi)
        n_cells = int(np.prod([b - a for a, b in zip(lo, hi)]))
        assert plan.n_blocks == n_cells
        # the planned blocks are exactly the cells' LBNs
        got = np.sort(
            np.concatenate(
                [np.arange(s, s + n) for s, n in zip(plan.starts, plan.lengths)]
            )
        )
        expected = np.sort(m.lbns(enumerate_box(lo, hi)))
        np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_beam_plan_covers_beam_cells(self, cls):
        m = make(cls)
        plan = m.beam_plan(1, (3, 0, 2))
        assert plan.n_blocks == m.dims[1]
        assert plan.merge_gap == 0

    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_full_range_is_whole_extent(self, cls):
        m = make(cls)
        plan = m.range_plan((0, 0, 0), m.dims)
        assert plan.n_runs == 1
        assert plan.starts[0] == m.extent.start
        assert plan.lengths[0] == m.n_cells

    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_out_of_bounds_coords_rejected(self, cls):
        m = make(cls)
        with pytest.raises(QueryError):
            m.lbns(np.array([[8, 0, 0]]))

    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_bad_box_rejected(self, cls):
        m = make(cls)
        with pytest.raises(QueryError):
            m.range_plan((0, 0, 0), (9, 6, 5))
        with pytest.raises(QueryError):
            m.range_plan((2, 0, 0), (2, 6, 5))

    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_bad_beam_rejected(self, cls):
        m = make(cls)
        with pytest.raises(QueryError):
            m.beam_plan(3, (0, 0, 0))
        with pytest.raises(QueryError):
            m.beam_plan(0, (0, 6, 0))

    @pytest.mark.parametrize("cls", ALL_MAPPERS)
    def test_cell_blocks_scale_plans(self, cls):
        m = make(cls, cell_blocks=3)
        plan = m.range_plan((0, 0, 0), (2, 2, 1))
        assert plan.n_blocks == 4 * 3


class TestNaiveSpecifics:
    def test_rank_is_row_major_dim0_fastest(self):
        m = make(NaiveMapper, dims=(4, 3, 2))
        assert m.lbns(np.array([[1, 0, 0]]))[0] == m.extent.start + 1
        assert m.lbns(np.array([[0, 1, 0]]))[0] == m.extent.start + 4
        assert m.lbns(np.array([[0, 0, 1]]))[0] == m.extent.start + 12

    def test_beam_along_dim0_is_one_run(self):
        m = make(NaiveMapper)
        plan = m.beam_plan(0, (0, 2, 3))
        assert plan.n_runs == 1
        assert plan.lengths[0] == m.dims[0]

    def test_range_rows_are_runs(self):
        m = make(NaiveMapper, dims=(10, 10, 10))
        plan = m.range_plan((2, 3, 4), (7, 6, 8))
        # 3 x 4 rows of length 5
        assert plan.n_blocks == 5 * 3 * 4
        assert (plan.lengths == 5).all()

    def test_full_width_rows_merge(self):
        m = make(NaiveMapper, dims=(10, 10, 10))
        plan = m.range_plan((0, 0, 0), (10, 10, 3))
        assert plan.n_runs == 1

    def test_1d_dataset(self):
        m = NaiveMapper((32,), Extent(0, 0, 32))
        plan = m.range_plan((4,), (20,))
        assert plan.n_runs == 1
        assert plan.lengths[0] == 16


class TestCurveMapperSpecifics:
    def test_code_table_cached(self):
        m = make(ZOrderMapper)
        t1 = m.code_table()
        t2 = m.code_table()
        assert t1 is t2
        m.drop_cache()
        assert m.code_table() is not t1

    def test_rank_compaction_dense(self):
        """Ranks on a non-power-of-two grid must be dense 0..n-1."""
        m = make(HilbertMapper, dims=(5, 6, 7))
        coords = enumerate_box((0, 0, 0), m.dims)
        ranks = m.rank(coords)
        assert sorted(ranks.tolist()) == list(range(5 * 6 * 7))

    def test_order_follows_curve(self):
        m = make(ZOrderMapper, dims=(4, 4, 4))
        coords = enumerate_box((0, 0, 0), m.dims)
        codes = m.encode(coords)
        ranks = m.rank(coords)
        # ranks must order exactly like codes
        np.testing.assert_array_equal(
            np.argsort(codes, kind="stable"),
            np.argsort(ranks, kind="stable"),
        )

    @pytest.mark.parametrize("cls", [ZOrderMapper, HilbertMapper, GrayMapper])
    def test_clustering_beats_naive_for_small_boxes(self, cls):
        """Curve layouts should need fewer runs than Naive for a small
        cube — the clustering property that motivates them."""
        dims = (32, 32, 32)
        curve = make(cls, dims=dims)
        naive = make(NaiveMapper, dims=dims)
        lo, hi = (8, 8, 8), (16, 16, 16)
        assert curve.range_plan(lo, hi).n_runs <= naive.range_plan(
            lo, hi
        ).n_runs


class TestAgainstVolumeAllocation:
    def test_mapper_on_allocated_extent(self, small_model):
        vol = LogicalVolume([small_model], depth=16)
        ext = vol.allocate_blocks(0, 8 * 8 * 8)
        m = ZOrderMapper((8, 8, 8), ext)
        lbns = m.lbns(np.array([[0, 0, 0], [7, 7, 7]]))
        assert (lbns >= ext.start).all()
        assert (lbns < ext.end).all()

    @given(
        seed=st.integers(0, 2**31),
        cls_idx=st.integers(0, len(ALL_MAPPERS) - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_bijection_on_random_boxes(self, seed, cls_idx):
        rng = np.random.default_rng(seed)
        dims = tuple(int(rng.integers(2, 9)) for _ in range(3))
        m = make(ALL_MAPPERS[cls_idx], dims=dims)
        coords = enumerate_box((0,) * 3, dims)
        lbns = m.lbns(coords)
        assert np.unique(lbns).size == coords.shape[0]
